"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark writes its regenerated figure (ASCII chart + series data
+ paper-vs-measured verdict) into ``benchmarks/output/`` so EXPERIMENTS.md
can reference concrete artifacts.  Benchmarks assert only *loose* shape
invariants — single-seed stochastic runs must not flake the suite — and
record the strict paper-shape verdicts in their output files.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def write_output(output_dir):
    """Writer fixture: ``write_output("fig3a", text)``."""

    def write(name: str, text: str) -> Path:
        path = output_dir / f"{name}.txt"
        path.write_text(text)
        return path

    return write
