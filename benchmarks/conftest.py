"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark writes its regenerated figure (ASCII chart + series data
+ paper-vs-measured verdict) into ``benchmarks/output/`` so EXPERIMENTS.md
can reference concrete artifacts.  Benchmarks assert only *loose* shape
invariants — single-seed stochastic runs must not flake the suite — and
record the strict paper-shape verdicts in their output files.

Micro-benchmarks additionally serialize their headline numbers through
the ``perf_log`` fixture into ``benchmarks/output/BENCH_micro.json``
(schema: :mod:`repro.perf`), the artifact CI's ``perf`` job gates
against the committed ``benchmarks/baseline/BENCH_micro.json``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"
BENCH_MICRO_JSON = OUTPUT_DIR / "BENCH_micro.json"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def write_output(output_dir):
    """Writer fixture: ``write_output("fig3a", text)``."""

    def write(name: str, text: str) -> Path:
        path = output_dir / f"{name}.txt"
        path.write_text(text)
        return path

    return write


@pytest.fixture
def perf_log(output_dir):
    """Recorder fixture: ``perf_log("MICRO-BATCH-GA", "speedup", 3.4, "x")``.

    Merge-writes one record into ``BENCH_micro.json`` (replacing any
    previous value of the same (bench, metric) pair), so each
    micro-benchmark test contributes its slice independently.
    """
    from repro import perf

    def log(bench: str, metric: str, value: float, unit: str) -> Path:
        return perf.record_results(
            output_dir / "BENCH_micro.json",
            [perf.make_record(bench, metric, value, unit)],
        )

    return log
