"""FIG6 — SE vs GA on a CCR = 1 workload (paper §5.3, Figure 6).

100 tasks, 20 machines, communication comparable to computation.  Paper
expectation: as for high connectivity, SE reaches good schedules sooner;
curves converge with time.
"""

from repro.analysis import Series, line_plot, head_to_head_experiment
from repro.runner import workers_from_env
from repro.workloads import figure6_spec

BUDGET_SECONDS = 6.0
GRID_POINTS = 12
SEED = 21


def run_fig6():
    workload = figure6_spec(seed=SEED)
    return workload, head_to_head_experiment(
        workload,
        time_budget=BUDGET_SECONDS,
        grid_points=GRID_POINTS,
        seed=34,
        workers=workers_from_env(),
    )


def test_fig6_se_vs_ga_ccr_one(benchmark, write_output):
    workload, cmp = benchmark.pedantic(run_fig6, rounds=1, iterations=1)

    chart = line_plot(
        [Series(s.name, s.time_grid, s.best_at) for s in cmp.series],
        title="Figure 6 — SE vs GA, CCR = 1 (100 tasks, 20 machines)",
        x_label="seconds",
        y_label="best schedule length",
    )
    timeline = cmp.winner_timeline()
    early = timeline[: GRID_POINTS // 2]
    se_early_leads = sum(1 for w in early if w == "SE")
    verdict = (
        f"paper: SE better with less time for high-CCR workloads\n"
        f"winner timeline: {timeline}\n"
        f"SE leads in {se_early_leads}/{len(early)} early grid points\n"
        f"final: SE={cmp.by_name('SE').final_best:.1f} "
        f"GA={cmp.by_name('GA').final_best:.1f}\n"
        f"matches: {se_early_leads >= len(early) // 2}\n"
    )
    write_output("fig6_se_vs_ga_ccr1", chart + "\n\n" + verdict)

    se = cmp.by_name("SE")
    ga = cmp.by_name("GA")
    assert se.final_best > 0 and ga.final_best > 0
    assert se.final_best <= 1.5 * ga.final_best
