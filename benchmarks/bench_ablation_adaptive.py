"""ABL-ADAPT — adaptive selection bias vs fixed bias (extension).

The calibration note in EXPERIMENTS.md shows fixed positive bias starves
selection once goodness saturates.  The adaptive-bias extension re-solves
for B every iteration to hold the selection fraction at a target.  This
ablation compares, at a fixed iteration budget on the Fig. 6 (CCR = 1)
workload: the paper's large-problem guidance (+0.05), the calibrated
fixed bias (−0.1), and adaptive targets of 10% and 25%.

The four variants form one :mod:`repro.runner` experiment with a pinned
SE seed; ``REPRO_WORKERS=N`` runs them concurrently.
"""

from repro.analysis import markdown_table
from repro.analysis.convergence import normalized_auc, stagnation
from repro.runner import (
    AlgorithmSpec,
    ExperimentSpec,
    run_experiment,
    workers_from_env,
)
from repro.workloads import figure6_spec

ITERATIONS = 120

VARIANTS = {
    "fixed B=+0.05 (paper, large)": {"selection_bias": 0.05},
    "fixed B=-0.1 (calibrated)": {"selection_bias": -0.1},
    "adaptive target 10%": {"adaptive_target": 0.10},
    "adaptive target 25%": {"adaptive_target": 0.25},
}


def run_adaptive_ablation():
    experiment = ExperimentSpec(
        name="abl-adapt",
        algorithms={
            name: AlgorithmSpec.make(
                "se", seed=33, max_iterations=ITERATIONS, **params
            )
            for name, params in VARIANTS.items()
        },
        workloads=[figure6_spec(seed=21)],
    )
    result = run_experiment(experiment, workers=workers_from_env())

    rows = {}
    for name in VARIANTS:
        cell = result.by_algorithm(name)[0]
        trace = cell.convergence_trace()
        sel = trace.selected_counts()
        rows[name] = {
            "best": cell.makespan,
            "auc": normalized_auc(trace),
            "mean_selected": sum(sel) / len(sel),
            "evaluations": cell.evaluations,
            "longest_stall": stagnation(trace).longest_streak,
        }
    return rows


def test_adaptive_bias_ablation(benchmark, write_output):
    rows = benchmark.pedantic(run_adaptive_ablation, rounds=1, iterations=1)

    table = markdown_table(
        ["variant", "best", "norm. AUC", "mean selected", "evals", "longest stall"],
        [
            (
                name,
                f"{r['best']:.1f}",
                f"{r['auc']:.3f}",
                f"{r['mean_selected']:.1f}",
                r["evaluations"],
                r["longest_stall"],
            )
            for name, r in rows.items()
        ],
    )
    paper_fixed = rows["fixed B=+0.05 (paper, large)"]
    adaptive = rows["adaptive target 10%"]
    text = (
        "ABL-ADAPT — adaptive vs fixed selection bias "
        f"(Fig. 6 workload, {ITERATIONS} iterations)\n\n{table}\n\n"
        "expectation: adaptive bias sustains selection (mean selected ~k*target)\n"
        "and beats the saturating fixed positive bias at equal iterations\n"
        f"matches: {adaptive['best'] <= paper_fixed['best']}\n"
    )
    write_output("ablation_adaptive_bias", text)

    # adaptive holds its selection volume; fixed positive bias collapses
    assert adaptive["mean_selected"] > paper_fixed["mean_selected"]
    # and converts the extra churn into equal-or-better quality
    assert adaptive["best"] <= paper_fixed["best"] * 1.02
