"""MICRO-JIT — microbenchmarks of the compiled (numba) kernel tier.

The :mod:`repro.schedule.jit` kernels compile the whole position-major
schedule walk into one parallel loop nest over the ``WorkloadPack``
tables.  These benches measure, at paper scale (100 tasks, 20
machines), the compiled tier against the *scalar* walk — the same
batch-vs-scalar question as MICRO-BATCH-*, one tier up:

* MICRO-JIT       — 128 schedules through the compiled contention-free
  kernel vs the scalar ``Simulator`` loop (target: >= 10x);
* MICRO-JIT-NIC   — the same under NIC contention (target: >= 10x);
* MICRO-JIT-SCALE — thread scaling of one compiled batch sweep:
  ``numba.set_num_threads(1)`` vs 4 threads, recorded as
  per-core parallel efficiency (target: >= 0.7);

Bit-identity against both the NumPy kernels and the scalar simulators
is asserted before any timing.  **Warm-compile timing only**: every
case calls :func:`repro.schedule.jit.warmup` first and then asserts
that a single post-warmup call lands within a small factor of the
best-of time — a compile inside the measured region would blow that
factor by orders of magnitude.  Assertion floors in-test are loose (a
loaded CI machine must not flake the suite); the bar is held by
``repro perf check`` against ``benchmarks/baseline/BENCH_micro_jit.json``
on the numba CI leg.

The whole module skips cleanly when numba is absent — the plain-Python
fallback bodies are correctness vehicles, not benchmark subjects.
"""

import time

import pytest

numba = pytest.importorskip("numba")

from repro.extensions.contention import ContentionSimulator  # noqa: E402
from repro.schedule.backend import make_simulator  # noqa: E402
from repro.schedule.jit import (  # noqa: E402
    JitBatchSimulator,
    JitContentionBatchSimulator,
    warmup,
)
from repro.schedule.operations import random_valid_string  # noqa: E402
from repro.schedule.simulator import Simulator  # noqa: E402
from repro.schedule.vectorized import BatchSimulator  # noqa: E402
from repro.schedule.vectorized_contention import (  # noqa: E402
    ContentionBatchSimulator,
)
from repro.workloads import figure5_workload  # noqa: E402

#: A single warm call may exceed the best-of observation by scheduler
#: noise, but never by a compile (3-4 orders of magnitude).
WARM_FACTOR = 50.0


def paper_scale_workload():
    return figure5_workload(seed=1)


def best_of(fn, budget: float = 1.0):
    """Minimum wall-clock time of *fn* over repeated runs in *budget* s."""
    fn()  # warm-up (faults in scratch; kernels are already compiled)
    best = float("inf")
    start = time.perf_counter()
    while time.perf_counter() - start < budget:
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _strings(w, size):
    return [
        random_valid_string(w.graph, w.num_machines, seed)
        for seed in range(size)
    ]


def _timed_single(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _jit_vs_scalar(write_output, perf_log, bench, slug, scalar, jit_kernel,
                   numpy_kernel, w, strings, floor):
    """Shared driver: bit-identity, warm-compile proof, timing, records."""
    size = len(strings)

    def scalar_loop():
        return [scalar.string_makespan(s) for s in strings]

    def jit_batch():
        return jit_kernel.string_makespans(strings)

    # bit-identity across all three tiers before any timing
    want = scalar_loop()
    assert jit_batch().tolist() == want
    assert numpy_kernel.string_makespans(strings).tolist() == want

    # warm-compile proof: one un-averaged call right after warmup must
    # land near the best-of floor — a compile here would be ~1000x off
    t_first = _timed_single(jit_batch)
    t_scalar, t_jit = best_of(scalar_loop), best_of(jit_batch)
    assert t_first < WARM_FACTOR * t_jit, (
        f"{bench}: post-warmup call took {t_first * 1e3:.1f} ms vs best "
        f"{t_jit * 1e3:.3f} ms — compilation leaked into the measured "
        "region"
    )
    speedup = t_scalar / t_jit

    perf_log(bench, "speedup", round(speedup, 3), "x")
    perf_log(bench, "scalar_per_eval", round(t_scalar / size * 1e6, 2), "us")
    perf_log(bench, "jit_per_eval", round(t_jit / size * 1e6, 2), "us")
    write_output(
        slug,
        f"{bench} — compiled kernel vs scalar walk\n\n"
        f"batch of {size} schedules at paper scale ({w.num_tasks} tasks, "
        f"{w.num_machines} machines)\n"
        f"scalar : {t_scalar * 1e3:.2f} ms/batch "
        f"({t_scalar / size * 1e6:.1f} us/eval)\n"
        f"jit    : {t_jit * 1e3:.2f} ms/batch "
        f"({t_jit / size * 1e6:.1f} us/eval)\n"
        f"speedup: {speedup:.2f}x\n"
        f"claim (>= 10x at batch {size}): {speedup >= 10.0}\n"
        f"warm-compile check: first call {t_first * 1e3:.2f} ms "
        f"(< {WARM_FACTOR:.0f}x best)\n",
    )
    assert speedup >= floor  # loose floor; the perf gate holds the bar


def test_micro_jit_plain(write_output, perf_log):
    """MICRO-JIT: compiled contention-free walk vs the scalar loop."""
    w = paper_scale_workload()
    warmup(w)
    backend = make_simulator(w, batch=True)
    assert backend.kernel_tier == "jit"  # auto-selection, not hand-wiring
    _jit_vs_scalar(
        write_output,
        perf_log,
        "MICRO-JIT",
        "micro_jit_plain",
        Simulator(w),
        JitBatchSimulator(w),
        BatchSimulator(w),
        w,
        _strings(w, 128),
        floor=3.0,
    )


def test_micro_jit_nic(write_output, perf_log):
    """MICRO-JIT-NIC: compiled NIC-contention walk vs the scalar loop."""
    w = paper_scale_workload()
    warmup(w)
    backend = make_simulator(w, "nic", batch=True)
    assert backend.kernel_tier == "jit"
    _jit_vs_scalar(
        write_output,
        perf_log,
        "MICRO-JIT-NIC",
        "micro_jit_nic",
        ContentionSimulator(w),
        JitContentionBatchSimulator(w),
        ContentionBatchSimulator(w),
        w,
        _strings(w, 128),
        floor=3.0,
    )


def test_micro_jit_thread_scaling(write_output, perf_log):
    """MICRO-JIT-SCALE: prange efficiency at 4 threads vs 1.

    Batch rows are independent, so the compiled sweep should scale
    near-linearly until memory bandwidth bites.  Efficiency is
    ``(t1 / tN) / N`` — 1.0 is perfect scaling.
    """
    w = paper_scale_workload()
    warmup(w)
    kernel = JitBatchSimulator(w)
    strings = _strings(w, 512)
    threads = min(4, numba.config.NUMBA_NUM_THREADS)
    if threads < 2:
        pytest.skip("thread scaling needs >= 2 numba threads")

    def sweep():
        return kernel.string_makespans(strings)

    saved = numba.get_num_threads()
    try:
        numba.set_num_threads(1)
        t1 = best_of(sweep)
        numba.set_num_threads(threads)
        tn = best_of(sweep)
    finally:
        numba.set_num_threads(saved)
    speedup = t1 / tn
    efficiency = speedup / threads

    perf_log("MICRO-JIT-SCALE", f"efficiency_{threads}t",
             round(efficiency, 3), "x")
    perf_log("MICRO-JIT-SCALE", f"speedup_{threads}t",
             round(speedup, 3), "x")
    write_output(
        "micro_jit_thread_scaling",
        "MICRO-JIT-SCALE — compiled batch sweep thread scaling\n\n"
        f"batch of {len(strings)} schedules at paper scale\n"
        f"1 thread : {t1 * 1e3:.2f} ms/sweep\n"
        f"{threads} threads: {tn * 1e3:.2f} ms/sweep\n"
        f"speedup  : {speedup:.2f}x -> efficiency {efficiency:.2f} "
        f"per core\n"
        f"claim (>= 0.7 per-core efficiency): {efficiency >= 0.7}\n",
    )
    assert efficiency >= 0.35  # loose floor; the perf gate holds the bar
