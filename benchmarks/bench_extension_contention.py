"""EXT-CONT / EXT-HYBRID — extension benchmarks (beyond the paper).

* Contention sensitivity: how much do SE / HEFT schedules degrade when
  the contention-free network assumption is replaced by a one-NIC-per-
  machine model?  High-CCR schedules should be the most sensitive.
* Hybrid warm start: how much does seeding SE with HEFT help at a small
  iteration budget compared to the paper's random initial solution?
"""

from repro.analysis import markdown_table
from repro.baselines import heft
from repro.core import SEConfig, run_se
from repro.extensions.contention import contention_penalty
from repro.extensions.hybrid import heft_seeded_se
from repro.workloads import WorkloadSpec, build_workload


def run_contention_study():
    rows = []
    for ccr in (0.1, 0.5, 1.0):
        w = build_workload(
            WorkloadSpec(num_tasks=50, num_machines=8, ccr=ccr, seed=13)
        )
        se = run_se(w, SEConfig(seed=2, max_iterations=60))
        rows.append(
            (
                ccr,
                contention_penalty(w, heft(w).string),
                contention_penalty(w, se.best_string),
            )
        )
    return rows


def test_contention_sensitivity(benchmark, write_output):
    rows = benchmark.pedantic(run_contention_study, rounds=1, iterations=1)
    table = markdown_table(
        ["CCR", "HEFT penalty", "SE penalty"],
        [(c, f"{h:.1%}", f"{s:.1%}") for c, h, s in rows],
    )
    text = (
        "EXT-CONT — makespan penalty under NIC contention\n\n"
        f"{table}\n\n"
        "expectation: penalties grow with CCR; 0% at CCR ~ 0\n"
        f"matches: {rows[0][2] <= rows[-1][2] + 0.05}\n"
    )
    write_output("extension_contention", text)

    # penalties are non-negative by construction
    for _, h, s in rows:
        assert h >= -1e-9 and s >= -1e-9
    # low-CCR schedules are barely sensitive
    assert rows[0][1] < 0.2 and rows[0][2] < 0.2


def run_hybrid_study():
    rows = []
    for seed in (1, 2, 3):
        w = build_workload(
            WorkloadSpec(num_tasks=60, num_machines=10, seed=40 + seed)
        )
        base = heft(w).makespan
        cold = run_se(w, SEConfig(seed=seed, max_iterations=30)).best_makespan
        warm = heft_seeded_se(
            w, SEConfig(seed=seed, max_iterations=30)
        ).best_makespan
        rows.append((40 + seed, base, cold, warm))
    return rows


def test_hybrid_warm_start(benchmark, write_output):
    rows = benchmark.pedantic(run_hybrid_study, rounds=1, iterations=1)
    table = markdown_table(
        ["workload seed", "HEFT", "SE cold", "SE warm (HEFT-seeded)"],
        [
            (s, f"{b:.1f}", f"{c:.1f}", f"{w:.1f}")
            for s, b, c, w in rows
        ],
    )
    text = (
        "EXT-HYBRID — HEFT-seeded SE vs cold-started SE (30 iterations)\n\n"
        f"{table}\n\n"
        "guarantee: warm <= HEFT always (engine keeps the seed as best)\n"
    )
    write_output("extension_hybrid", text)

    for _, base, _, warm in rows:
        assert warm <= base + 1e-9
