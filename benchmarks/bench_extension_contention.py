"""EXT-CONT / EXT-HYBRID — extension benchmarks (beyond the paper).

* Contention sensitivity: how much do SE / HEFT schedules degrade when
  the contention-free network assumption is replaced by a one-NIC-per-
  machine model?  High-CCR schedules should be the most sensitive.
* Hybrid warm start: how much does seeding SE with HEFT help at a small
  iteration budget compared to the paper's random initial solution?

Both studies fan out through :mod:`repro.runner`; the winning schedule
strings travel back in the cells' ``extras`` payload so the contention
penalty can be recomputed in-process.
"""

from repro.analysis import markdown_table
from repro.extensions.contention import contention_penalty
from repro.runner import (
    AlgorithmSpec,
    ExperimentSpec,
    run_experiment,
    workers_from_env,
)
from repro.schedule import ScheduleString
from repro.workloads import WorkloadSpec, build_workload

CCRS = (0.1, 0.5, 1.0)


def _best_string(cell, num_machines):
    doc = cell.extras["best_string"]
    return ScheduleString(doc["order"], doc["machines"], num_machines)


def run_contention_study():
    workloads = [
        WorkloadSpec(
            num_tasks=50, num_machines=8, ccr=ccr, seed=13, name=f"ccr{ccr:g}"
        )
        for ccr in CCRS
    ]
    experiment = ExperimentSpec(
        name="ext-cont",
        algorithms={
            "SE": AlgorithmSpec.make("se", seed=2, max_iterations=60),
            "HEFT": AlgorithmSpec.make("heft"),
        },
        workloads=workloads,
    )
    result = run_experiment(
        experiment, workers=workers_from_env(), keep_traces=False
    )
    rows = []
    for spec in workloads:
        w = build_workload(spec)
        heft_cell = result.cell("HEFT", spec.name)
        se_cell = result.cell("SE", spec.name)
        rows.append(
            (
                spec.ccr,
                contention_penalty(w, _best_string(heft_cell, w.num_machines)),
                contention_penalty(w, _best_string(se_cell, w.num_machines)),
            )
        )
    return rows


def test_contention_sensitivity(benchmark, write_output):
    rows = benchmark.pedantic(run_contention_study, rounds=1, iterations=1)
    table = markdown_table(
        ["CCR", "HEFT penalty", "SE penalty"],
        [(c, f"{h:.1%}", f"{s:.1%}") for c, h, s in rows],
    )
    text = (
        "EXT-CONT — makespan penalty under NIC contention\n\n"
        f"{table}\n\n"
        "expectation: penalties grow with CCR; 0% at CCR ~ 0\n"
        f"matches: {rows[0][2] <= rows[-1][2] + 0.05}\n"
    )
    write_output("extension_contention", text)

    # penalties are non-negative by construction
    for _, h, s in rows:
        assert h >= -1e-9 and s >= -1e-9
    # low-CCR schedules are barely sensitive
    assert rows[0][1] < 0.2 and rows[0][2] < 0.2


def run_hybrid_study():
    workloads = [
        WorkloadSpec(num_tasks=60, num_machines=10, seed=s, name=f"w{s}")
        for s in (41, 42, 43)
    ]
    experiment = ExperimentSpec(
        name="ext-hybrid",
        algorithms={
            "HEFT": AlgorithmSpec.make("heft"),
            "SE cold": AlgorithmSpec.make("se", max_iterations=30),
            "SE warm": AlgorithmSpec.make("hybrid", max_iterations=30),
        },
        workloads=workloads,
        seeds=(1,),
        # cold and warm SE must draw the same stream per workload so the
        # comparison isolates the warm start, not seed noise
        seed_mode="paired",
    )
    result = run_experiment(
        experiment, workers=workers_from_env(), keep_traces=False
    )
    rows = []
    for spec in workloads:
        rows.append(
            (
                spec.seed,
                result.cell("HEFT", spec.name).makespan,
                result.cell("SE cold", spec.name).makespan,
                result.cell("SE warm", spec.name).makespan,
            )
        )
    return rows


def test_hybrid_warm_start(benchmark, write_output):
    rows = benchmark.pedantic(run_hybrid_study, rounds=1, iterations=1)
    table = markdown_table(
        ["workload seed", "HEFT", "SE cold", "SE warm (HEFT-seeded)"],
        [
            (s, f"{b:.1f}", f"{c:.1f}", f"{w:.1f}")
            for s, b, c, w in rows
        ],
    )
    text = (
        "EXT-HYBRID — HEFT-seeded SE vs cold-started SE (30 iterations)\n\n"
        f"{table}\n\n"
        "guarantee: warm <= HEFT always (engine keeps the seed as best)\n"
    )
    write_output("extension_hybrid", text)

    for _, base, _, warm in rows:
        assert warm <= base + 1e-9
