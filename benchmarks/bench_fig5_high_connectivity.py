"""FIG5 — SE vs GA on a high-connectivity workload (paper §5.3, Figure 5).

100 tasks, 20 machines, high connectivity.  Paper expectation: SE finds
better schedules than the GA early; as time grows the curves approach
each other.
"""

from repro.analysis import Series, line_plot, head_to_head_experiment
from repro.runner import workers_from_env
from repro.workloads import figure5_spec

BUDGET_SECONDS = 6.0
GRID_POINTS = 12
SEED = 21


def run_fig5():
    workload = figure5_spec(seed=SEED)
    return workload, head_to_head_experiment(
        workload,
        time_budget=BUDGET_SECONDS,
        grid_points=GRID_POINTS,
        seed=33,
        workers=workers_from_env(),
    )


def test_fig5_se_vs_ga_high_connectivity(benchmark, write_output):
    workload, cmp = benchmark.pedantic(run_fig5, rounds=1, iterations=1)

    chart = line_plot(
        [Series(s.name, s.time_grid, s.best_at) for s in cmp.series],
        title="Figure 5 — SE vs GA, high connectivity (100 tasks, 20 machines)",
        x_label="seconds",
        y_label="best schedule length",
    )
    timeline = cmp.winner_timeline()
    early = timeline[: GRID_POINTS // 2]
    se_early_leads = sum(1 for w in early if w == "SE")
    gap = cmp.advantage("SE", "GA")
    verdict = (
        f"paper: SE better early; curves approach each other over time\n"
        f"winner timeline: {timeline}\n"
        f"SE leads in {se_early_leads}/{len(early)} early grid points\n"
        f"final: SE={cmp.by_name('SE').final_best:.1f} "
        f"GA={cmp.by_name('GA').final_best:.1f}\n"
        f"GA/SE advantage per grid point: "
        f"{[f'{g:.3f}' for g in gap]}\n"
        f"matches: {se_early_leads >= len(early) // 2}\n"
    )
    write_output("fig5_se_vs_ga_high_connectivity", chart + "\n\n" + verdict)

    # loose sanity: both produced solutions; SE competitive at the end
    se = cmp.by_name("SE")
    ga = cmp.by_name("GA")
    assert se.final_best > 0 and ga.final_best > 0
    assert se.final_best <= 1.5 * ga.final_best
