"""ROBUST-STUDY / MICRO-SCENARIO — the stochastic scenario tier, measured.

Two questions, one file:

* **ROBUST-STUDY** — does optimising a risk statistic actually buy
  robustness?  A paired-seed comparison on a straggler-prone workload:
  for each seed, a deterministic SE run (objective ``makespan``) and a
  risk-aware SE run (objective ``quantile:0.95`` over 96 training
  scenarios) start from identical initial conditions; both winners are
  then judged **out of sample** — on 512 fresh scenarios drawn with a
  scenario seed neither arm trained on — via
  :func:`repro.analysis.compare_risk`.  The headline number is the
  geometric-mean p95 ratio (robust / deterministic; < 1 means the
  deterministic winner *loses* at p95).  The distribution is an
  empirical straggler table (10% chance a subtask runs 4x slow), the
  regime where hedging the tail genuinely conflicts with polishing the
  nominal plan.

* **MICRO-SCENARIO** — what does scenario scoring cost?  A B x S
  scoring sweep at paper scale through the vectorized per-scenario
  batch kernels vs the sequential per-scenario scalar loop (what
  ``prefer_batch=False`` gives you), equal results asserted first.

Both record :mod:`repro.perf` records into
``benchmarks/output/BENCH_micro.json`` for the CI perf gate.  The
study's search and sampling are fully seeded, so its quality numbers
are reproducible; assertion floors still sit well below the measured
values so a numerically different BLAS cannot flake tier 1 — the gate
against ``benchmarks/baseline/BENCH_micro.json`` holds the real bar.
"""

import math
import time

import numpy as np

from repro.analysis import compare_risk, risk_profile
from repro.core import SEConfig, SimulatedEvolution
from repro.optim import EvaluationService
from repro.schedule.operations import random_valid_string
from repro.stochastic import ScenarioEvaluator, sample_scenarios
from repro.workloads import figure5_workload, small_workload

# the straggler model: each subtask has a 10% chance of running 4x slow
STRAGGLER = "empirical:1,1,1,1,1,1,1,1,1,4"
TRAIN_SCENARIOS, TRAIN_SEED = 96, 0
EVAL_SCENARIOS, EVAL_SEED = 512, 17
SEEDS = (1, 2, 3, 4, 5)


def best_of(fn, budget: float = 1.0):
    """Minimum wall-clock time of *fn* over repeated runs in *budget* s."""
    fn()  # warm-up
    best = float("inf")
    start = time.perf_counter()
    while time.perf_counter() - start < budget:
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _geomean(xs):
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


def test_robust_study(write_output, perf_log):
    """ROBUST-STUDY: deterministic SE's winner loses at p95.

    Paired seeds, out-of-sample judgement: the quantile:0.95 arm trains
    on ``scenario_seed=0`` and both winners are compared on 512
    scenarios drawn with ``seed=17`` — scenarios neither search saw.
    """
    w = small_workload(seed=1)
    nominal = EvaluationService(w)
    judge = ScenarioEvaluator(
        sample_scenarios(w, STRAGGLER, EVAL_SCENARIOS, seed=EVAL_SEED)
    )

    lines = [
        "ROBUST-STUDY — paired-seed SE: makespan objective vs "
        "quantile:0.95\n",
        f"workload: {w.num_tasks} tasks / {w.num_machines} machines, "
        f"distribution {STRAGGLER}",
        f"training: {TRAIN_SCENARIOS} scenarios (seed {TRAIN_SEED}); "
        f"judgement: {EVAL_SCENARIOS} fresh scenarios (seed {EVAL_SEED})\n",
        "seed  p95 ratio  mean ratio  nominal det  nominal robust",
    ]
    p95_ratios, insurance = [], []
    for seed in SEEDS:
        det = SimulatedEvolution(
            SEConfig(seed=seed, max_iterations=40)
        ).run(w)
        rob = SimulatedEvolution(
            SEConfig(
                seed=seed,
                max_iterations=40,
                objective="quantile:0.95",
                scenarios=TRAIN_SCENARIOS,
                distribution=STRAGGLER,
                scenario_seed=TRAIN_SEED,
            )
        ).run(w)
        ratios = compare_risk(judge, det.best_string, rob.best_string)
        n_det = nominal.string_makespan(det.best_string)
        n_rob = nominal.string_makespan(rob.best_string)
        p95_ratios.append(ratios["p95"])
        insurance.append(n_rob / n_det)
        lines.append(
            f"{seed:4d}  {ratios['p95']:9.4f}  {ratios['mean']:10.4f}"
            f"  {n_det:11.2f}  {n_rob:14.2f}"
        )

    gm = _geomean(p95_ratios)
    wins = sum(r < 1.0 for r in p95_ratios)
    price = _geomean(insurance)
    # headline: out-of-sample p95 *gain* of the robust arm (>1 = better)
    gain = 1.0 / gm
    sample_profile = risk_profile(
        judge,
        SimulatedEvolution(SEConfig(seed=SEEDS[0], max_iterations=40))
        .run(w)
        .best_string,
    )
    lines += [
        "",
        f"geomean p95 ratio: {gm:.4f}  (robust wins {wins}/{len(SEEDS)} "
        "seeds)",
        f"out-of-sample p95 gain: {gain:.3f}x",
        f"price of insurance (nominal robust/det): {price:.4f}",
        "",
        "deterministic winner's out-of-sample profile (seed "
        f"{SEEDS[0]}):",
        *sample_profile.format_lines("  "),
    ]
    write_output("robust_study", "\n".join(lines) + "\n")
    perf_log("ROBUST-STUDY", "p95_gain_geomean", round(gain, 3), "x")

    # the study's claim: across paired seeds the deterministic winner
    # loses at p95 — in aggregate and on a majority of seeds (measured:
    # geomean ~0.92, 4/5 wins; floors kept loose for numeric drift)
    assert gm <= 0.98
    assert wins * 2 > len(SEEDS)


def test_micro_scenario_batch_vs_scalar_loop(write_output, perf_log):
    """MICRO-SCENARIO: B x S scoring, batch kernels vs the scalar loop."""
    w = figure5_workload(seed=1)
    S, B = 16, 64
    scen = sample_scenarios(w, "lognormal:0.25", scenarios=S, seed=3)
    fast = ScenarioEvaluator(scen, prefer_batch=True)
    slow = ScenarioEvaluator(scen, prefer_batch=False)
    assert fast.is_vectorized and not slow.is_vectorized
    strings = [
        random_valid_string(w.graph, w.num_machines, seed)
        for seed in range(B)
    ]
    np.testing.assert_allclose(
        fast.string_matrix(strings), slow.string_matrix(strings)
    )

    t_batch = best_of(lambda: fast.string_matrix(strings))
    t_scalar = best_of(lambda: slow.string_matrix(strings))
    speedup = t_scalar / t_batch
    per_eval = t_batch / (S * B) * 1e6

    perf_log("MICRO-SCENARIO", "speedup", round(speedup, 3), "x")
    perf_log("MICRO-SCENARIO", "batch_per_eval", round(per_eval, 2), "us")
    write_output(
        "micro_scenario_batch",
        "MICRO-SCENARIO — B x S scenario scoring: per-scenario batch "
        "kernels vs scalar loop\n\n"
        f"{B} schedules x {S} scenarios at paper scale ({w.num_tasks} "
        f"tasks, {w.num_machines} machines)\n"
        f"scalar loop : {t_scalar * 1e3:.2f} ms/sweep\n"
        f"batch kernel: {t_batch * 1e3:.2f} ms/sweep "
        f"({per_eval:.1f} us per schedule-scenario)\n"
        f"speedup: {speedup:.2f}x\n",
    )
    assert speedup >= 2.0  # loose floor; the perf gate holds the bar
