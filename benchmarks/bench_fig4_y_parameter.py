"""FIG4A / FIG4B — effect of the Y parameter (paper §5.2, Figures 4a/4b).

Y values 5, 9, 12 (of 20 machines), on a large workload of low (4a) and
high (4b) heterogeneity.  Paper expectations:

* 4a (low het): larger Y ⇒ better quality and faster convergence;
* 4b (high het): the intermediate Y (9) is best; pushing Y beyond it
  makes solutions *worse* over the first ~1000 iterations.

Single-seed SE runs are noisy, so the benchmark averages final quality
over a few replicates for the recorded verdict and asserts only loose
invariants (timing must grow with Y; results must be finite/feasible).

SE runs with ``selection_bias = -0.1``: sustained selection pressure is
required for the Y parameter to matter at all — with the §4.4 positive
large-problem bias, goodness saturates after early convergence, almost
nothing is selected, and every Y collapses to the same local optimum
(see EXPERIMENTS.md, calibration notes).

The Y × replicate product runs through :mod:`repro.runner` as one
experiment (``zip`` pairing: one workload draw per replicate seed;
``seed_mode="paired"`` so every Y value sees the *same* RNG stream per
replicate — Y's effect is not confounded with seed noise), so
``REPRO_WORKERS=N`` shards the nine SE runs across processes with
identical results.
"""

from dataclasses import replace

from repro.analysis import Series, line_plot, summarize
from repro.runner import (
    AlgorithmSpec,
    ExperimentSpec,
    run_experiment,
    workers_from_env,
)
from repro.workloads import figure4a_spec, figure4b_spec

BIAS = -0.1
Y_VALUES = (5, 9, 12)
ITERATIONS = 120
SEEDS = (5, 6, 7)


def run_y_study(spec_factory):
    """For each Y: trace of the first replicate plus final bests of all."""
    experiment = ExperimentSpec(
        name="fig4",
        algorithms={
            f"Y={y}": AlgorithmSpec.make(
                "se",
                max_iterations=ITERATIONS,
                y_candidates=y,
                selection_bias=BIAS,
            )
            for y in Y_VALUES
        },
        workloads=[
            replace(w, name=f"{w.name}-r{s}")
            for s in SEEDS
            for w in (spec_factory(seed=100 + s),)
        ],
        seeds=SEEDS,
        pairing="zip",
        seed_mode="paired",
    )
    result = run_experiment(experiment, workers=workers_from_env())

    traces = {}
    finals = {y: [] for y in Y_VALUES}
    evals = {}
    for y in Y_VALUES:
        cells = result.by_algorithm(f"Y={y}")
        finals[y] = [c.makespan for c in cells]
        traces[y] = cells[0].convergence_trace()
        evals[y] = cells[0].evaluations
    return traces, finals, evals


def render(tag, title, traces, finals, evals, expectation, matches):
    chart = line_plot(
        [
            Series(f"Y={y}", traces[y].iterations(), traces[y].best_makespans())
            for y in Y_VALUES
        ],
        title=title,
        x_label="iteration",
        y_label="best schedule length",
    )
    lines = [chart, "", f"paper: {expectation}"]
    for y in Y_VALUES:
        s = summarize(finals[y])
        lines.append(
            f"Y={y:>2}: final best mean={s.mean:.1f} ± {s.std:.1f} "
            f"(replicate-0 evaluations {evals[y]})"
        )
    lines.append(f"matches: {matches}")
    return "\n".join(lines) + "\n"


def test_fig4a_low_heterogeneity(benchmark, write_output):
    traces, finals, evals = benchmark.pedantic(
        run_y_study, args=(figure4a_spec,), rounds=1, iterations=1
    )
    mean = {y: sum(v) / len(v) for y, v in finals.items()}
    matches = mean[12] <= mean[5]
    text = render(
        "fig4a",
        "Figure 4a — effect of Y, LOW heterogeneity",
        traces,
        finals,
        evals,
        "larger Y improves quality and convergence rate",
        matches,
    )
    write_output("fig4a_y_low_heterogeneity", text)

    # timing requirement must grow with Y (§5.2, unconditional claim)
    assert evals[12] > evals[5]
    for y in Y_VALUES:
        assert all(v > 0 for v in finals[y])


def test_fig4b_high_heterogeneity(benchmark, write_output):
    traces, finals, evals = benchmark.pedantic(
        run_y_study, args=(figure4b_spec,), rounds=1, iterations=1
    )
    mean = {y: sum(v) / len(v) for y, v in finals.items()}
    # paper: best Y is intermediate; larger Y not reliably better
    matches = mean[9] <= mean[12] or mean[9] <= mean[5]
    text = render(
        "fig4b",
        "Figure 4b — effect of Y, HIGH heterogeneity",
        traces,
        finals,
        evals,
        "intermediate Y (9 of 20) is best; Y beyond it can hurt early quality",
        matches,
    )
    write_output("fig4b_y_high_heterogeneity", text)

    assert evals[12] > evals[5]
    for y in Y_VALUES:
        assert all(v > 0 for v in finals[y])
