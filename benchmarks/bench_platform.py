"""MICRO-PLATFORM / PLATFORM-STUDY — the cost-aware platform axis.

Two measurements of the platform/multi-objective refactor at paper
scale (100 tasks, 20 machines, the "spot" catalog):

* MICRO-PLATFORM  — batch cost scoring: the vectorized
  :meth:`~repro.schedule.scoring.CostModel.batch_costs` gather vs the
  per-schedule scalar loop, plus the deterministic HEFT schedule cost
  (a usd-unit record exercising the perf gate's cost-direction rule);
* PLATFORM-STUDY  — the headline study: trace the (makespan, cost)
  Pareto front with one SA run per scalarization weight, every run
  sharing one :class:`~repro.optim.tracking.ParetoTracker`, and find
  the cheapest schedule within 1.2x of the pure-makespan run's
  makespan.  The acceptance claim: at least one non-dominated point
  beats the pure-makespan schedule on cost by >= 20% while staying
  within that makespan slack.

Bit-identity of the two cost paths is asserted before timing; wall
clock ratios land in ``BENCH_micro.json`` for the CI perf gate and the
study writes its front table as a human-readable artifact.
"""

import time

import numpy as np

from repro.analysis.pareto import pareto_table
from repro.baselines import heft
from repro.optim import ParetoTracker, SAConfig, run_sa
from repro.optim.evaluation import EvaluationService
from repro.schedule.backend import platform_cost_vectorized, resolve_platform
from repro.schedule.scoring import CostModel
from repro.workloads import figure5_workload

PLATFORM = "spot"  # zero-boot: keeps the vectorized batch kernel


def paper_scale_workload():
    return figure5_workload(seed=1)


def best_of(fn, budget: float = 1.0):
    """Minimum wall-clock time of *fn* over repeated runs in *budget* s."""
    fn()  # warm-up
    best = float("inf")
    start = time.perf_counter()
    while time.perf_counter() - start < budget:
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _spot_cost_model(w):
    bound = resolve_platform(PLATFORM).bind(w.num_machines)
    scaled = bound.apply(w)
    return CostModel(scaled.exec_times.values, bound.prices)


def test_micro_platform_batch_cost_scoring(write_output, perf_log):
    """MICRO-PLATFORM: vectorized batch cost gather vs the scalar loop."""
    w = paper_scale_workload()
    assert platform_cost_vectorized(PLATFORM)  # zero boot -> batch tier
    cm = _spot_cost_model(w)
    size = 512
    rng = np.random.default_rng(3)
    machines = rng.integers(0, w.num_machines, size=(size, w.num_tasks))

    def scalar_loop():
        return [cm.cost(row) for row in machines]

    def batch():
        return cm.batch_costs(machines)

    assert scalar_loop() == batch().tolist()  # bit-identical dollars
    t_scalar, t_batch = best_of(scalar_loop), best_of(batch)
    speedup = t_scalar / t_batch

    # the deterministic anchor: HEFT's schedule cost on this catalog is
    # a pure function of the pinned workload seed — exactly reproducible
    # anywhere, so it can sit in the committed baseline in usd
    ref = heft(w, platform=PLATFORM)

    perf_log("MICRO-PLATFORM", "speedup", round(speedup, 3), "x")
    perf_log(
        "MICRO-PLATFORM",
        "heft_schedule_cost",
        round(ref.cost, 4),
        "usd",
    )
    write_output(
        "micro_platform_batch_cost",
        "MICRO-PLATFORM — batch cost scoring: scalar loop vs vectorized "
        "gather\n\n"
        f"batch of {size} machine assignments at paper scale "
        f"({w.num_tasks} tasks, {w.num_machines} machines, "
        f"platform {PLATFORM!r})\n"
        f"scalar : {t_scalar * 1e3:.3f} ms/batch "
        f"({t_scalar / size * 1e6:.2f} us/schedule)\n"
        f"batch  : {t_batch * 1e3:.3f} ms/batch "
        f"({t_batch / size * 1e6:.2f} us/schedule)\n"
        f"speedup: {speedup:.1f}x\n"
        f"HEFT reference cost: {ref.cost:.4f} usd "
        f"(makespan {ref.makespan:.3f})\n",
    )
    assert speedup >= 2.0  # loose floor; the perf gate holds the bar


def test_platform_pareto_study(write_output, perf_log):
    """PLATFORM-STUDY: the cheapest schedule within 1.2x of optimal span.

    One SA run per cost weight, all offering every scored point to one
    shared tracker; the pure-makespan run (weight 0) is the reference
    the savings are measured against.  Weights are normalized by the
    reference point so they read as "fraction of the scalar devoted to
    cost".
    """
    w = paper_scale_workload()
    tracker = ParetoTracker()
    proposals = 4000

    def sa_point(seed, objective="makespan"):
        service = EvaluationService(
            w,
            platform=PLATFORM,
            objective=objective,
            pareto=tracker,
            prefer_batch=False,  # SA is delta-tier; skip kernel packing
        )
        res = run_sa(
            w,
            SAConfig(
                seed=seed,
                max_iterations=proposals,
                record_every=100,
                platform=PLATFORM,
                objective=objective,
            ),
            service=service,
        )
        return service.score_of(res.best_string)

    ref = sa_point(seed=5)
    span_scale, cost_scale = 1.0 / ref.makespan, 1.0 / ref.cost
    sweep = []
    for i, wc in enumerate([0.1, 0.2, 0.3, 0.45, 0.6], start=1):
        objective = (
            f"weighted:{(1.0 - wc) * span_scale!r}:{wc * cost_scale!r}"
        )
        sweep.append((wc, sa_point(seed=5 + i, objective=objective)))

    front = tracker.front
    limit = 1.2 * ref.makespan
    qualifying = [
        p for p in front if p.makespan <= limit and p.cost <= 0.8 * ref.cost
    ]
    # the reference itself is on offer, so the slack band is never empty
    pick = min(
        (p for p in front if p.makespan <= limit),
        key=lambda p: (p.cost, p.makespan),
    )
    saving = (1.0 - pick.cost / ref.cost) * 100.0

    lines = [
        "PLATFORM-STUDY — cheapest schedule within 1.2x of the "
        "pure-makespan schedule\n",
        f"workload {w.name} ({w.num_tasks} tasks, {w.num_machines} "
        f"machines), platform {PLATFORM!r}, SA x {proposals} proposals "
        "per weight\n",
        f"pure-makespan reference: makespan {ref.makespan:.3f}, "
        f"cost {ref.cost:.4f} usd",
    ]
    for wc, sc in sweep:
        lines.append(
            f"  w_cost={wc:.2f}: makespan {sc.makespan:.3f}, "
            f"cost {sc.cost:.4f} usd"
        )
    lines.append(
        f"\npareto front ({len(front)} points, {tracker.offers} offers):"
    )
    lines.append(
        pareto_table(
            front,
            reference=next(
                (p for p in front if p.point == ref.point), front[0]
            ),
        )
    )
    lines.append(
        f"\ncheapest within 1.2x: makespan {pick.makespan:.3f} "
        f"({pick.makespan / ref.makespan:.3f}x of reference), "
        f"cost {pick.cost:.4f} usd ({saving:.1f}% cheaper)"
    )
    lines.append(
        f"claim (>= 20% cheaper within 1.2x): {saving >= 20.0}\n"
    )
    write_output("platform_pareto_study", "\n".join(lines))

    # the PR's acceptance criterion, asserted
    assert qualifying, (
        "no non-dominated point is >= 20% cheaper than the "
        "pure-makespan schedule within 1.2x of its makespan"
    )
    assert saving >= 20.0
