"""MICRO-SA / MICRO-TABU — microbenchmarks of the optim-core hot paths.

The two new engines lean on the evaluation tiers the optim core routes
for them, and these benches measure exactly those call patterns at
paper scale (100 tasks, 20 machines):

* MICRO-SA   — the annealing proposal stream: one random pairwise move
  scored against the current solution.  Compares the engine's
  incremental ``evaluate_delta`` path (anchored at the move's first
  changed position) with naive full ``makespan`` calls.
* MICRO-TABU — the tabu neighborhood sweep: ``neighborhood_size``
  candidate strings scored per iteration.  Compares the
  ``EvaluationService`` batch route (vectorized kernel) with the
  scalar per-candidate loop.

Every case first asserts the two strategies agree bit-for-bit, then
records best-of wall-clock ratios as :mod:`repro.perf` records in
``benchmarks/output/BENCH_micro.json`` for the CI perf gate.
Assertion floors are deliberately far below the expected ratios so a
loaded CI machine cannot flake the tier-1 suite; the *gate* lives in
``repro perf check`` against the committed baseline.
"""

import time

import numpy as np

from repro.optim import EvaluationService
from repro.optim.neighborhood import (
    applied_copy,
    first_changed_position,
    random_move,
)
from repro.schedule.operations import random_valid_string
from repro.schedule.simulator import Simulator
from repro.utils.rng import as_rng
from repro.workloads import figure5_workload


def paper_scale_workload():
    return figure5_workload(seed=1)


def best_of(fn, budget: float = 1.0):
    """Minimum wall-clock time of *fn* over repeated runs in *budget* s
    (the same estimator as the other MICRO-* benches)."""
    fn()  # warm-up
    best = float("inf")
    start = time.perf_counter()
    while time.perf_counter() - start < budget:
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_micro_sa_proposal_stream(write_output, perf_log):
    """MICRO-SA: delta-scored proposals vs full re-evaluation."""
    w = paper_scale_workload()
    sim = Simulator(w)
    string = random_valid_string(w.graph, w.num_machines, 7)
    rng = as_rng(3)
    n_proposals = 200
    # the exact probe set an SA run would score against one incumbent:
    # a random move, its delta anchor, and the moved copy
    probes = []
    for _ in range(n_proposals):
        mv = random_move(string, w.graph, rng, reassign_prob=0.5)
        probes.append(
            (first_changed_position(string, mv), applied_copy(string, mv))
        )
    state = sim.prepare(string.order, string.machines)

    def full_pass():
        return [sim.makespan(c.order, c.machines) for _, c in probes]

    def delta_pass():
        return [
            sim.evaluate_delta(c.order, c.machines, first, state)
            for first, c in probes
        ]

    assert full_pass() == delta_pass()  # bit-identical proposal costs

    t_full = best_of(full_pass)
    t_delta = best_of(delta_pass)
    speedup = t_full / t_delta

    perf_log("MICRO-SA", "delta_speedup", round(speedup, 3), "x")
    perf_log(
        "MICRO-SA",
        "delta_per_proposal",
        round(t_delta / n_proposals * 1e6, 2),
        "us",
    )
    write_output(
        "micro_sa_proposals",
        "MICRO-SA — annealing proposal stream: full re-evaluation vs "
        "incremental delta\n\n"
        f"{n_proposals} random pairwise-move proposals against one "
        f"incumbent at paper scale\n({w.num_tasks} tasks, "
        f"{w.num_machines} machines)\n"
        f"full  : {t_full * 1e3:.2f} ms/pass "
        f"({t_full / n_proposals * 1e6:.1f} us/proposal)\n"
        f"delta : {t_delta * 1e3:.2f} ms/pass "
        f"({t_delta / n_proposals * 1e6:.1f} us/proposal)\n"
        f"speedup: {speedup:.2f}x\n",
    )
    assert speedup >= 1.0  # loose floor; the perf gate holds the bar


def test_micro_tabu_neighborhood_sweep(write_output, perf_log):
    """MICRO-TABU: batch-scored neighborhoods vs the scalar loop."""
    w = paper_scale_workload()
    service = EvaluationService(w)  # vectorized on contention-free
    scalar = Simulator(w)
    rng = as_rng(11)
    neighborhood_size = 24
    n_sweeps = 8
    base = random_valid_string(w.graph, w.num_machines, 5)
    neighborhoods = [
        [
            applied_copy(
                base, random_move(base, w.graph, rng, avoid_noop=True)
            )
            for _ in range(neighborhood_size)
        ]
        for _ in range(n_sweeps)
    ]

    def scalar_pass():
        return [
            [scalar.string_makespan(c) for c in hood]
            for hood in neighborhoods
        ]

    def batch_pass():
        return [
            service.batch_string_makespans(hood, validate=False)
            for hood in neighborhoods
        ]

    assert scalar_pass() == batch_pass()  # bit-identical neighborhoods

    t_scalar = best_of(scalar_pass)
    t_batch = best_of(batch_pass)
    speedup = t_scalar / t_batch

    per_cand = t_batch / (n_sweeps * neighborhood_size)
    perf_log("MICRO-TABU", "batch_speedup", round(speedup, 3), "x")
    perf_log(
        "MICRO-TABU", "batch_per_candidate", round(per_cand * 1e6, 2), "us"
    )
    write_output(
        "micro_tabu_neighborhoods",
        "MICRO-TABU — tabu candidate neighborhoods: scalar loop vs "
        "EvaluationService batch route\n\n"
        f"{n_sweeps} neighborhoods x {neighborhood_size} candidates at "
        f"paper scale ({w.num_tasks} tasks, {w.num_machines} machines)\n"
        f"scalar : {t_scalar * 1e3:.2f} ms/pass\n"
        f"batch  : {t_batch * 1e3:.2f} ms/pass\n"
        f"speedup: {speedup:.2f}x\n",
    )
    assert speedup >= 1.0  # loose floor; the perf gate holds the bar


def test_micro_engines_agree_across_backends():
    """SA and tabu optimise what they measure on both backends.

    Not a timing case: pins that each engine's reported best equals an
    independent re-evaluation under its configured network — the
    contract the sweep's league tables rely on.
    """
    from repro.extensions.contention import ContentionSimulator
    from repro.optim import SAConfig, TabuConfig, run_sa, run_tabu

    w = paper_scale_workload()
    sa = run_sa(w, SAConfig(seed=1, max_iterations=60))
    assert np.isclose(
        sa.best_makespan, Simulator(w).string_makespan(sa.best_string)
    )
    tabu = run_tabu(
        w, TabuConfig(seed=1, max_iterations=4, network="nic")
    )
    assert np.isclose(
        tabu.best_makespan,
        ContentionSimulator(w).string_makespan(tabu.best_string),
    )
