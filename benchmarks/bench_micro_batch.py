"""MICRO-BATCH — microbenchmarks of the vectorized batch-evaluation kernel.

The :class:`~repro.schedule.vectorized.BatchSimulator` kernel scores a
whole batch of schedules in NumPy sweeps instead of per-schedule Python
loops.  These benches measure, at paper scale (100 tasks, 20 machines),
exactly the call patterns the engines use:

* MICRO-BATCH-GA     — one GA generation's population fitness (the
  headline number: batch vs the scalar loop, population 128);
* MICRO-BATCH-SCALE  — the same at population 16 / 64 / 256;
* MICRO-BATCH-RAND   — random search with chunked batch scoring;
* MICRO-BATCH-SE     — the SE allocation probe stream, batch vs the
  scalar full loop and vs the default incremental-delta path (delta's
  branch-and-bound cutoff usually keeps it ahead — which is why it
  stays the SE default; this bench keeps the trade-off measured);
* MICRO-BATCH-NIC    — the same question under NIC contention: a batch
  of 128 schedules through the vectorized
  :class:`~repro.schedule.vectorized_contention.
  ContentionBatchSimulator` vs the scalar ``ContentionSimulator`` loop
  (the configuration that used to silently fall back to the loop);
* MICRO-BATCH-NIC-GA — one GA generation's population fitness under
  ``network="nic"``, exactly the call the GA engine now routes through
  the NIC kernel.

Every case first asserts the two strategies agree bit-for-bit, then
records best-of wall-clock ratios both as human-readable artifacts and
as :mod:`repro.perf` records in ``benchmarks/output/BENCH_micro.json``
for the CI perf gate.  Assertion floors are deliberately far below the
expected ratios so a loaded CI machine cannot flake the tier-1 suite;
the *gate* lives in ``repro perf check`` against the committed baseline.
"""

import time

import numpy as np

from repro.baselines.ga.chromosome import initial_population
from repro.baselines.random_search import random_search
from repro.extensions.contention import ContentionSimulator
from repro.schedule.backend import make_simulator
from repro.schedule.operations import random_valid_string
from repro.schedule.simulator import Simulator
from repro.schedule.valid_range import machine_slot_indices
from repro.schedule.vectorized import BatchSimulator
from repro.schedule.vectorized_contention import ContentionBatchSimulator
from repro.utils.rng import as_rng
from repro.workloads import figure5_workload


def paper_scale_workload():
    return figure5_workload(seed=1)


def best_of(fn, budget: float = 1.0):
    """Minimum wall-clock time of *fn* over repeated runs in *budget* s.

    The minimum is the least noise-contaminated observation on a shared
    machine (pytest-benchmark uses the same estimator).
    """
    fn()  # warm-up (also faults in any lazily allocated scratch)
    best = float("inf")
    start = time.perf_counter()
    while time.perf_counter() - start < budget:
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _population(workload, size, seed=7):
    rng = as_rng(seed)
    return initial_population(
        workload.graph, workload.num_machines, size, rng
    )


def _population_eval_times(sim, kernel, population):
    """(scalar, batch) best-of times for one population evaluation.

    Both callables are exactly what the GA engine runs per generation:
    the scalar loop calls the simulator's ``makespan`` per chromosome;
    the batch path hands the raw chromosome lists to the kernel (list
    -> array conversion and validation are part of the measured cost).
    Works for any (scalar backend, batch kernel) pair whose results are
    bit-identical — asserted before timing.
    """

    def scalar():
        return [sim.makespan(c.scheduling, c.matching) for c in population]

    def batch():
        return kernel.makespans(
            [c.scheduling for c in population],
            [c.matching for c in population],
        )

    assert scalar() == batch().tolist()  # bit-identical fitness
    return best_of(scalar), best_of(batch)


def _ga_eval_times(workload, population):
    """Contention-free (scalar, batch) times for one population eval."""
    return _population_eval_times(
        Simulator(workload), BatchSimulator(workload), population
    )


def test_micro_batch_ga_population(write_output, perf_log):
    """MICRO-BATCH-GA: the PR's headline speedup, measured honestly."""
    w = paper_scale_workload()
    size = 128
    pop = _population(w, size)
    t_scalar, t_batch = _ga_eval_times(w, pop)
    speedup = t_scalar / t_batch

    perf_log("MICRO-BATCH-GA", "speedup", round(speedup, 3), "x")
    perf_log(
        "MICRO-BATCH-GA",
        "scalar_per_eval",
        round(t_scalar / size * 1e6, 2),
        "us",
    )
    perf_log(
        "MICRO-BATCH-GA",
        "batch_per_eval",
        round(t_batch / size * 1e6, 2),
        "us",
    )
    write_output(
        "micro_batch_ga_population",
        "MICRO-BATCH-GA — GA population fitness: scalar loop vs batch "
        "kernel\n\n"
        f"population {size} at paper scale ({w.num_tasks} tasks, "
        f"{w.num_machines} machines)\n"
        f"scalar : {t_scalar * 1e3:.2f} ms/generation "
        f"({t_scalar / size * 1e6:.1f} us/eval)\n"
        f"batch  : {t_batch * 1e3:.2f} ms/generation "
        f"({t_batch / size * 1e6:.1f} us/eval)\n"
        f"speedup: {speedup:.2f}x\n"
        f"claim (>= 3x at population >= 64): {speedup >= 3.0}\n",
    )
    assert speedup >= 1.8  # loose floor; the perf gate holds the bar


def test_micro_batch_population_scaling(write_output, perf_log):
    """MICRO-BATCH-SCALE: speedup across population sizes."""
    w = paper_scale_workload()
    lines = [
        "MICRO-BATCH-SCALE — batch kernel speedup vs population size\n"
    ]
    speedups = {}
    for size in (16, 64, 256):
        pop = _population(w, size, seed=size)
        t_scalar, t_batch = _ga_eval_times(w, pop)
        speedups[size] = t_scalar / t_batch
        lines.append(
            f"population {size:4d}: scalar {t_scalar * 1e3:7.2f} ms, "
            f"batch {t_batch * 1e3:7.2f} ms -> "
            f"{speedups[size]:.2f}x"
        )
        perf_log(
            "MICRO-BATCH-SCALE",
            f"speedup_pop{size}",
            round(speedups[size], 3),
            "x",
        )
    write_output("micro_batch_scaling", "\n".join(lines) + "\n")
    # batching must never lose badly, and must clearly win at scale
    assert speedups[16] >= 0.7
    assert speedups[256] >= 1.8


def test_micro_batch_random_search(write_output, perf_log):
    """MICRO-BATCH-RAND: chunked batch scoring inside random_search."""
    w = paper_scale_workload()
    samples = 512

    def batched():
        return random_search(w, samples=samples, seed=11)

    def scalar():
        return random_search(w, samples=samples, seed=11, batch_size=1)

    res_b, res_s = batched(), scalar()
    assert res_b.makespan == res_s.makespan  # bit-identical search
    assert res_b.string == res_s.string
    t_scalar, t_batch = best_of(scalar), best_of(batched)
    speedup = t_scalar / t_batch

    perf_log(
        "MICRO-BATCH-RAND", "speedup_end_to_end", round(speedup, 3), "x"
    )
    write_output(
        "micro_batch_random_search",
        "MICRO-BATCH-RAND — random search: scalar loop vs chunked "
        "batch scoring\n\n"
        f"{samples} samples at paper scale, end to end (drawing the\n"
        "random strings dominates the run and is identical in both\n"
        "modes, so Amdahl caps this ratio well below the raw kernel\n"
        "speedup of MICRO-BATCH-SCALE)\n"
        f"scalar : {t_scalar * 1e3:.2f} ms/run\n"
        f"batched: {t_batch * 1e3:.2f} ms/run\n"
        f"speedup: {speedup:.2f}x\n",
    )
    assert speedup >= 1.05  # loose floor; measured value recorded above


def test_micro_batch_se_probe_stream(write_output, perf_log):
    """MICRO-BATCH-SE: the SE allocation probe stream, three ways.

    Replays identical probe streams through (a) scalar full makespans,
    (b) the batch kernel per candidate set, and (c) the default
    incremental-delta path with its branch-and-bound cutoff, asserting
    identical greedy outcomes.  Records batch-vs-full and
    delta-vs-full ratios; delta staying ahead of batch is the expected
    outcome (and the reason ``SEConfig.probe_evaluation`` defaults to
    ``"delta"``).
    """
    w = paper_scale_workload()
    sim = Simulator(w)
    kernel = BatchSimulator(w)
    s = random_valid_string(w.graph, w.num_machines, 7)
    rng = np.random.default_rng(3)
    groups = []
    for _ in range(20):
        t = int(rng.integers(w.num_tasks))
        probes = []
        for m in rng.choice(w.num_machines, size=12, replace=False):
            for idx in machine_slot_indices(s, w.graph, t, int(m)):
                probes.append((idx, int(m)))
        groups.append((t, s.position_of(t), s.machine_of(t), probes))
    n_probes = sum(len(p) for _, _, _, p in groups)
    state = sim.prepare(s.order, s.machines)

    def full_pass():
        bests = []
        for t, orig, om, probes in groups:
            best = float("inf")
            for idx, m in probes:
                s.relocate(t, idx, m)
                cost = sim.makespan(s.order, s.machines)
                if cost < best:
                    best = cost
                s.relocate(t, orig, om)
            bests.append(best)
        return bests

    def batch_pass():
        bests = []
        for t, orig, om, probes in groups:
            orders, machines = [], []
            for idx, m in probes:
                s.relocate(t, idx, m)
                orders.append(s.order.copy())
                machines.append(s.machines.copy())
                s.relocate(t, orig, om)
            costs = kernel.makespans(orders, machines, validate=False)
            best = float("inf")
            for cost in costs.tolist():
                if cost < best:
                    best = cost
            bests.append(best)
        return bests

    def delta_pass():
        bests = []
        for t, orig, om, probes in groups:
            best = float("inf")
            for idx, m in probes:
                s.relocate(t, idx, m)
                first, last = (orig, idx) if orig < idx else (idx, orig)
                cost = sim.evaluate_delta(
                    s.order, s.machines, first, state, best, last
                )
                if cost < best:
                    best = cost
                s.relocate(t, orig, om)
            bests.append(best)
        return bests

    assert full_pass() == batch_pass() == delta_pass()

    t_full = best_of(full_pass)
    t_batch = best_of(batch_pass)
    t_delta = best_of(delta_pass)
    batch_speedup = t_full / t_batch
    delta_speedup = t_full / t_delta

    perf_log(
        "MICRO-BATCH-SE", "speedup_vs_full", round(batch_speedup, 3), "x"
    )
    write_output(
        "micro_batch_se_probes",
        "MICRO-BATCH-SE — SE probe stream: full vs batch vs "
        "incremental delta\n\n"
        f"probe stream: {n_probes} probes over {len(groups)} selected "
        f"subtasks at paper scale\n"
        f"full  : {t_full * 1e3:.2f} ms/pass\n"
        f"batch : {t_batch * 1e3:.2f} ms/pass ({batch_speedup:.2f}x)\n"
        f"delta : {t_delta * 1e3:.2f} ms/pass ({delta_speedup:.2f}x)\n"
        "delta keeps the SE default: its cutoff prunes most of each "
        "probe's walk,\nwhich a batch cannot exploit\n",
    )
    assert batch_speedup >= 1.0  # loose floor; measured value recorded


def test_micro_batch_nic_kernel(write_output, perf_log):
    """MICRO-BATCH-NIC: batch-vs-scalar makespan throughput under "nic".

    The acceptance number of the vectorized-contention tentpole: 128
    schedules scored through the NIC kernel vs the scalar
    ``ContentionSimulator`` loop (which is all ``batch=True`` under
    "nic" used to give you).  Bit-identity is asserted before timing.
    """
    w = paper_scale_workload()
    size = 128
    wrapped = make_simulator(w, "nic", batch=True)
    assert wrapped.is_vectorized  # the silent fallback era is over
    scalar = ContentionSimulator(w)
    strings = [
        random_valid_string(w.graph, w.num_machines, seed)
        for seed in range(size)
    ]

    def scalar_loop():
        return [scalar.string_makespan(s) for s in strings]

    def batch():
        return wrapped.batch_string_makespans(strings)

    assert scalar_loop() == batch().tolist()  # bit-identical makespans
    t_scalar, t_batch = best_of(scalar_loop), best_of(batch)
    speedup = t_scalar / t_batch

    perf_log("MICRO-BATCH-NIC", "speedup", round(speedup, 3), "x")
    perf_log(
        "MICRO-BATCH-NIC",
        "scalar_per_eval",
        round(t_scalar / size * 1e6, 2),
        "us",
    )
    perf_log(
        "MICRO-BATCH-NIC",
        "batch_per_eval",
        round(t_batch / size * 1e6, 2),
        "us",
    )
    write_output(
        "micro_batch_nic_kernel",
        "MICRO-BATCH-NIC — NIC-contention makespans: scalar loop vs "
        "batch kernel\n\n"
        f"batch of {size} schedules at paper scale ({w.num_tasks} tasks, "
        f"{w.num_machines} machines)\n"
        f"scalar : {t_scalar * 1e3:.2f} ms/batch "
        f"({t_scalar / size * 1e6:.1f} us/eval)\n"
        f"batch  : {t_batch * 1e3:.2f} ms/batch "
        f"({t_batch / size * 1e6:.1f} us/eval)\n"
        f"speedup: {speedup:.2f}x\n"
        f"claim (>= 2x at batch 128): {speedup >= 2.0}\n",
    )
    assert speedup >= 1.5  # loose floor; the perf gate holds the bar


def test_micro_batch_nic_ga_population(write_output, perf_log):
    """MICRO-BATCH-NIC-GA: GA population fitness under NIC contention.

    The exact call the GA engine makes per generation with
    ``GAConfig(network="nic")`` now that the kernel registered —
    chromosome lists in, one fitness sweep out.
    """
    w = paper_scale_workload()
    size = 128
    pop = _population(w, size)
    t_scalar, t_batch = _population_eval_times(
        ContentionSimulator(w), ContentionBatchSimulator(w), pop
    )
    speedup = t_scalar / t_batch

    perf_log("MICRO-BATCH-NIC-GA", "speedup", round(speedup, 3), "x")
    write_output(
        "micro_batch_nic_ga_population",
        "MICRO-BATCH-NIC-GA — GA population fitness under NIC "
        "contention: scalar loop vs batch kernel\n\n"
        f"population {size} at paper scale ({w.num_tasks} tasks, "
        f"{w.num_machines} machines)\n"
        f"scalar : {t_scalar * 1e3:.2f} ms/generation "
        f"({t_scalar / size * 1e6:.1f} us/eval)\n"
        f"batch  : {t_batch * 1e3:.2f} ms/generation "
        f"({t_batch / size * 1e6:.1f} us/eval)\n"
        f"speedup: {speedup:.2f}x\n",
    )
    assert speedup >= 1.5  # loose floor; the perf gate holds the bar
