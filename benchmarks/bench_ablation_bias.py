"""ABL-B — selection-bias ablation (paper §4.4).

The paper prescribes negative B (−0.1..−0.3) for small DAGs (thorough
search) and positive B (0..0.1) for large DAGs (fewer selections, faster
iterations).  This ablation sweeps B on a small and a large workload and
records the selection volume / quality / cost trade-off.

The 12-cell (bias × workload) sweep is one :mod:`repro.runner`
experiment; ``REPRO_WORKERS=N`` shards it with identical results.
"""

from repro.analysis import markdown_table
from repro.runner import (
    AlgorithmSpec,
    ExperimentSpec,
    run_experiment,
    workers_from_env,
)
from repro.workloads import WorkloadSpec

BIASES = (-0.3, -0.2, -0.1, 0.0, 0.05, 0.1)
ITERATIONS = 60

WORKLOADS = [
    WorkloadSpec(num_tasks=20, num_machines=5, seed=3, name="small"),
    WorkloadSpec(num_tasks=100, num_machines=20, seed=3, name="large"),
]


def run_bias_sweep():
    experiment = ExperimentSpec(
        name="abl-bias",
        algorithms={
            f"B={bias:g}": AlgorithmSpec.make(
                "se",
                seed=9,
                max_iterations=ITERATIONS,
                selection_bias=bias,
            )
            for bias in BIASES
        },
        workloads=WORKLOADS,
    )
    result = run_experiment(experiment, workers=workers_from_env())

    results = {}
    for w in WORKLOADS:
        rows = []
        for bias in BIASES:
            cell = next(
                c
                for c in result.by_algorithm(f"B={bias:g}")
                if c.workload == w.name
            )
            trace = cell.convergence_trace()
            rows.append(
                {
                    "bias": bias,
                    "best": cell.makespan,
                    "selected_total": sum(trace.selected_counts()),
                    "evaluations": cell.evaluations,
                }
            )
        results[w.name] = rows
    return results


def test_bias_ablation(benchmark, write_output):
    results = benchmark.pedantic(run_bias_sweep, rounds=1, iterations=1)

    sections = []
    for label, rows in results.items():
        table = markdown_table(
            ["B", "best makespan", "total selected", "evaluations"],
            [
                (r["bias"], f"{r['best']:.1f}", r["selected_total"], r["evaluations"])
                for r in rows
            ],
        )
        sections.append(f"## {label} workload\n\n{table}")
    text = (
        "ABL-B — selection bias sweep (paper §4.4)\n\n"
        "paper: negative B = more selections/thorough search (small DAGs); "
        "positive B = fewer selections/faster iterations (large DAGs)\n\n"
        + "\n\n".join(sections)
        + "\n"
    )
    write_output("ablation_bias", text)

    # unconditional mechanics: selection volume decreases with B
    for rows in results.values():
        volumes = [r["selected_total"] for r in rows]
        assert volumes[0] > volumes[-1], (
            "most-negative bias must select more than most-positive"
        )
        evals = [r["evaluations"] for r in rows]
        assert evals[0] > evals[-1]
