"""ABL-B — selection-bias ablation (paper §4.4).

The paper prescribes negative B (−0.1..−0.3) for small DAGs (thorough
search) and positive B (0..0.1) for large DAGs (fewer selections, faster
iterations).  This ablation sweeps B on a small and a large workload and
records the selection volume / quality / cost trade-off.
"""

from repro.analysis import markdown_table
from repro.core import SEConfig, run_se
from repro.workloads import WorkloadSpec, build_workload

BIASES = (-0.3, -0.2, -0.1, 0.0, 0.05, 0.1)
ITERATIONS = 60


def run_bias_sweep():
    results = {}
    for label, spec in (
        ("small", WorkloadSpec(num_tasks=20, num_machines=5, seed=3)),
        ("large", WorkloadSpec(num_tasks=100, num_machines=20, seed=3)),
    ):
        w = build_workload(spec)
        rows = []
        for bias in BIASES:
            res = run_se(
                w,
                SEConfig(
                    seed=9, max_iterations=ITERATIONS, selection_bias=bias
                ),
            )
            rows.append(
                {
                    "bias": bias,
                    "best": res.best_makespan,
                    "selected_total": sum(res.trace.selected_counts()),
                    "evaluations": res.evaluations,
                }
            )
        results[label] = rows
    return results


def test_bias_ablation(benchmark, write_output):
    results = benchmark.pedantic(run_bias_sweep, rounds=1, iterations=1)

    sections = []
    for label, rows in results.items():
        table = markdown_table(
            ["B", "best makespan", "total selected", "evaluations"],
            [
                (r["bias"], f"{r['best']:.1f}", r["selected_total"], r["evaluations"])
                for r in rows
            ],
        )
        sections.append(f"## {label} workload\n\n{table}")
    text = (
        "ABL-B — selection bias sweep (paper §4.4)\n\n"
        "paper: negative B = more selections/thorough search (small DAGs); "
        "positive B = fewer selections/faster iterations (large DAGs)\n\n"
        + "\n\n".join(sections)
        + "\n"
    )
    write_output("ablation_bias", text)

    # unconditional mechanics: selection volume decreases with B
    for rows in results.values():
        volumes = [r["selected_total"] for r in rows]
        assert volumes[0] > volumes[-1], (
            "most-negative bias must select more than most-positive"
        )
        evals = [r["evaluations"] for r in rows]
        assert evals[0] > evals[-1]
