"""ANYTIME / MICRO-PORTFOLIO — the portfolio race earns its machinery.

* ANYTIME — the headline claim: at **equal core-seconds**, the
  four-engine portfolio's best makespan is at least as good as every
  single engine run solo.  A race with ``islands`` islands under a
  per-island deadline ``DL`` consumes ``islands * DL`` core-seconds
  (each island's clock starts when the island starts, whatever the
  worker count), so each solo engine gets an ``islands * DL`` wall
  budget.  Recorded per engine as the geometric-mean ratio
  ``solo_best / portfolio_best`` across seeds (>= 1 means the
  portfolio won or tied).
* MICRO-PORTFOLIO — the exchange machinery must be ~free: a
  fixed-iteration tabu island with a live channel (publishing every
  improvement, polling every ``DEFAULT_INTERVALS['tabu']``-th
  iteration) vs the identical run with no channel at all.  The
  measured overhead stays within ~5%; the committed baseline gates the
  ratio in CI.

Assertion floors are deliberately loose — single-seed wall-clock runs
on a loaded CI box must not flake the job; the strict bar lives in
``repro perf check`` against ``benchmarks/baseline/BENCH_micro.json``.
"""

import time

from repro.analysis import geometric_mean
from repro.portfolio import LocalChannel, RaceConfig, build_islands, run_island, run_race
from repro.runner.registry import resolve_algorithm
from repro.workloads import figure5_workload

DEADLINE = 0.5
ISLANDS = 4
SEEDS = (1, 2)
ENGINES = ("se", "ga", "sa", "tabu")


def paper_scale_workload():
    return figure5_workload(seed=1)


def solo_best(kind: str, workload, seed: int, budget: float) -> float:
    """One engine alone under *budget* wall-seconds (same entry the
    runner uses, so configs match the race's engine defaults)."""
    fn = resolve_algorithm(kind)
    params = {"time_limit": budget, "seed": seed}
    if kind == "ga":
        params["stall_generations"] = None
    elif kind == "sa":
        params.update(stall_iterations=None, record_every=100)
    else:
        params["stall_iterations"] = None
    return fn(workload, seed, params).makespan


def test_anytime_portfolio_vs_solo_engines(write_output, perf_log):
    """ANYTIME: the race matches every solo engine at equal core-seconds."""
    w = paper_scale_workload()
    budget = ISLANDS * DEADLINE

    portfolio_bests = {}
    for seed in SEEDS:
        res = run_race(
            w,
            RaceConfig(
                engines=ENGINES,
                islands=ISLANDS,
                deadline=DEADLINE,
                seed=seed,
            ),
        )
        portfolio_bests[seed] = res.best_makespan

    ratios = {}
    lines = [
        "ANYTIME — portfolio race vs each solo engine at equal "
        f"core-seconds\n\n{ISLANDS} islands x {DEADLINE}s deadline "
        f"(= {budget:.1f} core-seconds) on figure5_workload(seed=1)\n",
        f"{'engine':<8} " + " ".join(f"seed{s:<2}" for s in SEEDS) + "  geomean(solo/portfolio)",
    ]
    for kind in ENGINES:
        per_seed = []
        for seed in SEEDS:
            solo = solo_best(kind, w, seed, budget)
            per_seed.append(solo / portfolio_bests[seed])
        ratios[kind] = geometric_mean(per_seed)
        lines.append(
            f"{kind:<8} "
            + " ".join(f"{r:5.3f}" for r in per_seed)
            + f"  {ratios[kind]:.3f}"
        )
        perf_log(
            "ANYTIME", f"vs_{kind}_geomean", round(ratios[kind], 3), "x"
        )

    lines.append(
        "\nportfolio best per seed: "
        + ", ".join(f"s{s}={m:.1f}" for s, m in portfolio_bests.items())
    )
    write_output("anytime_portfolio", "\n".join(lines) + "\n")

    # loose floor: the portfolio must not lose badly to any engine; the
    # >= 1.0 bar is held by the perf gate, not a flakeable assert
    for kind, ratio in ratios.items():
        assert ratio >= 0.9, f"portfolio lost >10% to solo {kind}"


def test_micro_portfolio_exchange_overhead(write_output, perf_log):
    """MICRO-PORTFOLIO: a live channel costs ~nothing per iteration."""
    w = paper_scale_workload()
    iterations = 60

    def build():
        (spec,) = build_islands(
            ("tabu",), 1, 5, None, iterations, "contention-free", "uniform"
        )
        return spec

    def timed(channel_factory):
        spec = build()
        best = float("inf")
        t_start = time.perf_counter()
        while time.perf_counter() - t_start < 1.5:
            t0 = time.perf_counter()
            out = run_island(spec, w, channel_factory())
            best = min(best, time.perf_counter() - t0)
        return best, out

    t_bare, out_bare = timed(lambda: None)
    t_exchange, out_exchange = timed(LocalChannel)

    # identical searches: the channel must not perturb the trajectory
    assert out_exchange.best_makespan == out_bare.best_makespan
    assert out_exchange.evaluations == out_bare.evaluations
    assert out_exchange.published >= 1  # the channel really was live

    overhead = t_exchange / t_bare
    perf_log("MICRO-PORTFOLIO", "exchange_overhead", round(overhead, 3), "x")
    write_output(
        "micro_portfolio_overhead",
        "MICRO-PORTFOLIO — incumbent-exchange overhead on a solo tabu "
        "island\n\n"
        f"{iterations} iterations on figure5_workload(seed=1), "
        f"poll interval {build().interval}\n"
        f"bare     : {t_bare * 1e3:.1f} ms/run\n"
        f"exchange : {t_exchange * 1e3:.1f} ms/run "
        f"({out_exchange.published} published)\n"
        f"overhead : {overhead:.3f}x (claim: <= 1.05x; CI gates the "
        "committed baseline)\n",
    )
    # loose floor for a loaded CI box; the 5% claim is perf-gated
    assert overhead <= 1.25
