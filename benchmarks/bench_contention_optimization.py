"""EXT-CONT-OPT — optimising *under* NIC contention vs. after the fact.

The contention study (``bench_extension_contention.py``) measures how
badly contention-free-optimal schedules degrade when NICs serialise.
This benchmark closes the loop now that the contention model is a full
simulator backend: it compares

* **free→nic** — optimise with the paper's contention-free model, then
  evaluate the winning string under NIC contention (the old, only
  option), against
* **nic→nic** — run the *same* SE configuration with
  ``network="nic"``, so every allocation probe prices NIC serialisation.

Both runs share RNG streams (``seed_mode="paired"``) and iteration
budgets, so the measured gap isolates the objective function.  The gap
is the concrete payoff of the pluggable-backend tentpole; HEFT columns
show the deterministic analogue (NIC-aware EFT rule).
"""

from repro.analysis import markdown_table
from repro.runner import (
    AlgorithmSpec,
    ExperimentSpec,
    run_experiment,
    workers_from_env,
)
from repro.schedule import ScheduleString, make_simulator
from repro.workloads import WorkloadSpec, build_workload

CCRS = (0.1, 0.5, 1.0)
SE_ITERS = 60


def _best_string(cell, num_machines):
    doc = cell.extras["best_string"]
    return ScheduleString(doc["order"], doc["machines"], num_machines)


def run_optimization_gap_study():
    workloads = [
        WorkloadSpec(
            num_tasks=50, num_machines=8, ccr=ccr, seed=13, name=f"ccr{ccr:g}"
        )
        for ccr in CCRS
    ]
    experiment = ExperimentSpec(
        name="ext-cont-opt",
        algorithms={
            "SE free": AlgorithmSpec.make("se", max_iterations=SE_ITERS),
            "SE nic": AlgorithmSpec.make(
                "se", max_iterations=SE_ITERS, network="nic"
            ),
            "HEFT free": AlgorithmSpec.make("heft"),
            "HEFT nic": AlgorithmSpec.make("heft", network="nic"),
        },
        workloads=workloads,
        # identical RNG streams per workload: the only difference between
        # "SE free" and "SE nic" is the objective the probes score
        seed_mode="paired",
    )
    result = run_experiment(
        experiment, workers=workers_from_env(), keep_traces=False
    )

    rows = []
    for spec in workloads:
        w = build_workload(spec)
        # the canonical backend path, batch-wrapped: the re-evaluations
        # inherit the vectorized NIC kernel instead of hard-coding the
        # scalar ContentionSimulator (bit-identical either way)
        nic = make_simulator(w, "nic", batch=True)
        assert nic.is_vectorized
        free_cell = result.cell("SE free", spec.name)
        nic_cell = result.cell("SE nic", spec.name)
        se_free_under_nic, heft_free_under_nic = nic.batch_string_makespans(
            [
                _best_string(free_cell, w.num_machines),
                _best_string(
                    result.cell("HEFT free", spec.name), w.num_machines
                ),
            ]
        ).tolist()
        se_nic_direct = nic_cell.makespan
        heft_nic_direct = result.cell("HEFT nic", spec.name).makespan
        rows.append(
            {
                "ccr": spec.ccr,
                "se_free": se_free_under_nic,
                "se_nic": se_nic_direct,
                "se_gap": se_free_under_nic / se_nic_direct - 1.0,
                "heft_free": heft_free_under_nic,
                "heft_nic": heft_nic_direct,
                "heft_gap": heft_free_under_nic / heft_nic_direct - 1.0,
            }
        )
    return rows


def test_contention_optimization_gap(benchmark, write_output):
    rows = benchmark.pedantic(
        run_optimization_gap_study, rounds=1, iterations=1
    )
    table = markdown_table(
        [
            "CCR",
            "SE free→nic",
            "SE nic→nic",
            "SE gap",
            "HEFT free→nic",
            "HEFT nic→nic",
            "HEFT gap",
        ],
        [
            (
                r["ccr"],
                f"{r['se_free']:.0f}",
                f"{r['se_nic']:.0f}",
                f"{r['se_gap']:+.1%}",
                f"{r['heft_free']:.0f}",
                f"{r['heft_nic']:.0f}",
                f"{r['heft_gap']:+.1%}",
            )
            for r in rows
        ],
    )
    high_ccr = rows[-1]
    text = (
        "EXT-CONT-OPT — optimise under NIC contention vs. evaluate after\n\n"
        f"{table}\n\n"
        "columns: makespan under the NIC model when the optimiser used\n"
        "the contention-free objective (free->nic) vs. the NIC objective\n"
        "(nic->nic); gap = free->nic / nic->nic - 1 (positive = paying\n"
        "attention to contention during the search won)\n\n"
        "expectation: the gap grows with CCR (more communication, more\n"
        "serialisation to exploit or avoid)\n"
        f"SE gap at CCR {high_ccr['ccr']}: {high_ccr['se_gap']:+.1%}\n"
    )
    write_output("contention_optimization_gap", text)

    for r in rows:
        # optimising the true objective should never lose by much; at
        # CCR >= 0.5 it should win outright (loose floors, single seed)
        assert r["se_gap"] >= -0.05, r
    assert high_ccr["se_gap"] > 0.0
