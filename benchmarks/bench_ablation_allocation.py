"""ABL-SLOT — allocation slot-enumeration ablation (DESIGN.md).

The SE allocation step enumerates candidate placements per selected
subtask.  ``all-positions`` tries every index in the valid range (the
paper's literal description); ``per-machine`` tries one representative
per distinct per-machine order (provably the same reachable schedule
set).  This ablation measures the simulator-call savings and checks the
equal-quality claim under a fixed seed.

Both variants run through :mod:`repro.runner` as one experiment with a
pinned SE seed, so the two trajectories are exactly comparable.
"""

import pytest

from repro.analysis import markdown_table
from repro.runner import (
    AlgorithmSpec,
    ExperimentSpec,
    run_experiment,
    workers_from_env,
)
from repro.workloads import WorkloadSpec

ITERATIONS = 40


def run_slot_comparison():
    experiment = ExperimentSpec(
        name="abl-slot",
        algorithms={
            slots: AlgorithmSpec.make(
                "se",
                seed=10,
                max_iterations=ITERATIONS,
                allocation_slots=slots,
            )
            for slots in ("per-machine", "all-positions")
        },
        workloads=[
            WorkloadSpec(num_tasks=60, num_machines=12, seed=8, name="abl")
        ],
    )
    result = run_experiment(experiment, workers=workers_from_env())
    return {c.algorithm: c for c in result}


def test_slot_ablation_equivalence_and_savings(benchmark, write_output):
    results = benchmark.pedantic(run_slot_comparison, rounds=1, iterations=1)
    pm = results["per-machine"]
    ap = results["all-positions"]

    table = markdown_table(
        ["strategy", "best makespan", "evaluations", "iterations"],
        [
            ("per-machine", f"{pm.makespan:.1f}", pm.evaluations, pm.iterations),
            ("all-positions", f"{ap.makespan:.1f}", ap.evaluations, ap.iterations),
        ],
    )
    savings = 1 - pm.evaluations / ap.evaluations
    text = (
        "ABL-SLOT — allocation slot enumeration\n\n"
        f"{table}\n\n"
        f"simulator-call savings of per-machine slots: {savings:.1%}\n"
        "claim: identical reachable schedules, identical greedy choice under "
        "a fixed seed, strictly fewer evaluations\n"
        f"matches: {pm.makespan == pytest.approx(ap.makespan) and pm.evaluations < ap.evaluations}\n"
    )
    write_output("ablation_allocation_slots", text)

    # same seed + same candidate set => identical search trajectory
    assert pm.makespan == pytest.approx(ap.makespan)
    assert pm.evaluations < ap.evaluations


def test_micro_allocation_step(benchmark):
    """Microbenchmark: one allocation pass over 10 selected subtasks."""
    from repro.core.allocation import Allocator
    from repro.schedule.operations import random_valid_string
    from repro.schedule.simulator import Simulator
    from repro.workloads import build_workload

    w = build_workload(WorkloadSpec(num_tasks=60, num_machines=12, seed=8))
    sim = Simulator(w)
    alloc = Allocator(w, sim, y_candidates=6)
    base = random_valid_string(w.graph, w.num_machines, 1)
    selected = list(range(10))

    def step():
        s = base.copy()
        return alloc.allocate(s, selected)

    result = benchmark(step)
    assert result.makespan > 0
