"""ABL-SLOT — allocation slot-enumeration ablation (DESIGN.md).

The SE allocation step enumerates candidate placements per selected
subtask.  ``all-positions`` tries every index in the valid range (the
paper's literal description); ``per-machine`` tries one representative
per distinct per-machine order (provably the same reachable schedule
set).  This ablation measures the simulator-call savings and checks the
equal-quality claim under a fixed seed.
"""

import pytest

from repro.analysis import markdown_table
from repro.core import SEConfig, run_se
from repro.workloads import WorkloadSpec, build_workload

ITERATIONS = 40


def run_slot_comparison():
    w = build_workload(WorkloadSpec(num_tasks=60, num_machines=12, seed=8))
    out = {}
    for slots in ("per-machine", "all-positions"):
        res = run_se(
            w,
            SEConfig(seed=10, max_iterations=ITERATIONS, allocation_slots=slots),
        )
        out[slots] = res
    return out


def test_slot_ablation_equivalence_and_savings(benchmark, write_output):
    results = benchmark.pedantic(run_slot_comparison, rounds=1, iterations=1)
    pm = results["per-machine"]
    ap = results["all-positions"]

    table = markdown_table(
        ["strategy", "best makespan", "evaluations", "iterations"],
        [
            ("per-machine", f"{pm.best_makespan:.1f}", pm.evaluations, pm.iterations),
            ("all-positions", f"{ap.best_makespan:.1f}", ap.evaluations, ap.iterations),
        ],
    )
    savings = 1 - pm.evaluations / ap.evaluations
    text = (
        "ABL-SLOT — allocation slot enumeration\n\n"
        f"{table}\n\n"
        f"simulator-call savings of per-machine slots: {savings:.1%}\n"
        "claim: identical reachable schedules, identical greedy choice under "
        "a fixed seed, strictly fewer evaluations\n"
        f"matches: {pm.best_makespan == pytest.approx(ap.best_makespan) and pm.evaluations < ap.evaluations}\n"
    )
    write_output("ablation_allocation_slots", text)

    # same seed + same candidate set => identical search trajectory
    assert pm.best_makespan == pytest.approx(ap.best_makespan)
    assert pm.evaluations < ap.evaluations


def test_micro_allocation_step(benchmark):
    """Microbenchmark: one allocation pass over 10 selected subtasks."""
    from repro.core.allocation import Allocator
    from repro.schedule.operations import random_valid_string
    from repro.schedule.simulator import Simulator

    w = build_workload(WorkloadSpec(num_tasks=60, num_machines=12, seed=8))
    sim = Simulator(w)
    alloc = Allocator(w, sim, y_candidates=6)
    base = random_valid_string(w.graph, w.num_machines, 1)
    selected = list(range(10))

    def step():
        s = base.copy()
        return alloc.allocate(s, selected)

    result = benchmark(step)
    assert result.makespan > 0
