"""FIG3A / FIG3B — SE effectiveness (paper §5.1, Figures 3a and 3b).

The paper monitors, on a large / high-connectivity workload, (a) the
number of selected subtasks per iteration and (b) the current schedule
length per iteration.  Expected shapes: the selected count starts large
and decays to a small residual; the schedule length decreases.
"""

from repro.analysis import Series, line_plot
from repro.core import SEConfig, run_se
from repro.workloads import figure3_workload

ITERATIONS = 300
SEED = 11


def run_fig3():
    workload = figure3_workload(seed=SEED)
    return workload, run_se(
        workload, SEConfig(seed=4, max_iterations=ITERATIONS)
    )


def test_fig3a_selected_subtasks(benchmark, write_output):
    workload, result = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    trace = result.trace
    sel = trace.selected_counts()

    chart = line_plot(
        [Series("selected subtasks", trace.iterations(), sel)],
        title="Figure 3a — number of selected subtasks vs iteration",
        x_label="iteration",
        y_label="selected subtasks",
    )
    early = sum(sel[:10]) / 10
    late = sum(sel[-10:]) / 10
    verdict = (
        f"paper: starts large, decays to a small residual\n"
        f"measured: first={sel[0]} mean(first 10)={early:.1f} "
        f"mean(last 10)={late:.1f} of k={workload.num_tasks}\n"
        f"matches: {sel[0] >= workload.num_tasks // 4 and late < early / 2}\n"
    )
    write_output("fig3a_selected_subtasks", chart + "\n\n" + verdict)

    # loose invariants only (strict verdict recorded above)
    assert sel[0] >= workload.num_tasks // 4
    assert late < early


def test_fig3b_schedule_length(benchmark, write_output):
    workload, result = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    trace = result.trace
    cur = trace.current_makespans()

    chart = line_plot(
        [Series("schedule length", trace.iterations(), cur)],
        title="Figure 3b — current schedule length vs iteration",
        x_label="iteration",
        y_label="schedule length",
    )
    verdict = (
        f"paper: schedule length of the current solution decreases\n"
        f"measured: first={cur[0]:.1f} last={cur[-1]:.1f} "
        f"best={result.best_makespan:.1f} "
        f"improvement={cur[0] / cur[-1]:.2f}x\n"
        f"matches: {cur[-1] < cur[0]}\n"
    )
    write_output("fig3b_schedule_length", chart + "\n\n" + verdict)

    assert cur[-1] < cur[0]
    assert result.best_makespan <= min(cur) + 1e-9
