"""FIG3A / FIG3B — SE effectiveness (paper §5.1, Figures 3a and 3b).

The paper monitors, on a large / high-connectivity workload, (a) the
number of selected subtasks per iteration and (b) the current schedule
length per iteration.  Expected shapes: the selected count starts large
and decays to a small residual; the schedule length decreases.

Runs through :mod:`repro.runner` (one SE cell with its convergence
trace); ``REPRO_WORKERS=N`` is honoured like in every other benchmark,
although a single cell cannot exploit it.
"""

from repro.analysis import Series, line_plot
from repro.runner import (
    AlgorithmSpec,
    ExperimentSpec,
    run_experiment,
    workers_from_env,
)
from repro.workloads import figure3_spec

ITERATIONS = 300
SEED = 11


def run_fig3():
    spec = ExperimentSpec(
        name="fig3",
        algorithms={
            "SE": AlgorithmSpec.make("se", max_iterations=ITERATIONS, seed=4)
        },
        workloads=[figure3_spec(seed=SEED)],
    )
    result = run_experiment(spec, workers=workers_from_env())
    cell = result.by_algorithm("SE")[0]
    return cell, cell.convergence_trace()


def test_fig3a_selected_subtasks(benchmark, write_output):
    cell, trace = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    sel = trace.selected_counts()
    num_tasks = cell.num_tasks

    chart = line_plot(
        [Series("selected subtasks", trace.iterations(), sel)],
        title="Figure 3a — number of selected subtasks vs iteration",
        x_label="iteration",
        y_label="selected subtasks",
    )
    early = sum(sel[:10]) / 10
    late = sum(sel[-10:]) / 10
    verdict = (
        f"paper: starts large, decays to a small residual\n"
        f"measured: first={sel[0]} mean(first 10)={early:.1f} "
        f"mean(last 10)={late:.1f} of k={num_tasks}\n"
        f"matches: {sel[0] >= num_tasks // 4 and late < early / 2}\n"
    )
    write_output("fig3a_selected_subtasks", chart + "\n\n" + verdict)

    # loose invariants only (strict verdict recorded above)
    assert sel[0] >= num_tasks // 4
    assert late < early


def test_fig3b_schedule_length(benchmark, write_output):
    cell, trace = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    cur = trace.current_makespans()

    chart = line_plot(
        [Series("schedule length", trace.iterations(), cur)],
        title="Figure 3b — current schedule length vs iteration",
        x_label="iteration",
        y_label="schedule length",
    )
    verdict = (
        f"paper: schedule length of the current solution decreases\n"
        f"measured: first={cur[0]:.1f} last={cur[-1]:.1f} "
        f"best={cell.makespan:.1f} "
        f"improvement={cur[0] / cur[-1]:.2f}x\n"
        f"matches: {cur[-1] < cur[0]}\n"
    )
    write_output("fig3b_schedule_length", chart + "\n\n" + verdict)

    assert cur[-1] < cur[0]
    assert cell.makespan <= min(cur) + 1e-9
