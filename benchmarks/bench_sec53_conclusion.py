"""SEC53 — the paper's aggregate conclusion as a computed table (§5.3/§6).

"SE performed better than GA for workloads of certain characteristics
 [high connectivity and/or high heterogeneity and/or high CCR] as it
 generates better quality solution with less time.  For other workload
 characteristics, the difference between the two algorithms was not
 clear."

This benchmark runs SE and the GA under a shared wall-clock budget on a
connectivity × heterogeneity × CCR grid and prints SE's win/loss record
conditioned on each axis value — the sentence above, as data.

The whole grid goes through :func:`repro.analysis.grid.run_grid` backed
by :mod:`repro.runner`; ``REPRO_WORKERS=N`` shards the 16 wall-clock
runs across processes (note that co-scheduling time-budgeted runs on an
oversubscribed machine can shift who wins a close cell).
"""

from repro.analysis.compare import COMPARISON_SE_BIAS
from repro.analysis.grid import run_grid
from repro.runner import AlgorithmSpec, workers_from_env
from repro.workloads import WorkloadSuite

BUDGET_SECONDS = 1.5  # per algorithm per workload
GRID_TASKS = 40
GRID_MACHINES = 8

ALGORITHMS = {
    "SE": AlgorithmSpec.make(
        "se",
        seed=5,
        selection_bias=COMPARISON_SE_BIAS,
        max_iterations=10**9,
        time_limit=BUDGET_SECONDS,
    ),
    "GA": AlgorithmSpec.make(
        "ga",
        seed=6,
        max_generations=10**9,
        stall_generations=None,
        time_limit=BUDGET_SECONDS,
    ),
}


def run_conclusion_grid():
    suite = WorkloadSuite(
        num_tasks=GRID_TASKS,
        num_machines=GRID_MACHINES,
        connectivities=("low", "high"),
        heterogeneities=("low", "high"),
        ccrs=(0.1, 1.0),
        replicates=2,
        seed=11,
    )
    return run_grid(suite, ALGORITHMS, workers=workers_from_env())


def test_sec53_conclusion(benchmark, write_output):
    grid = benchmark.pedantic(run_conclusion_grid, rounds=1, iterations=1)

    overall = grid.win_loss("SE", "GA")
    high_slice = grid.win_loss("SE", "GA", connectivity="high")
    report = grid.axis_report("SE", "GA")
    league = grid.league_table()
    text = (
        "SEC53 — SE vs GA win/loss per workload class "
        f"({BUDGET_SECONDS}s budget each, {GRID_TASKS} tasks x "
        f"{GRID_MACHINES} machines, 2 replicates)\n\n"
        f"{report}\n\n"
        f"overall: SE {overall.describe()} vs GA "
        f"(win rate {overall.win_rate():.2f})\n"
        "paper: SE better on high connectivity / heterogeneity / CCR; "
        "unclear elsewhere\n"
        f"league (geomean normalized): "
        + ", ".join(f"{a}={v:.3f}" for a, v in league)
        + "\n"
        f"matches: {high_slice.win_rate() >= 0.5}\n"
    )
    write_output("sec53_conclusion", text)

    # loose floor: SE must not be dominated across the board
    assert overall.win_rate() >= 0.3
    # and both algorithms stay within sane normalized range
    for name, gm in league:
        assert 1.0 <= gm < 5.0, (name, gm)
