"""BASE — extension benchmark: SE and GA vs the classic deterministic
heuristics across the workload classification grid.

Not a figure from the paper (its evaluation compares SE and GA only);
this grid positions both against HEFT / Min-min / Max-min / OLB / random
search so downstream users can see where the metaheuristics pay off.

All 56 (workload, algorithm) cells run through
:func:`repro.analysis.grid.run_grid` backed by :mod:`repro.runner` —
``REPRO_WORKERS=N`` shards them across N processes with identical
results (every algorithm here is iteration-capped, not wall-clock-
capped).
"""

from collections import defaultdict

from repro.analysis import geometric_mean, markdown_table
from repro.analysis.grid import run_grid
from repro.runner import AlgorithmSpec, workers_from_env
from repro.workloads import WorkloadSuite

SE_ITERS = 60
GA_GENS = 80

ALGORITHMS = {
    "SE": AlgorithmSpec.make("se", seed=1, max_iterations=SE_ITERS),
    "GA": AlgorithmSpec.make(
        "ga", seed=1, max_generations=GA_GENS, stall_generations=None
    ),
    "HEFT": AlgorithmSpec.make("heft"),
    "Min-min": AlgorithmSpec.make("minmin"),
    "Max-min": AlgorithmSpec.make("maxmin"),
    "OLB": AlgorithmSpec.make("olb"),
    "Random": AlgorithmSpec.make("random", samples=500, seed=1),
}


def run_baseline_grid():
    suite = WorkloadSuite(
        num_tasks=40,
        num_machines=8,
        connectivities=("low", "high"),
        heterogeneities=("low", "high"),
        ccrs=(0.1, 1.0),
        replicates=1,
        seed=77,
    )
    grid = run_grid(suite, ALGORITHMS, workers=workers_from_env())

    names = list(ALGORITHMS)
    by_workload = defaultdict(dict)
    for cell in grid.cells:
        by_workload[cell.workload_name][cell.algorithm] = cell
    rows = []
    slr = defaultdict(list)
    for wname in sorted(by_workload):
        cells = by_workload[wname]
        label = (
            f"{cells[names[0]].connectivity}conn/"
            f"{cells[names[0]].heterogeneity}het/ccr{cells[names[0]].ccr:g}"
        )
        row = [label]
        for name in names:
            n = cells[name].normalized
            slr[name].append(n)
            row.append(f"{n:.2f}")
        rows.append(row)
    return names, rows, slr


def test_baseline_grid(benchmark, write_output):
    names, rows, slr = benchmark.pedantic(
        run_baseline_grid, rounds=1, iterations=1
    )

    league = sorted((geometric_mean(v), k) for k, v in slr.items())
    text = (
        "BASE — scheduler league across the classification grid\n"
        "(normalized makespan; 1.0 = theoretical lower bound)\n\n"
        + markdown_table(["workload"] + names, rows)
        + "\n\ngeometric-mean league (lower = better):\n"
        + "\n".join(f"  {name:8s} {score:.3f}" for score, name in league)
        + "\n"
    )
    write_output("baselines_grid", text)

    gm = {name: geometric_mean(v) for name, v in slr.items()}
    # sanity floors: the metaheuristics and HEFT must beat blind sampling
    # and availability-only OLB on aggregate
    assert gm["SE"] < gm["Random"]
    assert gm["SE"] < gm["OLB"]
    assert gm["HEFT"] < gm["OLB"]
    assert gm["GA"] < gm["Random"]
