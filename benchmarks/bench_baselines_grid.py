"""BASE — extension benchmark: SE and GA vs the classic deterministic
heuristics across the workload classification grid.

Not a figure from the paper (its evaluation compares SE and GA only);
this grid positions both against HEFT / Min-min / Max-min / OLB / random
search so downstream users can see where the metaheuristics pay off.
"""

from collections import defaultdict

from repro.analysis import geometric_mean, markdown_table
from repro.baselines import (
    GAConfig,
    heft,
    max_min,
    min_min,
    olb,
    random_search,
    run_ga,
)
from repro.core import SEConfig, run_se
from repro.schedule.metrics import normalized_makespan
from repro.workloads import WorkloadSuite

SE_ITERS = 60
GA_GENS = 80


def run_grid():
    suite = WorkloadSuite(
        num_tasks=40,
        num_machines=8,
        connectivities=("low", "high"),
        heterogeneities=("low", "high"),
        ccrs=(0.1, 1.0),
        replicates=1,
        seed=77,
    )
    algorithms = {
        "SE": lambda w: run_se(
            w, SEConfig(seed=1, max_iterations=SE_ITERS)
        ).best_makespan,
        "GA": lambda w: run_ga(
            w, GAConfig(seed=1, max_generations=GA_GENS, stall_generations=None)
        ).best_makespan,
        "HEFT": lambda w: heft(w).makespan,
        "Min-min": lambda w: min_min(w).makespan,
        "Max-min": lambda w: max_min(w).makespan,
        "OLB": lambda w: olb(w).makespan,
        "Random": lambda w: random_search(w, samples=500, seed=1).makespan,
    }
    rows = []
    slr = defaultdict(list)
    for cell in suite:
        w = cell.build()
        row = [w.classification.describe()]
        for name, fn in algorithms.items():
            n = normalized_makespan(w, fn(w))
            slr[name].append(n)
            row.append(f"{n:.2f}")
        rows.append(row)
    return list(algorithms), rows, slr


def test_baseline_grid(benchmark, write_output):
    names, rows, slr = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    league = sorted((geometric_mean(v), k) for k, v in slr.items())
    text = (
        "BASE — scheduler league across the classification grid\n"
        "(normalized makespan; 1.0 = theoretical lower bound)\n\n"
        + markdown_table(["workload"] + names, rows)
        + "\n\ngeometric-mean league (lower = better):\n"
        + "\n".join(f"  {name:8s} {score:.3f}" for score, name in league)
        + "\n"
    )
    write_output("baselines_grid", text)

    gm = {name: geometric_mean(v) for name, v in slr.items()}
    # sanity floors: the metaheuristics and HEFT must beat blind sampling
    # and availability-only OLB on aggregate
    assert gm["SE"] < gm["Random"]
    assert gm["SE"] < gm["OLB"]
    assert gm["HEFT"] < gm["OLB"]
    assert gm["GA"] < gm["Random"]
