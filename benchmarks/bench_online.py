"""MICRO-ONLINE — service throughput and flow-time tail under load.

Runs the online scheduling service over a pinned Poisson stream at ~0.7
offered load (40 jobs of 20 tasks on 8 machines, NIC contention, HEFT
dispatch, periodic tabu re-optimisation) and records:

* ``mean_flow`` / ``p99_flow`` — **simulated-time** latencies, exactly
  deterministic in the pinned seeds, so the CI perf gate holds them to
  the committed baseline like any other metric (drift means the service
  semantics changed, not that a runner was slow);
* ``jobs_per_wall_s`` — wall-clock service throughput (how many jobs
  the event loop commits+simulates per real second).  Machine-dependent,
  so it is recorded for trend-watching but deliberately **not** in the
  committed baseline.

Like the other MICRO-* benches, in-test assertions are loose shape
floors that cannot flake on a loaded runner; the strict gate is
``repro perf check`` against ``benchmarks/baseline/BENCH_micro.json``.
"""

import time

from repro.online import DynamicSimulator, ReoptConfig, poisson_stream
from repro.workloads import WorkloadSpec

TEMPLATE = WorkloadSpec(num_tasks=20, num_machines=8)
NUM_JOBS = 40
RATE = 0.0035  # ~0.7 offered load for this template (pinned, not derived)


def service_run():
    stream = poisson_stream(RATE, NUM_JOBS, TEMPLATE, seed=77)
    return DynamicSimulator(
        stream,
        network="nic",
        policy="heft",
        reopt=ReoptConfig(interval=500.0, engine="tabu", max_iterations=20),
        seed=5,
    ).run()


def test_micro_online_service(write_output, perf_log):
    """MICRO-ONLINE: pinned-stream service metrics + wall throughput."""
    t0 = time.perf_counter()
    result = service_run()
    wall = time.perf_counter() - t0
    m = result.metrics

    # loose shape floors only — the strict gate is the perf baseline
    assert m.num_jobs == NUM_JOBS
    assert 0.0 < m.mean_flow <= m.p99_flow <= m.max_flow
    assert wall > 0.0

    jobs_per_wall_s = NUM_JOBS / wall
    perf_log("MICRO-ONLINE", "mean_flow", round(m.mean_flow, 4), "s")
    perf_log("MICRO-ONLINE", "p99_flow", round(m.p99_flow, 4), "s")
    perf_log(
        "MICRO-ONLINE",
        "jobs_per_wall_s",
        round(jobs_per_wall_s, 2),
        "jobs/s",
    )

    write_output(
        "bench_online",
        "\n".join(
            [
                "MICRO-ONLINE: online service under 0.7 offered load",
                f"jobs={NUM_JOBS} tasks/job={TEMPLATE.num_tasks} "
                f"machines={TEMPLATE.num_machines} lambda={RATE}",
                "policy=heft network=nic reopt=tabu/20-iter every 500",
                "",
                f"simulated horizon : {m.horizon:.1f}",
                f"throughput (sim)  : {m.throughput:.6f} jobs/unit-time",
                f"mean flow         : {m.mean_flow:.4f}",
                f"p50 flow          : {m.p50_flow:.4f}",
                f"p99 flow          : {m.p99_flow:.4f}",
                f"max flow          : {m.max_flow:.4f}",
                f"wall time         : {wall:.3f} s "
                f"({jobs_per_wall_s:.1f} jobs/s)",
                f"events logged     : {len(result.events)}",
            ]
        )
        + "\n",
    )
