"""MICRO — microbenchmarks of the hot paths.

The schedule simulator dominates SE/GA run time (every allocation probe
and every GA fitness call is one evaluation), so its per-call cost is
the library's key performance number.  These use pytest-benchmark's
statistical timing (many rounds), unlike the one-shot figure benches.

The headline case is ``test_micro_se_inner_loop_full_vs_delta``: it
replays the exact probe stream of the SE allocation step (relocate /
score / revert over per-machine slots, best-so-far as cutoff) twice —
once through full ``Simulator.makespan`` calls and once through
``Simulator.evaluate_delta`` — asserting identical probe outcomes and
recording the measured speedup (expected >= 2x at paper scale).
"""

import time

import numpy as np

from repro.core.goodness import optimal_finish_times
from repro.extensions.contention import ContentionSimulator
from repro.schedule.operations import random_valid_string
from repro.schedule.simulator import Simulator
from repro.schedule.valid_range import (
    machine_slot_indices,
    valid_insertion_range,
)
from repro.workloads import WorkloadSpec, build_workload, figure5_workload


def paper_scale_workload():
    return figure5_workload(seed=1)


def test_micro_simulator_makespan_100x20(benchmark):
    """One makespan evaluation at paper scale (100 tasks, 20 machines)."""
    w = paper_scale_workload()
    sim = Simulator(w)
    s = random_valid_string(w.graph, w.num_machines, 7)
    order, machines = s.order, s.machines

    result = benchmark(sim.makespan, order, machines)
    assert result > 0


def test_micro_simulator_full_evaluate_100x20(benchmark):
    """Full evaluation (start/finish arrays) at paper scale."""
    w = paper_scale_workload()
    sim = Simulator(w)
    s = random_valid_string(w.graph, w.num_machines, 7)

    result = benchmark(sim.evaluate, s)
    assert result.makespan > 0


def test_micro_simulator_small(benchmark):
    """Evaluation cost on a small instance (20 tasks, 4 machines)."""
    w = build_workload(WorkloadSpec(num_tasks=20, num_machines=4, seed=2))
    sim = Simulator(w)
    s = random_valid_string(w.graph, w.num_machines, 3)

    result = benchmark(sim.makespan, s.order, s.machines)
    assert result > 0


def test_micro_simulator_prepare_100x20(benchmark):
    """DeltaState construction (one per committed SE move)."""
    w = paper_scale_workload()
    sim = Simulator(w)
    s = random_valid_string(w.graph, w.num_machines, 7)

    state = benchmark(sim.prepare, s.order, s.machines)
    assert state.makespan > 0


def test_micro_simulator_evaluate_delta_100x20(benchmark):
    """One suffix-only re-evaluation from mid-string at paper scale."""
    w = paper_scale_workload()
    sim = Simulator(w)
    s = random_valid_string(w.graph, w.num_machines, 7)
    state = sim.prepare(s.order, s.machines)
    k = w.num_tasks

    result = benchmark(
        sim.evaluate_delta, s.order, s.machines, k // 2, state
    )
    assert result == state.makespan  # unchanged string -> identical value


def _se_probe_groups(workload, string, rng, tasks=30, y=12):
    """The allocator's probe stream: per selected task, every
    (machine, slot) candidate within the valid range."""
    groups = []
    for _ in range(tasks):
        t = int(rng.integers(workload.num_tasks))
        probes = []
        for m in rng.choice(workload.num_machines, size=y, replace=False):
            for idx in machine_slot_indices(
                string, workload.graph, t, int(m)
            ):
                probes.append((idx, int(m)))
        groups.append(
            (t, string.position_of(t), string.machine_of(t), probes)
        )
    return groups


def test_micro_se_inner_loop_full_vs_delta(write_output, perf_log):
    """MICRO-DELTA: the PR's headline speedup, measured honestly.

    Replays identical probe streams through both evaluation strategies,
    checks the chosen best costs agree bit-for-bit, and records the
    wall-clock ratio.  The assertion floor (1.5x) is deliberately below
    the expected ~2x so a loaded CI machine cannot flake the suite; the
    measured number lands in the output artifact.
    """
    w = paper_scale_workload()
    sim = Simulator(w)
    s = random_valid_string(w.graph, w.num_machines, 7)
    groups = _se_probe_groups(w, s, np.random.default_rng(3))
    n_probes = sum(len(p) for _, _, _, p in groups)
    state = sim.prepare(s.order, s.machines)

    def full_pass():
        bests = []
        for t, orig, om, probes in groups:
            best = float("inf")
            for idx, m in probes:
                s.relocate(t, idx, m)
                cost = sim.makespan(s.order, s.machines)
                if cost < best:
                    best = cost
                s.relocate(t, orig, om)
            bests.append(best)
        return bests

    def delta_pass():
        bests = []
        for t, orig, om, probes in groups:
            best = float("inf")
            for idx, m in probes:
                s.relocate(t, idx, m)
                first, last = (orig, idx) if orig < idx else (idx, orig)
                cost = sim.evaluate_delta(
                    s.order, s.machines, first, state, best, last
                )
                if cost < best:
                    best = cost
                s.relocate(t, orig, om)
            bests.append(best)
        return bests

    assert full_pass() == delta_pass()  # identical greedy outcomes

    def best_time(fn, budget=1.0):
        fn()  # warm-up
        best = float("inf")
        t_start = time.perf_counter()
        while time.perf_counter() - t_start < budget:
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    t_full = best_time(full_pass)
    t_delta = best_time(delta_pass)
    speedup = t_full / t_delta

    perf_log("MICRO-DELTA", "speedup", round(speedup, 3), "x")
    perf_log(
        "MICRO-DELTA",
        "delta_per_probe",
        round(t_delta / n_probes * 1e6, 2),
        "us",
    )
    write_output(
        "micro_se_inner_loop_delta",
        "MICRO-DELTA — SE inner-loop evaluation: full vs incremental\n\n"
        f"probe stream: {n_probes} probes over {len(groups)} selected "
        f"subtasks ({w.num_tasks} tasks, {w.num_machines} machines)\n"
        f"full      : {t_full * 1e3:.2f} ms/pass "
        f"({t_full / n_probes * 1e6:.1f} us/probe)\n"
        f"incremental: {t_delta * 1e3:.2f} ms/pass "
        f"({t_delta / n_probes * 1e6:.1f} us/probe)\n"
        f"speedup   : {speedup:.2f}x\n"
        f"claim (>= 2x at paper scale): {speedup >= 2.0}\n",
    )

    assert speedup >= 1.5  # loose floor; measured value recorded above


def test_micro_contention_makespan_100x20(benchmark):
    """One NIC-contention makespan evaluation at paper scale."""
    w = paper_scale_workload()
    sim = ContentionSimulator(w)
    s = random_valid_string(w.graph, w.num_machines, 7)

    result = benchmark(sim.makespan, s.order, s.machines)
    assert result > 0


def test_micro_contention_prepare_100x20(benchmark):
    """Contention DeltaState construction (one per committed SE move)."""
    w = paper_scale_workload()
    sim = ContentionSimulator(w)
    s = random_valid_string(w.graph, w.num_machines, 7)

    state = benchmark(sim.prepare, s.order, s.machines)
    assert state.makespan > 0


def test_micro_contention_evaluate_delta_100x20(benchmark):
    """One suffix-only contention re-evaluation from mid-string."""
    w = paper_scale_workload()
    sim = ContentionSimulator(w)
    s = random_valid_string(w.graph, w.num_machines, 7)
    state = sim.prepare(s.order, s.machines)
    k = w.num_tasks

    result = benchmark(
        sim.evaluate_delta, s.order, s.machines, k // 2, state
    )
    assert result == state.makespan  # unchanged string -> identical value


def test_micro_contention_inner_loop_full_vs_delta(write_output, perf_log):
    """MICRO-CONT-DELTA: the SE probe stream under the NIC backend.

    Same structure as MICRO-DELTA: identical probe streams through full
    ``ContentionSimulator.makespan`` and ``evaluate_delta``, identical
    greedy outcomes asserted, wall-clock ratio recorded.  The expected
    speedup is smaller than the contention-free ~2x — a machine-changing
    probe must restart at the earliest producer its reassignment can
    dirty — but the cutoff still prunes aggressively.  The assertion
    floor (1.1x) only guards against the delta path *losing*; the
    measured number lands in the output artifact.
    """
    w = paper_scale_workload()
    sim = ContentionSimulator(w)
    s = random_valid_string(w.graph, w.num_machines, 7)
    groups = _se_probe_groups(w, s, np.random.default_rng(3))
    n_probes = sum(len(p) for _, _, _, p in groups)
    state = sim.prepare(s.order, s.machines)

    def full_pass():
        bests = []
        for t, orig, om, probes in groups:
            best = float("inf")
            for idx, m in probes:
                s.relocate(t, idx, m)
                cost = sim.makespan(s.order, s.machines)
                if cost < best:
                    best = cost
                s.relocate(t, orig, om)
            bests.append(best)
        return bests

    def delta_pass():
        bests = []
        for t, orig, om, probes in groups:
            best = float("inf")
            for idx, m in probes:
                s.relocate(t, idx, m)
                first, last = (orig, idx) if orig < idx else (idx, orig)
                cost = sim.evaluate_delta(
                    s.order, s.machines, first, state, best, last
                )
                if cost < best:
                    best = cost
                s.relocate(t, orig, om)
            bests.append(best)
        return bests

    assert full_pass() == delta_pass()  # identical greedy outcomes

    def best_time(fn, budget=1.0):
        fn()  # warm-up
        best = float("inf")
        t_start = time.perf_counter()
        while time.perf_counter() - t_start < budget:
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    t_full = best_time(full_pass)
    t_delta = best_time(delta_pass)
    speedup = t_full / t_delta

    perf_log("MICRO-CONT-DELTA", "speedup", round(speedup, 3), "x")
    write_output(
        "micro_contention_inner_loop_delta",
        "MICRO-CONT-DELTA — SE inner loop under NIC contention: "
        "full vs incremental\n\n"
        f"probe stream: {n_probes} probes over {len(groups)} selected "
        f"subtasks ({w.num_tasks} tasks, {w.num_machines} machines)\n"
        f"full      : {t_full * 1e3:.2f} ms/pass "
        f"({t_full / n_probes * 1e6:.1f} us/probe)\n"
        f"incremental: {t_delta * 1e3:.2f} ms/pass "
        f"({t_delta / n_probes * 1e6:.1f} us/probe)\n"
        f"speedup   : {speedup:.2f}x\n",
    )

    assert speedup >= 1.1  # loose floor; measured value recorded above


def test_micro_valid_range(benchmark):
    """Valid-range query cost at paper scale."""
    w = paper_scale_workload()
    s = random_valid_string(w.graph, w.num_machines, 7)

    def all_ranges():
        return [
            valid_insertion_range(s, w.graph, t) for t in range(w.num_tasks)
        ]

    ranges = benchmark(all_ranges)
    assert len(ranges) == w.num_tasks


def test_micro_optimal_finish_times(benchmark):
    """O-vector precomputation cost (runs once per SE run)."""
    w = paper_scale_workload()
    o = benchmark(optimal_finish_times, w)
    assert len(o) == w.num_tasks


def test_micro_string_copy(benchmark):
    """String copy cost (SE keeps a copy of every new best)."""
    w = paper_scale_workload()
    s = random_valid_string(w.graph, w.num_machines, 7)
    c = benchmark(s.copy)
    assert c == s


def test_micro_workload_build(benchmark):
    """Workload generation cost at paper scale."""
    w = benchmark(lambda: build_workload(
        WorkloadSpec(num_tasks=100, num_machines=20, seed=5)
    ))
    assert w.num_tasks == 100
