"""MICRO — microbenchmarks of the hot paths.

The schedule simulator dominates SE/GA run time (every allocation probe
and every GA fitness call is one full evaluation), so its per-call cost
is the library's key performance number.  These use pytest-benchmark's
statistical timing (many rounds), unlike the one-shot figure benches.
"""

from repro.core.goodness import optimal_finish_times
from repro.schedule.operations import random_valid_string
from repro.schedule.simulator import Simulator
from repro.schedule.valid_range import valid_insertion_range
from repro.workloads import WorkloadSpec, build_workload, figure5_workload


def paper_scale_workload():
    return figure5_workload(seed=1)


def test_micro_simulator_makespan_100x20(benchmark):
    """One makespan evaluation at paper scale (100 tasks, 20 machines)."""
    w = paper_scale_workload()
    sim = Simulator(w)
    s = random_valid_string(w.graph, w.num_machines, 7)
    order, machines = s.order, s.machines

    result = benchmark(sim.makespan, order, machines)
    assert result > 0


def test_micro_simulator_full_evaluate_100x20(benchmark):
    """Full evaluation (start/finish arrays) at paper scale."""
    w = paper_scale_workload()
    sim = Simulator(w)
    s = random_valid_string(w.graph, w.num_machines, 7)

    result = benchmark(sim.evaluate, s)
    assert result.makespan > 0


def test_micro_simulator_small(benchmark):
    """Evaluation cost on a small instance (20 tasks, 4 machines)."""
    w = build_workload(WorkloadSpec(num_tasks=20, num_machines=4, seed=2))
    sim = Simulator(w)
    s = random_valid_string(w.graph, w.num_machines, 3)

    result = benchmark(sim.makespan, s.order, s.machines)
    assert result > 0


def test_micro_valid_range(benchmark):
    """Valid-range query cost at paper scale."""
    w = paper_scale_workload()
    s = random_valid_string(w.graph, w.num_machines, 7)

    def all_ranges():
        return [
            valid_insertion_range(s, w.graph, t) for t in range(w.num_tasks)
        ]

    ranges = benchmark(all_ranges)
    assert len(ranges) == w.num_tasks


def test_micro_optimal_finish_times(benchmark):
    """O-vector precomputation cost (runs once per SE run)."""
    w = paper_scale_workload()
    o = benchmark(optimal_finish_times, w)
    assert len(o) == w.num_tasks


def test_micro_string_copy(benchmark):
    """String copy cost (SE keeps a copy of every new best)."""
    w = paper_scale_workload()
    s = random_valid_string(w.graph, w.num_machines, 7)
    c = benchmark(s.copy)
    assert c == s


def test_micro_workload_build(benchmark):
    """Workload generation cost at paper scale."""
    w = benchmark(lambda: build_workload(
        WorkloadSpec(num_tasks=100, num_machines=20, seed=5)
    ))
    assert w.num_tasks == 100
