"""FIG7 — SE vs GA on low connectivity/heterogeneity, CCR = 0.1 (Figure 7).

Paper expectation: on "low everything" workloads the picture is *not*
clear — "many times, GA reached good solutions faster than SE".  The
benchmark therefore records who led when, and only asserts that both
algorithms stayed within a sane band of each other.
"""

from repro.analysis import Series, line_plot, head_to_head_experiment
from repro.runner import workers_from_env
from repro.workloads import figure7_spec

BUDGET_SECONDS = 6.0
GRID_POINTS = 12
SEED = 21


def run_fig7():
    workload = figure7_spec(seed=SEED)
    return workload, head_to_head_experiment(
        workload,
        time_budget=BUDGET_SECONDS,
        grid_points=GRID_POINTS,
        seed=35,
        workers=workers_from_env(),
    )


def test_fig7_se_vs_ga_low_everything(benchmark, write_output):
    workload, cmp = benchmark.pedantic(run_fig7, rounds=1, iterations=1)

    chart = line_plot(
        [Series(s.name, s.time_grid, s.best_at) for s in cmp.series],
        title=(
            "Figure 7 — SE vs GA, low connectivity/heterogeneity, CCR=0.1"
        ),
        x_label="seconds",
        y_label="best schedule length",
    )
    timeline = cmp.winner_timeline()
    ga_leads = sum(1 for w in timeline if w == "GA")
    se_final = cmp.by_name("SE").final_best
    ga_final = cmp.by_name("GA").final_best
    rel_gap = abs(se_final - ga_final) / min(se_final, ga_final)
    verdict = (
        f"paper: no clear winner; GA often reaches good solutions faster\n"
        f"winner timeline: {timeline}\n"
        f"GA leads at {ga_leads}/{len(timeline)} grid points\n"
        f"final: SE={se_final:.1f} GA={ga_final:.1f} "
        f"(relative gap {rel_gap:.1%})\n"
        f"matches: {ga_leads > 0 or rel_gap < 0.05}\n"
    )
    write_output("fig7_se_vs_ga_low_everything", chart + "\n\n" + verdict)

    # the 'unclear outcome' claim: neither algorithm dominates by > 25%
    assert rel_gap < 0.25
