#!/usr/bin/env python
"""Documentation integrity checker (the CI ``docs`` job).

Two classes of rot this catches:

1. **Dead intra-repo links** — every relative markdown link or image in
   the checked documents must point at a file (or ``file#anchor``) that
   exists in the repository.  External (``http``/``mailto``) links are
   left alone: availability of other people's servers is not a property
   of this repo.

2. **Phantom CLI references** — every ``repro <subcommand>`` and every
   ``--flag`` used in a fenced shell block or inline-code span that
   starts with ``repro`` must exist in the actual parser
   (:func:`repro.cli.build_parser`), including nested subparsers like
   ``repro perf check``.  Docs that advertise flags the CLI no longer
   accepts fail the build, not the reader.

Run from the repo root (CI does):  ``python scripts/check_docs.py``.
Exits non-zero listing every violation.  ``--self-test`` runs the
checker's own unit checks (also exercised by the test suite).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: The documents the docs job guards (repo-relative).
DOCUMENTS = (
    "README.md",
    "ROADMAP.md",
    "docs/architecture.md",
    "docs/reproducing.md",
    "docs/risk_aware.md",
)

_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"```(?:\w*)\n(.*?)```", re.DOTALL)
_INLINE = re.compile(r"`(repro [^`]+)`")


# ----------------------------------------------------------------------
# link checking
# ----------------------------------------------------------------------


def check_links(doc: Path, text: str) -> list[str]:
    """Dead relative links in *text* (repo-relative error strings)."""
    errors = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (doc.parent / path).resolve()
        if not resolved.exists():
            errors.append(
                f"{doc.relative_to(REPO)}: dead link -> {target}"
            )
    return errors


# ----------------------------------------------------------------------
# CLI cross-checking
# ----------------------------------------------------------------------


def _parser_surface():
    """(subcommand path -> set of flags) for the real ``repro`` parser.

    Flags of nested subparsers (e.g. ``repro perf check``) are exposed
    both under their full path and merged into the parent command, so a
    doc line ``repro perf check --tolerance 0.1`` validates naturally.
    """
    import argparse

    from repro.cli import build_parser

    surface: dict[str, set[str]] = {}

    def walk(parser, path):
        flags = set()
        for action in parser._actions:
            flags.update(
                o for o in action.option_strings if o.startswith("--")
            )
            if isinstance(action, argparse._SubParsersAction):
                for name, sub in action.choices.items():
                    walk(sub, path + (name,))
        surface[" ".join(path)] = flags

    walk(build_parser(), ())
    return surface


def _command_lines(text: str):
    """Every ``repro ...`` invocation found in *text*."""
    lines = []
    for block in _FENCE.findall(text):
        for raw in block.splitlines():
            line = raw.strip().lstrip("$ ").rstrip("\\").strip()
            if line.startswith("repro "):
                lines.append(line)
    lines.extend(m.strip() for m in _INLINE.findall(text))
    return lines


def _expand_alternation(line: str):
    """``repro run|sweep --a|--b`` -> every concrete command variant.

    Docs legitimately abbreviate with ``|`` (escaped ``\\|`` inside
    markdown tables); each alternative must exist, so expand and check
    them all.
    """
    tokens = [t.split("|") for t in line.replace("\\|", "|").split()]
    variants = [[]]
    for alts in tokens:
        variants = [v + [a] for v in variants for a in alts]
    return [" ".join(v) for v in variants]


def _check_line(doc: Path, line: str, surface) -> list[str]:
    errors = []
    tokens = line.split()
    # longest parser path matching the leading tokens wins
    path: tuple[str, ...] = ()
    for tok in tokens[1:]:
        candidate = path + (tok,)
        if " ".join(candidate) in surface:
            path = candidate
        else:
            break
    command = " ".join(path)
    if path == () and len(tokens) > 1 and not tokens[1].startswith("-"):
        return [
            f"{doc.relative_to(REPO)}: unknown subcommand in `{line}`"
        ]
    known = surface[command] | surface.get("", set())
    for tok in tokens:
        if tok.startswith("--"):
            flag = tok.split("=", 1)[0]
            if flag not in known:
                errors.append(
                    f"{doc.relative_to(REPO)}: `repro {command}` has "
                    f"no flag {flag} (in `{line}`)"
                )
    return errors


def check_cli_references(doc: Path, text: str, surface) -> list[str]:
    """Doc lines invoking subcommands/flags the CLI does not have."""
    errors = []
    for raw in _command_lines(text):
        for line in _expand_alternation(raw):
            errors += _check_line(doc, line, surface)
    return errors


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------


def run(documents=DOCUMENTS) -> list[str]:
    surface = _parser_surface()
    errors = []
    for name in documents:
        doc = REPO / name
        if not doc.exists():
            errors.append(f"{name}: document missing")
            continue
        text = doc.read_text()
        errors += check_links(doc, text)
        errors += check_cli_references(doc, text, surface)
    return errors


def self_test() -> None:
    """Sanity checks of the checker itself (run by the test suite)."""
    surface = _parser_surface()
    assert "" in surface and "run" in surface
    assert "perf check" in surface  # nested subparser discovered
    assert "--objective" in surface["run"]
    doc = REPO / "README.md"
    # a dead link is reported ...
    bad = "[x](no/such/file.md)"
    assert check_links(doc, bad)
    # ... a live one is not
    assert not check_links(doc, "[x](README.md)")
    # phantom flags and subcommands are reported
    assert check_cli_references(doc, "`repro run --objective mean`", surface) == []
    assert check_cli_references(doc, "`repro run --bogus-flag 1`", surface)
    assert check_cli_references(doc, "`repro frobnicate`", surface)
    # fenced blocks are scanned too
    fenced = "```bash\n$ repro sweep --no-such-flag\n```\n"
    assert check_cli_references(doc, fenced, surface)


def main(argv) -> int:
    if "--self-test" in argv:
        self_test()
        print("check_docs self-test: OK")
        return 0
    errors = run()
    for err in errors:
        print(f"docs check: {err}", file=sys.stderr)
    if errors:
        print(f"docs check: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    checked = ", ".join(DOCUMENTS)
    print(f"docs check: OK ({checked})")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO / "src"))
    raise SystemExit(main(sys.argv[1:]))
