"""Packaging for the Barada/Sait/Baig (IPPS 2001) reproduction."""

from pathlib import Path

from setuptools import find_packages, setup

ROOT = Path(__file__).parent
README = ROOT / "README.md"

setup(
    name="repro-mshc",
    version="1.1.0",
    description=(
        "Simulated Evolution for task matching and scheduling in "
        "heterogeneous computing systems — a reproduction of Barada, "
        "Sait & Baig (IPPS 2001) with a parallel experiment runner"
    ),
    long_description=README.read_text() if README.exists() else "",
    long_description_content_type="text/markdown",
    author="repro-mshc contributors",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.22",
    ],
    extras_require={
        "dev": [
            "pytest>=7",
            "pytest-benchmark>=4",
            "pytest-cov>=4",
            "hypothesis>=6",
            "ruff>=0.4",
        ],
        # the compiled kernel tier (repro.schedule.jit) — optional:
        # without it the NumPy tier is auto-selected, bit-identically
        "jit": [
            "numba>=0.59",
        ],
    },
    entry_points={
        "console_scripts": [
            # `repro` is the canonical name; `repro-mshc` is kept for
            # compatibility with earlier docs and scripts.
            "repro=repro.cli:main",
            "repro-mshc=repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering",
        "Topic :: System :: Distributed Computing",
    ],
    keywords=(
        "scheduling task-matching heterogeneous-computing "
        "simulated-evolution genetic-algorithm makespan DAG"
    ),
)
