"""repro — Simulated Evolution for task matching and scheduling in
heterogeneous computing systems.

A faithful, production-quality reproduction of

    Barada, Sait & Baig, "Task Matching and Scheduling in Heterogeneous
    Systems Using Simulated Evolution", IPPS 2001,

including the heterogeneous-computing problem model, the combined
matching+scheduling string encoding, the SE engine (evaluation /
selection / allocation), the GA comparator of Wang et al. (JPDC 1997),
classic deterministic baselines (HEFT, Min-min, Max-min, OLB), workload
generators over the paper's three classification axes (connectivity,
heterogeneity, CCR), and a benchmark harness regenerating every figure
of the paper's evaluation section.

Quickstart::

    import repro

    workload = repro.workloads.figure5_workload(seed=7)
    result = repro.run_se(workload, repro.SEConfig(seed=7, max_iterations=200))
    print(result.best_makespan)
"""

from repro import analysis, baselines, extensions, io, model, schedule, workloads
from repro.baselines import (
    GAConfig,
    GAResult,
    GeneticAlgorithm,
    heft,
    max_min,
    min_min,
    olb,
    random_search,
    run_ga,
)
from repro.core import (
    SEConfig,
    SEResult,
    SimulatedEvolution,
    run_se,
)
from repro.model import (
    HCSystem,
    TaskGraph,
    Workload,
    WorkloadClass,
    paper_sample_workload,
)
from repro.schedule import (
    Schedule,
    ScheduleString,
    Simulator,
    compute_metrics,
    evaluate_schedule,
    verify_schedule,
)
from repro.workloads import WorkloadSpec, build_workload

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "baselines",
    "extensions",
    "io",
    "model",
    "schedule",
    "workloads",
    "GAConfig",
    "GAResult",
    "GeneticAlgorithm",
    "heft",
    "max_min",
    "min_min",
    "olb",
    "random_search",
    "run_ga",
    "SEConfig",
    "SEResult",
    "SimulatedEvolution",
    "run_se",
    "HCSystem",
    "TaskGraph",
    "Workload",
    "WorkloadClass",
    "paper_sample_workload",
    "Schedule",
    "ScheduleString",
    "Simulator",
    "compute_metrics",
    "evaluate_schedule",
    "verify_schedule",
    "WorkloadSpec",
    "build_workload",
    "__version__",
]
