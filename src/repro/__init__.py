"""repro — Simulated Evolution for task matching and scheduling in
heterogeneous computing systems.

A faithful, production-quality reproduction of

    Barada, Sait & Baig, "Task Matching and Scheduling in Heterogeneous
    Systems Using Simulated Evolution", IPPS 2001,

including the heterogeneous-computing problem model, the combined
matching+scheduling string encoding, the SE engine (evaluation /
selection / allocation), the GA comparator of Wang et al. (JPDC 1997),
classic deterministic baselines (HEFT, Min-min, Max-min, OLB), a unified
metaheuristic search core with simulated-annealing and tabu-search
engines (:mod:`repro.optim`), workload generators over the paper's three
classification axes (connectivity, heterogeneity, CCR), and a benchmark
harness regenerating every figure of the paper's evaluation section.

Quickstart (executable — CI runs it under ``--doctest-modules``):

    >>> import repro
    >>> workload = repro.workloads.small_workload(seed=7)
    >>> result = repro.run_se(workload, repro.SEConfig(seed=7, max_iterations=30))
    >>> result.iterations
    30
    >>> result.best_makespan < repro.baselines.olb(workload).makespan
    True

Paper-scale experiments swap in ``repro.workloads.figure5_workload`` (100
tasks, 20 machines) and more iterations; sweeps over many workloads and
seeds go through :mod:`repro.runner`:

    >>> from repro.runner import AlgorithmSpec, ExperimentSpec, run_experiment
    >>> spec = ExperimentSpec(
    ...     name="quickstart",
    ...     algorithms={"SE": AlgorithmSpec.make("se", max_iterations=20),
    ...                 "HEFT": AlgorithmSpec.make("heft")},
    ...     workloads=[repro.workloads.small_spec(seed=s) for s in (1,)],
    ...     seeds=(0, 1),
    ... )
    >>> result = run_experiment(spec, workers=2)  # same output for any workers
    >>> sorted(set(c.algorithm for c in result))
    ['HEFT', 'SE']
"""

from repro import (
    analysis,
    baselines,
    extensions,
    io,
    model,
    online,
    optim,
    runner,
    schedule,
    workloads,
)
from repro.baselines import (
    GAConfig,
    GAResult,
    GeneticAlgorithm,
    heft,
    max_min,
    min_min,
    olb,
    random_search,
    run_ga,
)
from repro.core import (
    SEConfig,
    SEResult,
    SimulatedEvolution,
    run_se,
)
from repro.online import (
    DynamicSimulator,
    JobStream,
    OnlineResult,
    ReoptConfig,
    poisson_stream,
)
from repro.optim import (
    SAConfig,
    SearchResult,
    SimulatedAnnealing,
    TabuConfig,
    TabuSearch,
    run_sa,
    run_tabu,
)
from repro.model import (
    HCSystem,
    TaskGraph,
    Workload,
    WorkloadClass,
    paper_sample_workload,
)
from repro.schedule import (
    Schedule,
    ScheduleString,
    Simulator,
    compute_metrics,
    evaluate_schedule,
    verify_schedule,
)
from repro.workloads import WorkloadSpec, build_workload

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "baselines",
    "extensions",
    "io",
    "model",
    "online",
    "optim",
    "runner",
    "schedule",
    "workloads",
    "GAConfig",
    "GAResult",
    "GeneticAlgorithm",
    "heft",
    "max_min",
    "min_min",
    "olb",
    "random_search",
    "run_ga",
    "SEConfig",
    "SEResult",
    "SimulatedEvolution",
    "run_se",
    "DynamicSimulator",
    "JobStream",
    "OnlineResult",
    "ReoptConfig",
    "poisson_stream",
    "SAConfig",
    "SearchResult",
    "SimulatedAnnealing",
    "TabuConfig",
    "TabuSearch",
    "run_sa",
    "run_tabu",
    "HCSystem",
    "TaskGraph",
    "Workload",
    "WorkloadClass",
    "paper_sample_workload",
    "Schedule",
    "ScheduleString",
    "Simulator",
    "compute_metrics",
    "evaluate_schedule",
    "verify_schedule",
    "WorkloadSpec",
    "build_workload",
    "__version__",
]
