"""Machine-readable performance records and the perf-regression gate.

Every micro-benchmark (the MICRO-* cases under ``benchmarks/``)
serializes its headline numbers through this module into
``benchmarks/output/BENCH_micro.json`` — a flat JSON list of records in
the stable schema::

    {"bench": "MICRO-BATCH-GA", "metric": "speedup", "value": 4.2,
     "unit": "x", "commit": "4538d5e", "python": "3.11.7"}

``bench``/``metric`` identify a measurement, ``value``/``unit`` carry
it, and ``commit``/``python`` record provenance.  The **unit encodes
the regression direction**: time units (``s``, ``ms``, ``us``, ``ns``)
and cost units (``usd``) regress when the value *rises*; every other
unit (ratios ``x``, throughputs) regresses when the value *falls*.
Records whose metric name mentions ``cost`` must carry a cost unit —
an unadorned number is ambiguous about direction, so the schema
rejects it at load time (``repro perf check`` included).

CI runs the micro-benchmarks, then ``repro perf check`` compares the
fresh file against the committed ``benchmarks/baseline/BENCH_micro.json``
with a relative tolerance (±30% by default) and exits non-zero on any
regression — the committed baseline deliberately pins only
machine-portable *ratio* metrics, so the gate is meaningful on any
runner while absolute timings ride along as artifacts.

>>> r = make_record("MICRO-X", "speedup", 2.5, "x")
>>> (r.bench, r.metric, r.value, r.unit)
('MICRO-X', 'speedup', 2.5, 'x')
>>> cmp = compare_records([r], [make_record("MICRO-X", "speedup", 2.0, "x")])
>>> cmp.ok
True
>>> cmp = compare_records([r], [make_record("MICRO-X", "speedup", 9.0, "x")])
>>> [e.status for e in cmp.entries]
['regression']
"""

from __future__ import annotations

import json
import platform
import subprocess
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

#: The stable on-disk schema; every record carries exactly these keys.
SCHEMA_FIELDS = ("bench", "metric", "value", "unit", "commit", "python")

#: Units where a *larger* value is a regression (durations).
TIME_UNITS = frozenset({"s", "ms", "us", "ns"})

#: Currency units (also lower-is-better); every cost metric must carry
#: one, so the gate never guesses a cost record's regression direction.
COST_UNITS = frozenset({"usd"})

#: Default relative tolerance of the regression gate (±30%).
DEFAULT_TOLERANCE = 0.30


@dataclass(frozen=True)
class PerfRecord:
    """One serialized benchmark measurement (see module docstring)."""

    bench: str
    metric: str
    value: float
    unit: str
    commit: str
    python: str

    def __post_init__(self) -> None:
        if "cost" in self.metric and self.unit not in COST_UNITS:
            raise ValueError(
                f"perf record ({self.bench!r}, {self.metric!r}) is a cost "
                f"metric and must carry a currency unit "
                f"({', '.join(sorted(COST_UNITS))}), got {self.unit!r}"
            )

    @property
    def key(self) -> tuple[str, str]:
        """Identity of the measurement across runs: (bench, metric)."""
        return (self.bench, self.metric)

    def to_dict(self) -> dict:
        return {f: getattr(self, f) for f in SCHEMA_FIELDS}

    @classmethod
    def from_dict(cls, doc: dict) -> "PerfRecord":
        missing = [f for f in SCHEMA_FIELDS if f not in doc]
        if missing:
            raise ValueError(f"perf record {doc!r} is missing fields {missing}")
        return cls(
            bench=str(doc["bench"]),
            metric=str(doc["metric"]),
            value=float(doc["value"]),
            unit=str(doc["unit"]),
            commit=str(doc["commit"]),
            python=str(doc["python"]),
        )


def current_commit() -> str:
    """Short git commit hash of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


def make_record(
    bench: str,
    metric: str,
    value: float,
    unit: str,
    commit: Optional[str] = None,
    python: Optional[str] = None,
) -> PerfRecord:
    """A :class:`PerfRecord` with provenance filled in automatically."""
    return PerfRecord(
        bench=bench,
        metric=metric,
        value=float(value),
        unit=unit,
        commit=current_commit() if commit is None else commit,
        python=platform.python_version() if python is None else python,
    )


def lower_is_better(unit: str) -> bool:
    """Regression direction of *unit* (see module docstring)."""
    return unit in TIME_UNITS or unit in COST_UNITS


def load_records(path: Union[str, Path]) -> list[PerfRecord]:
    """Read a BENCH JSON file into records.

    Raises
    ------
    FileNotFoundError / ValueError
        If the file is absent or does not hold a list of schema records.
    """
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, list):
        raise ValueError(f"{path}: expected a JSON list of perf records")
    return [PerfRecord.from_dict(d) for d in doc]


def save_records(path: Union[str, Path], records: Iterable[PerfRecord]) -> Path:
    """Write *records* (sorted by key, stable formatting) to *path*."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    ordered = sorted(records, key=lambda r: r.key)
    path.write_text(json.dumps([r.to_dict() for r in ordered], indent=2) + "\n")
    return path


def record_results(path: Union[str, Path], records: Sequence[PerfRecord]) -> Path:
    """Merge *records* into the BENCH file at *path*.

    Existing records with the same (bench, metric) key are replaced;
    everything else is preserved, so independent benchmark test cases
    can each contribute their slice of ``BENCH_micro.json``.
    """
    path = Path(path)
    merged: dict[tuple[str, str], PerfRecord] = {}
    if path.exists():
        for r in load_records(path):
            merged[r.key] = r
    for r in records:
        merged[r.key] = r
    return save_records(path, merged.values())


# ----------------------------------------------------------------------
# the regression gate
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ComparisonEntry:
    """Verdict for one (bench, metric) pair."""

    bench: str
    metric: str
    unit: str
    baseline: Optional[float]
    current: Optional[float]
    change: Optional[float]  # signed relative change vs baseline
    status: str  # "ok" | "improved" | "regression" | "missing" | "new"

    def describe(self) -> str:
        cur = "-" if self.current is None else f"{self.current:.4g}"
        base = "-" if self.baseline is None else f"{self.baseline:.4g}"
        chg = "" if self.change is None else f" ({self.change * 100:+.1f}%)"
        return (
            f"{self.status.upper():10s} {self.bench} {self.metric}: "
            f"{cur} {self.unit} vs baseline {base} {self.unit}{chg}"
        )


@dataclass(frozen=True)
class PerfComparison:
    """Outcome of comparing a BENCH file against a baseline."""

    entries: tuple[ComparisonEntry, ...]
    tolerance: float

    @property
    def regressions(self) -> list[ComparisonEntry]:
        return [
            e for e in self.entries if e.status in ("regression", "missing")
        ]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def describe(self) -> str:
        lines = [
            f"perf gate: {len(self.entries)} metric(s), tolerance "
            f"±{self.tolerance * 100:.0f}%"
        ]
        lines += ["  " + e.describe() for e in self.entries]
        lines.append(
            "PASS: no perf regressions"
            if self.ok
            else f"FAIL: {len(self.regressions)} perf regression(s)"
        )
        return "\n".join(lines)


def compare_records(
    current: Sequence[PerfRecord],
    baseline: Sequence[PerfRecord],
    tolerance: float = DEFAULT_TOLERANCE,
) -> PerfComparison:
    """Gate *current* against *baseline* with a relative *tolerance*.

    Every baseline metric must be present in *current* (a vanished
    benchmark is itself a regression) and within ``tolerance`` of the
    baseline value in the regression direction of its unit.  Movement
    beyond tolerance in the good direction is reported as ``improved``
    (a nudge to refresh the baseline); current-only metrics are ``new``.
    Neither fails the gate.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    cur_by_key = {r.key: r for r in current}
    entries: list[ComparisonEntry] = []
    for base in sorted(baseline, key=lambda r: r.key):
        cur = cur_by_key.pop(base.key, None)
        if cur is None:
            entries.append(
                ComparisonEntry(
                    bench=base.bench,
                    metric=base.metric,
                    unit=base.unit,
                    baseline=base.value,
                    current=None,
                    change=None,
                    status="missing",
                )
            )
            continue
        if base.value == 0:
            change = 0.0 if cur.value == 0 else float("inf")
        else:
            change = (cur.value - base.value) / abs(base.value)
        worse = change > 0 if lower_is_better(base.unit) else change < 0
        beyond = abs(change) > tolerance
        if beyond and worse:
            status = "regression"
        elif beyond:
            status = "improved"
        else:
            status = "ok"
        entries.append(
            ComparisonEntry(
                bench=base.bench,
                metric=base.metric,
                unit=base.unit,
                baseline=base.value,
                current=cur.value,
                change=change,
                status=status,
            )
        )
    for extra in sorted(cur_by_key.values(), key=lambda r: r.key):
        entries.append(
            ComparisonEntry(
                bench=extra.bench,
                metric=extra.metric,
                unit=extra.unit,
                baseline=None,
                current=extra.value,
                change=None,
                status="new",
            )
        )
    return PerfComparison(entries=tuple(entries), tolerance=tolerance)


def check_files(
    current_path: Union[str, Path],
    baseline_path: Union[str, Path],
    tolerance: float = DEFAULT_TOLERANCE,
) -> PerfComparison:
    """:func:`compare_records` over two BENCH JSON files."""
    return compare_records(
        load_records(current_path), load_records(baseline_path), tolerance
    )
