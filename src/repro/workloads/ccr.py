"""Transfer-time matrix generation from a CCR target (paper §5).

The paper defines CCR as "the ratio of size of data item over execution
time of the subtask generating this item": CCR = 0.1 means communication
is cheap relative to computation (lightly communicating subtasks),
CCR = 1 means they are comparable (heavily communicating).

Given the DAG, the execution matrix and a target CCR, each data item's
*base* transfer time is ``ccr * mean_exec(producer) * jitter`` and each
machine pair scales it with a mild link factor — a uniform high-speed
network with realistic variation, consistent with the paper's fully
connected model.
"""

from __future__ import annotations

import numpy as np

from repro.model.graph import TaskGraph
from repro.model.matrices import (
    ExecutionTimeMatrix,
    TransferTimeMatrix,
    num_pairs,
)
from repro.utils.rng import RandomSource, as_rng

#: CCR values the paper quotes for its qualitative classes.
CCR_CLASSES = {"low": 0.1, "medium": 0.5, "high": 1.0}


def transfer_matrix(
    graph: TaskGraph,
    exec_times: ExecutionTimeMatrix,
    ccr: float,
    item_jitter: tuple[float, float] = (0.8, 1.2),
    pair_jitter: tuple[float, float] = (0.9, 1.1),
    seed: RandomSource = None,
) -> TransferTimeMatrix:
    """Generate ``Tr`` hitting the target *ccr* in expectation.

    Parameters
    ----------
    graph:
        Supplies each item's producer.
    exec_times:
        The matching ``E`` (mean producer time anchors each item's cost).
    ccr:
        Target communication-to-cost ratio (>= 0).
    item_jitter:
        Per-item multiplicative spread around the CCR anchor.
    pair_jitter:
        Per-machine-pair link-speed spread.
    seed:
        Randomness source.
    """
    if ccr < 0:
        raise ValueError(f"ccr must be >= 0, got {ccr}")
    for name, (lo, hi) in (
        ("item_jitter", item_jitter),
        ("pair_jitter", pair_jitter),
    ):
        if lo < 0 or hi < lo:
            raise ValueError(
                f"{name} must satisfy 0 <= lo <= hi, got {(lo, hi)}"
            )
    rng = as_rng(seed)

    l = exec_times.num_machines
    p = graph.num_data_items
    rows = num_pairs(l)
    if p == 0 or rows == 0:
        return TransferTimeMatrix(np.zeros((rows, p)), l)

    base = np.empty(p)
    for d in graph.data_items:
        anchor = exec_times.average_time(d.producer)
        base[d.index] = ccr * anchor * rng.uniform(*item_jitter)
    pair_factor = rng.uniform(*pair_jitter, size=rows)
    return TransferTimeMatrix(pair_factor[:, None] * base[None, :], l)


def ccr_class(value: float) -> str:
    """Qualitative class of a numeric CCR (nearest of the paper's values)."""
    return min(CCR_CLASSES, key=lambda name: abs(CCR_CLASSES[name] - value))
