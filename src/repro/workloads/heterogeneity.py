"""Execution-time matrix generation with controlled heterogeneity (paper §5).

The paper classifies workloads by "the degree of heterogeneity of
subtasks, which defines the difference in execution times of subtasks on
the different machines".  We use the *range-based* method of Braun et
al. [4]:

    E[m, t] = tau_t * u_{m,t}

where ``tau_t ~ U(task_range)`` is the task's intrinsic cost and
``u_{m,t} ~ U(1, machine_factor)`` spreads it across machines.  The
``machine_factor`` maps the qualitative classes:

* low    → 1.1   (≈3% mean coefficient of variation)
* medium → 3.0   (machine choice matters)
* high   → 10.0  (wrong machine = order-of-magnitude penalty)

Two consistency modes:

* ``inconsistent`` (default, matching the general HC setting): ``u`` is
  drawn independently per (machine, task) — a machine can be fast for
  one subtask and slow for another (SIMD vs MIMD vs FFT engines).
* ``consistent``: one speed factor per machine applied to every task —
  machines form a strict speed hierarchy.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.model.matrices import ExecutionTimeMatrix
from repro.utils.rng import RandomSource, as_rng

Consistency = Literal["inconsistent", "consistent"]

#: Mapping of the paper's qualitative heterogeneity classes to the
#: range-based machine factor.
HETEROGENEITY_FACTOR = {"low": 1.1, "medium": 3.0, "high": 10.0}


def execution_matrix(
    num_machines: int,
    num_tasks: int,
    machine_factor: float = 3.0,
    task_range: tuple[float, float] = (10.0, 100.0),
    consistency: Consistency = "inconsistent",
    seed: RandomSource = None,
) -> ExecutionTimeMatrix:
    """Generate an ``l x k`` execution-time matrix.

    Parameters
    ----------
    num_machines, num_tasks:
        ``l`` and ``k``.
    machine_factor:
        Upper bound of the per-machine multiplier ``u ~ U(1, factor)``;
        must be >= 1.  See :data:`HETEROGENEITY_FACTOR` for the class
        mapping.
    task_range:
        Range of the intrinsic task cost ``tau``.
    consistency:
        ``"inconsistent"`` (independent per cell) or ``"consistent"``
        (one factor per machine).
    seed:
        Randomness source.
    """
    if num_machines < 1 or num_tasks < 1:
        raise ValueError(
            f"need at least one machine and one task, got "
            f"l={num_machines}, k={num_tasks}"
        )
    if machine_factor < 1.0:
        raise ValueError(
            f"machine_factor must be >= 1, got {machine_factor}"
        )
    lo, hi = task_range
    if lo <= 0 or hi < lo:
        raise ValueError(
            f"task_range must satisfy 0 < lo <= hi, got {task_range}"
        )
    rng = as_rng(seed)

    tau = rng.uniform(lo, hi, size=num_tasks)
    if consistency == "inconsistent":
        u = rng.uniform(1.0, machine_factor, size=(num_machines, num_tasks))
    elif consistency == "consistent":
        speed = rng.uniform(1.0, machine_factor, size=num_machines)
        u = np.repeat(speed[:, None], num_tasks, axis=1)
    else:
        raise ValueError(f"unknown consistency {consistency!r}")
    return ExecutionTimeMatrix(tau[None, :] * u)


def heterogeneity_factor(level: str) -> float:
    """Resolve a qualitative level name to its machine factor."""
    try:
        return HETEROGENEITY_FACTOR[level]
    except KeyError:
        raise ValueError(
            f"unknown heterogeneity level {level!r}; "
            f"expected one of {sorted(HETEROGENEITY_FACTOR)}"
        ) from None
