"""Random DAG generation (paper §5).

The paper evaluates on randomly generated workloads because "a generally
accepted set of HC benchmarks does not exist".  Its DAGs are classified
by **connectivity** — the number of data items relative to the number of
subtasks.  Two generators are provided:

* :func:`layered_dag` — the common layer-by-layer construction: subtasks
  are partitioned into levels and data items connect earlier levels to
  later ones, with the expected number of items per consumer set by the
  connectivity knob.  This mirrors the coarse-grained decomposition of a
  real application (stages feeding stages).
* :func:`gnp_dag` — an Erdős–Rényi-style DAG (each forward pair gets an
  edge independently), useful for property tests and stress tests.

Every edge is materialised as one :class:`~repro.model.task.DataItem`
whose size is drawn here and later monetised into transfer times by
:mod:`repro.workloads.ccr`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.model.graph import TaskGraph
from repro.model.task import DataItem, Subtask
from repro.utils.rng import RandomSource, as_rng

#: Mapping of the paper's qualitative connectivity classes to the mean
#: number of data items per non-entry subtask.
CONNECTIVITY_EDGES_PER_TASK = {"low": 1.0, "medium": 2.0, "high": 4.0}


def _partition_levels(
    rng: np.random.Generator, num_tasks: int, num_levels: int
) -> list[list[int]]:
    """Split tasks 0..k-1 into *num_levels* non-empty ordered levels."""
    if num_levels > num_tasks:
        raise ValueError(
            f"num_levels ({num_levels}) cannot exceed num_tasks ({num_tasks})"
        )
    # one guaranteed member per level, remaining tasks spread at random
    counts = np.ones(num_levels, dtype=int)
    extra = rng.multinomial(num_tasks - num_levels, [1 / num_levels] * num_levels)
    counts += extra
    levels: list[list[int]] = []
    start = 0
    for c in counts:
        levels.append(list(range(start, start + int(c))))
        start += int(c)
    return levels


def layered_dag(
    num_tasks: int,
    num_levels: Optional[int] = None,
    edges_per_task: float = 2.0,
    size_range: tuple[float, float] = (0.5, 1.5),
    locality: float = 0.6,
    seed: RandomSource = None,
) -> TaskGraph:
    """Generate a layered random DAG.

    Parameters
    ----------
    num_tasks:
        ``k`` (>= 1).
    num_levels:
        Number of layers; defaults to ``round(sqrt(k))`` clamped to
        [2, k] which gives the balanced diamond shape typical of
        coarse-grained applications.
    edges_per_task:
        Expected number of *incoming* data items per non-first-level
        subtask — the connectivity knob (see
        :data:`CONNECTIVITY_EDGES_PER_TASK`).
    size_range:
        Data item sizes are drawn uniformly from this range.
    locality:
        Probability that an item's producer comes from the immediately
        preceding level (otherwise a uniformly random earlier level);
        higher locality = chain-ier graphs.
    seed:
        Randomness source.

    Every non-first-level subtask receives at least one incoming item, so
    the graph has a single "wave" structure with no isolated islands
    beyond the first level.
    """
    if num_tasks < 1:
        raise ValueError(f"num_tasks must be >= 1, got {num_tasks}")
    if edges_per_task < 0:
        raise ValueError(f"edges_per_task must be >= 0, got {edges_per_task}")
    if not 0.0 <= locality <= 1.0:
        raise ValueError(f"locality must be in [0, 1], got {locality}")
    lo, hi = size_range
    if lo < 0 or hi < lo:
        raise ValueError(f"size_range must satisfy 0 <= lo <= hi, got {size_range}")
    rng = as_rng(seed)

    if num_tasks == 1:
        return TaskGraph([Subtask(0)], [])

    if num_levels is None:
        num_levels = int(round(num_tasks**0.5))
    num_levels = max(2, min(num_levels, num_tasks))
    levels = _partition_levels(rng, num_tasks, num_levels)

    edges: set[tuple[int, int]] = set()
    for li in range(1, num_levels):
        earlier = [t for lvl in levels[:li] for t in lvl]
        prev = levels[li - 1]
        for consumer in levels[li]:
            # at least one incoming item; Poisson around the target rate
            n_in = max(1, int(rng.poisson(edges_per_task)))
            n_in = min(n_in, len(earlier))
            producers: set[int] = set()
            while len(producers) < n_in:
                if rng.random() < locality or len(earlier) == len(prev):
                    producers.add(prev[int(rng.integers(len(prev)))])
                else:
                    producers.add(earlier[int(rng.integers(len(earlier)))])
            for producer in producers:
                edges.add((producer, consumer))

    items = [
        DataItem(
            i,
            producer=u,
            consumer=v,
            size=float(rng.uniform(lo, hi)),
        )
        for i, (u, v) in enumerate(sorted(edges))
    ]
    return TaskGraph([Subtask(t) for t in range(num_tasks)], items)


def gnp_dag(
    num_tasks: int,
    edge_probability: float,
    size_range: tuple[float, float] = (0.5, 1.5),
    seed: RandomSource = None,
) -> TaskGraph:
    """Erdős–Rényi-style DAG: forward edge ``(i, j)``, ``i < j``, w.p. *p*.

    Node labels are randomly permuted *positions*, so the topological
    order is not simply ``0..k-1`` (important for not letting tests pass
    by accident).
    """
    if num_tasks < 1:
        raise ValueError(f"num_tasks must be >= 1, got {num_tasks}")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError(
            f"edge_probability must be in [0, 1], got {edge_probability}"
        )
    lo, hi = size_range
    if lo < 0 or hi < lo:
        raise ValueError(f"size_range must satisfy 0 <= lo <= hi, got {size_range}")
    rng = as_rng(seed)

    position_of = rng.permutation(num_tasks)  # task id -> precedence rank
    edges: list[tuple[int, int]] = []
    for u in range(num_tasks):
        for v in range(num_tasks):
            if position_of[u] < position_of[v] and rng.random() < edge_probability:
                edges.append((u, v))
    items = [
        DataItem(i, producer=u, consumer=v, size=float(rng.uniform(lo, hi)))
        for i, (u, v) in enumerate(sorted(edges))
    ]
    return TaskGraph([Subtask(t) for t in range(num_tasks)], items)


def chain_dag(num_tasks: int, size: float = 1.0) -> TaskGraph:
    """A deterministic linear pipeline s0 -> s1 -> ... (tests/examples)."""
    if num_tasks < 1:
        raise ValueError(f"num_tasks must be >= 1, got {num_tasks}")
    items = [
        DataItem(i, producer=i, consumer=i + 1, size=size)
        for i in range(num_tasks - 1)
    ]
    return TaskGraph([Subtask(t) for t in range(num_tasks)], items)


def fork_join_dag(num_branches: int, size: float = 1.0) -> TaskGraph:
    """A deterministic fork-join: source -> branches -> sink (tests/examples)."""
    if num_branches < 1:
        raise ValueError(f"num_branches must be >= 1, got {num_branches}")
    k = num_branches + 2
    sink = k - 1
    items = []
    idx = 0
    for b in range(1, num_branches + 1):
        items.append(DataItem(idx, producer=0, consumer=b, size=size))
        idx += 1
    for b in range(1, num_branches + 1):
        items.append(DataItem(idx, producer=b, consumer=sink, size=size))
        idx += 1
    return TaskGraph([Subtask(t) for t in range(k)], items)
