"""Named workload presets matching the paper's experiments (§5).

:class:`WorkloadSpec` is the declarative recipe — size, connectivity,
heterogeneity, CCR, seed — and :func:`build_workload` turns it into a
concrete :class:`~repro.model.workload.Workload`.  The ``figureN_*``
helpers pin the parameters the paper states for each experiment:

* Fig. 3: "workload of large size and high connectivity";
* Fig. 4a/4b: "large size" with low / high heterogeneity, 20 machines
  (so the studied Y values 5, 9, 12 make sense);
* Figs. 5-7: "100 tasks and 20 machines" with high connectivity /
  CCR = 1 / (low connectivity, low heterogeneity, CCR = 0.1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.model.system import HCSystem
from repro.model.workload import Workload, WorkloadClass
from repro.utils.rng import RandomSource, spawn_rngs
from repro.workloads.ccr import transfer_matrix
from repro.workloads.generator import CONNECTIVITY_EDGES_PER_TASK, layered_dag
from repro.workloads.heterogeneity import execution_matrix, heterogeneity_factor


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative workload recipe along the paper's three axes.

    Attributes
    ----------
    num_tasks, num_machines:
        Problem size (``k``, ``l``).
    connectivity:
        ``"low" | "medium" | "high"`` — mean incoming data items per
        subtask (1 / 2 / 4).
    heterogeneity:
        ``"low" | "medium" | "high"`` — range-based machine factor
        (1.1 / 3 / 10).
    ccr:
        Numeric communication-to-cost target.
    consistency:
        Execution-matrix consistency mode (see
        :mod:`repro.workloads.heterogeneity`).
    seed:
        Randomness source for the whole build (graph, E, Tr derive
        independent child streams, so e.g. changing only CCR keeps the
        same DAG).
    name:
        Optional label for reports.
    t_arrival:
        Service arrival time of the job this spec describes (online
        scheduling, :mod:`repro.online`).  ``0.0`` — the default — is
        the offline case: the job is present from the start.  Purely
        metadata for :func:`build_workload`; the online service reads it
        off the :class:`~repro.online.arrivals.JobStream`.
    distribution:
        Duration-noise model of the workload this spec describes
        (``"deterministic"`` / ``"uniform:<w>"`` / ``"lognormal:<s>"``
        / ``"empirical:<f1,f2,...>"``, see :mod:`repro.stochastic`).
        Like ``t_arrival`` this is metadata: :func:`build_workload`
        still materialises the *nominal* matrices; risk-aware runs pass
        the spec to their engine config and sample scenarios around
        that nominal workload.
    """

    num_tasks: int = 100
    num_machines: int = 20
    connectivity: str = "medium"
    heterogeneity: str = "medium"
    ccr: float = 0.5
    consistency: str = "inconsistent"
    seed: RandomSource = None
    name: str = ""
    t_arrival: float = 0.0
    distribution: str = "deterministic"

    def size_class(self) -> str:
        """The paper's small/large vocabulary (threshold at 50 subtasks)."""
        return "small" if self.num_tasks < 50 else "large"

    def with_seed(self, seed: RandomSource) -> "WorkloadSpec":
        return replace(self, seed=seed)


def build_workload(spec: WorkloadSpec) -> Workload:
    """Materialise *spec* into a :class:`Workload`."""
    if spec.connectivity not in CONNECTIVITY_EDGES_PER_TASK:
        raise ValueError(
            f"unknown connectivity {spec.connectivity!r}; expected one of "
            f"{sorted(CONNECTIVITY_EDGES_PER_TASK)}"
        )
    if spec.distribution != "deterministic":
        # metadata-only, but fail fast on typos instead of at run time
        from repro.stochastic.distributions import resolve_distribution

        resolve_distribution(spec.distribution)
    rng_graph, rng_exec, rng_tr = spawn_rngs(spec.seed, 3)

    graph = layered_dag(
        spec.num_tasks,
        edges_per_task=CONNECTIVITY_EDGES_PER_TASK[spec.connectivity],
        seed=rng_graph,
    )
    e = execution_matrix(
        spec.num_machines,
        spec.num_tasks,
        machine_factor=heterogeneity_factor(spec.heterogeneity),
        consistency=spec.consistency,  # type: ignore[arg-type]
        seed=rng_exec,
    )
    tr = transfer_matrix(graph, e, spec.ccr, seed=rng_tr)
    system = HCSystem.of_size(spec.num_machines)
    name = spec.name or (
        f"k{spec.num_tasks}-l{spec.num_machines}-{spec.connectivity}conn-"
        f"{spec.heterogeneity}het-ccr{spec.ccr:g}"
    )
    return Workload(
        graph,
        system,
        e,
        tr,
        classification=WorkloadClass(
            connectivity=spec.connectivity,
            heterogeneity=spec.heterogeneity,
            ccr=spec.ccr,
            size=spec.size_class(),
        ),
        name=name,
    )


# ----------------------------------------------------------------------
# paper-experiment presets
# ----------------------------------------------------------------------


def small_spec(seed: RandomSource = None) -> WorkloadSpec:
    """Recipe of :func:`small_workload` (20 tasks, 5 machines)."""
    return WorkloadSpec(
        num_tasks=20,
        num_machines=5,
        connectivity="medium",
        heterogeneity="medium",
        ccr=0.5,
        seed=seed,
        name="small-medium",
    )


def small_workload(seed: RandomSource = None) -> Workload:
    """A small instance (20 tasks, 5 machines) for quick studies/tests."""
    return build_workload(small_spec(seed))


def figure3_spec(seed: RandomSource = None) -> WorkloadSpec:
    """Recipe of :func:`figure3_workload`."""
    return WorkloadSpec(
        num_tasks=100,
        num_machines=20,
        connectivity="high",
        heterogeneity="medium",
        ccr=0.5,
        seed=seed,
        name="fig3-large-highconn",
    )


def figure3_workload(seed: RandomSource = None) -> Workload:
    """Fig. 3 (§5.1): large size, high connectivity."""
    return build_workload(figure3_spec(seed))


def figure4a_spec(seed: RandomSource = None) -> WorkloadSpec:
    """Recipe of :func:`figure4a_workload`."""
    return WorkloadSpec(
        num_tasks=100,
        num_machines=20,
        connectivity="medium",
        heterogeneity="low",
        ccr=0.5,
        seed=seed,
        name="fig4a-lowhet",
    )


def figure4a_workload(seed: RandomSource = None) -> Workload:
    """Fig. 4a (§5.2): large size, LOW heterogeneity, 20 machines."""
    return build_workload(figure4a_spec(seed))


def figure4b_spec(seed: RandomSource = None) -> WorkloadSpec:
    """Recipe of :func:`figure4b_workload`."""
    return WorkloadSpec(
        num_tasks=100,
        num_machines=20,
        connectivity="medium",
        heterogeneity="high",
        ccr=0.5,
        seed=seed,
        name="fig4b-highhet",
    )


def figure4b_workload(seed: RandomSource = None) -> Workload:
    """Fig. 4b (§5.2): large size, HIGH heterogeneity, 20 machines."""
    return build_workload(figure4b_spec(seed))


def figure5_spec(seed: RandomSource = None) -> WorkloadSpec:
    """Recipe of :func:`figure5_workload`."""
    return WorkloadSpec(
        num_tasks=100,
        num_machines=20,
        connectivity="high",
        heterogeneity="medium",
        ccr=0.5,
        seed=seed,
        name="fig5-highconn",
    )


def figure5_workload(seed: RandomSource = None) -> Workload:
    """Fig. 5 (§5.3): 100 tasks, 20 machines, high connectivity."""
    return build_workload(figure5_spec(seed))


def figure6_spec(seed: RandomSource = None) -> WorkloadSpec:
    """Recipe of :func:`figure6_workload`."""
    return WorkloadSpec(
        num_tasks=100,
        num_machines=20,
        connectivity="medium",
        heterogeneity="medium",
        ccr=1.0,
        seed=seed,
        name="fig6-ccr1",
    )


def figure6_workload(seed: RandomSource = None) -> Workload:
    """Fig. 6 (§5.3): 100 tasks, 20 machines, CCR = 1."""
    return build_workload(figure6_spec(seed))


def figure7_spec(seed: RandomSource = None) -> WorkloadSpec:
    """Recipe of :func:`figure7_workload`."""
    return WorkloadSpec(
        num_tasks=100,
        num_machines=20,
        connectivity="low",
        heterogeneity="low",
        ccr=0.1,
        seed=seed,
        name="fig7-loweverything",
    )


def figure7_workload(seed: RandomSource = None) -> Workload:
    """Fig. 7 (§5.3): low connectivity, low heterogeneity, CCR = 0.1."""
    return build_workload(
        figure7_spec(seed)
    )
