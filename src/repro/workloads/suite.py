"""Workload suites: grids over the paper's classification axes.

The paper's conclusions are phrased per workload *class* ("SE wins for
high connectivity and/or high heterogeneity and/or high CCR").  A
:class:`WorkloadSuite` materialises a grid of specs — optionally with
several seeds per cell — so experiments can aggregate over classes
instead of cherry-picking single instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.model.workload import Workload
from repro.utils.rng import RandomSource, as_rng
from repro.workloads.presets import WorkloadSpec, build_workload


@dataclass(frozen=True)
class SuiteCell:
    """One grid cell: the spec plus its replicate index."""

    spec: WorkloadSpec
    replicate: int

    def build(self) -> Workload:
        return build_workload(self.spec)


class WorkloadSuite:
    """A grid of workload specs over the three classification axes."""

    def __init__(
        self,
        num_tasks: int = 100,
        num_machines: int = 20,
        connectivities: Sequence[str] = ("low", "medium", "high"),
        heterogeneities: Sequence[str] = ("low", "medium", "high"),
        ccrs: Sequence[float] = (0.1, 0.5, 1.0),
        replicates: int = 1,
        seed: RandomSource = None,
    ):
        if replicates < 1:
            raise ValueError(f"replicates must be >= 1, got {replicates}")
        if not connectivities or not heterogeneities or not ccrs:
            raise ValueError("every axis needs at least one value")
        self._cells: list[SuiteCell] = []
        rng = as_rng(seed)
        for conn in connectivities:
            for het in heterogeneities:
                for ccr in ccrs:
                    for rep in range(replicates):
                        child_seed = int(rng.integers(0, 2**63 - 1))
                        spec = WorkloadSpec(
                            num_tasks=num_tasks,
                            num_machines=num_machines,
                            connectivity=conn,
                            heterogeneity=het,
                            ccr=ccr,
                            seed=child_seed,
                            name=(
                                f"suite-{conn}conn-{het}het-ccr{ccr:g}-r{rep}"
                            ),
                        )
                        self._cells.append(SuiteCell(spec, rep))

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self) -> Iterator[SuiteCell]:
        return iter(self._cells)

    @property
    def cells(self) -> tuple[SuiteCell, ...]:
        return tuple(self._cells)

    def build_all(self) -> list[Workload]:
        """Materialise every cell (memory scales with the grid size)."""
        return [cell.build() for cell in self._cells]


def paper_comparison_suite(
    seed: RandomSource = None, replicates: int = 1
) -> WorkloadSuite:
    """The §5.3 grid: 100 tasks x 20 machines over all three axes."""
    return WorkloadSuite(
        num_tasks=100,
        num_machines=20,
        replicates=replicates,
        seed=seed,
    )


def smoke_suite(seed: RandomSource = None) -> WorkloadSuite:
    """A tiny 2x2x2 grid of small workloads for tests and quick checks."""
    return WorkloadSuite(
        num_tasks=20,
        num_machines=4,
        connectivities=("low", "high"),
        heterogeneities=("low", "high"),
        ccrs=(0.1, 1.0),
        replicates=1,
        seed=seed,
    )
