"""Random workload generation along the paper's axes (§5).

Connectivity (:mod:`~repro.workloads.generator`), heterogeneity
(:mod:`~repro.workloads.heterogeneity`), CCR (:mod:`~repro.workloads.ccr`),
plus named presets for every paper experiment
(:mod:`~repro.workloads.presets`) and grid suites
(:mod:`~repro.workloads.suite`).
"""

from repro.workloads.ccr import CCR_CLASSES, ccr_class, transfer_matrix
from repro.workloads.generator import (
    CONNECTIVITY_EDGES_PER_TASK,
    chain_dag,
    fork_join_dag,
    gnp_dag,
    layered_dag,
)
from repro.workloads.heterogeneity import (
    HETEROGENEITY_FACTOR,
    execution_matrix,
    heterogeneity_factor,
)
from repro.workloads.presets import (
    WorkloadSpec,
    build_workload,
    figure3_spec,
    figure3_workload,
    figure4a_spec,
    figure4a_workload,
    figure4b_spec,
    figure4b_workload,
    figure5_spec,
    figure5_workload,
    figure6_spec,
    figure6_workload,
    figure7_spec,
    figure7_workload,
    small_spec,
    small_workload,
)
from repro.workloads.suite import (
    SuiteCell,
    WorkloadSuite,
    paper_comparison_suite,
    smoke_suite,
)

__all__ = [
    "CCR_CLASSES",
    "ccr_class",
    "transfer_matrix",
    "CONNECTIVITY_EDGES_PER_TASK",
    "chain_dag",
    "fork_join_dag",
    "gnp_dag",
    "layered_dag",
    "HETEROGENEITY_FACTOR",
    "execution_matrix",
    "heterogeneity_factor",
    "WorkloadSpec",
    "build_workload",
    "figure3_spec",
    "figure3_workload",
    "figure4a_spec",
    "figure4a_workload",
    "figure4b_spec",
    "figure4b_workload",
    "figure5_spec",
    "figure5_workload",
    "figure6_spec",
    "figure6_workload",
    "figure7_spec",
    "figure7_workload",
    "small_spec",
    "small_workload",
    "SuiteCell",
    "WorkloadSuite",
    "paper_comparison_suite",
    "smoke_suite",
]
