"""Configuration of the Simulated Evolution engine.

All tunables named in the paper live here with their paper-recommended
defaults and ranges:

* ``selection_bias`` — the paper's ``B`` (§4.4): negative (−0.1..−0.3)
  for small problems to force a thorough search, slightly positive
  (0..0.1) for large problems to limit selection-set size.
* ``y_candidates`` — the paper's ``Y`` (§4.5): how many best-matching
  machines allocation may try per subtask; trades run time for quality
  (Figures 4a/4b study it).
* ``allocation_slots`` — ``"per-machine"`` uses the insertion-slot
  equivalence optimisation (identical reachable schedules, fewer
  simulator calls); ``"all-positions"`` is the literal every-position
  enumeration kept for the ABL-SLOT ablation.

Beyond the paper, ``network`` selects the simulator backend the run
optimises against (see :mod:`repro.schedule.backend`): the paper's
``"contention-free"`` model or the NIC-serialisation model ``"nic"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

from repro.optim.objective import resolve_objective
from repro.optim.stop import StopPolicy
from repro.schedule.backend import (
    DEFAULT_NETWORK,
    DEFAULT_PLATFORM,
    resolve_platform,
)
from repro.stochastic.distributions import validate_scenario_settings
from repro.utils.rng import RandomSource

AllocationSlots = Literal["per-machine", "all-positions"]
ProbeEvaluation = Literal["delta", "batch"]

#: Heuristic from §4.4 for picking a default bias from problem size.
SMALL_PROBLEM_TASKS = 50


def default_bias(num_tasks: int) -> float:
    """The paper's guidance: negative ``B`` for small DAGs, positive for large.

    We map "small" (< ``SMALL_PROBLEM_TASKS`` subtasks) to −0.2 (middle of
    the paper's −0.1..−0.3 band) and "large" to +0.05 (middle of 0..0.1).
    """
    return -0.2 if num_tasks < SMALL_PROBLEM_TASKS else 0.05


@dataclass
class SEConfig:
    """Parameters of one :class:`~repro.core.engine.SimulatedEvolution` run.

    Attributes
    ----------
    selection_bias:
        The bias ``B`` added to goodness before the selection coin flip;
        ``None`` picks :func:`default_bias` from the workload size.
    y_candidates:
        The ``Y`` parameter — number of best-matching machines tried per
        relocated subtask; ``None`` means all machines (``Y = l``).
    max_iterations:
        Iteration cap (one iteration = evaluation + selection + allocation).
    time_limit:
        Optional wall-clock cap in seconds; whichever of the two limits
        hits first stops the run.
    stall_iterations:
        Stop early after this many consecutive iterations without
        improvement of the best makespan (``None`` disables).
    initial_shuffle_range:
        The initial solution applies a uniformly random number of valid
        moves drawn from this inclusive ``(lo_factor, hi_factor)`` range,
        scaled by ``k`` (paper §4.2 "modified a random number of times").
    allocation_slots:
        Slot-enumeration strategy, see module docstring.
    probe_evaluation:
        How allocation scores a selected subtask's (machine, slot)
        candidates: ``"delta"`` (default) probes one at a time through
        the backend's incremental ``evaluate_delta`` with
        branch-and-bound pruning; ``"batch"`` scores each subtask's
        whole candidate set in one vectorized
        :class:`~repro.schedule.vectorized.BatchSimulator` sweep (on
        backends without a batch kernel it degrades to a scalar loop).
        Both pick bit-identical moves, so the SE trajectory does not
        change.  Delta usually wins here — the running-best cutoff
        prunes most of each probe's walk, which a batch cannot exploit —
        but the switch makes the trade measurable (MICRO-BATCH-SE).
    adaptive_target:
        Extension beyond the paper: when set (a fraction in (0, 1]),
        the engine ignores ``selection_bias`` and re-solves, every
        iteration, for the bias whose *expected* selection fraction
        equals this target (see
        :func:`repro.core.selection.bias_for_target_fraction`).  Keeps
        selection pressure constant even after goodness saturates.
    network:
        Simulator backend name the run optimises against (extension
        beyond the paper): ``"contention-free"`` (paper model, default)
        or ``"nic"`` (one outgoing link per machine; see
        :mod:`repro.extensions.contention`).  Resolved through
        :func:`repro.schedule.backend.make_simulator`, so downstream
        models registered with ``register_network`` work too.
    platform:
        Platform (machine catalog) name the run is costed against; the
        default ``"uniform"`` reproduces the historical behaviour bit
        for bit (see :mod:`repro.model.platform`).
    objective:
        ``"makespan"`` (default), ``"weighted:<w_m>:<w_c>"``, or a
        scenario (risk) objective ``mean`` / ``quantile:<q>`` /
        ``cvar:<q>`` / ``saa:<T>:<eps>`` — the scalar
        evaluation/allocation optimise (see
        :mod:`repro.optim.objective`).
    scenarios, distribution, scenario_seed:
        Monte-Carlo axis of the scenario objectives: sample
        ``scenarios`` perturbations of the matrices from
        ``distribution`` (``"lognormal:0.25"``, ``"uniform:0.2"``,
        ``"empirical:1,1,1,4"``, ...) under ``scenario_seed`` and
        optimise the objective's reduction over them (see
        :mod:`repro.stochastic`).  Only valid together with a scenario
        objective.
    seed:
        Seed / generator for all stochastic choices of the run.

    To keep per-iteration copies of the working string, pass a
    :class:`repro.core.observers.StringSnapshots` observer to the engine
    instead of a config flag (memory cost is then explicit at the call
    site).
    """

    selection_bias: Optional[float] = None
    adaptive_target: Optional[float] = None
    y_candidates: Optional[int] = None
    max_iterations: int = 1000
    time_limit: Optional[float] = None
    stall_iterations: Optional[int] = None
    initial_shuffle_range: tuple[float, float] = (1.0, 3.0)
    allocation_slots: AllocationSlots = "per-machine"
    probe_evaluation: ProbeEvaluation = "delta"
    network: str = DEFAULT_NETWORK
    platform: str = DEFAULT_PLATFORM
    objective: str = "makespan"
    scenarios: int = 0
    distribution: str = "deterministic"
    scenario_seed: int = 0
    seed: RandomSource = None

    def __post_init__(self) -> None:
        if self.selection_bias is not None and not -1.0 <= self.selection_bias <= 1.0:
            raise ValueError(
                f"selection_bias must be in [-1, 1], got {self.selection_bias}"
            )
        if self.adaptive_target is not None and not 0.0 < self.adaptive_target <= 1.0:
            raise ValueError(
                f"adaptive_target must be in (0, 1], got {self.adaptive_target}"
            )
        if self.y_candidates is not None and self.y_candidates < 1:
            raise ValueError(
                f"y_candidates must be >= 1, got {self.y_candidates}"
            )
        if self.max_iterations < 0:
            raise ValueError(
                f"max_iterations must be >= 0, got {self.max_iterations}"
            )
        if self.time_limit is not None and self.time_limit < 0:
            raise ValueError(f"time_limit must be >= 0, got {self.time_limit}")
        if self.stall_iterations is not None and self.stall_iterations < 1:
            raise ValueError(
                f"stall_iterations must be >= 1, got {self.stall_iterations}"
            )
        lo, hi = self.initial_shuffle_range
        if lo < 0 or hi < lo:
            raise ValueError(
                f"initial_shuffle_range must satisfy 0 <= lo <= hi, got {lo, hi}"
            )
        if self.allocation_slots not in ("per-machine", "all-positions"):
            raise ValueError(
                f"allocation_slots must be 'per-machine' or 'all-positions', "
                f"got {self.allocation_slots!r}"
            )
        if self.probe_evaluation not in ("delta", "batch"):
            raise ValueError(
                f"probe_evaluation must be 'delta' or 'batch', "
                f"got {self.probe_evaluation!r}"
            )
        if not isinstance(self.network, str) or not self.network:
            raise ValueError(
                f"network must be a backend name string, got {self.network!r}"
            )
        resolve_platform(self.platform)
        resolve_objective(self.objective)
        validate_scenario_settings(
            self.objective, self.scenarios, self.distribution
        )

    def stop_policy(self) -> StopPolicy:
        """The run's stopping rules as a shared :class:`StopPolicy`."""
        return StopPolicy(
            max_iterations=self.max_iterations,
            time_limit=self.time_limit,
            stall_iterations=self.stall_iterations,
        )

    def resolved_bias(self, num_tasks: int) -> float:
        """The bias actually used for a workload of *num_tasks* subtasks."""
        if self.selection_bias is not None:
            return self.selection_bias
        return default_bias(num_tasks)

    def resolved_y(self, num_machines: int) -> int:
        """The ``Y`` actually used for a system of *num_machines* machines."""
        if self.y_candidates is None:
            return num_machines
        return min(self.y_candidates, num_machines)
