"""The SE allocation step (paper §4.5).

Allocation is **constructive**: each selected subtask, taken in ascending
DAG-level order, is removed from its location and greedily re-placed at
the combination of (string position, machine) that yields the best
overall schedule length.  Two controls bound the enumeration:

* the **valid moving range** — only dependency-safe positions are tried;
* the **Y parameter** — only the subtask's ``Y`` best-matching machines
  (by execution time) are candidates.  Small ``Y`` = fast iterations,
  large ``Y`` = wider search; Figures 4a/4b study the trade-off.

Slot enumeration: with ``"per-machine"`` strategy (default) only one
insertion index per *distinct per-machine order* is evaluated — positions
between the same two same-machine neighbours produce identical schedules,
so enumerating them all (``"all-positions"``, kept for the ABL-SLOT
ablation) wastes simulator calls without reaching any extra schedule.

Probe evaluation is **incremental** by default: relocating a subtask
from position ``p`` to insertion index ``i`` leaves the string prefix
before ``min(p, i)`` untouched, so each probe is scored with
:meth:`~repro.schedule.simulator.Simulator.evaluate_delta` against a
:class:`~repro.schedule.simulator.DeltaState` prepared once per selected
subtask.  The running best cost doubles as a branch-and-bound cutoff.
With ``probes="batch"`` the whole candidate set of a selected subtask is
scored instead in one vectorized sweep through the backend's batch
kernel (:class:`~repro.schedule.vectorized.BatchSimulator`); the
first-strict-improvement scan over the returned costs reproduces the
sequential tie-breaks exactly.  Probe outcomes — and therefore the whole
SE trajectory — are bit-identical across all three evaluation strategies
(see ``tests/properties/test_delta_properties.py`` and
``tests/properties/test_batch_properties.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.model.workload import Workload
from repro.schedule.backend import SimulatorBackend
from repro.schedule.encoding import ScheduleString
from repro.schedule.simulator import Schedule
from repro.schedule.valid_range import (
    machine_slot_indices,
    valid_insertion_range,
)


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of one allocation step over a selection set.

    Attributes
    ----------
    makespan:
        Schedule length of the string after all relocations.
    trials:
        Number of simulator calls (candidate probes + full prepares).
    moved:
        Number of subtasks whose placement actually changed.
    schedule:
        The fully evaluated post-allocation schedule — a byproduct of the
        final :meth:`~repro.schedule.simulator.Simulator.prepare`, so the
        engine does not need to re-evaluate the string.
    """

    makespan: float
    trials: int
    moved: int
    schedule: Optional[Schedule] = None


class Allocator:
    """Reusable allocation-step executor for one workload.

    Parameters
    ----------
    workload / simulator:
        The problem instance and its evaluation context — any
        :class:`~repro.schedule.backend.SimulatorBackend` (the paper's
        contention-free :class:`~repro.schedule.simulator.Simulator` or
        the NIC-contention backend); probes always go through the
        backend's ``evaluate_delta``.
    y_candidates:
        The resolved ``Y`` (1..l).
    slots:
        ``"per-machine"`` or ``"all-positions"`` (see module docstring).
    probes:
        ``"delta"`` (incremental + cutoff, default) or ``"batch"``
        (vectorized candidate sweeps; requires a backend created with
        ``make_simulator(..., batch=True)``).
    """

    __slots__ = (
        "_workload",
        "_sim",
        "_graph",
        "_y",
        "_slots",
        "_probes",
        "_candidates",
    )

    def __init__(
        self,
        workload: Workload,
        simulator: SimulatorBackend,
        y_candidates: int,
        slots: str = "per-machine",
        probes: str = "delta",
    ):
        if not 1 <= y_candidates <= workload.num_machines:
            raise ValueError(
                f"y_candidates must be in [1, {workload.num_machines}], "
                f"got {y_candidates}"
            )
        if slots not in ("per-machine", "all-positions"):
            raise ValueError(f"unknown slot strategy {slots!r}")
        if probes not in ("delta", "batch"):
            raise ValueError(f"unknown probe strategy {probes!r}")
        if probes == "batch" and not hasattr(simulator, "batch_makespans"):
            raise ValueError(
                "probes='batch' needs a batch-capable backend; build it "
                "with make_simulator(workload, network, batch=True)"
            )
        self._workload = workload
        self._sim = simulator
        self._graph = workload.graph
        self._y = y_candidates
        self._slots = slots
        self._probes = probes
        # Top-Y machines per subtask, fastest first (precomputed ranking).
        e = workload.exec_times
        self._candidates = tuple(
            e.best_machines(t, y_candidates) for t in range(workload.num_tasks)
        )

    @property
    def y_candidates(self) -> int:
        return self._y

    def allocate(
        self, string: ScheduleString, selected: Sequence[int]
    ) -> AllocationResult:
        """Re-place every subtask in *selected* (in the given order).

        Mutates *string* in place.  Returns the resulting makespan and
        enumeration statistics.  With an empty selection set the string
        is untouched and one evaluation reports its makespan.
        """
        sim = self._sim
        graph = self._graph
        order = string.order
        machines = string.machines
        trials = 0
        moved = 0
        # One full evaluation per committed placement; every probe in
        # between is an incremental suffix-only re-evaluation against it.
        state = sim.prepare(order, machines)
        trials += 1

        batch_probes = self._probes == "batch"
        for task in selected:
            orig_pos = string.position_of(task)
            orig_machine = string.machine_of(task)
            best_cost = float("inf")
            best_machine = orig_machine
            best_index = orig_pos

            candidates: list[tuple[int, int]] = []
            probe_orders: list[list[int]] = []
            probe_machines: list[list[int]] = []
            for machine in self._candidates[task]:
                if self._slots == "per-machine":
                    indices = machine_slot_indices(
                        string, graph, task, machine
                    )
                else:
                    lo, hi = valid_insertion_range(string, graph, task)
                    indices = list(range(lo, hi + 1))
                for idx in indices:
                    string.relocate(task, idx, machine)
                    if batch_probes:
                        # snapshot the probe; the whole candidate set is
                        # scored in one vectorized sweep below
                        candidates.append((machine, idx))
                        probe_orders.append(order.copy())
                        probe_machines.append(machines.copy())
                    else:
                        if orig_pos < idx:
                            first, last = orig_pos, idx
                        else:
                            first, last = idx, orig_pos
                        cost = sim.evaluate_delta(
                            order, machines, first, state, best_cost, last
                        )
                        trials += 1
                        if cost < best_cost:
                            best_cost = cost
                            best_machine = machine
                            best_index = idx
                    # revert before the next probe
                    string.relocate(task, orig_pos, orig_machine)

            if batch_probes and candidates:
                # relocations within the valid range are valid by
                # construction, so validation is skipped; the
                # first-strict-improvement scan reproduces the
                # sequential probe order's tie-breaks exactly
                costs = sim.batch_makespans(
                    probe_orders, probe_machines, validate=False
                )
                trials += len(candidates)
                for (machine, idx), cost in zip(candidates, costs.tolist()):
                    if cost < best_cost:
                        best_cost = cost
                        best_machine = machine
                        best_index = idx

            string.relocate(task, best_index, best_machine)
            if best_index != orig_pos or best_machine != orig_machine:
                moved += 1
                # re-snapshot only when the string actually changed; an
                # unmoved subtask leaves the prepared state valid
                state = sim.prepare(order, machines)
                trials += 1

        return AllocationResult(
            makespan=state.makespan,
            trials=trials,
            moved=moved,
            schedule=state.as_schedule(),
        )
