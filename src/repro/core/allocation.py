"""The SE allocation step (paper §4.5).

Allocation is **constructive**: each selected subtask, taken in ascending
DAG-level order, is removed from its location and greedily re-placed at
the combination of (string position, machine) that yields the best
overall schedule length.  Two controls bound the enumeration:

* the **valid moving range** — only dependency-safe positions are tried;
* the **Y parameter** — only the subtask's ``Y`` best-matching machines
  (by execution time) are candidates.  Small ``Y`` = fast iterations,
  large ``Y`` = wider search; Figures 4a/4b study the trade-off.

Slot enumeration: with ``"per-machine"`` strategy (default) only one
insertion index per *distinct per-machine order* is evaluated — positions
between the same two same-machine neighbours produce identical schedules,
so enumerating them all (``"all-positions"``, kept for the ABL-SLOT
ablation) wastes simulator calls without reaching any extra schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.model.workload import Workload
from repro.schedule.encoding import ScheduleString
from repro.schedule.simulator import Simulator
from repro.schedule.valid_range import (
    machine_slot_indices,
    valid_insertion_range,
)


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of one allocation step over a selection set.

    Attributes
    ----------
    makespan:
        Schedule length of the string after all relocations.
    trials:
        Number of candidate placements evaluated (simulator calls).
    moved:
        Number of subtasks whose placement actually changed.
    """

    makespan: float
    trials: int
    moved: int


class Allocator:
    """Reusable allocation-step executor for one workload.

    Parameters
    ----------
    workload / simulator:
        The problem instance and its evaluation context.
    y_candidates:
        The resolved ``Y`` (1..l).
    slots:
        ``"per-machine"`` or ``"all-positions"`` (see module docstring).
    """

    __slots__ = ("_workload", "_sim", "_graph", "_y", "_slots", "_candidates")

    def __init__(
        self,
        workload: Workload,
        simulator: Simulator,
        y_candidates: int,
        slots: str = "per-machine",
    ):
        if not 1 <= y_candidates <= workload.num_machines:
            raise ValueError(
                f"y_candidates must be in [1, {workload.num_machines}], "
                f"got {y_candidates}"
            )
        if slots not in ("per-machine", "all-positions"):
            raise ValueError(f"unknown slot strategy {slots!r}")
        self._workload = workload
        self._sim = simulator
        self._graph = workload.graph
        self._y = y_candidates
        self._slots = slots
        # Top-Y machines per subtask, fastest first (precomputed ranking).
        e = workload.exec_times
        self._candidates = tuple(
            e.best_machines(t, y_candidates) for t in range(workload.num_tasks)
        )

    @property
    def y_candidates(self) -> int:
        return self._y

    def allocate(
        self, string: ScheduleString, selected: Sequence[int]
    ) -> AllocationResult:
        """Re-place every subtask in *selected* (in the given order).

        Mutates *string* in place.  Returns the resulting makespan and
        enumeration statistics.  With an empty selection set the string
        is untouched and one evaluation reports its makespan.
        """
        sim = self._sim
        graph = self._graph
        trials = 0
        moved = 0

        for task in selected:
            orig_pos = string.position_of(task)
            orig_machine = string.machine_of(task)
            best_cost = float("inf")
            best_machine = orig_machine
            best_index = orig_pos

            for machine in self._candidates[task]:
                if self._slots == "per-machine":
                    indices = machine_slot_indices(
                        string, graph, task, machine
                    )
                else:
                    lo, hi = valid_insertion_range(string, graph, task)
                    indices = list(range(lo, hi + 1))
                for idx in indices:
                    string.relocate(task, idx, machine)
                    cost = sim.makespan(string.order, string.machines)
                    trials += 1
                    if cost < best_cost:
                        best_cost = cost
                        best_machine = machine
                        best_index = idx
                    # revert before the next probe
                    string.relocate(task, orig_pos, orig_machine)

            string.relocate(task, best_index, best_machine)
            if best_index != orig_pos or best_machine != orig_machine:
                moved += 1

        final = sim.makespan(string.order, string.machines)
        return AllocationResult(makespan=final, trials=trials + 1, moved=moved)
