"""The Simulated Evolution engine (paper §3-§4).

One SE iteration = **Evaluation** (goodness ``g_i = O_i/C_i``) →
**Selection** (coin flip against ``g_i + B``) → **Allocation**
(constructive greedy re-placement of the selected subtasks).  The loop
repeats until an iteration cap, a wall-clock limit, or an optional
no-improvement stall is hit.

Typical use (executable — CI runs it under ``--doctest-modules``):

    >>> from repro import SEConfig, SimulatedEvolution, workloads
    >>> w = workloads.small_workload(seed=1)
    >>> result = SimulatedEvolution(SEConfig(seed=1, max_iterations=20)).run(w)
    >>> result.iterations
    20
    >>> result.best_makespan == min(result.trace.best_makespans())
    True

Paper-scale runs use ``workloads.figure5_workload(seed=...)`` (100 tasks,
20 machines) with a few hundred iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.trace import ConvergenceTrace
from repro.core.allocation import Allocator
from repro.core.config import SEConfig
from repro.core.goodness import GoodnessEvaluator
from repro.core.initial import initial_solution
from repro.core.observers import Observer
from repro.core.selection import bias_for_target_fraction, select_subtasks
from repro.model.workload import Workload
from repro.optim import EvaluationService, IncumbentSource, SearchLoop, StepOutcome
from repro.schedule.encoding import ScheduleString
from repro.schedule.simulator import Schedule
from repro.utils.rng import as_rng
from repro.utils.timers import Stopwatch


@dataclass(frozen=True)
class SEResult:
    """Outcome of one SE run.

    Attributes
    ----------
    best_string:
        The best solution found (a copy; safe to keep).
    best_makespan:
        Its schedule length — the paper's objective value, measured
        under the configured ``network`` backend.
    best_schedule:
        The fully evaluated best schedule (start/finish times).
    trace:
        Per-iteration convergence records (feeds Figures 3-7).
    iterations:
        Number of iterations executed.
    evaluations:
        Total simulator calls (cost accounting).
    bias, y_candidates:
        The resolved parameter values actually used.  With the
        adaptive-bias extension enabled, ``bias`` is the value used in
        the *last* iteration (it changes every iteration).
    stopped_by:
        ``"iterations"``, ``"time"`` or ``"stall"``.
    """

    best_string: ScheduleString
    best_makespan: float
    best_schedule: Schedule
    trace: ConvergenceTrace
    iterations: int
    evaluations: int
    bias: float
    y_candidates: int
    stopped_by: str


class SimulatedEvolution:
    """The SE metaheuristic configured by an :class:`SEConfig`."""

    def __init__(self, config: Optional[SEConfig] = None):
        self.config = config or SEConfig()

    def run(
        self,
        workload: Workload,
        observers: Sequence[Observer] = (),
        initial: Optional[ScheduleString] = None,
        exchange: Optional[IncumbentSource] = None,
    ) -> SEResult:
        """Optimise *workload*; see class docstring.

        Parameters
        ----------
        workload:
            The MSHC problem instance.
        observers:
            Callables invoked each iteration with ``(record, string)``.
        initial:
            Optional starting string (copied); defaults to the paper's
            randomised initial solution (§4.2).
        exchange:
            Optional portfolio incumbent source (see
            :mod:`repro.optim.exchange`).  A delivered incumbent
            replaces the working string before the evaluation phase, so
            goodness/selection run against it (one counted evaluation
            to re-anchor); ``None`` leaves the run bit-identical to a
            solo run.
        """
        cfg = self.config
        rng = as_rng(cfg.seed)
        graph = workload.graph
        # The backend is the objective: "nic" makes every probe, commit
        # and best-makespan account for NIC serialisation; a non-default
        # platform/objective makes them cost-aware.  With
        # probe_evaluation="batch" the service routes candidate-set
        # scoring through the network's batch kernel.
        service = EvaluationService(
            workload,
            cfg.network,
            prefer_batch=cfg.probe_evaluation == "batch",
            platform=cfg.platform,
            objective=cfg.objective,
            scenarios=cfg.scenarios,
            distribution=cfg.distribution,
            scenario_seed=cfg.scenario_seed,
        )
        # Goodness and the allocator's machine ranking read the workload
        # the backend actually scores — the platform's speed-scaled
        # matrix (the original object on "uniform", so nothing moves).
        eff = service.effective_workload
        goodness = GoodnessEvaluator(eff)
        bias = cfg.resolved_bias(graph.num_tasks)
        y = cfg.resolved_y(workload.num_machines)
        allocator = Allocator(
            eff,
            service.backend,
            y_candidates=y,
            slots=cfg.allocation_slots,
            probes=cfg.probe_evaluation,
        )

        if initial is None:
            string = initial_solution(
                graph,
                workload.num_machines,
                rng,
                shuffle_range=cfg.initial_shuffle_range,
            )
        else:
            string = initial.copy()

        watch = Stopwatch()
        # prepare() both scores the initial string (counted, exactly as
        # the historical full evaluation was) and yields its schedule;
        # under a weighted objective state.makespan is the scalar the
        # loop compares while the decoded schedule stays real.
        state0 = service.prepare(string.order, string.machines)
        current = state0.as_schedule()
        current_cost = state0.makespan

        def step(iteration: int) -> StepOutcome[ScheduleString]:
            nonlocal bias, current, current_cost, string
            if exchange is not None:
                inc = exchange.incoming(iteration, current_cost)
                if inc is not None:
                    # replace-if-better: evaluation/selection/allocation
                    # run against the foreign incumbent this iteration
                    string = ScheduleString(
                        inc.order, inc.machines, workload.num_machines
                    )
                    st = service.prepare(string.order, string.machines)
                    current = st.as_schedule()
                    current_cost = st.makespan
            # Evaluation (paper §4.3): Ci = finish times of current string.
            g = goodness.goodness(current.finish)

            # Selection (paper §4.4); adaptive-bias extension re-solves
            # for B each iteration to hold the selection fraction steady.
            if cfg.adaptive_target is not None:
                bias = bias_for_target_fraction(g, cfg.adaptive_target)
            selected = select_subtasks(g, graph, bias, rng)

            # Allocation (paper §4.5): greedy constructive re-placement.
            # The allocator's final prepare() already evaluated the new
            # string in full, so its schedule is reused directly.
            alloc = allocator.allocate(string, selected)
            service.count(alloc.trials)
            current = alloc.schedule
            current_cost = alloc.makespan
            return StepOutcome(
                # the backend's scalar: the makespan, or the weighted
                # objective when one is configured
                cost=alloc.makespan,
                candidate=string,
                num_selected=len(selected),
                mean_goodness=float(np.mean(g)),
            )

        loop: SearchLoop[ScheduleString] = SearchLoop(
            stop=cfg.stop_policy(),
            observers=observers,
            evaluations=lambda: service.evaluations,
        )
        out = loop.run(current_cost, string, step, watch=watch)

        best_schedule = service.schedule_of(out.best)
        return SEResult(
            best_string=out.best,
            # under a weighted objective out.best_cost is the scalar;
            # report the schedule's real makespan in that mode
            best_makespan=(
                out.best_cost
                if service.objective.is_makespan
                else best_schedule.makespan
            ),
            best_schedule=best_schedule,
            trace=out.trace,
            iterations=out.iterations,
            evaluations=service.evaluations,
            bias=bias,
            y_candidates=y,
            stopped_by=out.stopped_by,
        )


def run_se(
    workload: Workload,
    config: Optional[SEConfig] = None,
    observers: Sequence[Observer] = (),
    initial: Optional[ScheduleString] = None,
    exchange: Optional[IncumbentSource] = None,
) -> SEResult:
    """Functional convenience wrapper around :class:`SimulatedEvolution`."""
    return SimulatedEvolution(config).run(
        workload, observers=observers, initial=initial, exchange=exchange
    )
