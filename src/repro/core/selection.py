"""The SE selection step (paper §4.4).

For every subtask ``s_i`` a uniform random number ``r`` in [0, 1) is
drawn and compared with ``g_i + B``: the subtask is **selected** for
re-allocation when ``r > g_i + B``.  Low-goodness (badly placed)
subtasks are therefore likely to be selected, while well-placed ones
keep a non-zero escape probability.  The bias ``B`` shifts the whole
threshold: negative values select more subtasks (thorough search, used
for small DAGs), positive values select fewer (faster iterations on
large DAGs).

Selected subtasks are returned **sorted by ascending DAG level** (ties
broken by subtask id for determinism) — the order in which allocation
will re-place them, so producers settle before their consumers.
"""

from __future__ import annotations

import numpy as np

from repro.model.graph import TaskGraph


def select_subtasks(
    goodness: np.ndarray,
    graph: TaskGraph,
    bias: float,
    rng: np.random.Generator,
) -> list[int]:
    """Run one selection step; returns selected subtask ids, level-ordered.

    Parameters
    ----------
    goodness:
        Per-subtask goodness vector in [0, 1].
    graph:
        Supplies DAG levels for the ordering of the result.
    bias:
        The selection bias ``B``.
    rng:
        Randomness source (one uniform draw per subtask).
    """
    k = graph.num_tasks
    if goodness.shape != (k,):
        raise ValueError(
            f"goodness has shape {goodness.shape}, expected ({k},)"
        )
    draws = rng.random(k)
    selected = np.nonzero(draws > goodness + bias)[0]
    levels = graph.levels
    return sorted((int(t) for t in selected), key=lambda t: (levels[t], t))


def bias_for_target_fraction(
    goodness: np.ndarray,
    target: float,
    lo: float = -1.0,
    hi: float = 1.0,
    tol: float = 1e-6,
) -> float:
    """Bias ``B`` whose expected selection fraction is closest to *target*.

    This powers the **adaptive-bias** SE variant (an extension beyond the
    paper, see :class:`~repro.core.config.SEConfig.adaptive_target`): the
    fixed-``B`` prescription of §4.4 starves selection once goodness
    saturates near 1, whereas re-solving for ``B`` each iteration keeps a
    constant fraction of subtasks churning.

    The expected fraction ``mean(1 - clip(g + B, 0, 1))`` is monotone
    non-increasing in ``B``, so a bisection suffices.  The result is
    clamped to ``[lo, hi]``; with an unreachable target (e.g. 0.999 when
    every goodness is already 0) the nearest achievable bias is returned.
    """
    if not 0.0 < target <= 1.0:
        raise ValueError(f"target fraction must be in (0, 1], got {target}")

    def fraction(b: float) -> float:
        return float(np.mean(1.0 - np.clip(goodness + b, 0.0, 1.0)))

    if fraction(lo) <= target:
        return lo
    if fraction(hi) >= target:
        return hi
    a, b = lo, hi
    while b - a > tol:
        mid = (a + b) / 2
        if fraction(mid) > target:
            a = mid
        else:
            b = mid
    return (a + b) / 2


def expected_selection_fraction(goodness: np.ndarray, bias: float) -> float:
    """Expected fraction of subtasks selected given *goodness* and *bias*.

    ``E[|S|]/k = mean(1 - clip(g + B, 0, 1))``.  Used by tests and by the
    effectiveness analysis (Fig. 3a): as the solution improves, goodness
    rises and this fraction falls.
    """
    threshold = np.clip(goodness + bias, 0.0, 1.0)
    return float(np.mean(1.0 - threshold))
