"""SE initial-solution generation (paper §4.2).

The paper builds the first string in three moves:

1. assign every subtask to a uniformly random machine;
2. place subtasks in topologically sorted order (guaranteeing validity);
3. perturb the string "a random number of times" by moving a random
   subtask to a random position inside its valid range.

The perturbation count is drawn uniformly from
``[lo_factor * k, hi_factor * k]`` (k = number of subtasks); the factors
live in :class:`~repro.core.config.SEConfig.initial_shuffle_range`.
"""

from __future__ import annotations

import numpy as np

from repro.model.graph import TaskGraph
from repro.schedule.encoding import ScheduleString
from repro.schedule.operations import shuffle_string


def initial_solution(
    graph: TaskGraph,
    num_machines: int,
    rng: np.random.Generator,
    shuffle_range: tuple[float, float] = (1.0, 3.0),
) -> ScheduleString:
    """Generate a valid initial string per the paper's recipe.

    Parameters
    ----------
    graph:
        The application DAG.
    num_machines:
        ``l``.
    rng:
        Randomness source (machine draws, shuffle count, shuffle moves).
    shuffle_range:
        ``(lo_factor, hi_factor)`` scaling of ``k`` for the perturbation
        count; ``(0, 0)`` yields the plain topological string.
    """
    lo_f, hi_f = shuffle_range
    if lo_f < 0 or hi_f < lo_f:
        raise ValueError(
            f"shuffle_range must satisfy 0 <= lo <= hi, got {shuffle_range}"
        )
    k = graph.num_tasks
    machine_of = [int(m) for m in rng.integers(num_machines, size=k)]
    string = ScheduleString(
        graph.topological_order(), machine_of, num_machines
    )
    lo = int(round(lo_f * k))
    hi = int(round(hi_f * k))
    num_moves = int(rng.integers(lo, hi + 1)) if hi > lo else lo
    shuffle_string(string, graph, rng, num_moves)
    return string
