"""Simulated Evolution for matching and scheduling (the paper's contribution).

The engine in :mod:`repro.core.engine` runs the three-step SE loop —
evaluation (:mod:`~repro.core.goodness`), selection
(:mod:`~repro.core.selection`), allocation (:mod:`~repro.core.allocation`)
— from the randomised initial solution of :mod:`~repro.core.initial`,
configured by :class:`~repro.core.config.SEConfig`.
"""

from repro.core.allocation import AllocationResult, Allocator
from repro.core.config import SEConfig, default_bias
from repro.core.engine import SEResult, SimulatedEvolution, run_se
from repro.core.goodness import (
    GoodnessEvaluator,
    goodness_values,
    optimal_finish_times,
)
from repro.core.initial import initial_solution
from repro.core.observers import (
    Observer,
    ProgressPrinter,
    StallDetector,
    StringSnapshots,
)
from repro.core.selection import (
    bias_for_target_fraction,
    expected_selection_fraction,
    select_subtasks,
)

__all__ = [
    "AllocationResult",
    "Allocator",
    "SEConfig",
    "default_bias",
    "SEResult",
    "SimulatedEvolution",
    "run_se",
    "GoodnessEvaluator",
    "goodness_values",
    "optimal_finish_times",
    "initial_solution",
    "Observer",
    "ProgressPrinter",
    "StallDetector",
    "StringSnapshots",
    "bias_for_target_fraction",
    "expected_selection_fraction",
    "select_subtasks",
]
