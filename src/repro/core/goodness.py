"""The SE evaluation step: goodness ``g_i = O_i / C_i`` (paper §4.3).

``C_i`` is the finishing time of subtask ``s_i`` in the *current*
solution (straight from the simulator).  ``O_i`` is an optimistic
finishing time under the paper's function **F**: ``s_i`` and all its
predecessors sit on their best-matching machines (fastest execution
time).  ``O_i`` depends only on the workload, so it is computed once at
initialisation and reused every generation — exactly as the paper
prescribes ("Oi does not change from one generation to the next").

Concretely we evaluate F with a contention-free recursion over the DAG::

    O_i = E[bm(i), i] + max(0, max over items (prod -> i) of
                              O_prod + Tr[pair(bm(prod), bm(i)), item])

where ``bm(t)`` is the best-matching machine of ``t``.  Machine queueing
among predecessors is ignored (the paper's worked example charges s4 only
the chain through s1 even though s0 and s1 share machine m0, which is
consistent with a contention-free reading; see DESIGN.md).  Because F is
optimistic-but-not-a-true-lower-bound, ``O_i/C_i`` can exceed 1 in odd
corners, so goodness is clamped into [0, 1] to honour the paper's "a
number expressible in the range [0,1]".
"""

from __future__ import annotations

import numpy as np

from repro.model.workload import Workload


def optimal_finish_times(workload: Workload) -> np.ndarray:
    """The vector ``O`` of optimistic finish times (function F), per subtask.

    Computed once per workload in topological order; ``O[i] > 0`` always.
    """
    graph = workload.graph
    e = workload.exec_times
    best = [e.best_machine(t) for t in range(graph.num_tasks)]
    best_time = [e.best_time(t) for t in range(graph.num_tasks)]

    o = np.zeros(graph.num_tasks)
    # group incoming items per consumer once
    incoming: list[list[tuple[int, int]]] = [
        [] for _ in range(graph.num_tasks)
    ]
    for d in graph.data_items:
        incoming[d.consumer].append((d.producer, d.index))

    for t in graph.topological_order():
        ready = 0.0
        bm_t = best[t]
        for prod, item in incoming[t]:
            arrival = o[prod] + workload.comm_time(best[prod], bm_t, item)
            if arrival > ready:
                ready = arrival
        o[t] = ready + best_time[t]
    return o


def goodness_values(
    optimal: np.ndarray, current_finish: list[float] | np.ndarray
) -> np.ndarray:
    """Per-subtask goodness ``min(1, O_i / C_i)``.

    Parameters
    ----------
    optimal:
        The precomputed ``O`` vector from :func:`optimal_finish_times`.
    current_finish:
        The ``C`` vector — per-subtask finish times of the current
        solution (see :meth:`repro.schedule.simulator.Simulator.finish_times`).
    """
    c = np.asarray(current_finish, dtype=float)
    if c.shape != optimal.shape:
        raise ValueError(
            f"finish-time vector has shape {c.shape}, expected {optimal.shape}"
        )
    if np.any(c <= 0):
        raise ValueError("current finish times must be strictly positive")
    return np.minimum(1.0, optimal / c)


class GoodnessEvaluator:
    """Caches ``O`` for a workload and maps solutions to goodness vectors."""

    __slots__ = ("_optimal",)

    def __init__(self, workload: Workload):
        self._optimal = optimal_finish_times(workload)
        self._optimal.setflags(write=False)

    @property
    def optimal(self) -> np.ndarray:
        """The (read-only) ``O`` vector."""
        return self._optimal

    def goodness(self, current_finish: list[float] | np.ndarray) -> np.ndarray:
        """Goodness vector for one solution's finish times."""
        return goodness_values(self._optimal, current_finish)
