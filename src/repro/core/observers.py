"""Observation hooks for the iterative engines.

An engine accepts any number of observers — callables invoked once per
iteration with an :class:`~repro.analysis.trace.IterationRecord` plus the
live working string.  Observers power the figure benchmarks (Fig. 3a/3b
need the per-iteration selected counts and schedule lengths) without the
engine knowing anything about plotting.

The :class:`Observer` protocol itself now lives in
:mod:`repro.optim.observers` (every engine — SE, GA, SA, tabu — shares
one observer bus); it is re-exported here for backwards compatibility,
together with the concrete observers below, which work on all engines.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.analysis.trace import IterationRecord
from repro.optim.observers import Observer
from repro.schedule.encoding import ScheduleString

__all__ = [
    "Observer",
    "ProgressPrinter",
    "StallDetector",
    "StringSnapshots",
]


class StringSnapshots:
    """Observer that keeps a copy of the working string each iteration.

    Memory-heavy (O(iterations * k)); only enable for small studies such
    as the worked examples.
    """

    def __init__(self) -> None:
        self.snapshots: list[ScheduleString] = []

    def __call__(
        self, record: IterationRecord, string: ScheduleString
    ) -> None:
        self.snapshots.append(string.copy())


class ProgressPrinter:
    """Observer that prints a one-line status every *every* iterations."""

    def __init__(self, every: int = 100, out: Optional[Callable[[str], None]] = None):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.every = every
        self._out = out or (lambda s: print(s))

    def __call__(
        self, record: IterationRecord, string: ScheduleString
    ) -> None:
        if record.iteration % self.every == 0:
            self._out(
                f"[it {record.iteration:>6}] current={record.current_makespan:.1f} "
                f"best={record.best_makespan:.1f} "
                f"selected={record.num_selected} "
                f"t={record.elapsed_seconds:.2f}s"
            )


class StallDetector:
    """Tracks the longest streak of non-improving iterations.

    The engine has its own stall-based stopping rule; this observer is
    the read-only counterpart for post-hoc analysis.
    """

    def __init__(self) -> None:
        self._best = float("inf")
        self.current_streak = 0
        self.longest_streak = 0

    def __call__(
        self, record: IterationRecord, string: ScheduleString
    ) -> None:
        if record.best_makespan < self._best:
            self._best = record.best_makespan
            self.current_streak = 0
        else:
            self.current_streak += 1
            if self.current_streak > self.longest_streak:
                self.longest_streak = self.current_streak
