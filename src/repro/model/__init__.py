"""The heterogeneous-computing problem model (paper §2).

Subtasks and data items form a DAG (:class:`TaskGraph`); machines form a
fully connected :class:`HCSystem`; costs live in the execution-time matrix
``E`` and the transfer-time matrix ``Tr``; a :class:`Workload` bundles one
complete problem instance.
"""

from repro.model.graph import TaskGraph
from repro.model.machine import Machine, MachineSet
from repro.model.matrices import (
    ExecutionTimeMatrix,
    TransferTimeMatrix,
    num_pairs,
    pair_index,
)
from repro.model.platform import (
    CLOUD_PLATFORM,
    SPOT_PLATFORM,
    UNIFORM_PLATFORM,
    BoundPlatform,
    InstanceType,
    PlatformSpec,
)
from repro.model.sample import (
    FIGURE2_PAIRS,
    PAPER_O4,
    paper_sample_graph,
    paper_sample_system,
    paper_sample_workload,
)
from repro.model.system import FULLY_CONNECTED, HCSystem
from repro.model.task import DataItem, Subtask
from repro.model.workload import Workload, WorkloadClass

__all__ = [
    "TaskGraph",
    "Machine",
    "MachineSet",
    "ExecutionTimeMatrix",
    "TransferTimeMatrix",
    "num_pairs",
    "pair_index",
    "InstanceType",
    "PlatformSpec",
    "BoundPlatform",
    "UNIFORM_PLATFORM",
    "CLOUD_PLATFORM",
    "SPOT_PLATFORM",
    "FIGURE2_PAIRS",
    "PAPER_O4",
    "paper_sample_graph",
    "paper_sample_system",
    "paper_sample_workload",
    "FULLY_CONNECTED",
    "HCSystem",
    "DataItem",
    "Subtask",
    "Workload",
    "WorkloadClass",
]
