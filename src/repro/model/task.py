"""Subtasks and data items — the vertices and edge payloads of the DAG.

Terminology follows the paper (§2): an *application task* is decomposed
into coarse-grained **subtasks** ``Sb = {s_i, 0 <= i < k}``; the values
exchanged between subtasks form the **data items** ``D = {d_i, 0 <= i < p}``.
A data item is produced by exactly one subtask and consumed by exactly one
subtask, i.e. it annotates one DAG edge.  (Two subtasks may exchange several
distinct data items — that is simply several parallel edges, each with its
own transfer-time column in ``Tr``.)
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Subtask:
    """One coarse-grained unit of the application.

    Attributes
    ----------
    index:
        Dense identifier in ``[0, k)``; used to index the columns of the
        execution-time matrix ``E``.
    name:
        Human-readable label; defaults to ``"s{index}"`` as in the paper's
        figures.
    """

    index: int
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"subtask index must be >= 0, got {self.index}")
        if not self.name:
            object.__setattr__(self, "name", f"s{self.index}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True, order=True)
class DataItem:
    """A value transferred from one subtask to another.

    Attributes
    ----------
    index:
        Dense identifier in ``[0, p)``; used to index the columns of the
        transfer-time matrix ``Tr``.
    producer:
        Index of the subtask that generates the item.
    consumer:
        Index of the subtask that needs the item before it can start.
    size:
        Abstract size (used by workload generators to derive transfer
        times from the CCR knob); purely informational once ``Tr`` exists.
    name:
        Human-readable label; defaults to ``"d{index}"``.
    """

    index: int
    producer: int
    consumer: int
    size: float = field(default=1.0, compare=False)
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"data item index must be >= 0, got {self.index}")
        if self.producer < 0 or self.consumer < 0:
            raise ValueError(
                f"producer/consumer must be >= 0, got "
                f"({self.producer}, {self.consumer})"
            )
        if self.producer == self.consumer:
            raise ValueError(
                f"data item {self.index} has producer == consumer "
                f"({self.producer}); self-edges are not allowed in a DAG"
            )
        if self.size < 0:
            raise ValueError(f"data item size must be >= 0, got {self.size}")
        if not self.name:
            object.__setattr__(self, "name", f"d{self.index}")

    @property
    def edge(self) -> tuple[int, int]:
        """The DAG edge ``(producer, consumer)`` this item annotates."""
        return (self.producer, self.consumer)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}({self.producer}->{self.consumer})"
