"""The heterogeneous computing system: a suite of machines and its network.

The paper (§2) assumes machines are **fully connected** through a
high-speed network; :class:`HCSystem` therefore carries only the machine
set plus a topology tag kept for forward compatibility (a
contention-aware extension would subclass or swap the tag).  All link
*costs* live in the :class:`~repro.model.matrices.TransferTimeMatrix` of
the workload, not here.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.model.machine import Machine, MachineSet

#: The only topology the paper's model defines.
FULLY_CONNECTED = "fully-connected"


class HCSystem:
    """A heterogeneous suite of machines.

    Parameters
    ----------
    machines:
        A :class:`MachineSet` or any iterable of :class:`Machine`.
    topology:
        Topology tag; only :data:`FULLY_CONNECTED` is supported by the
        bundled simulator.
    """

    __slots__ = ("_machines", "_topology")

    def __init__(
        self,
        machines: MachineSet | Iterable[Machine],
        topology: str = FULLY_CONNECTED,
    ):
        if not isinstance(machines, MachineSet):
            machines = MachineSet(machines)
        if topology != FULLY_CONNECTED:
            raise ValueError(
                f"unsupported topology {topology!r}; the HC model of the "
                f"paper is {FULLY_CONNECTED!r}"
            )
        self._machines = machines
        self._topology = topology

    @classmethod
    def of_size(
        cls, num_machines: int, architectures: Sequence[str] = ()
    ) -> "HCSystem":
        """Build a fully connected system of *num_machines* machines."""
        return cls(MachineSet.of_size(num_machines, architectures))

    @property
    def machines(self) -> MachineSet:
        return self._machines

    @property
    def num_machines(self) -> int:
        """``l`` — the number of machines."""
        return len(self._machines)

    @property
    def topology(self) -> str:
        return self._topology

    def machine(self, index: int) -> Machine:
        return self._machines[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HCSystem):
            return NotImplemented
        return (
            self._machines == other._machines
            and self._topology == other._topology
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HCSystem(l={self.num_machines}, topology={self._topology!r})"
