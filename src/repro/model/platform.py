"""Cloud platform model: instance catalogs with speed, price and boot.

The paper's machine model is a flat ETC matrix — every machine is free
and always on.  A cloud user instead picks *instance types*: each type
runs tasks at some speed factor, bills by the hour, and takes a boot
delay before it accepts work (the model of SNIPPETS.md's bpmn-parser
``extra/task.py`` exemplar).  This module makes that a first-class,
declarative axis next to the network model:

* :class:`InstanceType` — one catalog entry ``(speed, price, boot)``;
* :class:`PlatformSpec` — a named catalog; machine ``m`` of a workload
  is assigned ``instances[m % len(instances)]`` (round-robin, so one
  spec fits any machine count);
* :class:`BoundPlatform` — the spec resolved against a concrete
  workload: per-machine speed/price/boot vectors, the speed-scaled
  execution-time matrix, and the boot-delay initial availability.

The **uniform** platform (an empty catalog) is the identity: ``apply``
returns the *same* :class:`~repro.model.workload.Workload` object and
no initial state, so the evaluation path is bit-identical to the plain
ETC model — the invariant every golden test in this repo pins.

Semantics, precisely:

* **speed** divides the machine's row of ``E`` (speed 2.0 → tasks run
  twice as fast on that machine);
* **price** is dollars per unit of *busy* time: a schedule's cost is
  ``sum over tasks of price[machine] * scaled_exec_time`` — you pay for
  the time your tasks occupy the instance, not for the makespan
  (per-task billing, the serverless model; it makes cost a function of
  the matching string alone, which is what lets the batch tier compute
  it in one vectorized gather);
* **boot** delays the machine's first availability: machine ``m``
  cannot start work before ``boot[m]`` (folded into the simulator's
  ``initial_avail`` — and ``initial_nic_free`` under NIC models, since
  an unbooted machine's NIC is down too).

>>> spec = PlatformSpec(
...     "tiny",
...     instances=(
...         InstanceType("slow", speed=1.0, price=0.1),
...         InstanceType("fast", speed=2.0, price=0.5),
...     ),
... )
>>> bound = spec.bind(3)  # machines 0,1,2 -> slow, fast, slow
>>> bound.speeds
(1.0, 2.0, 1.0)
>>> bound.prices
(0.1, 0.5, 0.1)
>>> UNIFORM_PLATFORM.is_uniform
True
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "InstanceType",
    "PlatformSpec",
    "BoundPlatform",
    "UNIFORM_PLATFORM",
    "CLOUD_PLATFORM",
    "SPOT_PLATFORM",
]


@dataclass(frozen=True)
class InstanceType:
    """One entry of a platform catalog.

    Attributes
    ----------
    name:
        Catalog label (``"m4.large"``, ``"spot-slow"``, ...).
    speed:
        Relative speed factor; divides the machine's ``E`` row.  Must be
        finite and > 0.
    price:
        Dollars per unit of busy time on this instance; >= 0.
    boot:
        Startup delay before the instance accepts work; >= 0.
    """

    name: str
    speed: float = 1.0
    price: float = 0.0
    boot: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("instance type needs a non-empty name")
        if not (math.isfinite(self.speed) and self.speed > 0):
            raise ValueError(
                f"instance {self.name!r}: speed must be finite and > 0, "
                f"got {self.speed!r}"
            )
        if not (math.isfinite(self.price) and self.price >= 0):
            raise ValueError(
                f"instance {self.name!r}: price must be finite and >= 0, "
                f"got {self.price!r}"
            )
        if not (math.isfinite(self.boot) and self.boot >= 0):
            raise ValueError(
                f"instance {self.name!r}: boot must be finite and >= 0, "
                f"got {self.boot!r}"
            )

    @property
    def is_identity(self) -> bool:
        """True when this type changes nothing about the ETC model."""
        return self.speed == 1.0 and self.price == 0.0 and self.boot == 0.0


@dataclass(frozen=True)
class PlatformSpec:
    """A named instance catalog, assignable to any machine count.

    Machine ``m`` of a workload gets ``instances[m % len(instances)]``
    (round-robin), so one spec serves the paper's 8-machine samples and
    the 20-machine figure workloads alike.  An empty catalog is the
    uniform (identity) platform.
    """

    name: str
    instances: tuple[InstanceType, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("platform needs a non-empty name")
        # tolerate list input from callers assembling catalogs
        object.__setattr__(self, "instances", tuple(self.instances))

    @property
    def is_uniform(self) -> bool:
        """True when the spec is the identity over the plain ETC model."""
        return all(inst.is_identity for inst in self.instances)

    @property
    def has_boot(self) -> bool:
        """True when any catalog entry carries a boot delay (which
        forces batch evaluation onto the sequential scalar path)."""
        return any(inst.boot > 0 for inst in self.instances)

    def instance_for(self, machine: int) -> InstanceType:
        """The catalog entry machine *machine* is assigned."""
        if not self.instances:
            return _IDENTITY_INSTANCE
        return self.instances[machine % len(self.instances)]

    def bind(self, num_machines: int) -> "BoundPlatform":
        """Resolve the catalog against a concrete machine count."""
        if num_machines < 1:
            raise ValueError(
                f"num_machines must be >= 1, got {num_machines}"
            )
        assigned = tuple(
            self.instance_for(m) for m in range(num_machines)
        )
        return BoundPlatform(
            spec=self,
            instance_of=assigned,
            speeds=tuple(inst.speed for inst in assigned),
            prices=tuple(inst.price for inst in assigned),
            boots=tuple(inst.boot for inst in assigned),
        )


_IDENTITY_INSTANCE = InstanceType("uniform")


@dataclass(frozen=True)
class BoundPlatform:
    """A :class:`PlatformSpec` resolved against ``num_machines`` machines."""

    spec: PlatformSpec
    instance_of: tuple[InstanceType, ...]
    speeds: tuple[float, ...]
    prices: tuple[float, ...]
    boots: tuple[float, ...]

    @property
    def num_machines(self) -> int:
        return len(self.instance_of)

    @property
    def has_boot(self) -> bool:
        return any(b > 0 for b in self.boots)

    def apply(self, workload):
        """*workload* with execution times scaled by instance speed.

        Returns the **same object** when the spec is uniform — the
        bit-identity guarantee of the default platform.  Transfer
        times, the task graph and the classification are untouched
        (the network model owns communication).
        """
        from repro.model.matrices import ExecutionTimeMatrix
        from repro.model.workload import Workload

        if self.spec.is_uniform:
            return workload
        if workload.num_machines != self.num_machines:
            raise ValueError(
                f"platform bound for {self.num_machines} machines cannot "
                f"apply to a {workload.num_machines}-machine workload"
            )
        import numpy as np

        scaled = workload.exec_times.values / np.asarray(
            self.speeds, dtype=float
        ).reshape(-1, 1)
        return Workload(
            graph=workload.graph,
            system=workload.system,
            exec_times=ExecutionTimeMatrix(scaled),
            transfer_times=workload.transfer_times,
            classification=workload.classification,
            name=(
                f"{workload.name}@{self.spec.name}"
                if workload.name
                else self.spec.name
            ),
        )

    def combine_avail(self, initial_avail=None) -> list[float]:
        """Boot delays folded into an initial-availability vector.

        A machine is ready when it is both booted *and* past any
        caller-supplied busy state, hence the elementwise ``max``.
        """
        if initial_avail is None:
            return [float(b) for b in self.boots]
        if len(initial_avail) != self.num_machines:
            raise ValueError(
                f"initial_avail has {len(initial_avail)} entries for "
                f"{self.num_machines} machines"
            )
        return [
            max(float(b), float(a))
            for b, a in zip(self.boots, initial_avail)
        ]


#: The identity platform: today's flat ETC model, bit for bit.
UNIFORM_PLATFORM = PlatformSpec(
    "uniform",
    description="flat ETC model: every machine free, always on",
)

#: The bpmn-parser exemplar's cluster tiers: faster tiers cost more per
#: hour and all take 0.3 time units to boot.  Speeds/prices follow the
#: exemplar's published divisors and $/h rates.
CLOUD_PLATFORM = PlatformSpec(
    "cloud",
    instances=(
        InstanceType("c4.small", speed=1.0, price=0.074, boot=0.3),
        InstanceType("c4.large", speed=1.5, price=0.15, boot=0.3),
        InstanceType("c4.xlarge", speed=3.4, price=0.3, boot=0.3),
        InstanceType("c4.2xlarge", speed=6.1, price=0.59, boot=0.3),
    ),
    description="tiered instances, $/h grows faster than speed, 0.3 boot",
)

#: A zero-boot heterogeneous market: price-per-unit-of-work varies a lot
#: between tiers, so (makespan, cost) has a real Pareto front; no boot
#: delay keeps the batch cost path fully vectorized.
SPOT_PLATFORM = PlatformSpec(
    "spot",
    instances=(
        InstanceType("spot-slow", speed=1.0, price=0.05),
        InstanceType("spot-std", speed=1.6, price=0.16),
        InstanceType("spot-fast", speed=2.8, price=0.45),
        InstanceType("spot-burst", speed=4.0, price=1.1),
    ),
    description="zero-boot spot market with a wide price-per-work spread",
)
