"""A workload: everything needed to state one MSHC problem instance.

The paper (§5) defines a workload as "a DAG representing an application
task, the number of machines in the HC system, the matrix E, and the
matrix Tr", classified along three axes: connectivity, heterogeneity and
communication-to-cost ratio (CCR).  :class:`Workload` bundles exactly
those pieces, cross-validates their dimensions once, and offers the cost
queries the schedule simulator needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.model.graph import TaskGraph
from repro.model.matrices import ExecutionTimeMatrix, TransferTimeMatrix
from repro.model.system import HCSystem


@dataclass(frozen=True)
class WorkloadClass:
    """The paper's three-axis workload classification (§5).

    Values are free-form labels (``"low"``, ``"medium"``, ``"high"`` in
    the paper, plus a numeric CCR); they are descriptive metadata used by
    reports — the quantitative truth is always in the matrices.
    """

    connectivity: str = "unspecified"
    heterogeneity: str = "unspecified"
    ccr: Optional[float] = None
    size: str = "unspecified"

    def describe(self) -> str:
        """One-line human description for reports."""
        ccr = "?" if self.ccr is None else f"{self.ccr:g}"
        return (
            f"size={self.size}, connectivity={self.connectivity}, "
            f"heterogeneity={self.heterogeneity}, CCR={ccr}"
        )


class Workload:
    """One immutable MSHC problem instance.

    Parameters
    ----------
    graph:
        The application DAG (``k`` subtasks, ``p`` data items).
    system:
        The HC system (``l`` machines, fully connected).
    exec_times:
        The ``l x k`` matrix ``E``.
    transfer_times:
        The ``l(l-1)/2 x p`` matrix ``Tr``.
    classification:
        Optional :class:`WorkloadClass` metadata.
    name:
        Optional label used in reports and benchmark output.

    Raises
    ------
    ValueError
        If any dimension disagrees with any other.
    """

    __slots__ = (
        "_graph",
        "_system",
        "_exec",
        "_transfer",
        "classification",
        "name",
    )

    def __init__(
        self,
        graph: TaskGraph,
        system: HCSystem,
        exec_times: ExecutionTimeMatrix,
        transfer_times: TransferTimeMatrix,
        classification: Optional[WorkloadClass] = None,
        name: str = "",
    ):
        if exec_times.num_machines != system.num_machines:
            raise ValueError(
                f"E has {exec_times.num_machines} machine rows but the "
                f"system has {system.num_machines} machines"
            )
        if exec_times.num_tasks != graph.num_tasks:
            raise ValueError(
                f"E has {exec_times.num_tasks} task columns but the graph "
                f"has {graph.num_tasks} subtasks"
            )
        if transfer_times.num_machines != system.num_machines:
            raise ValueError(
                f"Tr is sized for {transfer_times.num_machines} machines "
                f"but the system has {system.num_machines}"
            )
        if transfer_times.num_items != graph.num_data_items:
            raise ValueError(
                f"Tr has {transfer_times.num_items} item columns but the "
                f"graph has {graph.num_data_items} data items"
            )
        self._graph = graph
        self._system = system
        self._exec = exec_times
        self._transfer = transfer_times
        self.classification = classification or WorkloadClass()
        self.name = name or f"workload-k{graph.num_tasks}-l{system.num_machines}"

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def graph(self) -> TaskGraph:
        return self._graph

    @property
    def system(self) -> HCSystem:
        return self._system

    @property
    def exec_times(self) -> ExecutionTimeMatrix:
        return self._exec

    @property
    def transfer_times(self) -> TransferTimeMatrix:
        return self._transfer

    @property
    def num_tasks(self) -> int:
        """``k``."""
        return self._graph.num_tasks

    @property
    def num_machines(self) -> int:
        """``l``."""
        return self._system.num_machines

    @property
    def num_data_items(self) -> int:
        """``p``."""
        return self._graph.num_data_items

    # ------------------------------------------------------------------
    # cost queries (hot paths)
    # ------------------------------------------------------------------

    def exec_time(self, machine: int, task: int) -> float:
        """``E[machine, task]``."""
        return self._exec.time(machine, task)

    def comm_time(self, machine_a: int, machine_b: int, item: int) -> float:
        """Transfer time of data *item* between two machines (0 if equal)."""
        return self._transfer.time(machine_a, machine_b, item)

    # ------------------------------------------------------------------
    # derived measures
    # ------------------------------------------------------------------

    def serial_time_best(self) -> float:
        """Makespan of running every task serially on its best machine.

        A trivial upper bound useful for sanity checks and normalisation.
        """
        return float(
            sum(self._exec.best_time(t) for t in range(self.num_tasks))
        )

    def ccr_estimate(self) -> float:
        """Achieved communication-to-cost ratio.

        Ratio of the mean off-machine transfer time to the mean execution
        time, mirroring the paper's CCR definition ("size of data item
        over execution time of the subtask generating it").  Returns 0 when
        there are no data items or a single machine.
        """
        mean_exec = float(self._exec.values.mean())
        mean_comm = self._transfer.mean_time()
        if mean_exec <= 0:
            return 0.0
        return mean_comm / mean_exec

    def describe(self) -> str:
        """Multi-line human-readable summary used by the CLI."""
        g = self._graph
        lines = [
            f"workload {self.name!r}",
            f"  subtasks     k = {g.num_tasks}",
            f"  data items   p = {g.num_data_items}",
            f"  machines     l = {self.num_machines}",
            f"  DAG levels   {g.num_levels}",
            f"  connectivity {g.connectivity():.3f}",
            f"  heterogeneity (mean CV of E columns) "
            f"{self._exec.heterogeneity():.3f}",
            f"  CCR estimate {self.ccr_estimate():.3f}",
            f"  class        {self.classification.describe()}",
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Workload(name={self.name!r}, k={self.num_tasks}, "
            f"l={self.num_machines}, p={self.num_data_items})"
        )
