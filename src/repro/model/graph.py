"""The application DAG: subtasks as vertices, data items as edges.

``TaskGraph`` is the immutable structural backbone of the library.  It is
built once per workload and then queried millions of times from the SE /
GA inner loops, so all adjacency is precomputed into tuples of dense ints
at construction time; :mod:`networkx` is used only for construction-time
validation and interop, never in hot paths.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

import networkx as nx

from repro.model.task import DataItem, Subtask


class TaskGraph:
    """A directed acyclic graph of :class:`Subtask` linked by :class:`DataItem`.

    Parameters
    ----------
    subtasks:
        The ``k`` subtasks; indices must be dense ``0..k-1`` (any order).
    data_items:
        The ``p`` data items; indices must be dense ``0..p-1`` (any order).
        Each item contributes one edge ``producer -> consumer``.  Parallel
        items between the same pair of subtasks are allowed.

    Raises
    ------
    ValueError
        If indices are not dense, an item references a missing subtask, or
        the resulting directed graph has a cycle.
    """

    __slots__ = (
        "_subtasks",
        "_items",
        "_pred",
        "_succ",
        "_in_items",
        "_out_items",
        "_topo",
        "_topo_pos",
        "_levels",
        "_num_levels",
    )

    def __init__(
        self,
        subtasks: Iterable[Subtask],
        data_items: Iterable[DataItem] = (),
    ):
        subs = sorted(subtasks)
        items = sorted(data_items)
        k = len(subs)
        if k == 0:
            raise ValueError("a task graph needs at least one subtask")
        for expect, s in enumerate(subs):
            if s.index != expect:
                raise ValueError(
                    f"subtask indices must be dense 0..{k - 1}; "
                    f"missing or duplicate index near {expect}"
                )
        for expect, d in enumerate(items):
            if d.index != expect:
                raise ValueError(
                    f"data item indices must be dense 0..{len(items) - 1}; "
                    f"missing or duplicate index near {expect}"
                )
            if d.producer >= k or d.consumer >= k:
                raise ValueError(
                    f"data item {d.index} references subtask "
                    f"({d.producer} -> {d.consumer}) outside 0..{k - 1}"
                )
        self._subtasks: Tuple[Subtask, ...] = tuple(subs)
        self._items: Tuple[DataItem, ...] = tuple(items)

        pred: list[list[int]] = [[] for _ in range(k)]
        succ: list[list[int]] = [[] for _ in range(k)]
        in_items: list[list[int]] = [[] for _ in range(k)]
        out_items: list[list[int]] = [[] for _ in range(k)]
        for d in self._items:
            if d.producer not in pred[d.consumer]:
                pred[d.consumer].append(d.producer)
            if d.consumer not in succ[d.producer]:
                succ[d.producer].append(d.consumer)
            in_items[d.consumer].append(d.index)
            out_items[d.producer].append(d.index)
        self._pred = tuple(tuple(sorted(xs)) for xs in pred)
        self._succ = tuple(tuple(sorted(xs)) for xs in succ)
        self._in_items = tuple(tuple(xs) for xs in in_items)
        self._out_items = tuple(tuple(xs) for xs in out_items)

        topo = self._kahn_topological_order()
        if topo is None:
            raise ValueError("task graph contains a cycle; it must be a DAG")
        self._topo: Tuple[int, ...] = topo
        pos = [0] * k
        for position, task in enumerate(topo):
            pos[task] = position
        self._topo_pos: Tuple[int, ...] = tuple(pos)

        levels = [0] * k
        for t in topo:
            if self._pred[t]:
                levels[t] = 1 + max(levels[q] for q in self._pred[t])
        self._levels: Tuple[int, ...] = tuple(levels)
        self._num_levels = (max(levels) + 1) if k else 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        num_tasks: int,
        edges: Sequence[Tuple[int, int]],
        sizes: Optional[Sequence[float]] = None,
    ) -> "TaskGraph":
        """Build a graph from ``(producer, consumer)`` pairs.

        Data item ``i`` is created for ``edges[i]`` with size
        ``sizes[i]`` (default 1.0).  Convenient for tests and examples.
        """
        if sizes is not None and len(sizes) != len(edges):
            raise ValueError("sizes must match edges in length")
        subs = [Subtask(i) for i in range(num_tasks)]
        items = [
            DataItem(
                i,
                producer=u,
                consumer=v,
                size=1.0 if sizes is None else float(sizes[i]),
            )
            for i, (u, v) in enumerate(edges)
        ]
        return cls(subs, items)

    @classmethod
    def from_networkx(cls, g: "nx.DiGraph") -> "TaskGraph":
        """Build from a networkx DiGraph whose nodes are ``0..k-1``.

        Edge attribute ``size`` (default 1.0) becomes the data item size.
        """
        nodes = sorted(g.nodes())
        if nodes != list(range(len(nodes))):
            raise ValueError("networkx graph nodes must be dense 0..k-1 ints")
        edges = sorted(g.edges())
        sizes = [float(g.edges[u, v].get("size", 1.0)) for u, v in edges]
        return cls.from_edges(len(nodes), edges, sizes)

    def to_networkx(self) -> "nx.DiGraph":
        """Export to a networkx DiGraph (one edge per data item pair).

        Parallel data items are merged into a single edge whose ``items``
        attribute lists their indices and whose ``size`` sums their sizes.
        """
        g = nx.DiGraph()
        g.add_nodes_from(range(self.num_tasks))
        for d in self._items:
            if g.has_edge(d.producer, d.consumer):
                g.edges[d.producer, d.consumer]["items"].append(d.index)
                g.edges[d.producer, d.consumer]["size"] += d.size
            else:
                g.add_edge(d.producer, d.consumer, items=[d.index], size=d.size)
        return g

    def _kahn_topological_order(self) -> Optional[Tuple[int, ...]]:
        """Deterministic (smallest-index-first) Kahn topological sort.

        Returns ``None`` if a cycle is detected.
        """
        import heapq

        k = self.num_tasks
        indeg = [len(self._pred[t]) for t in range(k)]
        heap = [t for t in range(k) if indeg[t] == 0]
        heapq.heapify(heap)
        order: list[int] = []
        while heap:
            t = heapq.heappop(heap)
            order.append(t)
            for s in self._succ[t]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    heapq.heappush(heap, s)
        if len(order) != k:
            return None
        return tuple(order)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def num_tasks(self) -> int:
        """``k`` — the number of subtasks."""
        return len(self._subtasks)

    @property
    def num_data_items(self) -> int:
        """``p`` — the number of data items (edges)."""
        return len(self._items)

    @property
    def subtasks(self) -> Tuple[Subtask, ...]:
        return self._subtasks

    @property
    def data_items(self) -> Tuple[DataItem, ...]:
        return self._items

    def subtask(self, index: int) -> Subtask:
        return self._subtasks[index]

    def data_item(self, index: int) -> DataItem:
        return self._items[index]

    def __iter__(self) -> Iterator[Subtask]:
        return iter(self._subtasks)

    def __len__(self) -> int:
        return len(self._subtasks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TaskGraph(k={self.num_tasks}, p={self.num_data_items}, "
            f"levels={self.num_levels})"
        )

    # ------------------------------------------------------------------
    # structure queries (hot paths: all return precomputed tuples)
    # ------------------------------------------------------------------

    def predecessors(self, task: int) -> Tuple[int, ...]:
        """Distinct direct predecessors of *task*, sorted ascending."""
        return self._pred[task]

    def successors(self, task: int) -> Tuple[int, ...]:
        """Distinct direct successors of *task*, sorted ascending."""
        return self._succ[task]

    def in_items(self, task: int) -> Tuple[int, ...]:
        """Data items consumed by *task*."""
        return self._in_items[task]

    def out_items(self, task: int) -> Tuple[int, ...]:
        """Data items produced by *task*."""
        return self._out_items[task]

    def topological_order(self) -> Tuple[int, ...]:
        """Deterministic topological order (smallest index first)."""
        return self._topo

    def topological_position(self, task: int) -> int:
        """Position of *task* in :meth:`topological_order`."""
        return self._topo_pos[task]

    def level(self, task: int) -> int:
        """DAG level: 0 for entry tasks, else 1 + max level of predecessors.

        The paper's selection step (§4.4) orders selected subtasks by this
        level so producers are re-allocated before their consumers.
        """
        return self._levels[task]

    @property
    def levels(self) -> Tuple[int, ...]:
        """All task levels as a tuple indexed by task id."""
        return self._levels

    @property
    def num_levels(self) -> int:
        """Number of distinct levels (height of the DAG + 1)."""
        return self._num_levels

    def entry_tasks(self) -> Tuple[int, ...]:
        """Tasks with no predecessors."""
        return tuple(t for t in range(self.num_tasks) if not self._pred[t])

    def exit_tasks(self) -> Tuple[int, ...]:
        """Tasks with no successors."""
        return tuple(t for t in range(self.num_tasks) if not self._succ[t])

    def ancestors(self, task: int) -> frozenset[int]:
        """All transitive predecessors of *task* (excluding itself)."""
        seen: set[int] = set()
        stack = list(self._pred[task])
        while stack:
            t = stack.pop()
            if t not in seen:
                seen.add(t)
                stack.extend(self._pred[t])
        return frozenset(seen)

    def descendants(self, task: int) -> frozenset[int]:
        """All transitive successors of *task* (excluding itself)."""
        seen: set[int] = set()
        stack = list(self._succ[task])
        while stack:
            t = stack.pop()
            if t not in seen:
                seen.add(t)
                stack.extend(self._succ[t])
        return frozenset(seen)

    def is_valid_order(self, order: Sequence[int]) -> bool:
        """True iff *order* is a permutation of all tasks respecting edges."""
        if sorted(order) != list(range(self.num_tasks)):
            return False
        pos: Dict[int, int] = {t: i for i, t in enumerate(order)}
        return all(
            pos[d.producer] < pos[d.consumer] for d in self._items
        )

    def connectivity(self) -> float:
        """Edge density: distinct edges / possible forward edges.

        The paper classifies workloads by "connectivity" — the number of
        data items relative to graph size.  We report the fraction of the
        ``k(k-1)/2`` possible DAG edges that are present (parallel data
        items counted once), which is 0 for an edgeless graph and 1 for a
        total order.
        """
        k = self.num_tasks
        if k < 2:
            return 0.0
        distinct = {(d.producer, d.consumer) for d in self._items}
        return len(distinct) / (k * (k - 1) / 2)
