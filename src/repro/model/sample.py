"""The paper's running example (Figures 1 and 2), made concrete.

Figure 1 of the paper shows a 7-subtask / 6-data-item DAG, a 2-machine HC
system, a ``2 x 7`` matrix ``E`` and a ``1 x 6`` matrix ``Tr``.  The DAG
structure is recoverable from the prose: ``s4`` has predecessors ``s0``
and ``s1`` (the ``O4`` example names both, plus "communication time
between s1 and s4"), and the Figure-2 string ``s0 s1 s2 s5 s6 s3 s4``
must be topologically valid, which pins ``s3`` under ``s0`` and
``{s5, s6}`` under ``s2``.

The numeric entries of ``E``/``Tr`` did not survive the scan, so this
module ships documented substitute values chosen such that the paper's
one recoverable number holds: **O4 = 1835** — the optimistic finish time
of ``s4`` when ``s4`` sits on its best machine ``m1`` and its
predecessors ``s0, s1`` sit on their best machine ``m0`` (see
``repro.core.goodness``).  This substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

from repro.model.graph import TaskGraph
from repro.model.matrices import ExecutionTimeMatrix, TransferTimeMatrix
from repro.model.system import HCSystem
from repro.model.task import DataItem, Subtask
from repro.model.workload import Workload, WorkloadClass

#: DAG edges, one per data item d0..d5 (producer, consumer).
SAMPLE_EDGES: tuple[tuple[int, int], ...] = (
    (0, 2),  # d0
    (0, 3),  # d1
    (0, 4),  # d2
    (1, 4),  # d3
    (2, 5),  # d4
    (2, 6),  # d5
)

#: Execution times E[machine][task] for m0 and m1 (substitute values).
SAMPLE_EXEC_TIMES: tuple[tuple[float, ...], ...] = (
    #  s0    s1    s2    s3     s4    s5    s6
    (500.0, 800.0, 700.0, 600.0, 1200.0, 900.0, 400.0),  # m0
    (700.0, 1000.0, 550.0, 850.0, 900.0, 650.0, 600.0),  # m1
)

#: Transfer times Tr[pair (m0,m1)][item] for d0..d5 (substitute values).
#: d3 = 135 makes O4 = max(500 + 200, 800 + 135) + 900 = 1835 as in §4.3.
SAMPLE_TRANSFER_TIMES: tuple[float, ...] = (
    150.0,  # d0: s0 -> s2
    100.0,  # d1: s0 -> s3
    200.0,  # d2: s0 -> s4
    135.0,  # d3: s1 -> s4
    120.0,  # d4: s2 -> s5
    180.0,  # d5: s2 -> s6
)

#: The valid encoding string of Figure 2: (subtask, machine) segments.
FIGURE2_PAIRS: tuple[tuple[int, int], ...] = (
    (0, 0),  # s0 m0
    (1, 1),  # s1 m1
    (2, 1),  # s2 m1
    (5, 1),  # s5 m1
    (6, 1),  # s6 m1
    (3, 0),  # s3 m0
    (4, 0),  # s4 m0
)

#: The O4 value quoted in the paper's §4.3 example.
PAPER_O4 = 1835.0


def paper_sample_graph() -> TaskGraph:
    """The 7-subtask / 6-data-item DAG of Figure 1a."""
    subtasks = [Subtask(i) for i in range(7)]
    items = [
        DataItem(i, producer=u, consumer=v, size=SAMPLE_TRANSFER_TIMES[i])
        for i, (u, v) in enumerate(SAMPLE_EDGES)
    ]
    return TaskGraph(subtasks, items)


def paper_sample_system() -> HCSystem:
    """The 2-machine fully connected system of Figure 1b."""
    return HCSystem.of_size(2, architectures=("SIMD", "MIMD"))


def paper_sample_workload() -> Workload:
    """The full Figure-1 problem instance as a :class:`Workload`."""
    graph = paper_sample_graph()
    system = paper_sample_system()
    e = ExecutionTimeMatrix(SAMPLE_EXEC_TIMES)
    tr = TransferTimeMatrix([list(SAMPLE_TRANSFER_TIMES)], num_machines=2)
    return Workload(
        graph,
        system,
        e,
        tr,
        classification=WorkloadClass(
            connectivity="low", heterogeneity="low", ccr=0.2, size="small"
        ),
        name="paper-figure-1",
    )
