"""The two cost matrices of the HC model (paper §2).

* :class:`ExecutionTimeMatrix` — the ``l x k`` matrix ``E``; ``E[m, t]`` is
  the estimated execution time of subtask ``t`` on machine ``m`` (obtained
  in a real system from code profiling / analytical benchmarking).
* :class:`TransferTimeMatrix` — the ``l(l-1)/2 x p`` matrix ``Tr``;
  ``Tr[pair(m_a, m_b), d]`` is the time to move data item ``d`` between
  machines ``m_a`` and ``m_b``.  The network is fully connected and links
  are symmetric, so rows are indexed by the *unordered* machine pair using
  the standard upper-triangular flattening.  Same-machine transfers are
  free by definition and are not stored.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def pair_index(machine_a: int, machine_b: int, num_machines: int) -> int:
    """Row of ``Tr`` for the unordered pair ``{machine_a, machine_b}``.

    Pairs are enumerated ``(0,1), (0,2), ..., (0,l-1), (1,2), ...`` which
    yields for ``i < j``::

        row = i*l - i*(i+1)/2 + (j - i - 1)

    Raises
    ------
    ValueError
        If the machines are equal (same-machine transfers have no row) or
        out of range.
    """
    if machine_a == machine_b:
        raise ValueError(
            f"no Tr row for a same-machine pair (machine {machine_a})"
        )
    i, j = (machine_a, machine_b) if machine_a < machine_b else (machine_b, machine_a)
    if i < 0 or j >= num_machines:
        raise ValueError(
            f"machine pair ({machine_a}, {machine_b}) out of range for "
            f"l={num_machines}"
        )
    return i * num_machines - i * (i + 1) // 2 + (j - i - 1)


def num_pairs(num_machines: int) -> int:
    """``l(l-1)/2`` — the number of rows of ``Tr``."""
    return num_machines * (num_machines - 1) // 2


class ExecutionTimeMatrix:
    """The ``l x k`` execution-time matrix ``E``.

    All entries must be finite and strictly positive (every subtask can
    run on every machine; restricting candidate machines is the job of
    the SE ``Y`` parameter, not of infinities in ``E``).

    The per-task machine ranking (``argsort`` of each column) is
    precomputed because the SE evaluation step (best-matching machine for
    the ``Oi`` bound) and the allocation step (top-``Y`` machines) both
    consult it in hot loops.
    """

    __slots__ = ("_e", "_ranking")

    def __init__(self, values: np.ndarray | Sequence[Sequence[float]]):
        e = np.asarray(values, dtype=float)
        if e.ndim != 2:
            raise ValueError(f"E must be 2-D (l x k), got shape {e.shape}")
        if e.size == 0:
            raise ValueError("E must not be empty")
        if not np.all(np.isfinite(e)):
            raise ValueError("E must contain only finite values")
        if np.any(e <= 0):
            raise ValueError("E must contain strictly positive times")
        self._e = e.copy()
        self._e.setflags(write=False)
        # stable argsort => ties broken by machine index, deterministic
        self._ranking = np.argsort(self._e, axis=0, kind="stable")
        self._ranking.setflags(write=False)

    @property
    def num_machines(self) -> int:
        return self._e.shape[0]

    @property
    def num_tasks(self) -> int:
        return self._e.shape[1]

    @property
    def values(self) -> np.ndarray:
        """The underlying read-only ``(l, k)`` array."""
        return self._e

    def time(self, machine: int, task: int) -> float:
        """``E[machine, task]``."""
        return float(self._e[machine, task])

    def task_times(self, task: int) -> np.ndarray:
        """Column of execution times of *task* across all machines."""
        return self._e[:, task]

    def machine_times(self, machine: int) -> np.ndarray:
        """Row of execution times of all tasks on *machine*."""
        return self._e[machine, :]

    def best_machine(self, task: int) -> int:
        """The best-matching machine of *task* (fastest; ties → lowest id).

        This is the machine used by the paper's function ``F`` when
        computing the optimistic finish time ``Oi`` (§4.3).
        """
        return int(self._ranking[0, task])

    def best_machines(self, task: int, y: Optional[int] = None) -> tuple[int, ...]:
        """The ``y`` best-matching machines of *task*, fastest first.

        ``y=None`` (or ``y >= l``) returns all machines ranked.  This is
        the candidate set that the SE allocation step restricts itself to
        via the ``Y`` parameter (§4.5).
        """
        if y is None:
            y = self.num_machines
        if y <= 0:
            raise ValueError(f"y must be >= 1, got {y}")
        y = min(y, self.num_machines)
        return tuple(int(m) for m in self._ranking[:y, task])

    def best_time(self, task: int) -> float:
        """Execution time of *task* on its best-matching machine."""
        return float(self._e[self._ranking[0, task], task])

    def average_time(self, task: int) -> float:
        """Mean execution time of *task* across machines (used by HEFT)."""
        return float(self._e[:, task].mean())

    def heterogeneity(self) -> float:
        """Mean per-task coefficient of variation of execution times.

        0 means every task runs equally fast everywhere (homogeneous);
        larger values mean machine choice matters more.  Used to verify
        that workload generators hit their heterogeneity targets.
        """
        col_mean = self._e.mean(axis=0)
        col_std = self._e.std(axis=0)
        return float((col_std / col_mean).mean())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExecutionTimeMatrix):
            return NotImplemented
        return self._e.shape == other._e.shape and bool(
            np.array_equal(self._e, other._e)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExecutionTimeMatrix(l={self.num_machines}, k={self.num_tasks})"
        )


class TransferTimeMatrix:
    """The ``l(l-1)/2 x p`` transfer-time matrix ``Tr``.

    ``time(a, b, d)`` returns 0 when ``a == b`` (data stays in place) and
    ``Tr[pair(a,b), d]`` otherwise.  Entries must be finite and
    non-negative.

    A system with a single machine (or a graph with no data items) has an
    empty matrix; :meth:`time` still works and returns 0 for same-machine
    queries.
    """

    __slots__ = ("_tr", "_l")

    def __init__(
        self,
        values: np.ndarray | Sequence[Sequence[float]],
        num_machines: int,
    ):
        tr = np.asarray(values, dtype=float)
        if tr.ndim != 2:
            raise ValueError(f"Tr must be 2-D (pairs x p), got shape {tr.shape}")
        expected_rows = num_pairs(num_machines)
        if tr.shape[0] != expected_rows:
            raise ValueError(
                f"Tr must have l(l-1)/2 = {expected_rows} rows for "
                f"l={num_machines}, got {tr.shape[0]}"
            )
        if tr.size and not np.all(np.isfinite(tr)):
            raise ValueError("Tr must contain only finite values")
        if tr.size and np.any(tr < 0):
            raise ValueError("Tr must contain non-negative times")
        self._tr = tr.copy()
        self._tr.setflags(write=False)
        self._l = num_machines

    @classmethod
    def zeros(cls, num_machines: int, num_items: int) -> "TransferTimeMatrix":
        """A free network: all transfers take zero time."""
        return cls(
            np.zeros((num_pairs(num_machines), num_items)), num_machines
        )

    @classmethod
    def uniform(
        cls, num_machines: int, num_items: int, value: float
    ) -> "TransferTimeMatrix":
        """Every item costs *value* between any two distinct machines."""
        if value < 0:
            raise ValueError(f"transfer time must be >= 0, got {value}")
        return cls(
            np.full((num_pairs(num_machines), num_items), float(value)),
            num_machines,
        )

    @classmethod
    def from_item_sizes(
        cls,
        item_sizes: Sequence[float],
        num_machines: int,
        pair_latency: float = 0.0,
        pair_rate: float | Sequence[float] = 1.0,
    ) -> "TransferTimeMatrix":
        """Derive ``Tr`` from data item sizes and per-pair link speed.

        ``Tr[pair, d] = pair_latency + size_d / rate_pair``.  *pair_rate*
        may be a scalar (uniform network) or one rate per machine pair.
        """
        sizes = np.asarray(item_sizes, dtype=float)
        if sizes.ndim != 1:
            raise ValueError("item_sizes must be 1-D")
        if np.any(sizes < 0):
            raise ValueError("item sizes must be >= 0")
        if pair_latency < 0:
            raise ValueError(f"pair_latency must be >= 0, got {pair_latency}")
        rows = num_pairs(num_machines)
        rates = np.asarray(pair_rate, dtype=float)
        if rates.ndim == 0:
            rates = np.full(rows, float(rates))
        if rates.shape != (rows,):
            raise ValueError(
                f"pair_rate must be scalar or have length {rows}, "
                f"got shape {rates.shape}"
            )
        if np.any(rates <= 0):
            raise ValueError("pair rates must be > 0")
        tr = pair_latency + sizes[None, :] / rates[:, None]
        return cls(tr, num_machines)

    @property
    def num_machines(self) -> int:
        return self._l

    @property
    def num_items(self) -> int:
        return self._tr.shape[1]

    @property
    def values(self) -> np.ndarray:
        """The underlying read-only ``(l(l-1)/2, p)`` array."""
        return self._tr

    def time(self, machine_a: int, machine_b: int, item: int) -> float:
        """Transfer time of *item* between the two machines (0 if equal)."""
        if machine_a == machine_b:
            return 0.0
        return float(self._tr[pair_index(machine_a, machine_b, self._l), item])

    def item_times(self, item: int) -> np.ndarray:
        """Column of transfer times of *item* over all machine pairs."""
        return self._tr[:, item]

    def mean_time(self) -> float:
        """Mean off-machine transfer time over all pairs and items.

        Returns 0 for an empty matrix.  Used to measure the achieved CCR
        of generated workloads.
        """
        if self._tr.size == 0:
            return 0.0
        return float(self._tr.mean())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TransferTimeMatrix):
            return NotImplemented
        return (
            self._l == other._l
            and self._tr.shape == other._tr.shape
            and bool(np.array_equal(self._tr, other._tr))
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TransferTimeMatrix(pairs={self._tr.shape[0]}, "
            f"p={self.num_items})"
        )
