"""Machines of the heterogeneous suite.

The paper's HC system is a set ``M = {m_i, 0 <= i < l}`` of machines, each
characterised by an architecture class (SIMD, MIMD, special-purpose FFT,
...).  The architecture label is *descriptive only* — all quantitative
behaviour flows through the execution-time matrix ``E`` and the transfer
matrix ``Tr`` — but it is kept on the object because workload generators
use it to induce correlated (``consistent``) heterogeneity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True, order=True)
class Machine:
    """One machine of the heterogeneous suite.

    Attributes
    ----------
    index:
        Dense identifier in ``[0, l)``; indexes the rows of ``E`` and
        the pair rows of ``Tr``.
    name:
        Human-readable label; defaults to ``"m{index}"``.
    architecture:
        Free-form architecture class tag (e.g. ``"SIMD"``, ``"MIMD"``).
    """

    index: int
    name: str = field(default="", compare=False)
    architecture: str = field(default="generic", compare=False)

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"machine index must be >= 0, got {self.index}")
        if not self.name:
            object.__setattr__(self, "name", f"m{self.index}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class MachineSet:
    """An ordered, immutable collection of :class:`Machine` objects.

    Machines must have dense indices ``0..l-1`` in order; this makes the
    set isomorphic to ``range(l)`` so hot paths can work with bare ints
    while user-facing APIs can return rich objects.
    """

    __slots__ = ("_machines",)

    def __init__(self, machines: Iterable[Machine]):
        ms = tuple(machines)
        if not ms:
            raise ValueError("a machine set needs at least one machine")
        for expect, m in enumerate(ms):
            if m.index != expect:
                raise ValueError(
                    f"machine indices must be dense 0..{len(ms) - 1}; "
                    f"position {expect} holds index {m.index}"
                )
        self._machines = ms

    @classmethod
    def of_size(cls, l: int, architectures: Sequence[str] = ()) -> "MachineSet":
        """Build ``l`` default machines, optionally cycling *architectures*."""
        if l <= 0:
            raise ValueError(f"machine count must be > 0, got {l}")
        archs = list(architectures) or ["generic"]
        return cls(
            Machine(i, architecture=archs[i % len(archs)]) for i in range(l)
        )

    def __len__(self) -> int:
        return len(self._machines)

    def __iter__(self) -> Iterator[Machine]:
        return iter(self._machines)

    def __getitem__(self, index: int) -> Machine:
        return self._machines[index]

    def __contains__(self, machine: object) -> bool:
        return machine in self._machines

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MachineSet):
            return NotImplemented
        return self._machines == other._machines

    def __hash__(self) -> int:
        return hash(self._machines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MachineSet(l={len(self)})"

    @property
    def indices(self) -> range:
        """``range(l)`` — handy for hot loops over bare machine ids."""
        return range(len(self._machines))

    def num_pairs(self) -> int:
        """Number of unordered machine pairs, ``l(l-1)/2`` (rows of Tr)."""
        l = len(self._machines)
        return l * (l - 1) // 2
