"""Parallel experiment runner: declarative sweeps over algorithms ×
workloads × seeds.

Every figure benchmark and grid study in this repo is, structurally, the
same experiment: run a set of algorithms over a set of workload recipes
with a set of seeds, collect makespans (and convergence traces), and
aggregate.  This package owns that shape:

* :class:`~repro.runner.spec.ExperimentSpec` — the declarative grid,
  picklable end to end, expanded into deterministic cells;
* :func:`~repro.runner.pool.run_experiment` — inline or multi-process
  execution with per-cell resume caching and progress reporting;
* :class:`~repro.runner.results.ExperimentResult` — canonical-order
  results with JSON/CSV persistence.

Determinism contract: for iteration-capped algorithms, results are
bit-identical for any ``workers`` value (per-cell seeds are derived from
cell coordinates, never from execution order).

>>> from repro.runner import (AlgorithmSpec, ExperimentSpec,
...                           run_experiment)
>>> from repro.workloads import WorkloadSpec
>>> spec = ExperimentSpec(
...     name="quick",
...     algorithms={"HEFT": AlgorithmSpec.make("heft"),
...                 "OLB": AlgorithmSpec.make("olb")},
...     workloads=[WorkloadSpec(num_tasks=12, num_machines=3, seed=5,
...                             name="tiny")],
... )
>>> result = run_experiment(spec, workers=1)
>>> [c.algorithm for c in result]
['HEFT', 'OLB']
>>> all(c.makespan > 0 for c in result)
True
"""

from repro.runner.pool import (
    print_progress,
    run_cell,
    run_experiment,
    warmup_worker,
    workers_from_env,
)
from repro.runner.registry import (
    AlgorithmFn,
    CellOutcome,
    algorithm_parameters,
    available_algorithms,
    register_algorithm,
    resolve_algorithm,
)
from repro.runner.results import CellResult, ExperimentResult, merge_results
from repro.runner.spec import (
    AlgorithmSpec,
    ExperimentCell,
    ExperimentSpec,
    derive_seed,
)

__all__ = [
    "AlgorithmFn",
    "AlgorithmSpec",
    "CellOutcome",
    "CellResult",
    "ExperimentCell",
    "ExperimentResult",
    "ExperimentSpec",
    "algorithm_parameters",
    "available_algorithms",
    "derive_seed",
    "merge_results",
    "print_progress",
    "register_algorithm",
    "resolve_algorithm",
    "run_cell",
    "run_experiment",
    "warmup_worker",
    "workers_from_env",
]
