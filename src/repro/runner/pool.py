"""The parallel experiment runner: spec in, results out.

:func:`run_experiment` expands an
:class:`~repro.runner.spec.ExperimentSpec` into cells and executes them —
inline for ``workers=1``, on a :class:`~concurrent.futures.
ProcessPoolExecutor` otherwise.  Three properties the rest of the repo
relies on:

* **Determinism** — per-cell seeds derive from the cell coordinates
  (see :func:`repro.runner.spec.derive_seed`), and results are returned
  in canonical cell order, so the outcome is identical for any worker
  count and any completion order (wall-clock-limited cells excepted:
  their RNG streams are still deterministic but their stopping point is
  physical time).
* **Resume** — with a ``cache_dir``, every finished cell persists
  immediately as one JSON file keyed by a content fingerprint; re-running
  the same experiment skips finished cells, and a changed algorithm
  parameter or workload recipe changes the fingerprint and forces a
  re-run of exactly the affected cells.
* **Progress** — an optional callback fires after every finished cell;
  :func:`print_progress` is a ready-made stderr reporter.
"""

from __future__ import annotations

import json
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Callable, Optional

from repro.runner.registry import resolve_algorithm
from repro.runner.results import (
    RESULT_SCHEMA_VERSION,
    CellResult,
    ExperimentResult,
)
from repro.runner.spec import ExperimentCell, ExperimentSpec
from repro.schedule.backend import (
    DEFAULT_NETWORK,
    DEFAULT_PLATFORM,
    resolve_platform,
)
from repro.schedule.metrics import normalized_makespan
from repro.workloads.presets import build_workload

#: Progress callback: (cells done, cells total, the cell that finished,
#: True when served from cache).
ProgressFn = Callable[[int, int, CellResult, bool], None]


def _platform_view(workload, platform: str):
    """``(effective workload, cost model | None)`` for a cell's platform.

    The effective workload carries the platform's speed-scaled matrix
    (the original object on ``"uniform"``), so normalized makespans are
    measured against the bounds of the machines the cell actually ran
    on.  Unknown platform names (a worker without a downstream
    registration) degrade to the uniform view instead of crashing.
    """
    try:
        spec = resolve_platform(platform)
    except ValueError:
        return workload, None
    if spec.is_uniform:
        return workload, None
    from repro.schedule.scoring import CostModel

    bound = spec.bind(workload.num_machines)
    scaled = bound.apply(workload)
    return scaled, CostModel(scaled.exec_times.values, bound.prices)


def _cell_cost(cost_model, outcome) -> float:
    """Dollar cost of the cell's winning schedule.

    Billing is per-task (cost depends only on the machine assignment),
    so the ``best_string`` extras payload is enough — no re-simulation.
    Cells without one (custom registry entries) report 0.0.
    """
    best = outcome.extras.get("best_string")
    if cost_model is None or best is None:
        return 0.0
    try:
        return float(cost_model.cost(best["machines"]))
    except (KeyError, ValueError, TypeError):
        return 0.0


def run_cell(cell: ExperimentCell) -> CellResult:
    """Execute one cell (this is the function worker processes run).

    The workload is rebuilt per cell (specs must stay picklable), but
    the expensive part — deriving the batch kernels'
    :class:`~repro.schedule.vectorized.WorkloadPack` tensors — is not:
    every kernel construction resolves through the per-process
    fingerprint-keyed pack cache
    (:func:`~repro.schedule.vectorized.get_workload_pack`), so a sweep
    with many cells over few workloads packs each workload once per
    worker process instead of once per cell.
    """
    workload = build_workload(cell.workload)
    fn = resolve_algorithm(cell.algo.kind)
    params = cell.algo.params_dict()
    # record the seed the algorithm actually uses: an explicit params
    # seed overrides the derived per-cell seed (see registry._seed_of);
    # bool is an int subclass, so seed=True must not be recorded as 1
    effective_seed = params.get("seed", cell.seed)
    if not isinstance(effective_seed, int) or isinstance(
        effective_seed, bool
    ):
        effective_seed = cell.seed
    t0 = time.perf_counter()
    outcome = fn(workload, cell.seed, params)
    runtime = time.perf_counter() - t0
    cls = workload.classification
    platform = str(params.get("platform", DEFAULT_PLATFORM))
    effective, cost_model = _platform_view(workload, platform)
    return CellResult(
        cell_id=cell.cell_id(),
        algorithm=cell.algorithm,
        workload=cell.workload_name,
        connectivity=cls.connectivity,
        heterogeneity=cls.heterogeneity,
        ccr=float(cls.ccr) if cls.ccr is not None else float("nan"),
        num_tasks=workload.num_tasks,
        num_machines=workload.num_machines,
        seed=effective_seed,
        network=str(params.get("network", DEFAULT_NETWORK)),
        platform=platform,
        cost=_cell_cost(cost_model, outcome),
        objective=str(params.get("objective", "makespan")),
        scenarios=int(params.get("scenarios", 0) or 0),
        makespan=float(outcome.makespan),
        normalized=normalized_makespan(effective, float(outcome.makespan)),
        evaluations=outcome.evaluations,
        iterations=outcome.iterations,
        stopped_by=outcome.stopped_by,
        runtime_seconds=runtime,
        trace=outcome.trace_rows,
        extras=outcome.extras,
    )


def workers_from_env(default: int = 1, var: str = "REPRO_WORKERS") -> int:
    """Worker count from the environment (used by the benchmarks).

    ``REPRO_WORKERS=8 pytest benchmarks`` fans every runner-backed
    benchmark out over 8 processes; unset/invalid values fall back to
    *default* (serial — the reproducible configuration for timing runs).
    """
    raw = os.environ.get(var, "")
    try:
        return max(1, int(raw))
    except ValueError:
        return default


def print_progress(done: int, total: int, cell: CellResult, cached: bool) -> None:
    """Default progress reporter: one stderr line per finished cell."""
    src = "cache" if cached else f"{cell.runtime_seconds:.1f}s"
    sys.stderr.write(
        f"[{done:>{len(str(total))}}/{total}] {cell.algorithm} on "
        f"{cell.workload}: makespan {cell.makespan:.1f} ({src})\n"
    )


def _cache_path(cache_dir: Path, cell: ExperimentCell, with_traces: bool) -> Path:
    mode = "t" if with_traces else "p"
    return cache_dir / f"{cell.cell_id()}.{mode}{cell.fingerprint()[:16]}.json"


def _load_cached(path: Path) -> Optional[CellResult]:
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if doc.get("version") != RESULT_SCHEMA_VERSION:
        return None
    try:
        return CellResult.from_dict(doc["cell"])
    except TypeError:
        return None


def warmup_worker() -> bool:
    """Per-process warmup of the compiled kernel tier (pool initializer).

    When the jit tier is active, the first batch evaluation in a fresh
    worker pays the one-off numba compile (seconds); a sweep with many
    workers pays it once *per worker*, and a deadline-bound portfolio
    race would burn its budget compiling.  Calling
    :func:`repro.schedule.jit.warmup` in the pool initializer moves that
    cost before any cell/island work starts.  On the NumPy/sequential
    tiers (numba absent or ``REPRO_KERNEL=numpy``) this is a cheap
    no-op returning False; an explicit-but-impossible ``REPRO_KERNEL=
    jit`` without numba is left for the worker's first real evaluation
    to report (an initializer exception would kill the whole pool with
    a far worse message).
    """
    from repro.schedule import jit

    try:
        active = jit.jit_selected()
    except ValueError:
        return False
    if not active:
        return False
    return jit.warmup()


def _tmp_path(path: Path) -> Path:
    """A per-process scratch sibling of *path*.

    Several runner processes may share one ``cache_dir`` (parallel
    shards, or two sweeps resuming the same cache); a fixed ``.tmp``
    name would let them scribble over each other's half-written files
    mid-flight.  The pid suffix keeps writers disjoint; the final
    ``replace`` stays atomic either way.
    """
    return path.with_name(f"{path.name}.{os.getpid()}.tmp")


def _store_cached(path: Path, result: CellResult) -> None:
    payload = json.dumps(
        {"version": RESULT_SCHEMA_VERSION, "cell": result.to_dict()}
    )
    tmp = _tmp_path(path)
    try:
        tmp.write_text(payload)
        tmp.replace(path)  # atomic: a crash never leaves a torn cache entry
    except BaseException:
        # a failed write/rename must not leak the pid-suffixed scratch
        # file into the cache dir (resume scans would accumulate them)
        tmp.unlink(missing_ok=True)
        raise


def run_experiment(
    spec: ExperimentSpec,
    workers: int = 1,
    cache_dir: Optional[str | Path] = None,
    progress: Optional[ProgressFn] = None,
    keep_traces: bool = True,
) -> ExperimentResult:
    """Run every cell of *spec*; see the module docstring for guarantees.

    Parameters
    ----------
    workers:
        Process count; ``1`` runs inline (no pool, easiest to debug).
    cache_dir:
        Directory for per-cell resume files; ``None`` disables caching.
    progress:
        Callback fired after every cell (including cache hits).
    keep_traces:
        ``False`` strips convergence traces from results *and* cache
        files — much smaller artifacts when only makespans matter.
        Plain and with-trace cache entries are kept apart, so flipping
        the flag re-runs rather than silently losing data.
    """
    cells = spec.cells()
    total = len(cells)
    results: dict[int, CellResult] = {}
    done = 0

    cache: Optional[Path] = None
    if cache_dir is not None:
        cache = Path(cache_dir)
        cache.mkdir(parents=True, exist_ok=True)

    def finish(cell: ExperimentCell, result: CellResult, cached: bool) -> None:
        nonlocal done
        if not keep_traces:
            result.trace = None
        if cache is not None and not cached:
            _store_cached(_cache_path(cache, cell, keep_traces), result)
        results[cell.index] = result
        done += 1
        if progress is not None:
            progress(done, total, result, cached)

    pending: list[ExperimentCell] = []
    for cell in cells:
        hit = None
        if cache is not None:
            hit = _load_cached(_cache_path(cache, cell, keep_traces))
        if hit is not None:
            finish(cell, hit, cached=True)
        else:
            pending.append(cell)

    if workers <= 1 or len(pending) <= 1:
        for cell in pending:
            finish(cell, run_cell(cell), cached=False)
    else:
        max_workers = min(workers, len(pending))
        with ProcessPoolExecutor(
            max_workers=max_workers, initializer=warmup_worker
        ) as pool:
            futures = {pool.submit(run_cell, cell): cell for cell in pending}
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(
                    remaining, return_when=FIRST_COMPLETED
                )
                for fut in finished:
                    finish(futures[fut], fut.result(), cached=False)

    ordered = [results[i] for i in sorted(results)]
    return ExperimentResult(name=spec.name, cells=ordered)
