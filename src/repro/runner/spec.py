"""Declarative experiment specs: algorithm × workload × seed grids.

An :class:`ExperimentSpec` is a fully declarative, picklable description
of an experiment — algorithms by registry name and flat parameters,
workloads as :class:`~repro.workloads.presets.WorkloadSpec` recipes,
seeds as plain integers.  Expanding it yields a deterministic list of
:class:`ExperimentCell` entries whose per-cell seeds derive from a SHA-256
of the cell coordinates: independent of execution order, worker count,
platform, and ``PYTHONHASHSEED``.

>>> spec = ExperimentSpec(
...     name="demo",
...     algorithms={"SE": AlgorithmSpec.make("se", max_iterations=10)},
...     workloads=[WorkloadSpec(num_tasks=10, num_machines=2, seed=1,
...                             name="w0")],
...     seeds=(0, 1),
... )
>>> [c.cell_id() for c in spec.cells()]
['SE__w0__s0', 'SE__w0__s1']
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, fields, replace
from typing import Any, Mapping, Sequence, Tuple

from repro.workloads.presets import WorkloadSpec

#: Values allowed inside AlgorithmSpec params (JSON-safe scalars/tuples).
_SCALARS = (type(None), bool, int, float, str)


def _check_param(key: str, value: Any) -> Any:
    if isinstance(value, tuple):
        return tuple(_check_param(key, v) for v in value)
    if isinstance(value, list):
        return tuple(_check_param(key, v) for v in value)
    if not isinstance(value, _SCALARS):
        raise TypeError(
            f"algorithm param {key!r} must be a JSON-safe scalar or a "
            f"tuple of them, got {type(value).__name__}"
        )
    return value


@dataclass(frozen=True)
class AlgorithmSpec:
    """A registry algorithm plus its configuration, as pure data.

    ``params`` is stored as a sorted tuple of ``(key, value)`` pairs so
    specs are hashable and two dict orderings compare equal; build
    through :meth:`make` for the ergonomic keyword form.
    """

    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, kind: str, **params: Any) -> "AlgorithmSpec":
        items = tuple(
            sorted((k, _check_param(k, v)) for k, v in params.items())
        )
        return cls(kind=kind.lower(), params=items)

    def params_dict(self) -> dict:
        return {k: (list(v) if isinstance(v, tuple) else v) for k, v in self.params}

    def describe(self) -> str:
        if not self.params:
            return self.kind
        args = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.kind}({args})"

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": self.params_dict()}

    @classmethod
    def from_dict(cls, doc: Mapping) -> "AlgorithmSpec":
        return cls.make(doc["kind"], **dict(doc.get("params", {})))


def derive_seed(*parts: Any) -> int:
    """A stable 63-bit seed from arbitrary (repr-able) coordinates.

    SHA-256 based, so identical coordinates give identical seeds on any
    platform/process — the root of the runner's worker-count-independent
    determinism.
    """
    digest = hashlib.sha256(
        "\x1f".join(repr(p) for p in parts).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def _workload_key(w: WorkloadSpec) -> dict:
    doc = {f.name: getattr(w, f.name) for f in fields(w)}
    return doc


_ID_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


@dataclass(frozen=True)
class ExperimentCell:
    """One (algorithm, workload, seed) coordinate of an experiment."""

    index: int
    algorithm: str
    algo: AlgorithmSpec
    workload: WorkloadSpec
    seed_index: int
    seed: int

    @property
    def workload_name(self) -> str:
        # ExperimentSpec guarantees a name; the fallback only covers
        # hand-built cells and must not depend on the (algorithm- and
        # seed-varying) global cell index.
        return self.workload.name or "w?"

    def cell_id(self) -> str:
        raw = f"{self.algorithm}__{self.workload_name}__s{self.seed_index}"
        return _ID_SAFE.sub("-", raw)

    def fingerprint(self) -> str:
        """Content hash of everything that determines this cell's result.

        Cached results are only reused when the fingerprint matches, so
        editing an algorithm's parameters or a workload recipe silently
        invalidates stale cache entries.
        """
        doc = {
            "algorithm": self.algorithm,
            "algo": self.algo.to_dict(),
            "workload": _workload_key(self.workload),
            "seed": self.seed,
        }
        blob = json.dumps(doc, sort_keys=True, default=repr)
        return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(frozen=True)
class ExperimentSpec:
    """A named grid of algorithms × workloads × seeds.

    Attributes
    ----------
    name:
        Experiment label (used in persisted artifacts).
    algorithms:
        Display name → :class:`AlgorithmSpec`.
    workloads:
        :class:`WorkloadSpec` recipes.  Each must carry a plain-``int``
        (or ``None``) seed and a unique name — workers rebuild workloads
        from the recipe, so generators cannot be shipped.
    seeds:
        Replicate seeds.  The actual per-cell algorithm seed is derived
        from ``(base_seed, algorithm, workload, seed)`` — see
        :func:`derive_seed` — so two cells never share an RNG stream.
    pairing:
        ``"grid"`` crosses workloads × seeds; ``"zip"`` pairs
        ``workloads[i]`` with ``seeds[i]`` (equal lengths required) —
        the shape used by figure benchmarks that draw one workload per
        replicate.
    seed_mode:
        ``"independent"`` (default) derives each cell's seed from the
        full cell coordinates *including the algorithm*, so no two cells
        ever share an RNG stream.  ``"paired"`` omits the algorithm from
        the derivation: all algorithms get the **same** stream on the
        same (workload, replicate) — the paired-comparison design for
        studies whose variants are the same algorithm under different
        parameters (e.g. an SE Y-parameter sweep, warm vs cold start).
    base_seed:
        Root of the per-cell seed derivation.
    """

    name: str
    algorithms: Tuple[Tuple[str, AlgorithmSpec], ...]
    workloads: Tuple[WorkloadSpec, ...]
    seeds: Tuple[int, ...] = (0,)
    pairing: str = "grid"
    seed_mode: str = "independent"
    base_seed: int = 0

    def __init__(
        self,
        name: str,
        algorithms: Mapping[str, AlgorithmSpec] | Sequence[Tuple[str, AlgorithmSpec]],
        workloads: Sequence[WorkloadSpec],
        seeds: Sequence[int] = (0,),
        pairing: str = "grid",
        seed_mode: str = "independent",
        base_seed: int = 0,
    ):
        if isinstance(algorithms, Mapping):
            algo_items = tuple(algorithms.items())
        else:
            algo_items = tuple(algorithms)
        if not algo_items:
            raise ValueError("need at least one algorithm")
        names = [n for n, _ in algo_items]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate algorithm names in {names}")
        workloads = tuple(workloads)
        if not workloads:
            raise ValueError("need at least one workload")
        # Unnamed recipes get a positional name, so the same workload
        # keeps one identity across algorithms and seeds.
        workloads = tuple(
            w if w.name else replace(w, name=f"w{i}")
            for i, w in enumerate(workloads)
        )
        for w in workloads:
            if w.seed is not None and not isinstance(w.seed, int):
                raise TypeError(
                    f"workload {w.name or '?'} carries a non-int seed "
                    f"({type(w.seed).__name__}); runner workloads must be "
                    "rebuildable from plain data"
                )
        wnames = [w.name for w in workloads]
        if len(set(wnames)) != len(wnames):
            raise ValueError(f"workload names must be unique, got {wnames}")
        seeds = tuple(int(s) for s in seeds)
        if not seeds:
            raise ValueError("need at least one seed")
        if pairing not in ("grid", "zip"):
            raise ValueError(f"pairing must be 'grid' or 'zip', got {pairing!r}")
        if seed_mode not in ("independent", "paired"):
            raise ValueError(
                f"seed_mode must be 'independent' or 'paired', got {seed_mode!r}"
            )
        if pairing == "zip" and len(workloads) != len(seeds):
            raise ValueError(
                f"zip pairing needs len(workloads) == len(seeds), got "
                f"{len(workloads)} != {len(seeds)}"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "algorithms", algo_items)
        object.__setattr__(self, "workloads", workloads)
        object.__setattr__(self, "seeds", seeds)
        object.__setattr__(self, "pairing", pairing)
        object.__setattr__(self, "seed_mode", seed_mode)
        object.__setattr__(self, "base_seed", int(base_seed))

    @property
    def algorithm_names(self) -> list[str]:
        return [n for n, _ in self.algorithms]

    def cells(self) -> list[ExperimentCell]:
        """The deterministic expansion, in a stable canonical order."""
        out: list[ExperimentCell] = []
        if self.pairing == "zip":
            pairs = list(zip(self.workloads, enumerate(self.seeds)))
            coords = [(w, si, s) for w, (si, s) in pairs]
        else:
            coords = [
                (w, si, s)
                for w in self.workloads
                for si, s in enumerate(self.seeds)
            ]
        index = 0
        for algo_name, algo in self.algorithms:
            for w, si, s in coords:
                if self.seed_mode == "paired":
                    seed = derive_seed(self.base_seed, _workload_key(w), s)
                else:
                    seed = derive_seed(
                        self.base_seed, algo_name, algo, _workload_key(w), s
                    )
                out.append(
                    ExperimentCell(
                        index=index,
                        algorithm=algo_name,
                        algo=algo,
                        workload=w,
                        seed_index=si,
                        seed=seed,
                    )
                )
                index += 1
        return out

    def __len__(self) -> int:
        return len(self.algorithms) * (
            len(self.seeds)
            if self.pairing == "zip"
            else len(self.workloads) * len(self.seeds)
        )
