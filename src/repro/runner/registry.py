"""Algorithm registry: names the runner can execute in worker processes.

Multiprocessing cannot ship closures across process boundaries, so the
experiment runner refers to algorithms **by name**: an
:class:`~repro.runner.spec.AlgorithmSpec` carries a registry key plus a
flat parameter mapping, and every worker resolves the key against this
module-level registry after import.  The built-in entries cover every
algorithm in the library; downstream code can add its own with
:func:`register_algorithm` (the registration must happen at import time
of a module the workers also import — e.g. the module defining the
experiment).

>>> from repro.runner import available_algorithms
>>> "se" in available_algorithms() and "heft" in available_algorithms()
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.model.workload import Workload
from repro.schedule.backend import DEFAULT_NETWORK


@dataclass
class CellOutcome:
    """What one algorithm run reports back to the experiment runner.

    ``trace_rows`` uses the plain-dict row format of
    :meth:`repro.analysis.trace.ConvergenceTrace.to_rows` so outcomes
    stay picklable and JSON-serialisable; deterministic heuristics leave
    it ``None``.
    """

    makespan: float
    evaluations: int = 0
    iterations: int = 0
    stopped_by: str = ""
    trace_rows: Optional[List[dict]] = None
    extras: dict = field(default_factory=dict)


#: An algorithm entry: (workload, seed, params) -> CellOutcome.
AlgorithmFn = Callable[[Workload, int, dict], CellOutcome]

#: Parameter-name source: a tuple of names, or a zero-arg callable
#: returning one (lazy, so declaring params never imports engine code).
ParamSource = Callable[[], tuple] | tuple

_REGISTRY: Dict[str, AlgorithmFn] = {}
_PARAMS: Dict[str, ParamSource] = {}


def register_algorithm(name: str, params: Optional[ParamSource] = None):
    """Decorator registering *fn* under *name* (lowercase, unique).

    *params* optionally declares the parameter names the entry accepts
    in its ``params`` dict (see :func:`algorithm_parameters`) — either a
    tuple of names or a lazy zero-arg callable returning one (e.g.
    reading a config dataclass's fields without importing it up front).
    """

    def deco(fn: AlgorithmFn) -> AlgorithmFn:
        key = name.lower()
        if key in _REGISTRY:
            raise ValueError(f"algorithm {key!r} already registered")
        _REGISTRY[key] = fn
        if params is not None:
            _PARAMS[key] = params
        return fn

    return deco


def resolve_algorithm(name: str) -> AlgorithmFn:
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; available: "
            f"{', '.join(available_algorithms())}"
        ) from None


def available_algorithms() -> List[str]:
    return sorted(_REGISTRY)


def algorithm_parameters(name: str) -> tuple:
    """Registry parameter names of algorithm *name* (may be empty).

    These are the keys accepted in ``AlgorithmSpec.make(name, ...)`` —
    for the engine-backed entries, the fields of the engine's config
    dataclass.  Raises :class:`KeyError` for unknown algorithms with
    the same message as :func:`resolve_algorithm`.
    """
    resolve_algorithm(name)  # uniform unknown-name error
    source = _PARAMS.get(name.lower(), ())
    return tuple(source() if callable(source) else source)


def _config_fields(import_config: Callable[[], type]) -> Callable[[], tuple]:
    """Lazy param source: the field names of a config dataclass."""

    def read() -> tuple:
        from dataclasses import fields

        return tuple(f.name for f in fields(import_config()))

    return read


def _se_config() -> type:
    from repro.core import SEConfig

    return SEConfig


def _ga_config() -> type:
    from repro.baselines import GAConfig

    return GAConfig


def _sa_config() -> type:
    from repro.optim import SAConfig

    return SAConfig


def _tabu_config() -> type:
    from repro.optim import TabuConfig

    return TabuConfig


def _race_config() -> type:
    from repro.portfolio import RaceConfig

    return RaceConfig


# ----------------------------------------------------------------------
# built-in entries
# ----------------------------------------------------------------------


def _string_pairs(string) -> dict:
    """A ScheduleString as plain lists (JSON/pickle-safe extras payload).

    Rebuild with ``ScheduleString(doc["order"], doc["machines"], l)``.
    """
    return {"order": list(string.order), "machines": list(string.machines)}


def _seed_of(seed: int, params: dict) -> int:
    """Explicit ``seed`` in params overrides the derived per-cell seed.

    The derived seed keeps cells statistically independent; pinning is
    for benchmarks that must reproduce one specific published trajectory.
    """
    return params.pop("seed", seed)


@register_algorithm("se", params=_config_fields(_se_config))
def _run_se(workload: Workload, seed: int, params: dict) -> CellOutcome:
    from repro.core import SEConfig, SimulatedEvolution

    params = dict(params)
    seed = _seed_of(seed, params)
    res = SimulatedEvolution(SEConfig(seed=seed, **params)).run(workload)
    return CellOutcome(
        makespan=res.best_makespan,
        evaluations=res.evaluations,
        iterations=res.iterations,
        stopped_by=res.stopped_by,
        trace_rows=res.trace.to_rows(),
        extras={
            "bias": res.bias,
            "y_candidates": res.y_candidates,
            "best_string": _string_pairs(res.best_string),
        },
    )


@register_algorithm("hybrid", params=_config_fields(_se_config))
def _run_hybrid(workload: Workload, seed: int, params: dict) -> CellOutcome:
    """HEFT-seeded SE (the EXT-HYBRID warm-start extension)."""
    from repro.core import SEConfig
    from repro.extensions.hybrid import heft_seeded_se

    params = dict(params)
    seed = _seed_of(seed, params)
    res = heft_seeded_se(workload, SEConfig(seed=seed, **params))
    return CellOutcome(
        makespan=res.best_makespan,
        evaluations=res.evaluations,
        iterations=res.iterations,
        stopped_by=res.stopped_by,
        trace_rows=res.trace.to_rows(),
        extras={"best_string": _string_pairs(res.best_string)},
    )


@register_algorithm("ga", params=_config_fields(_ga_config))
def _run_ga(workload: Workload, seed: int, params: dict) -> CellOutcome:
    from repro.baselines import GAConfig, GeneticAlgorithm

    params = dict(params)
    seed = _seed_of(seed, params)
    res = GeneticAlgorithm(GAConfig(seed=seed, **params)).run(workload)
    return CellOutcome(
        makespan=res.best_makespan,
        evaluations=res.evaluations,
        iterations=res.generations,
        stopped_by=res.stopped_by,
        trace_rows=res.trace.to_rows(),
        extras={"best_string": _string_pairs(res.best_string)},
    )


def _deterministic(fn_name: str):
    def run(workload: Workload, seed: int, params: dict) -> CellOutcome:
        import repro.baselines as baselines

        # Deterministic heuristics take no seed; a spec may still pin one
        # (e.g. a grid sharing params across algorithms) — strip it
        # instead of crashing the worker with an unexpected kwarg.
        params = dict(params)
        params.pop("seed", None)
        res = getattr(baselines, fn_name)(workload, **params)
        return CellOutcome(
            makespan=res.makespan,
            evaluations=res.evaluations,
            extras={"best_string": _string_pairs(res.string)},
        )

    return run


register_algorithm("heft", params=("network", "platform"))(
    _deterministic("heft")
)
register_algorithm("minmin", params=("network", "platform"))(
    _deterministic("min_min")
)
register_algorithm("maxmin", params=("network", "platform"))(
    _deterministic("max_min")
)
register_algorithm("olb", params=("network", "platform"))(
    _deterministic("olb")
)


@register_algorithm("sa", params=_config_fields(_sa_config))
def _run_sa(workload: Workload, seed: int, params: dict) -> CellOutcome:
    from repro.optim import SAConfig, SimulatedAnnealing

    params = dict(params)
    seed = _seed_of(seed, params)
    res = SimulatedAnnealing(SAConfig(seed=seed, **params)).run(workload)
    return CellOutcome(
        makespan=res.best_makespan,
        evaluations=res.evaluations,
        iterations=res.iterations,
        stopped_by=res.stopped_by,
        trace_rows=res.trace.to_rows(),
        extras={"best_string": _string_pairs(res.best_string)},
    )


@register_algorithm("tabu", params=_config_fields(_tabu_config))
def _run_tabu(workload: Workload, seed: int, params: dict) -> CellOutcome:
    from repro.optim import TabuConfig, TabuSearch

    params = dict(params)
    seed = _seed_of(seed, params)
    res = TabuSearch(TabuConfig(seed=seed, **params)).run(workload)
    return CellOutcome(
        makespan=res.best_makespan,
        evaluations=res.evaluations,
        iterations=res.iterations,
        stopped_by=res.stopped_by,
        trace_rows=res.trace.to_rows(),
        extras={"best_string": _string_pairs(res.best_string)},
    )


@register_algorithm("portfolio", params=_config_fields(_race_config))
def _run_portfolio(workload: Workload, seed: int, params: dict) -> CellOutcome:
    """The anytime portfolio race as a sweep-able algorithm entry.

    Runner cells already execute inside worker processes, so the entry
    defaults to the GIL-sharing ``thread`` mode instead of nesting a
    second process pool per cell; a spec can still pin ``mode=
    "process"`` explicitly.
    """
    from repro.portfolio import RaceConfig, run_race

    params = dict(params)
    seed = _seed_of(seed, params)
    params.setdefault("mode", "thread")
    res = run_race(workload, RaceConfig(seed=seed, **params))
    winner = res.islands[res.best_island]
    return CellOutcome(
        makespan=res.best_makespan,
        evaluations=res.evaluations,
        iterations=res.iterations,
        stopped_by=winner.stopped_by,
        extras={
            "best_string": dict(res.best_string),
            "best_island": res.best_island,
            "best_kind": winner.kind,
            "islands": [
                {
                    "island": o.island,
                    "kind": o.kind,
                    "best_makespan": o.best_makespan,
                    "published": o.published,
                    "received": o.received,
                    "kernel_tier": o.kernel_tier,
                }
                for o in res.islands
            ],
        },
    )


@register_algorithm(
    "random",
    params=(
        "samples",
        "batch_size",
        "time_limit",
        "network",
        "platform",
        "objective",
        "scenarios",
        "distribution",
        "scenario_seed",
        "seed",
    ),
)
def _run_random(workload: Workload, seed: int, params: dict) -> CellOutcome:
    from repro.baselines import random_search
    from repro.schedule.backend import DEFAULT_PLATFORM

    params = dict(params)
    seed = _seed_of(seed, params)
    res = random_search(
        workload,
        samples=params.get("samples", 1000),
        seed=seed,
        time_limit=params.get("time_limit"),
        network=params.get("network", DEFAULT_NETWORK),
        batch_size=params.get("batch_size", 128),
        platform=params.get("platform", DEFAULT_PLATFORM),
        objective=params.get("objective", "makespan"),
        scenarios=int(params.get("scenarios", 0) or 0),
        distribution=params.get("distribution", "deterministic"),
        scenario_seed=int(params.get("scenario_seed", 0) or 0),
    )
    return CellOutcome(
        makespan=res.makespan,
        evaluations=res.evaluations,
        extras={"best_string": _string_pairs(res.string)},
    )
