"""Algorithm registry: names the runner can execute in worker processes.

Multiprocessing cannot ship closures across process boundaries, so the
experiment runner refers to algorithms **by name**: an
:class:`~repro.runner.spec.AlgorithmSpec` carries a registry key plus a
flat parameter mapping, and every worker resolves the key against this
module-level registry after import.  The built-in entries cover every
algorithm in the library; downstream code can add its own with
:func:`register_algorithm` (the registration must happen at import time
of a module the workers also import — e.g. the module defining the
experiment).

>>> from repro.runner import available_algorithms
>>> "se" in available_algorithms() and "heft" in available_algorithms()
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.model.workload import Workload
from repro.schedule.backend import DEFAULT_NETWORK


@dataclass
class CellOutcome:
    """What one algorithm run reports back to the experiment runner.

    ``trace_rows`` uses the plain-dict row format of
    :meth:`repro.analysis.trace.ConvergenceTrace.to_rows` so outcomes
    stay picklable and JSON-serialisable; deterministic heuristics leave
    it ``None``.
    """

    makespan: float
    evaluations: int = 0
    iterations: int = 0
    stopped_by: str = ""
    trace_rows: Optional[List[dict]] = None
    extras: dict = field(default_factory=dict)


#: An algorithm entry: (workload, seed, params) -> CellOutcome.
AlgorithmFn = Callable[[Workload, int, dict], CellOutcome]

_REGISTRY: Dict[str, AlgorithmFn] = {}


def register_algorithm(name: str):
    """Decorator registering *fn* under *name* (lowercase, unique)."""

    def deco(fn: AlgorithmFn) -> AlgorithmFn:
        key = name.lower()
        if key in _REGISTRY:
            raise ValueError(f"algorithm {key!r} already registered")
        _REGISTRY[key] = fn
        return fn

    return deco


def resolve_algorithm(name: str) -> AlgorithmFn:
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; available: "
            f"{', '.join(available_algorithms())}"
        ) from None


def available_algorithms() -> List[str]:
    return sorted(_REGISTRY)


# ----------------------------------------------------------------------
# built-in entries
# ----------------------------------------------------------------------


def _string_pairs(string) -> dict:
    """A ScheduleString as plain lists (JSON/pickle-safe extras payload).

    Rebuild with ``ScheduleString(doc["order"], doc["machines"], l)``.
    """
    return {"order": list(string.order), "machines": list(string.machines)}


def _seed_of(seed: int, params: dict) -> int:
    """Explicit ``seed`` in params overrides the derived per-cell seed.

    The derived seed keeps cells statistically independent; pinning is
    for benchmarks that must reproduce one specific published trajectory.
    """
    return params.pop("seed", seed)


@register_algorithm("se")
def _run_se(workload: Workload, seed: int, params: dict) -> CellOutcome:
    from repro.core import SEConfig, SimulatedEvolution

    params = dict(params)
    seed = _seed_of(seed, params)
    res = SimulatedEvolution(SEConfig(seed=seed, **params)).run(workload)
    return CellOutcome(
        makespan=res.best_makespan,
        evaluations=res.evaluations,
        iterations=res.iterations,
        stopped_by=res.stopped_by,
        trace_rows=res.trace.to_rows(),
        extras={
            "bias": res.bias,
            "y_candidates": res.y_candidates,
            "best_string": _string_pairs(res.best_string),
        },
    )


@register_algorithm("hybrid")
def _run_hybrid(workload: Workload, seed: int, params: dict) -> CellOutcome:
    """HEFT-seeded SE (the EXT-HYBRID warm-start extension)."""
    from repro.core import SEConfig
    from repro.extensions.hybrid import heft_seeded_se

    params = dict(params)
    seed = _seed_of(seed, params)
    res = heft_seeded_se(workload, SEConfig(seed=seed, **params))
    return CellOutcome(
        makespan=res.best_makespan,
        evaluations=res.evaluations,
        iterations=res.iterations,
        stopped_by=res.stopped_by,
        trace_rows=res.trace.to_rows(),
        extras={"best_string": _string_pairs(res.best_string)},
    )


@register_algorithm("ga")
def _run_ga(workload: Workload, seed: int, params: dict) -> CellOutcome:
    from repro.baselines import GAConfig, GeneticAlgorithm

    params = dict(params)
    seed = _seed_of(seed, params)
    res = GeneticAlgorithm(GAConfig(seed=seed, **params)).run(workload)
    return CellOutcome(
        makespan=res.best_makespan,
        evaluations=res.evaluations,
        iterations=res.generations,
        stopped_by=res.stopped_by,
        trace_rows=res.trace.to_rows(),
        extras={"best_string": _string_pairs(res.best_string)},
    )


def _deterministic(fn_name: str):
    def run(workload: Workload, seed: int, params: dict) -> CellOutcome:
        import repro.baselines as baselines

        # Deterministic heuristics take no seed; a spec may still pin one
        # (e.g. a grid sharing params across algorithms) — strip it
        # instead of crashing the worker with an unexpected kwarg.
        params = dict(params)
        params.pop("seed", None)
        res = getattr(baselines, fn_name)(workload, **params)
        return CellOutcome(
            makespan=res.makespan,
            evaluations=res.evaluations,
            extras={"best_string": _string_pairs(res.string)},
        )

    return run


register_algorithm("heft")(_deterministic("heft"))
register_algorithm("minmin")(_deterministic("min_min"))
register_algorithm("maxmin")(_deterministic("max_min"))
register_algorithm("olb")(_deterministic("olb"))


@register_algorithm("random")
def _run_random(workload: Workload, seed: int, params: dict) -> CellOutcome:
    from repro.baselines import random_search

    params = dict(params)
    seed = _seed_of(seed, params)
    res = random_search(
        workload,
        samples=params.get("samples", 1000),
        seed=seed,
        network=params.get("network", DEFAULT_NETWORK),
        batch_size=params.get("batch_size", 128),
    )
    return CellOutcome(
        makespan=res.makespan,
        evaluations=res.evaluations,
        extras={"best_string": _string_pairs(res.string)},
    )
