"""Experiment results: per-cell records with JSON/CSV persistence.

A :class:`CellResult` is flat, picklable and JSON-round-trippable — it
crosses process boundaries, lands in per-cell cache files, and aggregates
into an :class:`ExperimentResult` with the usual save/load helpers.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.schedule.backend import DEFAULT_NETWORK, DEFAULT_PLATFORM

if TYPE_CHECKING:  # deferred at runtime: analysis.grid imports the runner
    from repro.analysis.trace import ConvergenceTrace

#: Bump when the CellResult schema changes incompatibly; cache entries
#: from other versions are ignored (re-run), never mis-parsed.
RESULT_SCHEMA_VERSION = 1


@dataclass
class CellResult:
    """Outcome of one experiment cell (one algorithm on one workload).

    ``trace`` holds plain row dicts (see
    :meth:`repro.analysis.trace.ConvergenceTrace.to_rows`) or ``None``
    when the algorithm has no convergence trace / traces were stripped.
    ``runtime_seconds`` is wall time in the worker — informative, and the
    only field that is *not* deterministic across runs.

    ``platform`` / ``cost`` record the machine-catalog scenario and the
    winning schedule's dollar cost under its billing table (0.0 on the
    free default ``"uniform"`` platform).  ``objective`` / ``scenarios``
    record the risk axis: the scalar the cell optimised and how many
    Monte-Carlo scenarios backed it (0 = deterministic).  ``makespan``
    is always the winner's *nominal* makespan — under a scenario
    objective the optimised risk statistic steered the search, but the
    recorded number stays comparable across objectives.  All four
    default, so cache files written before the corresponding axis
    existed still load.
    """

    cell_id: str
    algorithm: str
    workload: str
    connectivity: str
    heterogeneity: str
    ccr: float
    num_tasks: int
    num_machines: int
    seed: int
    makespan: float
    normalized: float
    network: str = DEFAULT_NETWORK
    platform: str = DEFAULT_PLATFORM
    cost: float = 0.0
    objective: str = "makespan"
    scenarios: int = 0
    evaluations: int = 0
    iterations: int = 0
    stopped_by: str = ""
    runtime_seconds: float = 0.0
    trace: Optional[List[dict]] = None
    extras: dict = field(default_factory=dict)

    def convergence_trace(self) -> "ConvergenceTrace":
        """The trace rows as a :class:`ConvergenceTrace` (raises if absent)."""
        from repro.analysis.trace import ConvergenceTrace, IterationRecord

        if self.trace is None:
            raise ValueError(
                f"cell {self.cell_id} has no trace (deterministic "
                "algorithm, or the experiment ran with keep_traces=False)"
            )
        return ConvergenceTrace(IterationRecord(**row) for row in self.trace)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "CellResult":
        return cls(**doc)


_CSV_FIELDS = [
    "cell_id",
    "algorithm",
    "workload",
    "connectivity",
    "heterogeneity",
    "ccr",
    "num_tasks",
    "num_machines",
    "seed",
    "makespan",
    "normalized",
    "network",
    "platform",
    "cost",
    "objective",
    "scenarios",
    "evaluations",
    "iterations",
    "stopped_by",
    "runtime_seconds",
]


@dataclass
class ExperimentResult:
    """All cell results of one experiment run, in canonical cell order."""

    name: str
    cells: List[CellResult] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    @property
    def algorithms(self) -> List[str]:
        seen: Dict[str, None] = {}
        for c in self.cells:
            seen.setdefault(c.algorithm, None)
        return list(seen)

    def by_algorithm(self, algorithm: str) -> List[CellResult]:
        return [c for c in self.cells if c.algorithm == algorithm]

    def makespans(self, algorithm: str) -> List[float]:
        return [c.makespan for c in self.by_algorithm(algorithm)]

    def cell(
        self, algorithm: str, workload: str, seed_of: Optional[int] = None
    ) -> CellResult:
        """The unique cell for (algorithm, workload [, seed])."""
        hits = [
            c
            for c in self.cells
            if c.algorithm == algorithm
            and c.workload == workload
            and (seed_of is None or c.seed == seed_of)
        ]
        if not hits:
            raise KeyError(f"no cell for ({algorithm!r}, {workload!r})")
        if len(hits) > 1:
            raise KeyError(
                f"{len(hits)} cells match ({algorithm!r}, {workload!r}); "
                "disambiguate by seed"
            )
        return hits[0]

    def traces(self) -> Dict[Tuple[str, str, int], "ConvergenceTrace"]:
        """All traces keyed by (algorithm, workload, seed)."""
        return {
            (c.algorithm, c.workload, c.seed): c.convergence_trace()
            for c in self.cells
            if c.trace is not None
        }

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": RESULT_SCHEMA_VERSION,
            "name": self.name,
            "cells": [c.to_dict() for c in self.cells],
        }

    def save_json(self, path: str | Path, indent: int = 2) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=indent))
        return path

    @classmethod
    def load_json(cls, path: str | Path) -> "ExperimentResult":
        doc = json.loads(Path(path).read_text())
        if doc.get("version") != RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported result schema {doc.get('version')!r} in {path}"
            )
        return cls(
            name=doc["name"],
            cells=[CellResult.from_dict(c) for c in doc["cells"]],
        )

    def save_csv(self, path: str | Path) -> Path:
        """Flat per-cell table (traces and extras omitted)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=_CSV_FIELDS)
            writer.writeheader()
            for c in self.cells:
                row = c.to_dict()
                writer.writerow({k: row[k] for k in _CSV_FIELDS})
        return path


def merge_results(
    name: str, chunks: Iterable[ExperimentResult]
) -> ExperimentResult:
    """Concatenate partial results (e.g. shards run on several hosts).

    Sorting uses the cell id (which embeds the replicate index), not the
    derived numeric seed, so replicates of different algorithms stay
    index-aligned for the grid's pairwise statistics.
    """
    merged = ExperimentResult(name=name)
    for chunk in chunks:
        merged.cells.extend(chunk.cells)
    merged.cells.sort(key=lambda c: (c.algorithm, c.workload, c.cell_id))
    return merged
