"""The portfolio race driver: shard engines over workers, share the best.

:func:`run_race` answers the anytime question — "best schedule for this
workload within *deadline* seconds" — by racing islands (SE, GA, SA,
tabu, plus seeded restarts) concurrently and letting them trade
incumbents through a channel (:mod:`repro.portfolio.exchange`).  Three
execution modes, picked from the config:

* **process** (default) — one OS process per island via
  ``ProcessPoolExecutor`` with the runner's
  :func:`~repro.runner.pool.warmup_worker` initializer (the jit tier
  compiles before the clock matters) and a
  :class:`~repro.portfolio.exchange.SharedChannel` over a
  ``multiprocessing.Manager``;
* **thread** — islands as threads over a
  :class:`~repro.portfolio.exchange.LocalChannel`; slower for CPU-bound
  engines (the GIL) but dependency-free and safe inside an already
  process-parallel harness (the runner's ``portfolio`` registry entry
  uses it);
* **lockstep** (``sync_every=N``) — threads over a
  :class:`~repro.portfolio.exchange.SyncChannel` that rendezvous every
  N own-iterations: slow, but every exchange is a pure function of
  seeds and iteration numbers, which is what the goldens pin.

Determinism contract: per-island RNG streams derive from ``(seed,
"island", i, kind)`` regardless of worker count, so each island's
*published* sequence is reproducible; in the asynchronous modes the
*arrival* iteration of a foreign incumbent depends on wall-clock
interleaving (documented race), while ``sync_every`` removes it.  With
``islands=1`` there is no channel at all and the run is bit-identical
to the solo engine.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Union

from repro.model.workload import Workload
from repro.portfolio.islands import (
    ENGINE_KINDS,
    IslandOutcome,
    IslandSpec,
    build_islands,
    run_island,
)
from repro.schedule.backend import (
    DEFAULT_NETWORK,
    DEFAULT_PLATFORM,
    resolve_platform,
)
from repro.workloads.presets import WorkloadSpec, build_workload

#: Execution modes of :func:`run_race` (``sync_every`` forces lockstep).
MODES = ("process", "thread")


@dataclass
class RaceConfig:
    """Parameters of one :func:`run_race` (see module docstring).

    Attributes
    ----------
    engines:
        Engine kinds to race, cycled across islands.
    islands:
        Island count; ``0`` (default) means one island per engine kind.
        ``1`` disables the exchange entirely (solo bit-identity).
    deadline:
        Wall-clock budget in seconds per island (each island's clock
        starts when it starts, so queued islands are not short-changed).
    max_iterations:
        Per-island iteration cap in each engine's own unit (SE/SA/tabu
        iterations, GA generations); required in lockstep mode, where a
        wall-clock stop would break determinism.
    sync_every:
        Deterministic-exchange stride: islands run in lockstep threads
        and rendezvous every N own-iterations.  Implies ``mode=
        "thread"``.
    exchange_interval:
        Poll stride override for all islands; default is per-engine
        (see :data:`repro.portfolio.islands.DEFAULT_INTERVALS`).
    mode:
        ``"process"`` (default) or ``"thread"``.
    workers:
        Max concurrent islands in process mode; default
        ``min(islands, cpu_count)``.
    network / platform:
        Backend and machine catalog every island optimises against.
    seed:
        Base seed; island *i* derives its stream from
        ``(seed, "island", i, kind)``.
    """

    engines: Tuple[str, ...] = ENGINE_KINDS
    islands: int = 0
    deadline: Optional[float] = 2.0
    max_iterations: Optional[int] = None
    sync_every: Optional[int] = None
    exchange_interval: Optional[int] = None
    mode: str = "process"
    workers: Optional[int] = None
    network: str = DEFAULT_NETWORK
    platform: str = DEFAULT_PLATFORM
    seed: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.engines, str):
            self.engines = tuple(
                e.strip() for e in self.engines.split(",") if e.strip()
            )
        else:
            self.engines = tuple(self.engines)
        for kind in self.engines:
            if kind not in ENGINE_KINDS:
                raise ValueError(
                    f"unknown engine kind {kind!r}; expected a subset of "
                    f"{', '.join(ENGINE_KINDS)}"
                )
        if not self.engines:
            raise ValueError("engines must name at least one engine kind")
        if self.islands < 0:
            raise ValueError(f"islands must be >= 0, got {self.islands}")
        if self.islands == 0:
            self.islands = len(self.engines)
        if self.mode not in MODES:
            raise ValueError(
                f"mode must be one of {', '.join(MODES)}, got {self.mode!r}"
            )
        if self.sync_every is not None:
            if self.sync_every < 1:
                raise ValueError(
                    f"sync_every must be >= 1, got {self.sync_every}"
                )
            if self.max_iterations is None:
                raise ValueError(
                    "lockstep mode (sync_every) requires max_iterations: "
                    "a wall-clock deadline would make the exchange "
                    "schedule timing-dependent"
                )
        if self.deadline is None and self.max_iterations is None:
            raise ValueError("set a deadline, max_iterations, or both")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")
        if self.max_iterations is not None and self.max_iterations < 1:
            raise ValueError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        if self.exchange_interval is not None and self.exchange_interval < 1:
            raise ValueError(
                f"exchange_interval must be >= 1, got {self.exchange_interval}"
            )
        if not isinstance(self.network, str) or not self.network:
            raise ValueError(
                f"network must be a backend name string, got {self.network!r}"
            )
        resolve_platform(self.platform)


@dataclass(frozen=True)
class RaceResult:
    """Outcome of one portfolio race.

    ``islands`` holds each island's condensed
    :class:`~repro.portfolio.islands.IslandOutcome`; the global winner
    is the cost-minimal island (ties broken by lowest island id, so the
    pick is deterministic whenever the island results are).
    """

    workload: str
    islands: Tuple[IslandOutcome, ...]
    best_makespan: float
    best_string: dict
    best_island: int
    wall_seconds: float
    config: RaceConfig = field(repr=False, default=None)

    @property
    def best_kind(self) -> str:
        """Engine kind of the winning island."""
        return self.islands[self.best_island].kind

    @property
    def evaluations(self) -> int:
        """Total simulator calls across all islands."""
        return sum(o.evaluations for o in self.islands)

    @property
    def iterations(self) -> int:
        """Total engine iterations across all islands."""
        return sum(o.iterations for o in self.islands)

    def combined_anytime(self) -> list:
        """The race-global anytime curve ``[(elapsed, best), ...]``.

        Each island's improvement events shift by its start offset onto
        one timeline; the merged curve keeps only strict improvements
        of the global best (ties keep the earliest arrival).
        """
        events = sorted(
            (o.start_offset + t, cost)
            for o in self.islands
            for t, cost in o.anytime
        )
        curve, best = [], float("inf")
        for t, cost in events:
            if cost < best:
                best = cost
                curve.append((t, cost))
        return curve

    def to_dict(self) -> dict:
        """JSON-safe summary (the CLI's ``--output`` payload)."""
        return {
            "workload": self.workload,
            "best_makespan": self.best_makespan,
            "best_island": self.best_island,
            "best_kind": self.best_kind,
            "best_string": self.best_string,
            "wall_seconds": self.wall_seconds,
            "evaluations": self.evaluations,
            "iterations": self.iterations,
            "combined_anytime": self.combined_anytime(),
            "islands": [
                {
                    "island": o.island,
                    "kind": o.kind,
                    "seed": o.seed,
                    "best_makespan": o.best_makespan,
                    "iterations": o.iterations,
                    "evaluations": o.evaluations,
                    "stopped_by": o.stopped_by,
                    "kernel_tier": o.kernel_tier,
                    "published": o.published,
                    "received": o.received,
                    "anytime": [list(e) for e in o.anytime],
                }
                for o in self.islands
            ],
        }


def _pick_best(outcomes: Sequence[IslandOutcome]) -> IslandOutcome:
    return min(outcomes, key=lambda o: (o.best_makespan, o.island))


def run_race(
    workload: Union[Workload, WorkloadSpec],
    config: Optional[RaceConfig] = None,
    engine_params: Optional[dict] = None,
) -> RaceResult:
    """Race a portfolio of engines on *workload*; see module docstring.

    Parameters
    ----------
    workload:
        The problem instance, or a :class:`WorkloadSpec` recipe (built
        once here, shipped to workers by pickle).
    config:
        The race parameters; defaults to ``RaceConfig()`` — all four
        engines, one island each, a 2 s deadline.
    engine_params:
        Optional per-kind config overrides, e.g. ``{"sa": {"cooling":
        0.9}}`` — applied on top of the race defaults (tests pin exact
        engine configs through this).
    """
    cfg = config or RaceConfig()
    if isinstance(workload, WorkloadSpec):
        workload = build_workload(workload)
    name = getattr(workload, "name", "") or "workload"

    specs = build_islands(
        cfg.engines,
        cfg.islands,
        cfg.seed,
        cfg.deadline,
        cfg.max_iterations,
        cfg.network,
        cfg.platform,
        interval=(
            cfg.sync_every
            if cfg.sync_every is not None
            else cfg.exchange_interval
        ),
        engine_params=engine_params,
    )

    t0 = time.perf_counter()
    epoch = time.time()
    if cfg.islands == 1:
        # solo runs skip the channel entirely: bit-identical to the
        # engine's own golden trajectory
        outcomes = [run_island(specs[0], workload, None, epoch)]
    elif cfg.sync_every is not None:
        outcomes = _run_lockstep(specs, workload, epoch)
    elif cfg.mode == "thread":
        outcomes = _run_threads(specs, workload, epoch)
    else:
        outcomes = _run_processes(specs, workload, epoch, cfg.workers)
    wall = time.perf_counter() - t0

    winner = _pick_best(outcomes)
    return RaceResult(
        workload=name,
        islands=tuple(sorted(outcomes, key=lambda o: o.island)),
        best_makespan=winner.best_makespan,
        best_string=winner.best_string,
        best_island=winner.island,
        wall_seconds=wall,
        config=cfg,
    )


def _run_lockstep(
    specs: Sequence[IslandSpec], workload: Workload, epoch: float
) -> list[IslandOutcome]:
    from repro.portfolio.exchange import SyncChannel

    channel = SyncChannel(len(specs))
    with ThreadPoolExecutor(max_workers=len(specs)) as pool:
        futures = [
            pool.submit(run_island, spec, workload, channel, epoch)
            for spec in specs
        ]
        return [f.result() for f in futures]


def _run_threads(
    specs: Sequence[IslandSpec], workload: Workload, epoch: float
) -> list[IslandOutcome]:
    from repro.portfolio.exchange import LocalChannel

    channel = LocalChannel()
    with ThreadPoolExecutor(max_workers=len(specs)) as pool:
        futures = [
            pool.submit(run_island, spec, workload, channel, epoch)
            for spec in specs
        ]
        return [f.result() for f in futures]


def _run_processes(
    specs: Sequence[IslandSpec],
    workload: Workload,
    epoch: float,
    workers: Optional[int],
) -> list[IslandOutcome]:
    import multiprocessing

    from repro.portfolio.exchange import SharedChannel
    from repro.runner.pool import warmup_worker

    max_workers = min(
        len(specs), workers if workers else (os.cpu_count() or 1)
    )
    with multiprocessing.Manager() as manager:
        channel = SharedChannel.create(manager)
        with ProcessPoolExecutor(
            max_workers=max_workers, initializer=warmup_worker
        ) as pool:
            futures = [
                pool.submit(run_island, spec, workload, channel, epoch)
                for spec in specs
            ]
            return [f.result() for f in futures]
