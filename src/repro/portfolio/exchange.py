"""Incumbent channels: how racing islands trade best-so-far strings.

A *channel* is a single-slot mailbox holding the globally best
:class:`~repro.optim.exchange.Incumbent` published so far, stamped with
a monotonically increasing version.  Three implementations share one
duck-typed surface (``publish`` / ``peek`` / ``checkpoint`` / ``leave``
/ ``best``):

* :class:`LocalChannel` — a plain in-process mailbox behind a
  ``threading.Lock``; the thread-mode driver and the injection tests
  use it (tests pre-load it with a foreign incumbent).
* :class:`SharedChannel` — the cross-process mailbox: a
  ``multiprocessing.Manager`` dict whose single key holds the whole
  incumbent tuple, so a publish is one atomic proxy assignment under a
  manager lock and a poll is one proxy read (one IPC round-trip,
  ~0.1 ms — the reason :class:`IncumbentExchange` throttles polling).
* :class:`SyncChannel` — the deterministic ``--sync-every`` mode:
  islands run in threads and rendezvous at fixed own-iteration
  boundaries.  Publications buffer per island and are merged only when
  their island reaches a rendezvous (or leaves for good), lowest cost
  first with island id as the tie-break — so delivery depends only on
  iteration numbers, never on thread timing, and a fixed seed
  reproduces every exchange bit for bit.

On top of any channel sits one :class:`IncumbentExchange` per island —
simultaneously an :class:`~repro.optim.observers.Observer` (the publish
side: it watches the engine's trace records and pushes every new global
best) and the engine's :class:`~repro.optim.exchange.IncumbentSource`
(the poll side, throttled to every ``interval``-th iteration).
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

from repro.analysis.trace import IterationRecord
from repro.optim.exchange import Incumbent

#: Pseudo island id used when a test or harness seeds a channel by hand.
EXTERNAL_SOURCE = -1


class LocalChannel:
    """In-process single-slot mailbox (thread-safe, no rendezvous)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inc: Optional[Incumbent] = None

    def publish(
        self,
        island: int,
        cost: float,
        order: Sequence[int],
        machines: Sequence[int],
    ) -> bool:
        """Install a new incumbent if *cost* strictly improves the slot."""
        with self._lock:
            cur = self._inc
            if cur is not None and cost >= cur.cost:
                return False
            version = 1 if cur is None else cur.version + 1
            self._inc = Incumbent(
                version, float(cost), tuple(order), tuple(machines), island
            )
            return True

    def peek(self, last_version: int) -> Optional[Incumbent]:
        """The current incumbent, or ``None`` if *last_version* saw it."""
        inc = self._inc  # atomic reference read
        if inc is None or inc.version <= last_version:
            return None
        return inc

    def checkpoint(self, island: int) -> None:
        """No-op (only the lockstep channel synchronises)."""

    def leave(self, island: int) -> None:
        """No-op (only the lockstep channel tracks parties)."""

    def best(self) -> Optional[Incumbent]:
        return self._inc


class SharedChannel:
    """Cross-process mailbox over a ``multiprocessing.Manager``.

    The whole incumbent lives under one dict key, so readers pay exactly
    one proxy round-trip and never observe a torn write; publishers
    compare-and-set under the manager lock.  Both proxies pickle, so the
    channel rides into workers as an ordinary submit argument.
    """

    _KEY = "incumbent"

    def __init__(self, store, lock) -> None:
        self._store = store
        self._lock = lock

    @classmethod
    def create(cls, manager) -> "SharedChannel":
        """Build over ``manager`` (a started ``multiprocessing.Manager``)."""
        return cls(manager.dict(), manager.Lock())

    def publish(
        self,
        island: int,
        cost: float,
        order: Sequence[int],
        machines: Sequence[int],
    ) -> bool:
        with self._lock:
            cur = self._store.get(self._KEY)
            if cur is not None and cost >= cur[1]:
                return False
            version = 1 if cur is None else cur[0] + 1
            self._store[self._KEY] = (
                version,
                float(cost),
                tuple(order),
                tuple(machines),
                island,
            )
            return True

    def peek(self, last_version: int) -> Optional[Incumbent]:
        raw = self._store.get(self._KEY)  # one IPC round-trip
        if raw is None or raw[0] <= last_version:
            return None
        return Incumbent(*raw)

    def checkpoint(self, island: int) -> None:
        """No-op (only the lockstep channel synchronises)."""

    def leave(self, island: int) -> None:
        """No-op (only the lockstep channel tracks parties)."""

    def best(self) -> Optional[Incumbent]:
        raw = self._store.get(self._KEY)
        return None if raw is None else Incumbent(*raw)


class SyncChannel:
    """Deterministic lockstep mailbox for ``--sync-every`` runs.

    Islands (threads) rendezvous every time their own iteration count
    crosses the sync stride.  A *round* completes when every still-active
    island has arrived; at that instant the pending publications of the
    arrived (and permanently departed) islands merge into the slot —
    lowest cost wins, ties broken by lowest island id — and everyone
    proceeds.  An island that finishes its run calls :meth:`leave`,
    flushing its buffered publications into the next merge and removing
    itself from the quorum, so shorter runs never deadlock longer ones.

    Because publications buffer per island until *that island's* next
    rendezvous, a merge never observes a half-finished stretch of
    another island's iterations: what every island sees at round *r* is
    a pure function of iteration numbers and seeds.
    """

    def __init__(self, islands: int) -> None:
        if islands < 1:
            raise ValueError(f"islands must be >= 1, got {islands}")
        self._cond = threading.Condition()
        self._active = islands
        self._arrived: set[int] = set()
        self._gone: set[int] = set()
        self._round = 0
        self._pending: dict[int, tuple] = {}
        self._inc: Optional[Incumbent] = None

    def publish(
        self,
        island: int,
        cost: float,
        order: Sequence[int],
        machines: Sequence[int],
    ) -> bool:
        with self._cond:
            cur = self._pending.get(island)
            if cur is not None and cost >= cur[0]:
                return False
            self._pending[island] = (
                float(cost),
                tuple(order),
                tuple(machines),
            )
            return True

    def _merge(self) -> None:
        """Fold the ready islands' pending publications into the slot.

        *Ready* means: arrived at this rendezvous, permanently departed,
        or external (negative id, a hand-seeded incumbent).  Islands
        still running keep their buffer — a merge must never observe a
        half-finished stretch of someone else's iterations.
        """
        ready = [
            i
            for i in self._pending
            if i in self._arrived or i in self._gone or i < 0
        ]
        for island in sorted(ready, key=lambda i: (self._pending[i][0], i)):
            cost, order, machines = self._pending.pop(island)
            if self._inc is None or cost < self._inc.cost:
                version = 1 if self._inc is None else self._inc.version + 1
                self._inc = Incumbent(version, cost, order, machines, island)
        self._arrived.clear()
        self._round += 1
        self._cond.notify_all()

    def checkpoint(self, island: int) -> None:
        """Rendezvous: block until every active island arrives."""
        with self._cond:
            my_round = self._round
            self._arrived.add(island)
            if len(self._arrived) >= self._active:
                self._merge()
                return
            while self._round == my_round:
                self._cond.wait()

    def leave(self, island: int) -> None:
        """Depart for good; buffered publications join the next merge."""
        with self._cond:
            self._active -= 1
            self._gone.add(island)
            self._arrived.discard(island)
            if self._active > 0 and len(self._arrived) >= self._active:
                self._merge()
            elif self._active <= 0:
                self._merge()  # final flush: nobody is waiting

    def best(self) -> Optional[Incumbent]:
        with self._cond:
            return self._inc

    def peek(self, last_version: int) -> Optional[Incumbent]:
        with self._cond:
            inc = self._inc
        if inc is None or inc.version <= last_version:
            return None
        return inc


class IncumbentExchange:
    """One island's endpoint: observer out, incumbent source in.

    Attach the same object twice to an engine run — in ``observers``
    (the publish side) and as ``exchange=`` (the poll side):

    * As an **observer** it watches each
      :class:`~repro.analysis.trace.IterationRecord`: when the record's
      current solution *is* a new global best for this island (strictly
      better than anything it has published), the schedule string goes
      to the channel.
    * As an **incumbent source** it polls the channel every
      ``interval``-th engine iteration (between polls it costs two
      integer ops), skipping its own publications and anything not
      strictly better than the engine's current cost.  In sync mode the
      poll is also the rendezvous point.

    ``published`` / ``received`` count actual channel traffic for the
    driver's per-island report.
    """

    def __init__(self, channel, island: int, interval: int = 10) -> None:
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self._channel = channel
        self.island = island
        self.interval = interval
        self._last_seen = 0
        self._best_published = float("inf")
        self.published = 0
        self.received = 0

    # -- publish side (Observer protocol) ------------------------------

    def __call__(self, record: IterationRecord, string) -> None:
        best = record.best_makespan
        if (
            best < self._best_published
            and record.current_makespan == best
        ):
            # the record's payload string IS the new global best
            self._best_published = best
            if self._channel.publish(
                self.island, best, tuple(string.order), tuple(string.machines)
            ):
                self.published += 1

    # -- poll side (IncumbentSource protocol) --------------------------

    def incoming(
        self, iteration: int, current_cost: float
    ) -> Optional[Incumbent]:
        if iteration % self.interval != 0:
            return None
        self._channel.checkpoint(self.island)
        inc = self._channel.peek(self._last_seen)
        if inc is None:
            return None
        # mark seen either way: versions only grow, so a better future
        # publication always carries a newer stamp
        self._last_seen = inc.version
        if inc.source == self.island or inc.cost >= current_cost:
            return None
        # adopting the incumbent means the island will not re-publish it
        self._best_published = min(self._best_published, inc.cost)
        self.received += 1
        return inc

    def finish(self) -> None:
        """Tell the channel this island is done (must always be called)."""
        self._channel.leave(self.island)
