"""Island construction and execution: one engine run per island.

An :class:`IslandSpec` is the picklable recipe for one island — engine
kind, derived seed, flat config overrides, exchange interval — built by
:func:`build_islands` from a :class:`~repro.portfolio.driver.RaceConfig`.
Islands cycle through the requested engine kinds; once every kind has an
island, further islands are seeded *restarts* (same kind, fresh RNG
stream via :func:`~repro.runner.spec.derive_seed`).

:func:`run_island` executes one spec against a workload — inside a
worker process, a thread, or inline — wiring the island's
:class:`~repro.portfolio.exchange.IncumbentExchange` into the engine as
both observer (publish) and incumbent source (poll), and condenses the
result into a picklable :class:`IslandOutcome` whose ``anytime`` list
carries only the improvement events ``(elapsed_seconds, best)`` of the
trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.model.workload import Workload
from repro.runner.spec import derive_seed

#: Engine kinds a portfolio can race, in default cycling order.
ENGINE_KINDS: Tuple[str, ...] = ("se", "ga", "sa", "tabu")

#: Default poll stride per engine kind, tuned to iteration granularity:
#: an SA proposal is ~25 µs while a shared-channel poll is ~0.1 ms, so
#: SA polls every 500th proposal; SE/GA/tabu iterations cost hundreds of
#: evaluations each, so a poll every 5-10 iterations is already <1%.
DEFAULT_INTERVALS = {"se": 5, "ga": 5, "sa": 500, "tabu": 10}

#: Effectively-unbounded iteration cap for deadline-only runs.
UNBOUNDED = 10**9


@dataclass(frozen=True)
class IslandSpec:
    """Picklable recipe for one island's engine run."""

    island: int
    kind: str
    seed: int
    params: dict = field(default_factory=dict)
    interval: int = 10


@dataclass(frozen=True)
class IslandOutcome:
    """Picklable result of one island (see :func:`run_island`)."""

    island: int
    kind: str
    seed: int
    best_makespan: float
    best_string: dict
    iterations: int
    evaluations: int
    stopped_by: str
    kernel_tier: str
    published: int
    received: int
    start_offset: float
    runtime_seconds: float
    #: improvement events: ``[(elapsed_seconds, best_makespan), ...]``
    anytime: list


def engine_defaults(
    kind: str,
    deadline: Optional[float],
    max_iterations: Optional[int],
    network: str,
    platform: str,
) -> dict:
    """The flat config-override dict for a race island of *kind*.

    Deadline-driven islands get an unbounded iteration cap, no stall
    rule (an island that stops early would idle its core), and — for
    SA, whose proposals are ~25 µs — a coarse trace stride so a
    multi-second budget cannot grow an unbounded trace.
    """
    if kind not in ENGINE_KINDS:
        raise ValueError(
            f"unknown engine kind {kind!r}; expected one of "
            f"{', '.join(ENGINE_KINDS)}"
        )
    params: dict = {"network": network, "platform": platform}
    cap = "max_generations" if kind == "ga" else "max_iterations"
    if max_iterations is not None:
        params[cap] = max_iterations
    else:
        params[cap] = UNBOUNDED
    if deadline is not None:
        params["time_limit"] = deadline
    if kind == "ga":
        params["stall_generations"] = None
    elif kind != "sa":
        params["stall_iterations"] = None
    if kind == "sa":
        params["stall_iterations"] = None
        params["record_every"] = 100
    return params


def build_islands(
    engines: Sequence[str],
    islands: int,
    base_seed: int,
    deadline: Optional[float],
    max_iterations: Optional[int],
    network: str,
    platform: str,
    interval: Optional[int] = None,
    engine_params: Optional[dict] = None,
) -> list[IslandSpec]:
    """Expand a race configuration into per-island specs.

    Island *i* runs ``engines[i % len(engines)]``; its seed derives from
    ``(base_seed, "island", i, kind)`` so any island subset reproduces
    independently of worker count.  The one exception is a single-island
    race: it keeps ``base_seed`` verbatim, which is what makes
    ``--islands 1`` bit-identical to the engine's solo golden run.
    *engine_params*, keyed by kind, overrides the race defaults field by
    field (tests pin exact engine configs through it).
    """
    if islands < 1:
        raise ValueError(f"islands must be >= 1, got {islands}")
    if not engines:
        raise ValueError("engines must name at least one engine kind")
    specs = []
    overrides = engine_params or {}
    for i in range(islands):
        kind = engines[i % len(engines)]
        params = engine_defaults(
            kind, deadline, max_iterations, network, platform
        )
        params.update(overrides.get(kind, {}))
        seed = (
            base_seed
            if islands == 1
            else derive_seed(base_seed, "island", i, kind)
        )
        specs.append(
            IslandSpec(
                island=i,
                kind=kind,
                seed=seed,
                params=params,
                interval=(
                    interval
                    if interval is not None
                    else DEFAULT_INTERVALS[kind]
                ),
            )
        )
    return specs


def _improvement_events(trace) -> list:
    """Compress a trace to its strict best-so-far improvements."""
    events, best = [], float("inf")
    for r in trace:
        if r.best_makespan < best:
            best = r.best_makespan
            events.append((float(r.elapsed_seconds), float(best)))
    return events


def run_island(
    spec: IslandSpec,
    workload: Workload,
    channel=None,
    race_epoch: Optional[float] = None,
) -> IslandOutcome:
    """Run one island's engine; the worker-process entry point.

    With a *channel*, the island's :class:`IncumbentExchange` is wired
    into the engine as observer + incumbent source; its ``finish()``
    always runs (even on an engine crash) so a lockstep channel never
    deadlocks the other islands.  ``race_epoch`` is a ``time.time()``
    stamp taken by the driver; the offset of this island's start against
    it aligns per-island trace clocks into one race-global timeline.
    """
    import time

    from repro.portfolio.exchange import IncumbentExchange
    from repro.schedule.backend import kernel_tier

    exchange = None
    if channel is not None:
        exchange = IncumbentExchange(channel, spec.island, spec.interval)
    observers = (exchange,) if exchange is not None else ()

    start = time.time()
    offset = 0.0 if race_epoch is None else max(0.0, start - race_epoch)
    t0 = time.perf_counter()
    try:
        if spec.kind == "se":
            from repro.core import SEConfig, SimulatedEvolution

            res = SimulatedEvolution(
                SEConfig(seed=spec.seed, **spec.params)
            ).run(workload, observers=observers, exchange=exchange)
            iterations = res.iterations
        elif spec.kind == "ga":
            from repro.baselines import GAConfig, GeneticAlgorithm

            res = GeneticAlgorithm(
                GAConfig(seed=spec.seed, **spec.params)
            ).run(workload, observers=observers, exchange=exchange)
            iterations = res.generations
        elif spec.kind == "sa":
            from repro.optim import SAConfig, SimulatedAnnealing

            res = SimulatedAnnealing(
                SAConfig(seed=spec.seed, **spec.params)
            ).run(workload, observers=observers, exchange=exchange)
            iterations = res.iterations
        elif spec.kind == "tabu":
            from repro.optim import TabuConfig, TabuSearch

            res = TabuSearch(
                TabuConfig(seed=spec.seed, **spec.params)
            ).run(workload, observers=observers, exchange=exchange)
            iterations = res.iterations
        else:  # pragma: no cover - guarded by engine_defaults
            raise ValueError(f"unknown engine kind {spec.kind!r}")
    finally:
        if exchange is not None:
            exchange.finish()
    runtime = time.perf_counter() - t0

    return IslandOutcome(
        island=spec.island,
        kind=spec.kind,
        seed=spec.seed,
        best_makespan=float(res.best_makespan),
        best_string={
            "order": list(res.best_string.order),
            "machines": list(res.best_string.machines),
        },
        iterations=iterations,
        evaluations=res.evaluations,
        stopped_by=res.stopped_by,
        kernel_tier=kernel_tier(spec.params.get("network", "contention-free")),
        published=exchange.published if exchange is not None else 0,
        received=exchange.received if exchange is not None else 0,
        start_offset=offset,
        runtime_seconds=runtime,
        anytime=_improvement_events(res.trace),
    )
