"""Anytime parallel portfolio search: race every engine, share the best.

The answer to "a user submits a job and wants the best schedule in 2
seconds": shard SE / GA / SA / tabu (plus seeded restarts) across a
worker pool, let them trade best-so-far strings mid-run through an
incumbent channel, and return the global best at the deadline together
with per-island and combined anytime curves.

Quickstart (executable — CI runs it under ``--doctest-modules``):

    >>> from repro.portfolio import RaceConfig, run_race
    >>> from repro.workloads import small_workload
    >>> w = small_workload(seed=3)
    >>> res = run_race(w, RaceConfig(
    ...     engines=("se", "tabu"), islands=2, deadline=None,
    ...     max_iterations=6, sync_every=3, seed=1))
    >>> len(res.islands)
    2
    >>> res.best_makespan == min(o.best_makespan for o in res.islands)
    True

Layers:

* :mod:`repro.portfolio.exchange` — the incumbent channels (in-process,
  manager-backed cross-process, deterministic lockstep) and the
  :class:`IncumbentExchange` observer/source endpoint;
* :mod:`repro.portfolio.islands` — island specs, per-engine race
  defaults, and the worker-side :func:`run_island` entry point;
* :mod:`repro.portfolio.driver` — :func:`run_race` over the three
  execution modes, :class:`RaceConfig`, :class:`RaceResult`.
"""

from repro.portfolio.driver import MODES, RaceConfig, RaceResult, run_race
from repro.portfolio.exchange import (
    EXTERNAL_SOURCE,
    IncumbentExchange,
    LocalChannel,
    SharedChannel,
    SyncChannel,
)
from repro.portfolio.islands import (
    DEFAULT_INTERVALS,
    ENGINE_KINDS,
    IslandOutcome,
    IslandSpec,
    build_islands,
    run_island,
)

__all__ = [
    "DEFAULT_INTERVALS",
    "ENGINE_KINDS",
    "EXTERNAL_SOURCE",
    "IncumbentExchange",
    "IslandOutcome",
    "IslandSpec",
    "LocalChannel",
    "MODES",
    "RaceConfig",
    "RaceResult",
    "SharedChannel",
    "SyncChannel",
    "build_islands",
    "run_island",
    "run_race",
]
