"""Grid experiments: algorithms × workload suite → per-class conclusions.

The paper's §5.3 verdict is phrased per workload *class*: "SE produced
better solutions than GA ... for workloads with relatively high
connectivity, and/or high heterogeneity, and/or high CCR".  This module
turns that kind of claim into a computed object: run a set of algorithms
over a :class:`~repro.workloads.suite.WorkloadSuite`, aggregate
normalized makespans per classification axis, and report win/loss
records between any two algorithms conditioned on a class value.

Execution goes through :mod:`repro.runner`: pass algorithms as
:class:`~repro.runner.spec.AlgorithmSpec` values and :func:`run_grid`
fans the whole grid out over ``workers`` processes with optional
resume-from-cache.  Plain ``workload -> makespan`` callables are still
accepted for ad-hoc in-process experiments (they cannot cross process
boundaries, so they imply ``workers=1``).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Optional, Sequence, Union

from repro.analysis.report import markdown_table
from repro.analysis.stats import WinLossRecord, geometric_mean, win_loss
from repro.model.workload import Workload
from repro.runner.pool import ProgressFn, run_experiment
from repro.runner.results import ExperimentResult
from repro.runner.spec import AlgorithmSpec, ExperimentSpec
from repro.schedule.backend import DEFAULT_NETWORK, DEFAULT_PLATFORM
from repro.schedule.metrics import normalized_makespan
from repro.workloads.suite import WorkloadSuite

#: An in-process algorithm for the grid: workload -> makespan.
Algorithm = Callable[[Workload], float]

#: Grid entries are either registry specs (parallelisable) or callables.
GridAlgorithm = Union[AlgorithmSpec, Algorithm]


@dataclass(frozen=True)
class GridCellResult:
    """One (workload, algorithm) measurement.

    ``network`` records which simulator backend produced the makespan
    (``"contention-free"`` | ``"nic"`` | custom), so mixed-scenario
    grids stay disaggregable.  ``platform`` / ``cost`` carry the
    machine-catalog scenario and the winning schedule's dollar cost
    (0.0 on the free default ``"uniform"`` platform).
    """

    workload_name: str
    connectivity: str
    heterogeneity: str
    ccr: float
    algorithm: str
    makespan: float
    normalized: float
    network: str = DEFAULT_NETWORK
    platform: str = DEFAULT_PLATFORM
    cost: float = 0.0


@dataclass
class GridResult:
    """All measurements of one grid run, with aggregation helpers."""

    cells: list[GridCellResult] = field(default_factory=list)

    @property
    def algorithms(self) -> list[str]:
        seen: dict[str, None] = {}
        for c in self.cells:
            seen.setdefault(c.algorithm, None)
        return list(seen)

    def _pairs(
        self, algo_a: str, algo_b: str, predicate=None
    ) -> tuple[list[float], list[float]]:
        # A workload may carry several replicates per algorithm (one per
        # experiment seed, in canonical seed order); pair them index-wise
        # so every replicate contributes one comparison.  Workloads where
        # the two algorithms have different replicate counts (e.g. a
        # partially merged shard) cannot be paired reliably and are
        # skipped, matching the old incomplete-workload behaviour.
        by_workload: dict[str, dict[str, list[GridCellResult]]] = (
            defaultdict(lambda: defaultdict(list))
        )
        for c in self.cells:
            by_workload[c.workload_name][c.algorithm].append(c)
        a_vals, b_vals = [], []
        for cells in by_workload.values():
            if algo_a not in cells or algo_b not in cells:
                continue
            if len(cells[algo_a]) != len(cells[algo_b]):
                continue
            for ca, cb in zip(cells[algo_a], cells[algo_b]):
                if predicate is not None and not predicate(ca):
                    continue
                a_vals.append(ca.makespan)
                b_vals.append(cb.makespan)
        return a_vals, b_vals

    def win_loss(
        self,
        algo_a: str,
        algo_b: str,
        connectivity: str | None = None,
        heterogeneity: str | None = None,
        ccr: float | None = None,
        network: str | None = None,
        platform: str | None = None,
        rel_tol: float = 1e-3,
    ) -> WinLossRecord:
        """Win/loss of *algo_a* vs *algo_b*, optionally class-restricted.

        ``rel_tol`` treats makespans within 0.1% as ties by default —
        stochastic heuristics routinely land that close.  ``network``
        restricts the record to cells scored under one simulator
        backend, ``platform`` to one machine catalog (makespans from
        different cost models are not comparable head-to-head).
        """

        def predicate(cell: GridCellResult) -> bool:
            if connectivity is not None and cell.connectivity != connectivity:
                return False
            if heterogeneity is not None and cell.heterogeneity != heterogeneity:
                return False
            if ccr is not None and cell.ccr != ccr:
                return False
            if network is not None and cell.network != network:
                return False
            if platform is not None and cell.platform != platform:
                return False
            return True

        a_vals, b_vals = self._pairs(algo_a, algo_b, predicate)
        return win_loss(a_vals, b_vals, rel_tol=rel_tol)

    def geomean_normalized(self, algorithm: str) -> float:
        """Geometric-mean normalized makespan of one algorithm."""
        vals = [c.normalized for c in self.cells if c.algorithm == algorithm]
        if not vals:
            raise KeyError(f"no measurements for algorithm {algorithm!r}")
        return geometric_mean(vals)

    def league_table(self) -> list[tuple[str, float]]:
        """Algorithms sorted by geometric-mean normalized makespan."""
        return sorted(
            ((a, self.geomean_normalized(a)) for a in self.algorithms),
            key=lambda kv: kv[1],
        )

    def axis_report(self, algo_a: str, algo_b: str) -> str:
        """Markdown: win/loss of A vs B conditioned on every class value.

        This is the §5.3 conclusion as a table: one row per
        (axis, value), with A's record against B on that slice.
        """
        rows: list[Sequence[object]] = []
        conns = sorted({c.connectivity for c in self.cells})
        hets = sorted({c.heterogeneity for c in self.cells})
        ccrs = sorted({c.ccr for c in self.cells})
        for value in conns:
            rec = self.win_loss(algo_a, algo_b, connectivity=value)
            rows.append(("connectivity", value, rec.describe(), f"{rec.win_rate():.2f}"))
        for value in hets:
            rec = self.win_loss(algo_a, algo_b, heterogeneity=value)
            rows.append(("heterogeneity", value, rec.describe(), f"{rec.win_rate():.2f}"))
        for value in ccrs:
            rec = self.win_loss(algo_a, algo_b, ccr=value)
            rows.append(("CCR", value, rec.describe(), f"{rec.win_rate():.2f}"))
        return markdown_table(
            ["axis", "value", f"{algo_a} vs {algo_b}", "win rate"], rows
        )


def grid_from_experiment(result: ExperimentResult) -> GridResult:
    """Project an :class:`ExperimentResult` onto the grid view."""
    grid = GridResult()
    for c in result:
        grid.cells.append(
            GridCellResult(
                workload_name=c.workload,
                connectivity=c.connectivity,
                heterogeneity=c.heterogeneity,
                ccr=c.ccr,
                algorithm=c.algorithm,
                makespan=c.makespan,
                normalized=c.normalized,
                network=c.network,
                platform=c.platform,
                cost=c.cost,
            )
        )
    return grid


def run_grid(
    suite: WorkloadSuite,
    algorithms: Mapping[str, GridAlgorithm],
    workers: int = 1,
    cache_dir: Optional[str | Path] = None,
    progress: Optional[ProgressFn] = None,
    name: str = "grid",
    base_seed: int = 0,
) -> GridResult:
    """Run every algorithm on every suite cell; returns all measurements.

    With :class:`~repro.runner.spec.AlgorithmSpec` values the grid runs
    through :func:`repro.runner.run_experiment` — sweeps shard across
    *workers* processes and finished cells resume from *cache_dir*.
    Callable values run in-process and serially (a callable cannot be
    shipped to a worker), so they reject ``workers > 1``.
    """
    if not algorithms:
        raise ValueError("need at least one algorithm")
    specs = {
        n: a for n, a in algorithms.items() if isinstance(a, AlgorithmSpec)
    }
    callables = {n: a for n, a in algorithms.items() if n not in specs}
    if callables and workers > 1:
        raise ValueError(
            "workers > 1 requires every algorithm to be an AlgorithmSpec "
            f"(callables cannot cross process boundaries): {sorted(callables)}"
        )

    result = GridResult()
    if specs:
        experiment = ExperimentSpec(
            name=name,
            algorithms=specs,
            workloads=[cell.spec for cell in suite],
            seeds=(0,),
            base_seed=base_seed,
        )
        exp_result = run_experiment(
            experiment,
            workers=workers,
            cache_dir=cache_dir,
            progress=progress,
            keep_traces=False,
        )
        result.cells.extend(grid_from_experiment(exp_result).cells)

    if callables:
        for cell in suite:
            w = cell.build()
            c = w.classification
            for algo_name, algo in callables.items():
                m = float(algo(w))
                result.cells.append(
                    GridCellResult(
                        workload_name=w.name,
                        connectivity=c.connectivity,
                        heterogeneity=c.heterogeneity,
                        ccr=float(c.ccr if c.ccr is not None else float("nan")),
                        algorithm=algo_name,
                        makespan=m,
                        normalized=normalized_makespan(w, m),
                    )
                )
    return result
