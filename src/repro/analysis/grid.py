"""Grid experiments: algorithms × workload suite → per-class conclusions.

The paper's §5.3 verdict is phrased per workload *class*: "SE produced
better solutions than GA ... for workloads with relatively high
connectivity, and/or high heterogeneity, and/or high CCR".  This module
turns that kind of claim into a computed object: run a set of algorithms
over a :class:`~repro.workloads.suite.WorkloadSuite`, aggregate
normalized makespans per classification axis, and report win/loss
records between any two algorithms conditioned on a class value.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.analysis.report import markdown_table
from repro.analysis.stats import WinLossRecord, geometric_mean, win_loss
from repro.model.workload import Workload
from repro.schedule.metrics import normalized_makespan
from repro.workloads.suite import WorkloadSuite

#: An algorithm for the grid: workload -> makespan.
Algorithm = Callable[[Workload], float]


@dataclass(frozen=True)
class GridCellResult:
    """One (workload, algorithm) measurement."""

    workload_name: str
    connectivity: str
    heterogeneity: str
    ccr: float
    algorithm: str
    makespan: float
    normalized: float


@dataclass
class GridResult:
    """All measurements of one grid run, with aggregation helpers."""

    cells: list[GridCellResult] = field(default_factory=list)

    @property
    def algorithms(self) -> list[str]:
        seen: dict[str, None] = {}
        for c in self.cells:
            seen.setdefault(c.algorithm, None)
        return list(seen)

    def _pairs(
        self, algo_a: str, algo_b: str, predicate=None
    ) -> tuple[list[float], list[float]]:
        by_workload: dict[str, dict[str, GridCellResult]] = defaultdict(dict)
        for c in self.cells:
            by_workload[c.workload_name][c.algorithm] = c
        a_vals, b_vals = [], []
        for cells in by_workload.values():
            if algo_a not in cells or algo_b not in cells:
                continue
            if predicate is not None and not predicate(cells[algo_a]):
                continue
            a_vals.append(cells[algo_a].makespan)
            b_vals.append(cells[algo_b].makespan)
        return a_vals, b_vals

    def win_loss(
        self,
        algo_a: str,
        algo_b: str,
        connectivity: str | None = None,
        heterogeneity: str | None = None,
        ccr: float | None = None,
        rel_tol: float = 1e-3,
    ) -> WinLossRecord:
        """Win/loss of *algo_a* vs *algo_b*, optionally class-restricted.

        ``rel_tol`` treats makespans within 0.1% as ties by default —
        stochastic heuristics routinely land that close.
        """

        def predicate(cell: GridCellResult) -> bool:
            if connectivity is not None and cell.connectivity != connectivity:
                return False
            if heterogeneity is not None and cell.heterogeneity != heterogeneity:
                return False
            if ccr is not None and cell.ccr != ccr:
                return False
            return True

        a_vals, b_vals = self._pairs(algo_a, algo_b, predicate)
        return win_loss(a_vals, b_vals, rel_tol=rel_tol)

    def geomean_normalized(self, algorithm: str) -> float:
        """Geometric-mean normalized makespan of one algorithm."""
        vals = [c.normalized for c in self.cells if c.algorithm == algorithm]
        if not vals:
            raise KeyError(f"no measurements for algorithm {algorithm!r}")
        return geometric_mean(vals)

    def league_table(self) -> list[tuple[str, float]]:
        """Algorithms sorted by geometric-mean normalized makespan."""
        return sorted(
            ((a, self.geomean_normalized(a)) for a in self.algorithms),
            key=lambda kv: kv[1],
        )

    def axis_report(self, algo_a: str, algo_b: str) -> str:
        """Markdown: win/loss of A vs B conditioned on every class value.

        This is the §5.3 conclusion as a table: one row per
        (axis, value), with A's record against B on that slice.
        """
        rows: list[Sequence[object]] = []
        conns = sorted({c.connectivity for c in self.cells})
        hets = sorted({c.heterogeneity for c in self.cells})
        ccrs = sorted({c.ccr for c in self.cells})
        for value in conns:
            rec = self.win_loss(algo_a, algo_b, connectivity=value)
            rows.append(("connectivity", value, rec.describe(), f"{rec.win_rate():.2f}"))
        for value in hets:
            rec = self.win_loss(algo_a, algo_b, heterogeneity=value)
            rows.append(("heterogeneity", value, rec.describe(), f"{rec.win_rate():.2f}"))
        for value in ccrs:
            rec = self.win_loss(algo_a, algo_b, ccr=value)
            rows.append(("CCR", value, rec.describe(), f"{rec.win_rate():.2f}"))
        return markdown_table(
            ["axis", "value", f"{algo_a} vs {algo_b}", "win rate"], rows
        )


def run_grid(
    suite: WorkloadSuite, algorithms: Mapping[str, Algorithm]
) -> GridResult:
    """Run every algorithm on every suite cell; returns all measurements."""
    if not algorithms:
        raise ValueError("need at least one algorithm")
    result = GridResult()
    for cell in suite:
        w = cell.build()
        c = w.classification
        for name, algo in algorithms.items():
            m = float(algo(w))
            result.cells.append(
                GridCellResult(
                    workload_name=w.name,
                    connectivity=c.connectivity,
                    heterogeneity=c.heterogeneity,
                    ccr=float(c.ccr if c.ccr is not None else float("nan")),
                    algorithm=name,
                    makespan=m,
                    normalized=normalized_makespan(w, m),
                )
            )
    return result
