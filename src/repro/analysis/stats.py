"""Small statistics toolkit for aggregating repeated stochastic runs.

Both SE and the GA are randomised, so per-class conclusions ("SE wins on
high-CCR workloads") must aggregate several seeds.  These helpers keep
the aggregation honest: normal-approximation confidence intervals for
means, geometric means for makespan *ratios* (ratios multiply, so the
arithmetic mean would be biased), and win/loss records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class SummaryStats:
    """Mean / spread summary of one metric over repeated runs."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float

    def describe(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.3f} ± {self.std:.3f} "
            f"[{self.ci_low:.3f}, {self.ci_high:.3f}] "
            f"range=({self.minimum:.3f}, {self.maximum:.3f})"
        )


def summarize(values: Sequence[float], confidence: float = 0.95) -> SummaryStats:
    """Normal-approximation summary of *values* (n >= 1).

    With one sample the interval collapses to the point.
    """
    if not values:
        raise ValueError("cannot summarize an empty sequence")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        std = math.sqrt(var)
    else:
        std = 0.0
    z = _z_value(confidence)
    half = z * std / math.sqrt(n) if n > 1 else 0.0
    return SummaryStats(
        n=n,
        mean=mean,
        std=std,
        minimum=min(values),
        maximum=max(values),
        ci_low=mean - half,
        ci_high=mean + half,
    )


def _z_value(confidence: float) -> float:
    """Two-sided normal quantile via inverse error function."""
    # erfinv through the math.erf bisection: cheap, dependency-free, and
    # accurate to ~1e-12 which is far more than reporting needs.
    target = confidence
    lo, hi = 0.0, 10.0
    for _ in range(200):
        mid = (lo + hi) / 2
        if math.erf(mid / math.sqrt(2)) < target:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values."""
    if not values:
        raise ValueError("cannot take the geometric mean of nothing")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def makespan_ratio(baseline: float, candidate: float) -> float:
    """``baseline / candidate`` — >1 means the candidate is better."""
    if candidate <= 0 or baseline <= 0:
        raise ValueError("makespans must be strictly positive")
    return baseline / candidate


@dataclass(frozen=True)
class WinLossRecord:
    """Win/tie/loss tally of algorithm A against algorithm B."""

    wins: int
    ties: int
    losses: int

    @property
    def n(self) -> int:
        return self.wins + self.ties + self.losses

    def win_rate(self) -> float:
        """Wins / decided matches (ties excluded); 0.5 if nothing decided."""
        decided = self.wins + self.losses
        if decided == 0:
            return 0.5
        return self.wins / decided

    def describe(self) -> str:
        return f"{self.wins}W-{self.ties}T-{self.losses}L"


def win_loss(
    a_values: Sequence[float],
    b_values: Sequence[float],
    rel_tol: float = 1e-9,
) -> WinLossRecord:
    """Pairwise win/loss of A vs B on matched runs (lower value wins)."""
    if len(a_values) != len(b_values):
        raise ValueError("paired sequences must have equal length")
    wins = ties = losses = 0
    for a, b in zip(a_values, b_values):
        if math.isclose(a, b, rel_tol=rel_tol):
            ties += 1
        elif a < b:
            wins += 1
        else:
            losses += 1
    return WinLossRecord(wins=wins, ties=ties, losses=losses)
