"""Pareto-front analysis over (makespan, cost) measurements.

The optimisation layer *accumulates* fronts as a side effect of search
(:class:`~repro.optim.tracking.ParetoTracker` attached to an
:class:`~repro.optim.evaluation.EvaluationService`); this module is the
reporting end: filter any bag of scored points down to its non-dominated
front, render it as a markdown table, and answer the study question the
platform benchmarks ask — "what is the cheapest schedule within a factor
of the best makespan?".

>>> front = pareto_front([(10.0, 5.0), (12.0, 3.0), (11.0, 6.0)])
>>> [(p.makespan, p.cost) for p in front]
[(10.0, 5.0), (12.0, 3.0)]
>>> cheapest_within(front, factor=1.2).cost
3.0
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence, Union

from repro.analysis.report import markdown_table
from repro.optim.tracking import ParetoPoint, ParetoTracker

#: A scored point: ``(makespan, cost)``, ``(makespan, cost, candidate)``,
#: a :class:`ParetoPoint`, or any object with ``makespan``/``cost``
#: attributes (e.g. a runner ``CellResult`` or a grid cell).
Scored = Union[ParetoPoint, Sequence[float], Any]


def _as_point(item: Scored) -> tuple[float, float, Any]:
    if isinstance(item, ParetoPoint):
        return item.makespan, item.cost, item.candidate
    if hasattr(item, "makespan") and hasattr(item, "cost"):
        return float(item.makespan), float(item.cost), item
    seq = tuple(item)
    if len(seq) == 2:
        return float(seq[0]), float(seq[1]), None
    if len(seq) == 3:
        return float(seq[0]), float(seq[1]), seq[2]
    raise TypeError(
        f"cannot interpret {item!r} as a (makespan, cost[, candidate]) point"
    )


def pareto_front(points: Iterable[Scored]) -> list[ParetoPoint]:
    """The non-dominated subset of *points*, sorted by makespan.

    Accepts bare pairs/triples, :class:`ParetoPoint` values, or any
    objects carrying ``makespan`` and ``cost`` attributes (the objects
    themselves become the front members' candidates).  Dominance and
    tie handling follow :class:`~repro.optim.tracking.ParetoTracker`,
    so the result is insertion-order independent and duplicate-free.
    """
    tracker = ParetoTracker(copy=lambda c: c)  # reporting: no deep copies
    for item in points:
        makespan, cost, candidate = _as_point(item)
        tracker.offer(makespan, cost, candidate)
    return tracker.front


def cheapest_within(
    front: Iterable[Scored], factor: float = 1.2
) -> ParetoPoint:
    """The cheapest point whose makespan is within ``factor`` of best.

    This is the headline number of the platform study: how much money a
    small makespan concession buys.  *front* need not be pre-filtered —
    any iterable of scored points works.  Raises :class:`ValueError` on
    an empty input or ``factor < 1``.
    """
    if factor < 1.0:
        raise ValueError(f"factor must be >= 1, got {factor!r}")
    points = pareto_front(front)
    if not points:
        raise ValueError("no points to choose from")
    limit = points[0].makespan * factor  # front is makespan-sorted
    eligible = [p for p in points if p.makespan <= limit]
    return min(eligible, key=lambda p: (p.cost, p.makespan))


def pareto_table(
    front: Iterable[Scored],
    label: Optional[Callable[[ParetoPoint], str]] = None,
    reference: Optional[ParetoPoint] = None,
) -> str:
    """Markdown table of a front: makespan, cost, and relative columns.

    ``x best span`` is each point's makespan relative to the front's
    best; ``cost vs ref`` (only with a *reference* point, typically the
    pure-makespan winner) is the cost saving against that reference.
    *label* optionally renders each point's candidate as a row name.
    """
    points = pareto_front(front)
    if not points:
        return markdown_table(["makespan", "cost (usd)", "x best span"], [])
    best_span = points[0].makespan
    headers = ["makespan", "cost (usd)", "x best span"]
    if label is not None:
        headers.insert(0, "schedule")
    if reference is not None:
        headers.append("cost vs ref")
    rows: list[list[object]] = []
    for p in points:
        row: list[object] = [
            f"{p.makespan:.3f}",
            f"{p.cost:.4f}",
            f"{p.makespan / best_span:.3f}x" if best_span > 0 else "-",
        ]
        if label is not None:
            row.insert(0, label(p))
        if reference is not None:
            if reference.cost > 0:
                row.append(f"{(1.0 - p.cost / reference.cost) * 100:+.1f}%")
            else:
                row.append("-")
        rows.append(row)
    return markdown_table(headers, rows)
