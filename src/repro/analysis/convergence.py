"""Convergence analytics over traces.

Quantifies the *rate* claims the paper makes qualitatively ("SE reaches
good solutions faster", "the rate to reach good solutions improves with
Y"): time/iterations to reach a target, normalised area under the
best-so-far curve, and stagnation statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.analysis.trace import ConvergenceTrace


def time_to_target(
    trace: ConvergenceTrace, target_makespan: float
) -> Optional[float]:
    """Wall-clock seconds until the best makespan first reaches *target*.

    ``None`` if the run never got there.
    """
    for r in trace.records:
        if r.best_makespan <= target_makespan:
            return r.elapsed_seconds
    return None


def iterations_to_within(
    trace: ConvergenceTrace, fraction: float
) -> Optional[int]:
    """First iteration whose best is within ``(1 + fraction)`` of the
    run's final best.  ``fraction=0.05`` asks "when was it 5%-close?".
    """
    if fraction < 0:
        raise ValueError(f"fraction must be >= 0, got {fraction}")
    if not len(trace):
        return None
    target = trace.final_best() * (1.0 + fraction)
    for r in trace.records:
        if r.best_makespan <= target:
            return r.iteration
    return None  # pragma: no cover - final record always qualifies


def normalized_auc(trace: ConvergenceTrace) -> float:
    """Area under the best-so-far curve, normalised to [1, inf).

    Computed over the iteration axis and divided by ``final_best * n``:
    exactly 1.0 means the run was at its final quality from iteration
    one; larger values mean quality arrived later.  Lower is better when
    comparing runs of equal length on the same workload.
    """
    n = len(trace)
    if n == 0:
        raise ValueError("empty trace")
    final = trace.final_best()
    if final <= 0:
        raise ValueError("final best makespan must be positive")
    total = sum(r.best_makespan for r in trace.records)
    return total / (final * n)


@dataclass(frozen=True)
class StagnationStats:
    """No-improvement streak statistics of one run."""

    longest_streak: int
    final_streak: int
    improvements: int
    total_iterations: int

    @property
    def improved_fraction(self) -> float:
        """Improving iterations / total iterations recorded."""
        return self.improvements / max(1, self.total_iterations)


def stagnation(trace: ConvergenceTrace) -> StagnationStats:
    """Longest / trailing no-improvement streaks and improvement count."""
    best = math.inf
    longest = 0
    streak = 0
    improvements = 0
    for r in trace.records:
        if r.best_makespan < best - 1e-12:
            best = r.best_makespan
            improvements += 1
            streak = 0
        else:
            streak += 1
            longest = max(longest, streak)
    return StagnationStats(
        longest_streak=longest,
        final_streak=streak,
        improvements=improvements,
        total_iterations=len(trace),
    )


def speedup_to_reach(
    fast: ConvergenceTrace, slow: ConvergenceTrace, target_makespan: float
) -> Optional[float]:
    """How many times faster *fast* reached *target* than *slow*.

    ``None`` when either run never reached the target; ``inf`` when the
    slow run took (effectively) zero time is impossible since records
    carry positive elapsed times.
    """
    tf = time_to_target(fast, target_makespan)
    ts = time_to_target(slow, target_makespan)
    if tf is None or ts is None:
        return None
    if tf <= 0:
        return math.inf
    return ts / tf
