"""Time-budget-equalised algorithm comparison (paper §5.3, Figs. 5-7).

The paper plots "the best schedules found by both algorithms as real
time increases": SE and the GA each get the same wall-clock budget on
the same workload, and their best-so-far curves are sampled on a common
time grid.  :func:`compare_algorithms` is that harness, generalised to
any number of trace-producing runners.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

from repro.analysis.trace import ConvergenceTrace
from repro.baselines.ga import GAConfig, GeneticAlgorithm
from repro.core.config import SEConfig
from repro.core.engine import SimulatedEvolution
from repro.model.workload import Workload
from repro.schedule.backend import DEFAULT_NETWORK, DEFAULT_PLATFORM
from repro.utils.rng import RandomSource

#: A runner takes (workload, time_limit_seconds) and returns a trace.
Runner = Callable[[Workload, float], ConvergenceTrace]


@dataclass(frozen=True)
class ComparisonSeries:
    """One algorithm's sampled best-so-far curve.

    ``best_at[i]`` is the best makespan found within ``time_grid[i]``
    seconds (``inf`` until the first evaluation lands).
    """

    name: str
    time_grid: tuple[float, ...]
    best_at: tuple[float, ...]
    final_best: float
    iterations: int

    def first_finite_index(self) -> int:
        """Index of the first grid point with a real value."""
        for i, v in enumerate(self.best_at):
            if math.isfinite(v):
                return i
        return len(self.best_at)


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of one head-to-head comparison on one workload."""

    workload_name: str
    time_budget: float
    series: tuple[ComparisonSeries, ...]

    def by_name(self, name: str) -> ComparisonSeries:
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(f"no series named {name!r}")

    def winner_at(self, grid_index: int) -> Optional[str]:
        """Name of the strictly best algorithm at a grid point (None = tie)."""
        vals = [(s.best_at[grid_index], s.name) for s in self.series]
        vals.sort()
        if len(vals) >= 2 and vals[0][0] == vals[1][0]:
            return None
        if not math.isfinite(vals[0][0]):
            return None
        return vals[0][1]

    def final_winner(self) -> Optional[str]:
        """Winner at the end of the budget."""
        return self.winner_at(len(self.series[0].time_grid) - 1)

    def winner_timeline(self) -> list[Optional[str]]:
        """Winner at every grid point — shows lead changes over time."""
        return [
            self.winner_at(i) for i in range(len(self.series[0].time_grid))
        ]

    def advantage(self, name_a: str, name_b: str) -> list[float]:
        """Per-grid-point ratio ``best_b / best_a`` (>1 = *a* is ahead).

        Grid points where either curve is still infinite yield ``nan``.
        """
        a = self.by_name(name_a)
        b = self.by_name(name_b)
        out = []
        for va, vb in zip(a.best_at, b.best_at):
            if math.isfinite(va) and math.isfinite(vb) and va > 0:
                out.append(vb / va)
            else:
                out.append(float("nan"))
        return out


def make_time_grid(budget: float, points: int) -> tuple[float, ...]:
    """*points* sample times from ``budget/points`` up to ``budget``."""
    if budget <= 0:
        raise ValueError(f"budget must be > 0, got {budget}")
    if points < 1:
        raise ValueError(f"points must be >= 1, got {points}")
    return tuple(budget * (i + 1) / points for i in range(points))


def se_runner(
    base: Optional[SEConfig] = None, seed: RandomSource = None
) -> Runner:
    """Build an SE runner for :func:`compare_algorithms`.

    The iteration cap is lifted so the wall clock is the binding limit.
    """

    def run(workload: Workload, time_limit: float) -> ConvergenceTrace:
        cfg_base = base or SEConfig()
        from dataclasses import replace

        cfg = replace(
            cfg_base,
            time_limit=time_limit,
            max_iterations=10**9,
            seed=seed if seed is not None else cfg_base.seed,
        )
        return SimulatedEvolution(cfg).run(workload).trace

    return run


def ga_runner(
    base: Optional[GAConfig] = None, seed: RandomSource = None
) -> Runner:
    """Build a GA runner for :func:`compare_algorithms`."""

    def run(workload: Workload, time_limit: float) -> ConvergenceTrace:
        from dataclasses import replace

        cfg_base = base or GAConfig()
        cfg = replace(
            cfg_base,
            time_limit=time_limit,
            max_generations=10**9,
            stall_generations=None,
            seed=seed if seed is not None else cfg_base.seed,
        )
        return GeneticAlgorithm(cfg).run(workload).trace

    return run


def sa_runner(
    base: Optional["SAConfig"] = None, seed: RandomSource = None
) -> Runner:
    """Build a simulated-annealing runner for :func:`compare_algorithms`."""

    def run(workload: Workload, time_limit: float) -> ConvergenceTrace:
        from dataclasses import replace

        from repro.optim import SAConfig, SimulatedAnnealing

        cfg_base = base or SAConfig()
        cfg = replace(
            cfg_base,
            time_limit=time_limit,
            max_iterations=10**9,
            # a wall-clock budget can mean millions of ~25 µs proposals;
            # record one per temperature level (plus every improvement)
            record_every=max(cfg_base.record_every, cfg_base.steps_per_temp),
            seed=seed if seed is not None else cfg_base.seed,
        )
        return SimulatedAnnealing(cfg).run(workload).trace

    return run


def tabu_runner(
    base: Optional["TabuConfig"] = None, seed: RandomSource = None
) -> Runner:
    """Build a tabu-search runner for :func:`compare_algorithms`."""

    def run(workload: Workload, time_limit: float) -> ConvergenceTrace:
        from dataclasses import replace

        from repro.optim import TabuConfig, TabuSearch

        cfg_base = base or TabuConfig()
        cfg = replace(
            cfg_base,
            time_limit=time_limit,
            max_iterations=10**9,
            seed=seed if seed is not None else cfg_base.seed,
        )
        return TabuSearch(cfg).run(workload).trace

    return run


def compare_algorithms(
    workload: Workload,
    runners: Mapping[str, Runner],
    time_budget: float,
    grid_points: int = 20,
) -> ComparisonResult:
    """Run every runner under *time_budget* seconds; sample on one grid.

    Runners execute sequentially (each gets the full budget to itself),
    exactly like the paper's per-algorithm wall-clock measurement.
    """
    if not runners:
        raise ValueError("need at least one runner")
    grid = make_time_grid(time_budget, grid_points)
    series = []
    for name, runner in runners.items():
        trace = runner(workload, time_budget)
        best_at = tuple(trace.best_at_time(t) for t in grid)
        series.append(
            ComparisonSeries(
                name=name,
                time_grid=grid,
                best_at=best_at,
                final_best=(
                    trace.final_best() if len(trace) else float("inf")
                ),
                iterations=len(trace),
            )
        )
    return ComparisonResult(
        workload_name=workload.name,
        time_budget=time_budget,
        series=tuple(series),
    )


#: SE selection bias used by default in head-to-head comparisons.
#:
#: Under a wall-clock budget, sustained selection pressure matters more
#: than cheap iterations: on converged solutions the goodness vector
#: saturates near 1, and with the paper's positive large-problem bias
#: (§4.4) almost nothing gets selected — SE idles while the GA keeps
#: improving.  A mildly negative bias keeps ~10% of subtasks churning and
#: reproduces the paper's Figs. 5-6 outcome (SE ahead of GA); see
#: EXPERIMENTS.md for the calibration data.
COMPARISON_SE_BIAS = -0.1


def se_vs_ga(
    workload: Workload,
    time_budget: float,
    se_config: Optional[SEConfig] = None,
    ga_config: Optional[GAConfig] = None,
    grid_points: int = 20,
    seed: RandomSource = None,
) -> ComparisonResult:
    """The paper's head-to-head: SE vs GA on one workload (Figs. 5-7).

    Unless *se_config* overrides it, SE runs with
    ``selection_bias=COMPARISON_SE_BIAS`` (see that constant's docstring).
    """
    from repro.utils.rng import spawn_rngs

    if se_config is None:
        se_config = SEConfig(selection_bias=COMPARISON_SE_BIAS)
    rng_se, rng_ga = spawn_rngs(seed, 2)
    return compare_algorithms(
        workload,
        {
            "SE": se_runner(se_config, seed=rng_se),
            "GA": ga_runner(ga_config, seed=rng_ga),
        },
        time_budget=time_budget,
        grid_points=grid_points,
    )


def _sa_base(network: str, platform: str):
    from repro.optim import SAConfig  # deferred: repro.optim is a higher layer

    return SAConfig(network=network, platform=platform)


def _tabu_base(network: str, platform: str):
    from repro.optim import TabuConfig  # deferred: see _sa_base

    return TabuConfig(network=network, platform=platform)


#: Runner factories for :func:`compare_named`, keyed by algorithm name.
#: Each maps ``seed=`` to an independent RNG stream and ``network=`` to
#: the simulator backend the engine optimises against; SE gets the
#: calibrated :data:`COMPARISON_SE_BIAS` like :func:`se_vs_ga` does.
#: The engines route batch scoring through their
#: :class:`~repro.optim.evaluation.EvaluationService`, so every network
#: with a registered batch kernel (both built-ins) accelerates here
#: automatically — the runners never hard-code a scalar simulator.
_NAMED_RUNNERS = {
    "se": lambda seed, network, platform: se_runner(
        SEConfig(
            selection_bias=COMPARISON_SE_BIAS,
            network=network,
            platform=platform,
        ),
        seed=seed,
    ),
    "ga": lambda seed, network, platform: ga_runner(
        GAConfig(network=network, platform=platform), seed=seed
    ),
    "sa": lambda seed, network, platform: sa_runner(
        _sa_base(network, platform), seed=seed
    ),
    "tabu": lambda seed, network, platform: tabu_runner(
        _tabu_base(network, platform), seed=seed
    ),
}


def compare_named(
    workload: Workload,
    algorithms: Sequence[str],
    time_budget: float,
    grid_points: int = 20,
    seed: RandomSource = None,
    network: str = DEFAULT_NETWORK,
    platform: str = DEFAULT_PLATFORM,
) -> ComparisonResult:
    """Head-to-head among any of the iterative engines by name.

    Generalises :func:`se_vs_ga` to the full engine roster (``"se"``,
    ``"ga"``, ``"sa"``, ``"tabu"``): every named engine runs under the
    same wall-clock budget with an independent RNG stream spawned from
    *seed*, and the best-so-far curves are sampled on one common grid.
    Series are named with the upper-cased algorithm names.

    *network* selects the simulator backend every engine optimises
    against (``repro compare --network nic`` races the engines under
    NIC contention; batch-scoring engines pick up the network's
    vectorized kernel automatically).  *platform* races them on one
    machine catalog (speed-scaled matrix + boot state; the default
    ``"uniform"`` changes nothing).
    """
    from repro.utils.rng import spawn_rngs

    names = [a.strip().lower() for a in algorithms if a.strip()]
    if not names:
        raise ValueError("need at least one algorithm name")
    unknown = sorted(set(names) - set(_NAMED_RUNNERS))
    if unknown:
        raise ValueError(
            f"unknown comparison algorithms {unknown}; available: "
            f"{', '.join(sorted(_NAMED_RUNNERS))}"
        )
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate algorithm names in {names}")
    rngs = spawn_rngs(seed, len(names))
    runners = {
        name.upper(): _NAMED_RUNNERS[name](rng, network, platform)
        for name, rng in zip(names, rngs)
    }
    return compare_algorithms(
        workload, runners, time_budget=time_budget, grid_points=grid_points
    )


def series_from_trace(
    name: str,
    trace: ConvergenceTrace,
    time_grid: Sequence[float],
) -> ComparisonSeries:
    """Sample one trace's best-so-far curve on *time_grid*."""
    grid = tuple(time_grid)
    return ComparisonSeries(
        name=name,
        time_grid=grid,
        best_at=tuple(trace.best_at_time(t) for t in grid),
        final_best=trace.final_best() if len(trace) else float("inf"),
        iterations=len(trace),
    )


def head_to_head_experiment(
    workload,
    time_budget: float,
    algorithms: Optional[Mapping[str, Mapping]] = None,
    grid_points: int = 20,
    seed: int = 0,
    workers: int = 1,
    cache_dir=None,
    progress=None,
    network: str = DEFAULT_NETWORK,
) -> ComparisonResult:
    """The runner-backed head-to-head (Figs. 5-7 through :mod:`repro.runner`).

    Parameters
    ----------
    workload:
        A :class:`~repro.workloads.presets.WorkloadSpec` *recipe* — the
        workload is rebuilt inside each worker process.
    algorithms:
        Display name → extra registry params; defaults to the paper's
        pairing ``{"SE": ..., "GA": ...}`` with the calibrated
        ``COMPARISON_SE_BIAS``.  Every algorithm gets ``time_limit=
        time_budget`` with iteration caps lifted, exactly like
        :func:`se_runner` / :func:`ga_runner`.
    workers:
        With ``workers > 1`` the contenders run concurrently in separate
        processes.  RNG streams stay deterministic; note that for
        *wall-clock-budget* runs the stopping instant is physical time,
        so co-scheduling can shift how far each contender gets — use the
        default serial mode for paper-grade timing comparisons.
    network:
        Simulator backend every contender optimises against (explicit
        per-algorithm ``network`` entries in *algorithms* win; entries
        whose registry declaration does not accept a ``network``
        parameter are left untouched).  The engines' evaluation
        services route batch scoring through the network's vectorized
        kernel where one is registered, so ``network="nic"`` stays
        accelerated.
    """
    from repro.runner import (
        AlgorithmSpec,
        ExperimentSpec,
        algorithm_parameters,
        run_experiment,
    )

    if algorithms is None:
        algorithms = {"SE": {}, "GA": {}}
    algo_specs = {}
    for name, extra in algorithms.items():
        params = dict(extra)
        kind = params.pop("kind", name.lower())
        if kind == "se":
            base = {
                "time_limit": time_budget,
                "max_iterations": 10**9,
                "selection_bias": COMPARISON_SE_BIAS,
            }
        elif kind == "ga":
            base = {
                "time_limit": time_budget,
                "max_generations": 10**9,
                "stall_generations": None,
            }
        elif kind == "sa":
            base = {
                "time_limit": time_budget,
                "max_iterations": 10**9,
                # bound the per-proposal trace under a wall-clock budget
                "record_every": 50,
            }
        elif kind == "tabu":
            base = {
                "time_limit": time_budget,
                "max_iterations": 10**9,
            }
        else:
            base = {}
        # only algorithms that declare the parameter get the selector —
        # custom-registered entries without one must keep working
        if "network" in algorithm_parameters(kind):
            base["network"] = network
        base.update(params)
        algo_specs[name] = AlgorithmSpec.make(kind, **base)

    spec = ExperimentSpec(
        name=f"head-to-head-{workload.name or 'workload'}",
        algorithms=algo_specs,
        workloads=[workload],
        seeds=(seed,),
        base_seed=seed,
    )
    result = run_experiment(
        spec,
        workers=workers,
        cache_dir=cache_dir,
        progress=progress,
        keep_traces=True,
    )
    grid = make_time_grid(time_budget, grid_points)

    def cell_series(cell) -> ComparisonSeries:
        if cell.trace is None:
            # deterministic heuristic: done before the first sample point
            return ComparisonSeries(
                name=cell.algorithm,
                time_grid=grid,
                best_at=tuple(cell.makespan for _ in grid),
                final_best=cell.makespan,
                iterations=max(cell.iterations, 1),
            )
        return series_from_trace(cell.algorithm, cell.convergence_trace(), grid)

    series = tuple(cell_series(cell) for cell in result)
    return ComparisonResult(
        workload_name=workload.name or "workload",
        time_budget=time_budget,
        series=series,
    )
