"""Anytime-curve analysis for portfolio races.

A race (:func:`repro.portfolio.run_race`) reports, per island, the
improvement events of its best-so-far curve — ``(elapsed_seconds,
best_makespan)`` pairs — plus each island's start offset on the
race-global clock.  This module turns those step functions into the
numbers the ANYTIME benchmark and ``repro race`` report:

* :func:`best_at` — the curve's value at any time;
* :func:`anytime_auc` — normalized area under the best-so-far curve
  over a horizon (lower is better: it rewards *reaching* good
  schedules early, not just ending on one);
* :func:`first_time_to` — time-to-target: when the curve first reaches
  a quality threshold;
* :func:`anytime_table` — the per-island + combined text table.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

#: One improvement event of a best-so-far step curve.
Event = Tuple[float, float]


def best_at(events: Sequence[Event], t: float) -> float:
    """Value of the best-so-far step curve at time *t*.

    ``inf`` before the first event (no solution exists yet).  Events
    must be time-sorted with strictly decreasing costs (what
    :meth:`RaceResult.combined_anytime` and island ``anytime`` lists
    hold).
    """
    best = math.inf
    for ts, cost in events:
        if ts > t:
            break
        best = cost
    return best


def first_time_to(events: Sequence[Event], target: float) -> Optional[float]:
    """Earliest time the curve reaches ``cost <= target`` (else None)."""
    for ts, cost in events:
        if cost <= target:
            return ts
    return None


def anytime_auc(
    events: Sequence[Event],
    horizon: float,
    baseline: Optional[float] = None,
) -> float:
    """Normalized area under the best-so-far curve over ``[0, horizon]``.

    The mean of ``best(t)`` across the horizon, with the stretch before
    the first event valued at *baseline* (default: the first event's
    cost, i.e. the curve starts flat).  Dividing by the final best
    makes the number scale-free: ``1.0`` is a curve that was at its
    final quality instantly; larger means quality arrived later.

    >>> events = [(0.0, 100.0), (1.0, 50.0)]
    >>> anytime_auc(events, 2.0)  # 100 for 1s, 50 for 1s -> mean 75 / 50
    1.5
    """
    if not events:
        raise ValueError("anytime_auc needs at least one improvement event")
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    if baseline is None:
        baseline = events[0][1]
    area = 0.0
    prev_t, prev_cost = 0.0, float(baseline)
    for ts, cost in events:
        ts = min(ts, horizon)
        if ts > prev_t:
            area += (ts - prev_t) * prev_cost
        prev_t, prev_cost = ts, cost
        if ts >= horizon:
            break
    if prev_t < horizon:
        area += (horizon - prev_t) * prev_cost
    final = events[-1][1] if events[-1][0] <= horizon else best_at(events, horizon)
    return area / horizon / final


def anytime_table(race) -> str:
    """Fixed-width per-island + combined summary of a race.

    *race* is a :class:`repro.portfolio.RaceResult`; the combined row
    aggregates across islands on the race-global clock.
    """
    header = (
        f"{'island':>6}  {'engine':<6} {'best':>10}  {'iters':>8} "
        f"{'evals':>9}  {'pub':>4} {'recv':>4}  {'tier':<10} stopped"
    )
    lines = [header, "-" * len(header)]
    for o in race.islands:
        mark = " *" if o.island == race.best_island else ""
        lines.append(
            f"{o.island:>6}  {o.kind:<6} {o.best_makespan:>10.2f}  "
            f"{o.iterations:>8} {o.evaluations:>9}  {o.published:>4} "
            f"{o.received:>4}  {o.kernel_tier:<10} {o.stopped_by}{mark}"
        )
    curve = race.combined_anytime()
    lines.append("-" * len(header))
    lines.append(
        f"{'race':>6}  {'':6} {race.best_makespan:>10.2f}  "
        f"{race.iterations:>8} {race.evaluations:>9}  "
        f"{sum(o.published for o in race.islands):>4} "
        f"{sum(o.received for o in race.islands):>4}  "
        f"{len(curve):>2} improvements in {race.wall_seconds:.2f}s"
    )
    return "\n".join(lines)
