"""Terminal line plots — the library's only "figure" renderer.

The benchmarks regenerate the paper's figures as data series; this module
draws them as fixed-width ASCII charts so the shapes (decay of selected
subtasks, convergence curves, SE-vs-GA crossovers) are inspectable
directly in benchmark output and CI logs without any plotting dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

#: Glyphs assigned to series in order.
SERIES_GLYPHS = "*o+x#@%&"


@dataclass(frozen=True)
class Series:
    """One named line: x and y of equal length."""

    name: str
    x: Sequence[float]
    y: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.name!r}: x has {len(self.x)} points, "
                f"y has {len(self.y)}"
            )


def _finite(values: Sequence[float]) -> list[float]:
    return [v for v in values if math.isfinite(v)]


def line_plot(
    series: Sequence[Series],
    width: int = 72,
    height: int = 18,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render *series* onto a ``width x height`` character canvas.

    Points outside the finite data range are skipped; each series uses
    the next glyph from :data:`SERIES_GLYPHS`.  Returns a printable
    multi-line string with axes, a legend and min/max annotations.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 10 or height < 4:
        raise ValueError("canvas must be at least 10x4")

    xs = [v for s in series for v in _finite(s.x)]
    ys = [v for s in series for v in _finite(s.y)]
    if not xs or not ys:
        raise ValueError("series contain no finite points")
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for idx, s in enumerate(series):
        glyph = SERIES_GLYPHS[idx % len(SERIES_GLYPHS)]
        for xv, yv in zip(s.x, s.y):
            if not (math.isfinite(xv) and math.isfinite(yv)):
                continue
            col = int((xv - x_min) / x_span * (width - 1))
            row = height - 1 - int((yv - y_min) / y_span * (height - 1))
            canvas[row][col] = glyph

    lines: list[str] = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(f"{y_label}  (top={y_max:.4g}, bottom={y_min:.4g})")
    for row in canvas:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    x_caption = f"{x_min:.4g}"
    x_right = f"{x_max:.4g}"
    pad = max(1, width - len(x_caption) - len(x_right))
    lines.append(" " + x_caption + " " * pad + x_right)
    if x_label:
        lines.append(f" x: {x_label}")
    legend = "   ".join(
        f"{SERIES_GLYPHS[i % len(SERIES_GLYPHS)]} {s.name}"
        for i, s in enumerate(series)
    )
    lines.append(" " + legend)
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """A one-line unicode sparkline of *values* (compact trend display)."""
    blocks = "▁▂▃▄▅▆▇█"
    finite = _finite(values)
    if not finite:
        return ""
    if width is not None and width > 0 and len(values) > width:
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    lo, hi = min(finite), max(finite)
    span = (hi - lo) or 1.0
    out = []
    for v in values:
        if not math.isfinite(v):
            out.append(" ")
        else:
            out.append(blocks[int((v - lo) / span * (len(blocks) - 1))])
    return "".join(out)
