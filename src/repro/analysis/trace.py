"""Convergence traces: per-iteration records of an optimisation run.

Both engines (SE and the GA baseline) append one record per iteration /
generation; the figure benchmarks read these traces to regenerate the
paper's plots (selected-subtask counts for Fig. 3a, schedule lengths for
Figs. 3b/4, best-so-far vs wall time for Figs. 5-7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence


@dataclass(frozen=True)
class IterationRecord:
    """One iteration of an iterative scheduler.

    Attributes
    ----------
    iteration:
        1-based iteration (SE) or generation (GA) number.
    current_makespan:
        Schedule length of the current/working solution.
    best_makespan:
        Best schedule length seen so far in the run.
    num_selected:
        SE: size of the selection set this iteration (the quantity in
        Fig. 3a).  GA: number of offspring accepted.  May be ``None``
        for algorithms without the notion.
    elapsed_seconds:
        Wall time since the run started.
    mean_goodness:
        SE-specific: mean goodness of the population (``None`` for GA).
    evaluations:
        Cumulative number of simulator calls up to and including this
        iteration (cost accounting for time-vs-quality plots).
    """

    iteration: int
    current_makespan: float
    best_makespan: float
    num_selected: Optional[int] = None
    elapsed_seconds: float = 0.0
    mean_goodness: Optional[float] = None
    evaluations: int = 0


class ConvergenceTrace:
    """An append-only sequence of :class:`IterationRecord`."""

    __slots__ = ("_records",)

    def __init__(self, records: Iterable[IterationRecord] = ()):
        self._records: list[IterationRecord] = list(records)

    def append(self, record: IterationRecord) -> None:
        if self._records and record.iteration <= self._records[-1].iteration:
            raise ValueError(
                f"iteration numbers must increase; got {record.iteration} "
                f"after {self._records[-1].iteration}"
            )
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index: int) -> IterationRecord:
        return self._records[index]

    def __iter__(self):
        return iter(self._records)

    @property
    def records(self) -> Sequence[IterationRecord]:
        return tuple(self._records)

    # ------------------------------------------------------------------
    # series extraction (the figure benchmarks read these)
    # ------------------------------------------------------------------

    def iterations(self) -> list[int]:
        return [r.iteration for r in self._records]

    def selected_counts(self) -> list[int]:
        """Fig. 3a series; raises if any record lacks the count."""
        counts = [r.num_selected for r in self._records]
        if any(c is None for c in counts):
            raise ValueError("trace has records without num_selected")
        return [int(c) for c in counts]  # type: ignore[arg-type]

    def current_makespans(self) -> list[float]:
        """Fig. 3b / Fig. 4 series."""
        return [r.current_makespan for r in self._records]

    def best_makespans(self) -> list[float]:
        """Monotone best-so-far series (Figs. 5-7 y-axis)."""
        return [r.best_makespan for r in self._records]

    def elapsed(self) -> list[float]:
        """Wall-time axis (Figs. 5-7 x-axis)."""
        return [r.elapsed_seconds for r in self._records]

    def final_best(self) -> float:
        """Best makespan at the end of the run."""
        if not self._records:
            raise ValueError("empty trace")
        return self._records[-1].best_makespan

    def best_at_time(self, seconds: float) -> float:
        """Best makespan achieved within the first *seconds* of the run.

        Used by the SE-vs-GA comparison to sample both algorithms on a
        common time grid.  Returns ``inf`` if nothing finished in time.
        """
        best = math.inf
        for r in self._records:
            if r.elapsed_seconds <= seconds and r.best_makespan < best:
                best = r.best_makespan
        return best

    def improvement_ratio(self) -> float:
        """First-to-best makespan ratio (>= 1 when the run improved)."""
        if not self._records:
            raise ValueError("empty trace")
        first = self._records[0].current_makespan
        return first / self.final_best()

    def to_rows(self) -> list[dict]:
        """Records as plain dicts (CSV/JSON export in reports)."""
        return [
            {
                "iteration": r.iteration,
                "current_makespan": r.current_makespan,
                "best_makespan": r.best_makespan,
                "num_selected": r.num_selected,
                "elapsed_seconds": r.elapsed_seconds,
                "mean_goodness": r.mean_goodness,
                "evaluations": r.evaluations,
            }
            for r in self._records
        ]


def downsample(trace: ConvergenceTrace, max_points: int) -> ConvergenceTrace:
    """Thin a long trace to at most *max_points* records (keeping ends)."""
    if max_points < 2:
        raise ValueError(f"max_points must be >= 2, got {max_points}")
    n = len(trace)
    if n <= max_points:
        return ConvergenceTrace(trace.records)
    step = (n - 1) / (max_points - 1)
    idx = sorted({round(i * step) for i in range(max_points)})
    return ConvergenceTrace(trace[i] for i in idx)
