"""Experiment records and markdown rendering.

Each figure benchmark produces an :class:`ExperimentRecord` — experiment
id, the paper's expected shape, the measured outcome, and a pass/deviate
verdict — and EXPERIMENTS.md aggregates them.  The markdown helpers keep
table formatting in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A GitHub-flavoured markdown table."""
    if not headers:
        raise ValueError("need at least one header")
    for r in rows:
        if len(r) != len(headers):
            raise ValueError(
                f"row {r!r} has {len(r)} cells, expected {len(headers)}"
            )
    head = "| " + " | ".join(str(h) for h in headers) + " |"
    sep = "|" + "|".join("---" for _ in headers) + "|"
    body = ["| " + " | ".join(str(c) for c in r) + " |" for r in rows]
    return "\n".join([head, sep, *body])


@dataclass(frozen=True)
class ExperimentRecord:
    """Paper-vs-measured record for one experiment (one figure/ablation).

    Attributes
    ----------
    experiment_id:
        DESIGN.md id, e.g. ``"FIG3A"``.
    description:
        What the experiment shows.
    paper_expectation:
        The shape the paper reports (who wins, what decays, ...).
    measured:
        What this reproduction observed (free text with numbers).
    matches:
        Whether the measured shape matches the paper's expectation.
    details:
        Optional extra key/value context (parameters, seeds).
    """

    experiment_id: str
    description: str
    paper_expectation: str
    measured: str
    matches: bool
    details: Mapping[str, object] = field(default_factory=dict)

    def verdict(self) -> str:
        return "matches" if self.matches else "DEVIATES"

    def to_markdown(self) -> str:
        lines = [
            f"### {self.experiment_id} — {self.description}",
            "",
            f"* **Paper:** {self.paper_expectation}",
            f"* **Measured:** {self.measured}",
            f"* **Verdict:** {self.verdict()}",
        ]
        if self.details:
            lines.append("* **Parameters:** " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.details.items())
            ))
        return "\n".join(lines)


def render_report(
    title: str, records: Sequence[ExperimentRecord]
) -> str:
    """A full markdown report over several experiment records."""
    lines = [f"# {title}", ""]
    summary_rows = [
        (r.experiment_id, r.description, r.verdict()) for r in records
    ]
    lines.append(
        markdown_table(["experiment", "description", "verdict"], summary_rows)
    )
    lines.append("")
    for r in records:
        lines.append(r.to_markdown())
        lines.append("")
    return "\n".join(lines)
