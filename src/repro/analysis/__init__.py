"""Experiment harness: traces, comparisons, statistics, plotting, reports."""

from repro.analysis.anytime import (
    anytime_auc,
    anytime_table,
    best_at,
    first_time_to,
)
from repro.analysis.ascii_plot import Series, line_plot, sparkline
from repro.analysis.grid import (
    Algorithm,
    GridAlgorithm,
    GridCellResult,
    GridResult,
    grid_from_experiment,
    run_grid,
)
from repro.analysis.convergence import (
    StagnationStats,
    iterations_to_within,
    normalized_auc,
    speedup_to_reach,
    stagnation,
    time_to_target,
)
from repro.analysis.compare import (
    COMPARISON_SE_BIAS,
    ComparisonResult,
    ComparisonSeries,
    compare_algorithms,
    compare_named,
    ga_runner,
    head_to_head_experiment,
    make_time_grid,
    sa_runner,
    se_runner,
    se_vs_ga,
    series_from_trace,
    tabu_runner,
)
from repro.analysis.pareto import (
    cheapest_within,
    pareto_front,
    pareto_table,
)
from repro.analysis.report import (
    ExperimentRecord,
    markdown_table,
    render_report,
)
from repro.analysis.robust import RiskSummary, compare_risk, risk_profile
from repro.analysis.stats import (
    SummaryStats,
    WinLossRecord,
    geometric_mean,
    makespan_ratio,
    summarize,
    win_loss,
)
from repro.analysis.trace import ConvergenceTrace, IterationRecord, downsample

# imported last: repro.analysis.online pulls in repro.online, which leans
# on the modules above being importable already
from repro.analysis.online import flow_table, summary_lines  # noqa: E402

__all__ = [
    "COMPARISON_SE_BIAS",
    "anytime_auc",
    "anytime_table",
    "best_at",
    "first_time_to",
    "Series",
    "line_plot",
    "sparkline",
    "ComparisonResult",
    "ComparisonSeries",
    "compare_algorithms",
    "compare_named",
    "ga_runner",
    "head_to_head_experiment",
    "make_time_grid",
    "sa_runner",
    "se_runner",
    "se_vs_ga",
    "series_from_trace",
    "tabu_runner",
    "ExperimentRecord",
    "markdown_table",
    "render_report",
    "SummaryStats",
    "WinLossRecord",
    "geometric_mean",
    "makespan_ratio",
    "summarize",
    "win_loss",
    "ConvergenceTrace",
    "IterationRecord",
    "downsample",
    "StagnationStats",
    "iterations_to_within",
    "normalized_auc",
    "speedup_to_reach",
    "stagnation",
    "time_to_target",
    "Algorithm",
    "GridAlgorithm",
    "GridCellResult",
    "GridResult",
    "grid_from_experiment",
    "run_grid",
    "cheapest_within",
    "pareto_front",
    "pareto_table",
    "RiskSummary",
    "compare_risk",
    "risk_profile",
    "flow_table",
    "summary_lines",
]
