"""Risk summaries: distributional quality of a schedule under scenarios.

A deterministic run reports one makespan; a stochastic workload gives a
schedule a whole *distribution* of makespans.  :class:`RiskSummary`
condenses a scenario sample vector into the statistics the risk-aware
experiments compare (mean, median, p95, CVaR95, worst case), computed
with the exact same nearest-rank reducers the scenario objectives use
(:class:`repro.optim.objective.ScenarioObjective`) — so a schedule
optimised for ``quantile:0.95`` is judged by the very number it
optimised.

>>> from repro.analysis.robust import RiskSummary
>>> s = RiskSummary.from_samples([10.0, 12.0, 11.0, 30.0])
>>> s.worst
30.0
>>> bool(s.mean <= s.p95 <= s.worst)
True

:func:`risk_profile` scores one schedule string through a
:class:`~repro.stochastic.scenarios.ScenarioEvaluator`;
:func:`compare_risk` pits two strings against the *same* scenario set —
the out-of-sample protocol of the ROBUST-STUDY benchmark (train on one
``scenario_seed``, judge both contenders on a fresh one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.optim.objective import ScenarioObjective

#: The reducers a summary reports, in presentation order.
_STATS = (
    ("mean", ScenarioObjective("mean")),
    ("p50", ScenarioObjective("quantile", q=0.5)),
    ("p95", ScenarioObjective("quantile", q=0.95)),
    ("cvar95", ScenarioObjective("cvar", q=0.95)),
)


@dataclass(frozen=True)
class RiskSummary:
    """Distributional statistics of one schedule's scenario makespans."""

    mean: float
    p50: float
    p95: float
    cvar95: float
    worst: float
    scenarios: int

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "RiskSummary":
        """Summarise a per-scenario makespan vector (``len >= 1``)."""
        xs = np.asarray(samples, dtype=np.float64)
        if xs.ndim != 1 or xs.size == 0:
            raise ValueError(
                f"samples must be a non-empty 1-D vector, got shape {xs.shape}"
            )
        stats = {name: float(obj.reduce(xs)) for name, obj in _STATS}
        return cls(worst=float(xs.max()), scenarios=int(xs.size), **stats)

    def to_dict(self) -> Dict[str, float]:
        return {
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "cvar95": self.cvar95,
            "worst": self.worst,
            "scenarios": float(self.scenarios),
        }

    def format_lines(self, indent: str = "") -> list[str]:
        """Human-readable report lines (used by ``repro run``)."""
        return [
            f"{indent}scenarios   {self.scenarios}",
            f"{indent}mean        {self.mean:.2f}",
            f"{indent}p50         {self.p50:.2f}",
            f"{indent}p95         {self.p95:.2f}",
            f"{indent}CVaR95      {self.cvar95:.2f}",
            f"{indent}worst       {self.worst:.2f}",
        ]


def risk_profile(evaluator, string) -> RiskSummary:
    """Summary of *string* under *evaluator*'s scenario set.

    *evaluator* is a :class:`~repro.stochastic.scenarios.
    ScenarioEvaluator`; *string* a :class:`~repro.schedule.encoding.
    ScheduleString`.
    """
    return RiskSummary.from_samples(evaluator.samples_string(string))


def compare_risk(evaluator, baseline, contender) -> Dict[str, float]:
    """Per-statistic ratio ``contender / baseline`` on shared scenarios.

    Values below 1.0 mean the contender is better (smaller) on that
    statistic.  Both strings are scored against the *same* evaluator —
    i.e. the same sampled scenario set — so the comparison is paired,
    and an evaluator built with a fresh ``scenario_seed`` makes it an
    out-of-sample judgement.
    """
    base = risk_profile(evaluator, baseline).to_dict()
    cont = risk_profile(evaluator, contender).to_dict()
    return {
        name: cont[name] / base[name]
        for name in ("mean", "p50", "p95", "cvar95", "worst")
    }
