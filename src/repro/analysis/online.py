"""Reporting helpers for online-service runs.

Turns an :class:`~repro.online.simulator.OnlineResult` into the
per-job flow table and summary block the ``repro serve`` CLI prints —
the online counterpart of :mod:`repro.analysis.report`.
"""

from __future__ import annotations

from repro.analysis.report import markdown_table
from repro.online.simulator import OnlineResult

__all__ = ["flow_table", "summary_lines"]


def flow_table(result: OnlineResult) -> str:
    """Markdown table of every completed job's lifecycle, arrival order."""
    rows = [
        [
            r.job_id,
            r.num_tasks,
            f"{r.t_arrival:.3f}",
            f"{r.t_completed:.3f}",
            f"{r.flow_time:.3f}",
        ]
        for r in sorted(result.records, key=lambda r: (r.t_arrival, r.job_id))
    ]
    return markdown_table(
        ["job", "tasks", "arrival", "completed", "flow"], rows
    )


def summary_lines(result: OnlineResult) -> list[str]:
    """Human-readable summary block for one service run."""
    m = result.metrics
    reopts = sum(1 for e in result.events if e["type"] == "reopt")
    improved = sum(
        e["improved"] for e in result.events if e["type"] == "reopt"
    )
    return [
        f"network={result.network} policy={result.policy} "
        f"machines={result.num_machines}",
        f"jobs completed: {m.num_jobs}   horizon: {m.horizon:.3f}",
        f"throughput: {m.throughput:.6f} jobs/unit-time",
        f"flow time: mean={m.mean_flow:.3f}  p50={m.p50_flow:.3f}  "
        f"p99={m.p99_flow:.3f}  max={m.max_flow:.3f}",
        f"reopt windows: {reopts} ({improved} job improvements)",
        f"events logged: {len(result.events)}",
    ]
