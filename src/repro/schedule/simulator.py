"""Deterministic schedule evaluation: string -> start/finish times.

This is the cost function of every algorithm in the library (SE's ``Ci``,
the GA's fitness, every baseline's makespan), called hundreds of thousands
of times per experiment, so it is written for speed per the profiling
guidance in the HPC coding guides:

* all matrix data is converted to nested Python lists once at construction
  (scalar indexing into small numpy arrays costs ~10x a list index),
* the evaluation loop binds every attribute to a local,
* machine-pair rows of ``Tr`` are computed inline with integer arithmetic.

Semantics (paper §2 + §4.1, matching Wang et al.'s model):

* subtasks execute in string order on their assigned machine,
  non-preemptively and without insertion;
* a subtask may start once (a) its machine has finished the previous
  subtask in string order, and (b) every input data item has arrived —
  producer finish time plus ``Tr`` transfer time when producer and
  consumer machines differ, zero otherwise;
* links are contention-free (fully connected network), so transfers
  start the moment the producer finishes.

Incremental (suffix-only) re-evaluation
---------------------------------------

Because evaluation walks the string left to right and its state after
position ``p`` is fully captured by (per-task finish times, per-machine
availability, running span), a move that perturbs the string only from
position ``f`` onwards can reuse everything before ``f``.
:meth:`Simulator.prepare` performs one full evaluation and snapshots that
state at every position; :meth:`Simulator.evaluate_delta` then re-scores
a perturbed string by recomputing positions ``f..k-1`` only.  This is the
hot path of the SE allocation step (thousands of relocate-probe-revert
cycles per iteration) and of the GA's mutation-only offspring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.model.workload import Workload
from repro.schedule.encoding import ScheduleString
from repro.schedule.scoring import CostModel, ScheduleScore


class InvalidScheduleError(ValueError):
    """Raised when a string violates the DAG's precedence constraints."""


@dataclass(frozen=True)
class Schedule:
    """A fully evaluated schedule.

    Attributes
    ----------
    order:
        The subtask string order that produced this schedule.
    machine_of:
        Machine assignment per subtask.
    start, finish:
        Start/finish time per subtask (indexed by subtask id).
    makespan:
        Total execution time of the application — the paper's objective.
    """

    order: tuple[int, ...]
    machine_of: tuple[int, ...]
    start: tuple[float, ...]
    finish: tuple[float, ...]
    makespan: float

    @property
    def num_tasks(self) -> int:
        return len(self.order)

    def machine_sequence(self, machine: int) -> list[int]:
        """Subtasks run on *machine* in execution order."""
        return [t for t in self.order if self.machine_of[t] == machine]


class DeltaState:
    """Snapshot of one full evaluation, indexed by string position.

    Produced by :meth:`Simulator.prepare`; consumed by
    :meth:`Simulator.evaluate_delta`.  For a string of ``k`` subtasks on
    ``l`` machines it stores, for every position ``p`` in ``0..k``:

    * ``avail_rows[p]`` — per-machine availability before position ``p``,
    * ``span_prefix[p]`` — makespan of the prefix ``[0, p)``,

    plus the per-task ``start`` / ``finish`` arrays and the base string's
    ``order`` / ``machine_of`` (copies, safe against later mutation).
    Two auxiliary arrays power the *rejoin* early-exit of
    :meth:`Simulator.evaluate_delta`:

    * ``suffix_max[p]`` — max base finish over positions ``p..k-1``;
    * ``last_consumer_pos[t]`` — last base position holding a consumer of
      ``t``'s data (``-1`` if none).

    Memory is ``O(k*l)``; building it costs one full evaluation.
    """

    __slots__ = (
        "order",
        "machine_of",
        "pos_of",
        "start",
        "finish",
        "avail_rows",
        "span_prefix",
        "suffix_max",
        "last_consumer_pos",
        "makespan",
        "avail_at",
        "dirty_epoch",
        "epoch",
    )

    def __init__(
        self,
        order: list[int],
        machine_of: list[int],
        start: list[float],
        finish: list[float],
        avail_rows: list[list[float]],
        span_prefix: list[float],
        suffix_max: list[float],
        last_consumer_pos: list[int],
        makespan: float,
    ):
        self.order = order
        self.machine_of = machine_of
        self.start = start
        self.finish = finish
        self.avail_rows = avail_rows
        self.span_prefix = span_prefix
        self.suffix_max = suffix_max
        self.last_consumer_pos = last_consumer_pos
        self.makespan = makespan
        pos_of = [0] * len(order)
        for p, task in enumerate(order):
            pos_of[task] = p
        self.pos_of = pos_of
        # avail_at[t]: availability of t's machine just before t's base
        # position — the machine-side input of t's ready-time computation.
        self.avail_at = [
            avail_rows[pos_of[t]][machine_of[t]] for t in range(len(order))
        ]
        # Scratch for evaluate_delta's dirty tracking: a task is "dirty"
        # in a probe iff dirty_epoch[task] == epoch of that probe, so
        # flags reset in O(1) by bumping the epoch.
        self.dirty_epoch = [0] * len(order)
        self.epoch = 0

    def as_schedule(self) -> Schedule:
        """The fully evaluated base schedule (no re-walk needed)."""
        return Schedule(
            order=tuple(self.order),
            machine_of=tuple(self.machine_of),
            start=tuple(self.start),
            finish=tuple(self.finish),
            makespan=self.makespan,
        )


class Simulator:
    """Reusable evaluation context for one :class:`Workload`.

    Build once per workload, then call :meth:`makespan` /
    :meth:`evaluate` as often as needed.  For move-probe loops, call
    :meth:`prepare` once per base string and :meth:`evaluate_delta` per
    probe.

    ``initial_avail`` seeds the per-machine availability vector the walk
    starts from (default: all machines idle at 0).  The online scheduling
    service uses this to evaluate a job's schedule against machines that
    are still busy with earlier jobs; all reported start/finish times are
    then absolute service times, and with an all-zero vector every float
    operation is identical to the historical idle-machine walk.
    """

    __slots__ = (
        "_workload",
        "_k",
        "_l",
        "_E",
        "_tr",
        "_in_edges",
        "_avail0",
        "_cost_model",
    )

    def __init__(
        self,
        workload: Workload,
        initial_avail: Optional[Sequence[float]] = None,
        cost_model: Optional["CostModel"] = None,
    ):
        self._workload = workload
        self._cost_model = cost_model
        graph = workload.graph
        self._k = graph.num_tasks
        self._l = workload.num_machines
        self._E = workload.exec_times.values.tolist()
        self._tr = workload.transfer_times.values.tolist()
        if initial_avail is None:
            self._avail0 = [0.0] * self._l
        else:
            if len(initial_avail) != self._l:
                raise ValueError(
                    f"initial_avail has {len(initial_avail)} entries for "
                    f"{self._l} machines"
                )
            self._avail0 = [float(a) for a in initial_avail]
        # Per consumer: tuple of (producer, item) pairs, the data inputs.
        in_edges: list[list[tuple[int, int]]] = [[] for _ in range(self._k)]
        for d in graph.data_items:
            in_edges[d.consumer].append((d.producer, d.index))
        self._in_edges = [tuple(es) for es in in_edges]

    @property
    def workload(self) -> Workload:
        return self._workload

    # ------------------------------------------------------------------
    # hot path
    # ------------------------------------------------------------------

    def makespan(
        self, order: Sequence[int], machine_of: Sequence[int]
    ) -> float:
        """Makespan of the schedule encoded by *order* / *machine_of*.

        Raises
        ------
        InvalidScheduleError
            If *order* places a consumer before one of its producers.
        """
        E = self._E
        tr = self._tr
        in_edges = self._in_edges
        l = self._l
        finish = [-1.0] * self._k
        machine_avail = self._avail0[:]
        span = 0.0

        for task in order:
            m = machine_of[task]
            ready = machine_avail[m]
            for prod, item in in_edges[task]:
                pf = finish[prod]
                if pf < 0.0:
                    raise InvalidScheduleError(
                        f"subtask {task} scheduled before its producer {prod}"
                    )
                pm = machine_of[prod]
                if pm != m:
                    if pm < m:
                        row = pm * l - pm * (pm + 1) // 2 + (m - pm - 1)
                    else:
                        row = m * l - m * (m + 1) // 2 + (pm - m - 1)
                    pf += tr[row][item]
                if pf > ready:
                    ready = pf
            fin = ready + E[m][task]
            finish[task] = fin
            machine_avail[m] = fin
            if fin > span:
                span = fin
        return span

    def evaluate(self, string: ScheduleString) -> Schedule:
        """Full evaluation of *string* with per-task start/finish times."""
        order = string.order
        machine_of = string.machines
        E = self._E
        tr = self._tr
        in_edges = self._in_edges
        l = self._l
        k = self._k
        start = [0.0] * k
        finish = [-1.0] * k
        machine_avail = self._avail0[:]
        span = 0.0

        for task in order:
            m = machine_of[task]
            ready = machine_avail[m]
            for prod, item in in_edges[task]:
                pf = finish[prod]
                if pf < 0.0:
                    raise InvalidScheduleError(
                        f"subtask {task} scheduled before its producer {prod}"
                    )
                pm = machine_of[prod]
                if pm != m:
                    if pm < m:
                        row = pm * l - pm * (pm + 1) // 2 + (m - pm - 1)
                    else:
                        row = m * l - m * (m + 1) // 2 + (pm - m - 1)
                    pf += tr[row][item]
                if pf > ready:
                    ready = pf
            start[task] = ready
            fin = ready + E[m][task]
            finish[task] = fin
            machine_avail[m] = fin
            if fin > span:
                span = fin

        return Schedule(
            order=tuple(order),
            machine_of=tuple(machine_of),
            start=tuple(start),
            finish=tuple(finish),
            makespan=span,
        )

    # ------------------------------------------------------------------
    # multi-metric tier
    # ------------------------------------------------------------------

    @property
    def cost_model(self) -> Optional[CostModel]:
        """The platform billing table, or ``None`` on the uniform
        platform (``score`` then reports cost 0.0)."""
        return self._cost_model

    def score(
        self, order: Sequence[int], machine_of: Sequence[int]
    ) -> ScheduleScore:
        """The schedule's ``(makespan, cost, busy)`` triple.

        One :meth:`makespan` walk plus the cost model's per-task
        billing; without an attached cost model the zero model applies
        (cost 0.0, busy times still real).
        """
        cm = self._cost_model
        if cm is None:
            cm = self._cost_model = CostModel.zero(
                self._workload.exec_times.values
            )
        return cm.score(machine_of, self.makespan(order, machine_of))

    def string_score(self, string: ScheduleString) -> ScheduleScore:
        """:meth:`score` of an encoded :class:`ScheduleString`."""
        return self.score(string.order, string.machines)

    # ------------------------------------------------------------------
    # incremental (suffix-only) evaluation
    # ------------------------------------------------------------------

    def prepare(
        self, order: Sequence[int], machine_of: Sequence[int]
    ) -> DeltaState:
        """Fully evaluate a valid string and snapshot per-position state.

        The returned :class:`DeltaState` lets :meth:`evaluate_delta`
        re-score any string sharing a prefix with this one without
        re-walking that prefix.

        Raises
        ------
        InvalidScheduleError
            If *order* places a consumer before one of its producers.
        """
        E = self._E
        tr = self._tr
        in_edges = self._in_edges
        l = self._l
        k = self._k
        start = [0.0] * k
        finish = [-1.0] * k
        machine_avail = self._avail0[:]
        avail_rows: list[list[float]] = [machine_avail.copy()]
        span_prefix = [0.0]
        span = 0.0

        for task in order:
            m = machine_of[task]
            ready = machine_avail[m]
            for prod, item in in_edges[task]:
                pf = finish[prod]
                if pf < 0.0:
                    raise InvalidScheduleError(
                        f"subtask {task} scheduled before its producer {prod}"
                    )
                pm = machine_of[prod]
                if pm != m:
                    if pm < m:
                        row = pm * l - pm * (pm + 1) // 2 + (m - pm - 1)
                    else:
                        row = m * l - m * (m + 1) // 2 + (pm - m - 1)
                    pf += tr[row][item]
                if pf > ready:
                    ready = pf
            start[task] = ready
            fin = ready + E[m][task]
            finish[task] = fin
            machine_avail[m] = fin
            if fin > span:
                span = fin
            avail_rows.append(machine_avail.copy())
            span_prefix.append(span)

        suffix_max = [0.0] * (k + 1)
        running = 0.0
        for p in range(k - 1, -1, -1):
            fv = finish[order[p]]
            if fv > running:
                running = fv
            suffix_max[p] = running
        last_consumer_pos = [-1] * k
        for p, task in enumerate(order):
            for prod, _item in in_edges[task]:
                if p > last_consumer_pos[prod]:
                    last_consumer_pos[prod] = p

        return DeltaState(
            order=list(order),
            machine_of=list(machine_of),
            start=start,
            finish=finish,
            avail_rows=avail_rows,
            span_prefix=span_prefix,
            suffix_max=suffix_max,
            last_consumer_pos=last_consumer_pos,
            makespan=span,
        )

    def prepare_string(self, string: ScheduleString) -> DeltaState:
        """:meth:`prepare` for a :class:`ScheduleString` (thin convenience)."""
        return self.prepare(string.order, string.machines)

    def evaluate_delta(
        self,
        order: Sequence[int],
        machine_of: Sequence[int],
        first_changed: int,
        state: DeltaState,
        cutoff: float = float("inf"),
        region_end: Optional[int] = None,
    ) -> float:
        """Makespan of a perturbed string, recomputed from *first_changed*.

        Preconditions (NOT checked — this is the innermost hot path):

        * ``order`` is a valid (dependency-respecting) permutation;
        * positions ``0..first_changed-1`` hold the same subtasks as
          ``state``'s base string, and those subtasks keep the machine
          assignments they had when :meth:`prepare` ran.

        The result is bit-identical to a full :meth:`makespan` call on
        the same string (the suffix performs the exact same float
        operations; the prefix state is reused verbatim) — a property
        enforced by ``tests/properties/test_delta_properties.py``.

        ``cutoff`` enables branch-and-bound pruning: the running span
        only grows as positions are processed, so once it reaches
        *cutoff* the final makespan is guaranteed to be >= *cutoff* and
        ``inf`` is returned immediately.  Callers that only keep strictly
        better probes (the SE allocator) lose nothing.

        ``region_end``, when given, asserts that every position strictly
        greater than it holds the *same subtask with the same machine* as
        the base string (true for a single relocate with
        ``region_end = max(old_position, insertion_index)``).  It enables
        the *rejoin* early-exit: while walking the suffix the evaluator
        tracks the last position that could still read a finish time that
        differs from the base run; once past both that frontier and
        ``region_end``, if the per-machine availability vector equals the
        base snapshot, every remaining computation would replicate the
        base run verbatim, so the result is ``max(span so far,
        max base finish of the remaining positions)`` — no further walk.
        """
        k = self._k
        f = first_changed
        if f < 0:
            f = 0
        elif f >= k:
            return state.makespan if state.makespan < cutoff else float("inf")
        E = self._E
        tr = self._tr
        in_edges = self._in_edges
        l = self._l
        base_finish = state.finish
        base_machines = state.machine_of
        base_avail_at = state.avail_at
        finish = base_finish[:]
        avail_rows = state.avail_rows
        machine_avail = avail_rows[f][:]
        span = state.span_prefix[f]
        if span >= cutoff:
            return float("inf")
        suffix_max = state.suffix_max
        last_consumer = state.last_consumer_pos
        state.epoch += 1
        epoch = state.epoch
        dirty = state.dirty_epoch
        # No early exit at positions <= frontier.  A relocate shifts the
        # in-between subtasks by at most one position, hence the +1 margin
        # when a divergent producer extends the frontier below.
        frontier = k if region_end is None else region_end

        for p in range(f, k):
            if p > frontier and machine_avail == avail_rows[p]:
                rest = suffix_max[p]
                total = span if span > rest else rest
                return total if total < cutoff else float("inf")
            task = order[p]
            m = machine_of[task]
            # Clean shortcut: same machine as the base run, the machine is
            # available exactly as it was before this task's base position,
            # and no producer diverged — then every input of the ready/
            # finish computation is identical to the base run, so the
            # stored base finish IS this task's finish.
            if m == base_machines[task] and (
                machine_avail[m] == base_avail_at[task]
            ):
                for prod, _item in in_edges[task]:
                    if dirty[prod] == epoch:
                        break
                else:
                    fin = base_finish[task]
                    machine_avail[m] = fin
                    if fin > span:
                        span = fin
                        if span >= cutoff:
                            return float("inf")
                    continue
            ready = machine_avail[m]
            for prod, item in in_edges[task]:
                pf = finish[prod]
                pm = machine_of[prod]
                if pm != m:
                    if pm < m:
                        row = pm * l - pm * (pm + 1) // 2 + (m - pm - 1)
                    else:
                        row = m * l - m * (m + 1) // 2 + (pm - m - 1)
                    pf += tr[row][item]
                if pf > ready:
                    ready = pf
            fin = ready + E[m][task]
            finish[task] = fin
            machine_avail[m] = fin
            if fin > span:
                span = fin
                if span >= cutoff:
                    return float("inf")
            # A divergent finish time — or a machine change, which alters
            # consumers' transfer times even at an identical finish —
            # keeps every position up to the last consumer "dirty".
            if fin != base_finish[task] or m != base_machines[task]:
                dirty[task] = epoch
                bound = last_consumer[task] + 1
                if bound > frontier:
                    frontier = bound
        return span

    def finish_times(self, string: ScheduleString) -> list[float]:
        """Per-subtask finish times — SE's ``Ci`` values (paper §4.3)."""
        return list(self.evaluate(string).finish)

    def string_makespan(self, string: ScheduleString) -> float:
        """Makespan of a :class:`ScheduleString` (thin convenience)."""
        return self.makespan(string.order, string.machines)


def evaluate_schedule(workload: Workload, string: ScheduleString) -> Schedule:
    """One-shot evaluation (builds a throwaway :class:`Simulator`).

    Prefer constructing a :class:`Simulator` when evaluating many strings
    against the same workload.
    """
    return Simulator(workload).evaluate(string)
