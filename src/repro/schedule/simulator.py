"""Deterministic schedule evaluation: string -> start/finish times.

This is the cost function of every algorithm in the library (SE's ``Ci``,
the GA's fitness, every baseline's makespan), called hundreds of thousands
of times per experiment, so it is written for speed per the profiling
guidance in the HPC coding guides:

* all matrix data is converted to nested Python lists once at construction
  (scalar indexing into small numpy arrays costs ~10x a list index),
* the evaluation loop binds every attribute to a local,
* machine-pair rows of ``Tr`` are computed inline with integer arithmetic.

Semantics (paper §2 + §4.1, matching Wang et al.'s model):

* subtasks execute in string order on their assigned machine,
  non-preemptively and without insertion;
* a subtask may start once (a) its machine has finished the previous
  subtask in string order, and (b) every input data item has arrived —
  producer finish time plus ``Tr`` transfer time when producer and
  consumer machines differ, zero otherwise;
* links are contention-free (fully connected network), so transfers
  start the moment the producer finishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.model.graph import TaskGraph
from repro.model.workload import Workload
from repro.schedule.encoding import ScheduleString


class InvalidScheduleError(ValueError):
    """Raised when a string violates the DAG's precedence constraints."""


@dataclass(frozen=True)
class Schedule:
    """A fully evaluated schedule.

    Attributes
    ----------
    order:
        The subtask string order that produced this schedule.
    machine_of:
        Machine assignment per subtask.
    start, finish:
        Start/finish time per subtask (indexed by subtask id).
    makespan:
        Total execution time of the application — the paper's objective.
    """

    order: tuple[int, ...]
    machine_of: tuple[int, ...]
    start: tuple[float, ...]
    finish: tuple[float, ...]
    makespan: float

    @property
    def num_tasks(self) -> int:
        return len(self.order)

    def machine_sequence(self, machine: int) -> list[int]:
        """Subtasks run on *machine* in execution order."""
        return [t for t in self.order if self.machine_of[t] == machine]


class Simulator:
    """Reusable evaluation context for one :class:`Workload`.

    Build once per workload, then call :meth:`makespan` /
    :meth:`evaluate` as often as needed.
    """

    __slots__ = ("_workload", "_k", "_l", "_E", "_tr", "_in_edges")

    def __init__(self, workload: Workload):
        self._workload = workload
        graph = workload.graph
        self._k = graph.num_tasks
        self._l = workload.num_machines
        self._E = workload.exec_times.values.tolist()
        self._tr = workload.transfer_times.values.tolist()
        # Per consumer: tuple of (producer, item) pairs, the data inputs.
        in_edges: list[list[tuple[int, int]]] = [[] for _ in range(self._k)]
        for d in graph.data_items:
            in_edges[d.consumer].append((d.producer, d.index))
        self._in_edges = [tuple(es) for es in in_edges]

    @property
    def workload(self) -> Workload:
        return self._workload

    # ------------------------------------------------------------------
    # hot path
    # ------------------------------------------------------------------

    def makespan(
        self, order: Sequence[int], machine_of: Sequence[int]
    ) -> float:
        """Makespan of the schedule encoded by *order* / *machine_of*.

        Raises
        ------
        InvalidScheduleError
            If *order* places a consumer before one of its producers.
        """
        E = self._E
        tr = self._tr
        in_edges = self._in_edges
        l = self._l
        finish = [-1.0] * self._k
        machine_avail = [0.0] * l
        span = 0.0

        for task in order:
            m = machine_of[task]
            ready = machine_avail[m]
            for prod, item in in_edges[task]:
                pf = finish[prod]
                if pf < 0.0:
                    raise InvalidScheduleError(
                        f"subtask {task} scheduled before its producer {prod}"
                    )
                pm = machine_of[prod]
                if pm != m:
                    if pm < m:
                        row = pm * l - pm * (pm + 1) // 2 + (m - pm - 1)
                    else:
                        row = m * l - m * (m + 1) // 2 + (pm - m - 1)
                    pf += tr[row][item]
                if pf > ready:
                    ready = pf
            fin = ready + E[m][task]
            finish[task] = fin
            machine_avail[m] = fin
            if fin > span:
                span = fin
        return span

    def evaluate(self, string: ScheduleString) -> Schedule:
        """Full evaluation of *string* with per-task start/finish times."""
        order = string.order
        machine_of = string.machines
        E = self._E
        tr = self._tr
        in_edges = self._in_edges
        l = self._l
        k = self._k
        start = [0.0] * k
        finish = [-1.0] * k
        machine_avail = [0.0] * l
        span = 0.0

        for task in order:
            m = machine_of[task]
            ready = machine_avail[m]
            for prod, item in in_edges[task]:
                pf = finish[prod]
                if pf < 0.0:
                    raise InvalidScheduleError(
                        f"subtask {task} scheduled before its producer {prod}"
                    )
                pm = machine_of[prod]
                if pm != m:
                    if pm < m:
                        row = pm * l - pm * (pm + 1) // 2 + (m - pm - 1)
                    else:
                        row = m * l - m * (m + 1) // 2 + (pm - m - 1)
                    pf += tr[row][item]
                if pf > ready:
                    ready = pf
            start[task] = ready
            fin = ready + E[m][task]
            finish[task] = fin
            machine_avail[m] = fin
            if fin > span:
                span = fin

        return Schedule(
            order=tuple(order),
            machine_of=tuple(machine_of),
            start=tuple(start),
            finish=tuple(finish),
            makespan=span,
        )

    def finish_times(self, string: ScheduleString) -> list[float]:
        """Per-subtask finish times — SE's ``Ci`` values (paper §4.3)."""
        return list(self.evaluate(string).finish)

    def string_makespan(self, string: ScheduleString) -> float:
        """Makespan of a :class:`ScheduleString` (thin convenience)."""
        return self.makespan(string.order, string.machines)


def evaluate_schedule(workload: Workload, string: ScheduleString) -> Schedule:
    """One-shot evaluation (builds a throwaway :class:`Simulator`).

    Prefer constructing a :class:`Simulator` when evaluating many strings
    against the same workload.
    """
    return Simulator(workload).evaluate(string)
