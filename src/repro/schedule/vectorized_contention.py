"""Vectorized batch evaluation under NIC contention.

The paper's headline extension result — optimising *under* the
realistic one-NIC-per-machine model beats optimising contention-free
and re-evaluating — is exactly the configuration the batch tier used to
abandon: only the contention-free model registered a vectorized kernel,
so ``make_simulator(w, "nic", batch=True)`` silently degraded to a
sequential scalar loop.  :class:`ContentionBatchSimulator` closes that
gap: whole schedule batches are scored under NIC serialisation in NumPy
sweeps, bit-identical to
:meth:`~repro.extensions.contention.ContentionSimulator.makespan`.

Kernel layout
-------------

All static gather tables come from the shared
:class:`~repro.schedule.vectorized.WorkloadPack` (the same E/Tr packing,
padded-CSR in-edges and pair-row tables the contention-free
:class:`~repro.schedule.vectorized.BatchSimulator` uses), plus the
NIC-specific *out*-edge lanes from :meth:`WorkloadPack.out_tables`:
``pad_out_item`` / ``pad_out_cons`` hold, per task, the items it pushes
in ascending item-index order — the documented NIC serialisation order.

Evaluation walks string positions ``0..k-1`` exactly like the scalar
contention simulator, carrying the same state it snapshots in
:meth:`~repro.extensions.contention.ContentionSimulator.prepare` — but
as per-batch-element vectors instead of per-run scalars:

* ``avail``   — ``(B, l)`` machine-availability times;
* ``nic``     — ``(B, l)`` per-machine NIC-free times;
* ``arrival`` — ``(B, p + 2)`` per-item arrival times (slot ``p`` is a
  permanent 0.0 that sentinel in-edge lanes read; slot ``p + 1`` is the
  scratch slot sentinel out-edge lanes write);
* ``finish``  — ``(B, k + 1)`` per-task finish times (slot ``k`` is the
  virtual sentinel producer, pinned at 0.0).

Per position the whole batch advances in ~8 flat NumPy ops: gather
machine availability, one combined gather for the in-edge lanes
(``finish`` and ``arrival`` share a flat state buffer, and the scalar
walk's ``finish[prod] if same machine else arrival[item]`` select is
folded into the gather *index* at precompute time), reduce, add
execution time, scatter finish/availability — then one ``add`` per
*out-edge lane* plus a fused arrival scatter, which is what keeps the
NIC chain honest: within a task the pushes serialise
(``nf = max(fin, nf) + Tr``), so the lanes must accumulate in item
order; only the first needs the ``max`` because every later push
starts from an ``nf`` already >= the producer's finish.

Two exactness notes, both load-bearing for bit-identity:

* the scalar walk *skips* same-machine and padding pushes; the kernel
  instead runs them as zero-duration transfers.  A zero-duration push
  can only lift ``nf`` to ``max(fin, nf)``, and every later transfer
  from that machine starts at ``max(fin', nf)`` with ``fin' >= fin``
  (machine availability only grows), so the lifted value is absorbed
  bit-for-bit by the next ``max`` — no float ever changes;
* arrival slots written by same-machine pushes are junk by design: a
  consumer on the producer's machine reads ``finish[prod]`` (the
  same-machine mask), never the arrival slot, mirroring the scalar
  reads exactly.

Registered via ``register_batch_network("nic")``, so
``make_simulator(w, "nic", batch=True)``, the
:class:`~repro.optim.evaluation.EvaluationService`, GA population
fitness, ``random_search(batch_size=...)`` and tabu's neighborhood
scoring all pick it up with zero call-site changes.

>>> from repro.extensions.contention import ContentionSimulator
>>> from repro.schedule.operations import random_valid_string
>>> from repro.workloads import small_workload
>>> w = small_workload(seed=3)
>>> batch = [random_valid_string(w.graph, w.num_machines, s) for s in range(4)]
>>> kernel = ContentionBatchSimulator(w)
>>> scalar = ContentionSimulator(w)
>>> kernel.string_makespans(batch).tolist() == [
...     scalar.string_makespan(s) for s in batch
... ]
True
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.model.workload import Workload
from repro.schedule.backend import register_batch_network
from repro.schedule.vectorized import BatchKernel, WorkloadPack


@register_batch_network("nic")
class ContentionBatchSimulator(BatchKernel):
    """NumPy batch-evaluation kernel for the ``"nic"`` network model.

    Build once per workload, then call :meth:`makespans` with a whole
    batch of schedules — a GA population, a tabu neighborhood, a chunk
    of random samples.  Scores are bit-identical to sequential
    :meth:`~repro.extensions.contention.ContentionSimulator.makespan`
    calls (property-tested, no tolerance).  The batch API (coercion,
    validation, chunking, ``string_makespans``) is the shared
    :class:`~repro.schedule.vectorized.BatchKernel` driver; only the
    packing (``__init__``) and the walk (``_score_chunk``) live here.
    """

    __slots__ = (
        "_p",
        "_pad_out_item",
        "_pad_out_slot",
        "_pad_out_cons",
        "_out_deg",
        "_max_out",
    )

    def __init__(
        self,
        workload: Workload,
        pack: Optional[WorkloadPack] = None,
        cost_model=None,
    ):
        pack = self._bind_pack(workload, pack)
        self._cost_model = cost_model
        self._p = pack.num_items
        (
            self._pad_out_item,
            self._pad_out_slot,
            self._pad_out_cons,
            self._out_deg,
            self._max_out,
        ) = pack.out_tables()

    def _score_chunk(
        self, orders: np.ndarray, machines: np.ndarray
    ) -> np.ndarray:
        """Score one cache-sized chunk of validated schedules.

        Everything except the finish / availability / NIC / arrival
        chain is a static function of ``(orders, machines)`` and is
        precomputed in whole-batch sweeps: per-position execution
        times, in-edge finish/arrival gather indices with their
        same-machine masks, and per-out-lane transfer durations and
        arrival scatter indices.  The gathers run batch-major (each
        schedule's rows stay cache-resident); the position-major layout
        the walk wants is folded into the final ``copyto`` transposes.
        """
        k = self._k
        l = self._l
        B = orders.shape[0]
        D = self._max_deg
        Do = self._max_out
        P1 = self._tr.shape[1]  # num_items + 1 (padded Tr columns)
        P2 = self._p + 2  # arrival slots: items + pinned 0.0 + scratch
        sc = self._scratch_buffers(B)
        rows = np.arange(B, dtype=np.intp)[:, None]
        fin_size = B * (k + 1)  # finish block of the combined state

        m_all = np.take_along_axis(machines, orders, axis=1)  # (B, k)
        exec_pm = np.ascontiguousarray(self._E[m_all, orders].T)
        # flat scatter/gather indices into avail & nic (B*l) and the
        # sentinel-padded finish array (B*(k+1)); machine and NIC state
        # share the same (row, machine) addressing
        mach_idx_pm = np.ascontiguousarray((m_all + rows * l).T)
        fin_idx_pm = np.ascontiguousarray((orders + rows * (k + 1)).T)
        din_at = np.take(self._deg, orders).max(axis=0).tolist()
        dout_at = np.take(self._out_deg, orders).max(axis=0).tolist()

        rows_fin = rows[:, :, None] * (k + 1)
        rows_arr = rows[:, :, None] * P2
        machines_pad = sc["mpad"][:B]
        machines_pad[:, :k] = machines  # column k stays 0 (sentinel)
        mpad_flat = machines_pad.reshape(-1)

        lane_idx = sc["lane_idx"][:, :, :B]
        if D:
            prod_all = sc["prod"][:B]
            pf_idx = sc["pfidx"][:B]
            pm = sc["pm"][:B]
            item_all = sc["item"][:B]
            cross = sc["cross"][:B]
            np.take(self._pad_prod, orders, axis=0, out=prod_all)
            np.add(prod_all, rows_fin, out=pf_idx)
            np.take(mpad_flat, pf_idx, out=pm)
            # the scalar walk reads finish[prod] on the consumer's own
            # machine and arrival[item] across machines; sentinel lanes
            # read pinned zeros either way.  finish and arrival live in
            # ONE flat state buffer (finish block first), so the select
            # collapses into the gather index itself — one take per
            # position instead of two takes plus a masked copy
            np.not_equal(pm, m_all[:, :, None], out=cross)
            np.take(self._pad_item, orders, axis=0, out=item_all)
            np.add(item_all, rows_arr, out=item_all)
            item_all += fin_size  # shift into the arrival block
            np.copyto(pf_idx, item_all, where=cross)
            np.copyto(lane_idx, pf_idx.transpose(1, 2, 0))

        lane_dur = sc["lane_dur"][:, :, :B]
        lane_out = sc["lane_out"][:, :, :B]
        if Do:
            ocons = sc["ocons"][:B]
            oidx = sc["oidx"][:B]
            odst = sc["odst"][:B]
            oitem = sc["oitem"][:B]
            odur = sc["odur"][:B]
            oslot = sc["oslot"][:B]
            np.take(self._pad_out_cons, orders, axis=0, out=ocons)
            np.add(ocons, rows_fin, out=oidx)
            np.take(mpad_flat, oidx, out=odst)  # consumer machines
            np.take(self._pad_out_item, orders, axis=0, out=oitem)
            if self._trv_table is not None:
                # one flat gather from the tabulated (l, l, p+1) costs:
                # index = (dst*l + m)*(p+1) + item, built in place; the
                # table is symmetric and its diagonal / padding column
                # store the 0.0 of same-machine and sentinel pushes
                np.multiply(odst, l * P1, out=oidx)
                oidx += (m_all * P1)[:, :, None]
                oidx += oitem
                np.take(self._trv_table.reshape(-1), oidx, out=odur)
            else:
                odur[...] = self._tr[
                    self._pair_row[odst, m_all[:, :, None]], oitem
                ]
            np.take(self._pad_out_slot, orders, axis=0, out=oslot)
            np.add(oslot, rows_arr, out=oslot)
            np.copyto(lane_dur, odur.transpose(1, 2, 0))
            np.copyto(lane_out, oslot.transpose(1, 2, 0))
        # small and needed contiguous as take() targets -> per call
        pf_buf = np.empty((max(D, 1), B))
        push_buf = np.empty((max(Do, 1), B))

        # ---- the sequential walk: the four state vectors of the
        # scalar ContentionSimulator (machine availability, NIC-free
        # times, item arrivals, task finishes), carried per batch
        # element.  finish and arrival share one flat buffer (see the
        # combined gather index above); sentinel lanes gather/scatter
        # stored zeros and scratch slots, so no masking is needed.
        state = sc["state"][: fin_size + B * P2]
        state.fill(0.0)
        finish = state[:fin_size]
        arrival = state[fin_size:]
        avail = sc["avail"][: B * l]
        avail.fill(0.0)
        nic = sc["nic"][: B * l]
        nic.fill(0.0)
        ready = sc["ready"][:B]
        tmax = sc["tmax"][:B]
        nf = sc["nf"][:B]
        for q in range(k):
            np.take(avail, mach_idx_pm[q], out=ready)
            d = din_at[q]
            if d:
                pf = pf_buf[:d]
                np.take(state, lane_idx[q, :d], out=pf)
                pf.max(axis=0, out=tmax)
                np.maximum(ready, tmax, out=ready)
            ready += exec_pm[q]
            finish[fin_idx_pm[q]] = ready
            avail[mach_idx_pm[q]] = ready
            do = dout_at[q]
            if do:
                # eager pushes, serialised on the producer's NIC in item
                # order: the first push starts at max(fin, nf); every
                # later one starts at the running nf, which is already
                # >= fin after the first (durations are non-negative),
                # so the scalar walk's per-item max degenerates to a
                # chain of adds — computed lane by lane for bit-exact
                # float association, then scattered in one shot
                np.take(nic, mach_idx_pm[q], out=nf)
                np.maximum(nf, ready, out=nf)
                dur_q = lane_dur[q]
                pushes = push_buf[:do]
                np.add(nf, dur_q[0], out=pushes[0])
                for j in range(1, do):
                    np.add(pushes[j - 1], dur_q[j], out=pushes[j])
                # duplicate indices only hit the write-scratch slot
                # (sentinel lanes), which is never read back
                arrival[lane_out[q, :do]] = pushes
                nic[mach_idx_pm[q]] = pushes[do - 1]
        # every subtask finishes on some machine and per-machine finish
        # times only grow, so the final availability row holds each
        # machine's last finish — its max is exactly the makespan (all
        # transfers complete before their consumers start, so none can
        # outlive the last finish)
        return avail.reshape(B, l).max(axis=1)

    def _scratch_buffers(self, batch_rows: int) -> dict:
        """Reusable per-instance scratch, sized for ``chunk_size`` rows.

        Rebuilt only if ``chunk_size`` grew since allocation; keeping
        the buffers alive across calls avoids multi-megabyte
        allocations (and their page faults) in every batch.  This is
        what makes instances not thread-safe.
        """
        C = max(self.chunk_size, batch_rows)
        sc = self._scratch
        if sc is not None and sc["capacity"] >= C:
            return sc
        k = self._k
        l = self._l
        D = max(self._max_deg, 1)
        Do = max(self._max_out, 1)
        P2 = self._p + 2
        self._scratch = sc = {
            "capacity": C,
            "prod": np.empty((C, k, D), dtype=np.intp),
            "pfidx": np.empty((C, k, D), dtype=np.intp),
            "pm": np.empty((C, k, D), dtype=np.intp),
            "item": np.empty((C, k, D), dtype=np.intp),
            "cross": np.empty((C, k, D), dtype=bool),
            "mpad": np.zeros((C, k + 1), dtype=np.intp),
            "lane_idx": np.empty((k, D, C), dtype=np.intp),
            "ocons": np.empty((C, k, Do), dtype=np.intp),
            "oidx": np.empty((C, k, Do), dtype=np.intp),
            "odst": np.empty((C, k, Do), dtype=np.intp),
            "oitem": np.empty((C, k, Do), dtype=np.intp),
            "odur": np.empty((C, k, Do)),
            "oslot": np.empty((C, k, Do), dtype=np.intp),
            "lane_dur": np.empty((k, Do, C)),
            "lane_out": np.empty((k, Do, C), dtype=np.intp),
            "state": np.empty(C * (k + 1) + C * P2),
            "avail": np.empty(C * l),
            "nic": np.empty(C * l),
            "ready": np.empty(C),
            "tmax": np.empty(C),
            "nf": np.empty(C),
        }
        return sc
