"""Validity-preserving random operations on schedule strings.

These are the shared mutation primitives: the SE initial-solution
generator perturbs a topological string with :func:`random_valid_move`
(paper §4.2), the GA's scheduling mutation uses the same move, and the
random-search baseline composes both move kinds.  Every operation keeps
the string a valid solution — the closure property tested in
``tests/schedule/test_operations.py``.
"""

from __future__ import annotations

import numpy as np

from repro.model.graph import TaskGraph
from repro.schedule.encoding import ScheduleString
from repro.schedule.valid_range import valid_insertion_range
from repro.utils.rng import RandomSource, as_rng


def random_valid_move(
    string: ScheduleString,
    graph: TaskGraph,
    rng: np.random.Generator,
    task: int | None = None,
) -> int:
    """Move one subtask to a uniformly random position in its valid range.

    Mutates *string* in place and returns the moved subtask's id.  If
    *task* is ``None`` a subtask is picked uniformly at random.
    """
    if task is None:
        task = int(rng.integers(string.num_tasks))
    lo, hi = valid_insertion_range(string, graph, task)
    string.move(task, int(rng.integers(lo, hi + 1)))
    return task


def random_reassign(
    string: ScheduleString,
    rng: np.random.Generator,
    task: int | None = None,
) -> int:
    """Reassign one subtask to a uniformly random machine (in place).

    Returns the reassigned subtask's id.  The new machine may equal the
    old one — matching the uniform reassignment used by the GA's matching
    mutation.
    """
    if task is None:
        task = int(rng.integers(string.num_tasks))
    string.assign(task, int(rng.integers(string.num_machines)))
    return task


def random_topological_order(
    graph: TaskGraph, rng: np.random.Generator
) -> list[int]:
    """A uniformly-randomised (tie-broken) Kahn topological order."""
    k = graph.num_tasks
    indeg = [len(graph.predecessors(t)) for t in range(k)]
    ready = [t for t in range(k) if indeg[t] == 0]
    order: list[int] = []
    while ready:
        idx = int(rng.integers(len(ready)))
        ready[idx], ready[-1] = ready[-1], ready[idx]
        t = ready.pop()
        order.append(t)
        for s in graph.successors(t):
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)
    if len(order) != k:  # pragma: no cover - graph is validated acyclic
        raise RuntimeError("cycle encountered in a validated DAG")
    return order


def random_valid_string(
    graph: TaskGraph,
    num_machines: int,
    source: RandomSource = None,
) -> ScheduleString:
    """A uniformly random valid string: random topo order, random machines.

    This is the sampling primitive of the random-search baseline and of
    the property-based tests.
    """
    rng = as_rng(source)
    order = random_topological_order(graph, rng)
    machine_of = [int(m) for m in rng.integers(num_machines, size=graph.num_tasks)]
    return ScheduleString(order, machine_of, num_machines)


def shuffle_string(
    string: ScheduleString,
    graph: TaskGraph,
    rng: np.random.Generator,
    num_moves: int,
) -> None:
    """Apply *num_moves* random valid moves in place (paper §4.2).

    The paper's initial-solution generator modifies the topologically
    sorted string "a random number of times"; the SE initialiser calls
    this with a randomised count.
    """
    if num_moves < 0:
        raise ValueError(f"num_moves must be >= 0, got {num_moves}")
    for _ in range(num_moves):
        random_valid_move(string, graph, rng)
