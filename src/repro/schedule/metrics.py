"""Schedule quality metrics beyond the raw makespan.

The paper reports only schedule length; these extras (utilisation,
communication volume, critical-path bounds, speedup) support the analysis
harness and give downstream users the usual vocabulary of the DAG
scheduling literature (cf. Braun et al. [4], Topcuoglu et al. [5]).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.workload import Workload
from repro.schedule.simulator import Schedule
from repro.schedule.timeline import Timeline


def communication_volume(workload: Workload, schedule: Schedule) -> float:
    """Total transfer time actually paid by *schedule*.

    Sum of ``Tr`` entries over data items whose producer and consumer run
    on different machines (same-machine items are free).
    """
    total = 0.0
    for d in workload.graph.data_items:
        pm = schedule.machine_of[d.producer]
        cm = schedule.machine_of[d.consumer]
        total += workload.comm_time(pm, cm, d.index)
    return total


def critical_path_lower_bound(workload: Workload) -> float:
    """A makespan lower bound: longest path with best-case times.

    Each subtask contributes its *fastest* execution time and each edge
    contributes zero communication (the producer and consumer could share
    a machine).  No schedule can beat this.
    """
    graph = workload.graph
    e = workload.exec_times
    longest = [0.0] * graph.num_tasks
    for t in graph.topological_order():
        best = e.best_time(t)
        incoming = 0.0
        for p in graph.predecessors(t):
            if longest[p] > incoming:
                incoming = longest[p]
        longest[t] = incoming + best
    return max(longest)


def machine_load_lower_bound(workload: Workload) -> float:
    """A second lower bound: total best-case work / number of machines."""
    total = sum(
        workload.exec_times.best_time(t) for t in range(workload.num_tasks)
    )
    return total / workload.num_machines


def makespan_lower_bound(workload: Workload) -> float:
    """The tighter of the critical-path and machine-load bounds."""
    return max(
        critical_path_lower_bound(workload),
        machine_load_lower_bound(workload),
    )


def normalized_makespan(workload: Workload, makespan: float) -> float:
    """Makespan divided by its lower bound (>= 1; 1 would be ideal).

    This is the Schedule Length Ratio (SLR) of the heterogeneous
    scheduling literature, handy for comparing across workloads.
    """
    lb = makespan_lower_bound(workload)
    if lb <= 0:
        raise ValueError("workload has a non-positive makespan lower bound")
    return makespan / lb


def serial_speedup(workload: Workload, makespan: float) -> float:
    """Best-machine serial time divided by the schedule's makespan."""
    if makespan <= 0:
        raise ValueError(f"makespan must be > 0, got {makespan}")
    return workload.serial_time_best() / makespan


@dataclass(frozen=True)
class ScheduleMetrics:
    """A bundle of quality measures for one schedule."""

    makespan: float
    normalized_makespan: float
    speedup: float
    mean_utilization: float
    communication_volume: float

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        return "\n".join(
            [
                f"makespan              {self.makespan:.2f}",
                f"normalized makespan   {self.normalized_makespan:.3f} (1.0 = lower bound)",
                f"speedup vs serial     {self.speedup:.2f}x",
                f"mean utilization      {self.mean_utilization:.1%}",
                f"communication volume  {self.communication_volume:.2f}",
            ]
        )


def compute_metrics(workload: Workload, schedule: Schedule) -> ScheduleMetrics:
    """Evaluate all bundled metrics for *schedule*."""
    tl = Timeline(schedule, workload.num_machines)
    return ScheduleMetrics(
        makespan=schedule.makespan,
        normalized_makespan=normalized_makespan(workload, schedule.makespan),
        speedup=serial_speedup(workload, schedule.makespan),
        mean_utilization=tl.mean_utilization(),
        communication_volume=communication_volume(workload, schedule),
    )
