"""Valid moving range of a subtask within a string (paper §4.2, §4.5).

The *valid range* of subtask ``t`` is the set of string positions where
``t`` can be placed without violating any data dependency: strictly after
its last-placed predecessor and no later than its first-placed successor.
Because moving ``t`` inside that window leaves the relative order of all
other subtasks untouched, a valid string stays valid under any such move —
this closure property is what both the SE allocation step and the GA
scheduling mutation rely on, and it is enforced by property tests.

Indexing convention: positions refer to the string *with the subtask
removed* (``0..k-2`` hold the other subtasks; an insertion index ``i``
places the subtask at absolute position ``i`` of the resulting string).
This matches :meth:`repro.schedule.encoding.ScheduleString.move`.
"""

from __future__ import annotations

from typing import Tuple

from repro.model.graph import TaskGraph
from repro.schedule.encoding import ScheduleString


def valid_insertion_range(
    string: ScheduleString, graph: TaskGraph, task: int
) -> Tuple[int, int]:
    """Inclusive ``(lo, hi)`` insertion-index bounds for *task*.

    ``lo`` is one past the last predecessor's position in the
    string-without-*task*; ``hi`` is the first successor's position in
    the string-without-*task* (inserting there pushes the successor
    right).  With no predecessors ``lo = 0``; with no successors
    ``hi = k-1``.

    For any valid string, ``lo <= hi`` always holds and the current
    position of *task* lies within the returned window.
    """
    k = string.num_tasks
    own = string.position_of(task)

    lo = 0
    for pred in graph.predecessors(task):
        pos = string.position_of(pred)
        # remove-shift: predecessors sit left of `task` in a valid string
        if pos > own:
            pos -= 1
        if pos + 1 > lo:
            lo = pos + 1

    hi = k - 1
    for succ in graph.successors(task):
        pos = string.position_of(succ)
        if pos > own:
            pos -= 1
        if pos < hi:
            hi = pos

    return lo, hi


def range_width(string: ScheduleString, graph: TaskGraph, task: int) -> int:
    """Number of valid insertion indices for *task* (always >= 1)."""
    lo, hi = valid_insertion_range(string, graph, task)
    return hi - lo + 1


def assert_in_valid_range(
    string: ScheduleString, graph: TaskGraph, task: int, insertion_index: int
) -> None:
    """Raise ``ValueError`` if the proposed move would break a dependency."""
    lo, hi = valid_insertion_range(string, graph, task)
    if not lo <= insertion_index <= hi:
        raise ValueError(
            f"insertion index {insertion_index} for subtask {task} outside "
            f"its valid range [{lo}, {hi}]"
        )


def machine_slot_indices(
    string: ScheduleString,
    graph: TaskGraph,
    task: int,
    machine: int,
) -> list[int]:
    """Representative insertion indices for placing *task* on *machine*.

    Within the valid window, two insertion indices produce the same
    schedule whenever the set of same-machine subtasks to the left is the
    same — the simulator only looks at per-machine order.  This helper
    returns one representative per equivalence class: the window start,
    plus the index just after each subtask of *machine* inside the window.

    Using these instead of every index in ``[lo, hi]`` is the slot
    optimisation discussed in DESIGN.md (ABL-SLOT); the result set of
    reachable schedules is identical.
    """
    lo, hi = valid_insertion_range(string, graph, task)
    own = string.position_of(task)
    machines = string.machines
    order = string.order

    slots = [lo]
    # Walk absolute positions of the string-without-task covering [lo, hi).
    for idx in range(lo, hi):
        abs_pos = idx if idx < own else idx + 1
        other = order[abs_pos]
        if machines[other] == machine:
            slots.append(idx + 1)
    return slots
