"""The combined matching + scheduling string encoding (paper §4.1).

A solution is a string of ``k`` segments, each pairing a subtask with a
machine.  Reading left to right, the subtasks assigned to the same machine
execute on it in string order.  The paper's novelty over Wang et al. [3]
is combining the *matching* string and the *scheduling* string into one.

:class:`ScheduleString` is deliberately **mutable**: the SE allocation
step performs thousands of relocate-evaluate-revert probes per iteration,
so the representation keeps three mutually consistent views —

* ``order``       — the subtask permutation (string left to right),
* ``machine_of``  — per-subtask machine assignment,
* ``position_of`` — inverse of ``order`` for O(1) lookups —

and updates them in place.  Structural validity against a DAG is a
*separate* concern (see :func:`is_valid_for` and
:mod:`repro.schedule.valid_range`): a string object itself only guarantees
that it is a permutation with in-range machine ids.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

from repro.model.graph import TaskGraph

Pair = Tuple[int, int]


class ScheduleString:
    """A string of ``(subtask, machine)`` segments.

    Parameters
    ----------
    order:
        Permutation of ``0..k-1`` giving the left-to-right subtask order.
    machine_of:
        ``machine_of[t]`` is the machine assigned to subtask ``t``.
    num_machines:
        ``l``; machine ids must lie in ``[0, l)``.
    """

    __slots__ = ("_order", "_machine_of", "_pos_of", "_l")

    def __init__(
        self,
        order: Sequence[int],
        machine_of: Sequence[int],
        num_machines: int,
    ):
        k = len(order)
        if sorted(order) != list(range(k)):
            raise ValueError(
                "order must be a permutation of 0..k-1; got a sequence of "
                f"length {k} that is not"
            )
        if len(machine_of) != k:
            raise ValueError(
                f"machine_of has length {len(machine_of)}, expected k={k}"
            )
        if num_machines <= 0:
            raise ValueError(f"num_machines must be > 0, got {num_machines}")
        for t, m in enumerate(machine_of):
            if not 0 <= m < num_machines:
                raise ValueError(
                    f"machine {m} of subtask {t} out of range [0, {num_machines})"
                )
        self._order = list(order)
        self._machine_of = list(machine_of)
        self._l = num_machines
        self._pos_of = [0] * k
        for pos, t in enumerate(self._order):
            self._pos_of[t] = pos

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[Pair], num_machines: int
    ) -> "ScheduleString":
        """Build from ``(subtask, machine)`` segments, left to right."""
        pair_list = list(pairs)
        order = [t for t, _ in pair_list]
        machine_of = [0] * len(pair_list)
        for t, m in pair_list:
            if not 0 <= t < len(pair_list):
                raise ValueError(
                    f"subtask id {t} out of range for k={len(pair_list)}"
                )
            machine_of[t] = m
        return cls(order, machine_of, num_machines)

    def copy(self) -> "ScheduleString":
        """An independent deep copy."""
        new = object.__new__(ScheduleString)
        new._order = self._order.copy()
        new._machine_of = self._machine_of.copy()
        new._pos_of = self._pos_of.copy()
        new._l = self._l
        return new

    # ------------------------------------------------------------------
    # read access
    # ------------------------------------------------------------------

    @property
    def num_tasks(self) -> int:
        return len(self._order)

    @property
    def num_machines(self) -> int:
        return self._l

    @property
    def order(self) -> list[int]:
        """The subtask permutation (a direct, *live* reference — do not
        mutate; exposed for the simulator's hot loop)."""
        return self._order

    @property
    def machines(self) -> list[int]:
        """Per-subtask machine ids (live reference — do not mutate)."""
        return self._machine_of

    def pairs(self) -> tuple[Pair, ...]:
        """The segments ``(subtask, machine)`` left to right (a snapshot)."""
        return tuple((t, self._machine_of[t]) for t in self._order)

    def machine_of(self, task: int) -> int:
        return self._machine_of[task]

    def position_of(self, task: int) -> int:
        return self._pos_of[task]

    def task_at(self, position: int) -> int:
        return self._order[position]

    def machine_sequence(self, machine: int) -> list[int]:
        """Subtasks assigned to *machine*, in execution (string) order."""
        return [t for t in self._order if self._machine_of[t] == machine]

    def __iter__(self) -> Iterator[Pair]:
        return iter(self.pairs())

    def __len__(self) -> int:
        return len(self._order)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScheduleString):
            return NotImplemented
        return (
            self._l == other._l
            and self._order == other._order
            and self._machine_of == other._machine_of
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        head = " ".join(
            f"s{t}m{self._machine_of[t]}" for t in self._order[:8]
        )
        tail = " ..." if len(self._order) > 8 else ""
        return f"ScheduleString[{head}{tail}]"

    # ------------------------------------------------------------------
    # mutation (the SE / GA operators)
    # ------------------------------------------------------------------

    def assign(self, task: int, machine: int) -> None:
        """Reassign *task* to *machine*, keeping its string position."""
        if not 0 <= machine < self._l:
            raise ValueError(
                f"machine {machine} out of range [0, {self._l})"
            )
        self._machine_of[task] = machine

    def move(self, task: int, insertion_index: int) -> None:
        """Move *task* to *insertion_index* of the string-without-it.

        ``insertion_index`` counts positions in the string after *task*
        has been removed (``0..k-1``); the task ends up at that absolute
        position in the resulting string.  This matches the indexing of
        :func:`repro.schedule.valid_range.valid_insertion_range`.
        """
        k = len(self._order)
        if not 0 <= insertion_index < k:
            raise IndexError(
                f"insertion index {insertion_index} out of range [0, {k})"
            )
        old = self._pos_of[task]
        if insertion_index == old:
            return
        self._order.pop(old)
        self._order.insert(insertion_index, task)
        lo = min(old, insertion_index)
        hi = max(old, insertion_index)
        for pos in range(lo, hi + 1):
            self._pos_of[self._order[pos]] = pos

    def relocate(self, task: int, insertion_index: int, machine: int) -> None:
        """Move *task* and reassign its machine in one step (SE allocation)."""
        self.assign(task, machine)
        self.move(task, insertion_index)


def is_valid_for(string: ScheduleString, graph: TaskGraph) -> bool:
    """True iff *string* is a valid solution for *graph* (paper §4.1).

    Validity = the subtask order is a topological order of the DAG (then
    per-machine order is automatically dependency-safe) and sizes agree.
    """
    if string.num_tasks != graph.num_tasks:
        return False
    return graph.is_valid_order(string.order)


def topological_string(
    graph: TaskGraph, machine_of: Sequence[int], num_machines: int
) -> ScheduleString:
    """A valid string placing tasks in the graph's topological order."""
    return ScheduleString(graph.topological_order(), machine_of, num_machines)
