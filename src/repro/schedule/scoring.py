"""Multi-metric schedule scoring: (makespan, dollar cost, busy time).

Every simulator in this repo historically returned one number — the
makespan.  The platform axis (:mod:`repro.model.platform`) adds a
second objective, dollar cost, and this module owns its arithmetic:

* :class:`ScheduleScore` — one schedule's ``(makespan, cost, busy)``
  triple, returned by ``score`` / ``string_score`` on the scalar
  simulators;
* :class:`BatchScores` — the batch tier's column-wise equivalent: one
  makespan array and one cost array per batch;
* :class:`CostModel` — the per-task billing table.  Cost is per-task:
  ``sum over tasks of price[machine_of[task]] * E[machine_of[task]][task]``
  — you pay for the busy time your tasks occupy, not for the makespan.
  That makes cost a function of the *matching string alone* (it does
  not depend on the order or on communication waits), which is what
  lets the batch tier compute a whole batch's costs in a single fancy
  gather + row sum instead of walking schedules.

The zero model (all prices 0) is what uniform-platform simulators carry
implicitly: ``score`` degrades to ``(makespan, 0.0, busy)``.

>>> import numpy as np
>>> E = np.array([[2.0, 4.0], [1.0, 1.0]])
>>> cm = CostModel(E, [0.1, 1.0])
>>> cm.cost([0, 0])  # both tasks on the cheap machine
0.6000000000000001
>>> cm.cost([1, 1])  # both on the expensive one
2.0
>>> cm.batch_costs(np.array([[0, 0], [1, 1]])).tolist()
[0.6000000000000001, 2.0]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["ScheduleScore", "BatchScores", "CostModel"]


@dataclass(frozen=True)
class ScheduleScore:
    """One schedule's multi-metric score.

    Attributes
    ----------
    makespan:
        The schedule's completion time (the paper's single objective).
    cost:
        Dollar cost under the platform's per-task billing; 0.0 on the
        uniform platform.
    busy:
        Per-machine busy time (sum of execution times placed on each
        machine) — the utilisation column of the cost study.
    """

    makespan: float
    cost: float
    busy: tuple[float, ...]

    @property
    def point(self) -> tuple[float, float]:
        """The ``(makespan, cost)`` objective point, for Pareto fronts."""
        return (self.makespan, self.cost)


@dataclass(frozen=True)
class BatchScores:
    """Column-wise scores of one schedule batch (the batch tier's
    :class:`ScheduleScore`): ``makespans[i]`` / ``costs[i]`` belong to
    schedule ``i``.  Busy time stays per-schedule on demand — batches
    exist for objective scans, not utilisation reports."""

    makespans: np.ndarray
    costs: np.ndarray

    def __len__(self) -> int:
        return len(self.makespans)


class CostModel:
    """Per-task billing table for one (execution times, prices) pair.

    Parameters
    ----------
    exec_times:
        The ``(l, k)`` execution-time matrix cost is billed against —
        the *platform-scaled* matrix when one applies.
    prices:
        Per-machine dollar rate, length ``l``.  All-zero rates give the
        zero model of the uniform platform.
    """

    __slots__ = ("_E", "_task_cost", "_prices", "_l", "_k")

    def __init__(
        self, exec_times: np.ndarray, prices: Sequence[float]
    ):
        E = np.asarray(exec_times, dtype=float)
        if E.ndim != 2:
            raise ValueError(f"exec_times must be 2-D, got {E.ndim}-D")
        p = np.asarray(prices, dtype=float).reshape(-1)
        if p.shape[0] != E.shape[0]:
            raise ValueError(
                f"{p.shape[0]} prices for {E.shape[0]} machines"
            )
        if not np.all(np.isfinite(p)) or np.any(p < 0):
            raise ValueError("prices must be finite and >= 0")
        self._l, self._k = E.shape
        self._E = E
        #: (l, k): dollars charged if task t runs on machine m
        self._task_cost = E * p[:, None]
        self._task_cost.setflags(write=False)
        self._prices = p
        self._prices.setflags(write=False)

    @classmethod
    def zero(cls, exec_times: np.ndarray) -> "CostModel":
        """The free model: busy times computed, every cost 0.0."""
        E = np.asarray(exec_times, dtype=float)
        return cls(E, np.zeros(E.shape[0]))

    @property
    def prices(self) -> np.ndarray:
        return self._prices

    @property
    def is_free(self) -> bool:
        """True when every rate is zero (the uniform platform)."""
        return not self._prices.any()

    # ------------------------------------------------------------------
    # scalar tier
    # ------------------------------------------------------------------

    def cost(self, machine_of: Sequence[int]) -> float:
        """Dollar cost of running under assignment *machine_of*."""
        m = np.asarray(machine_of, dtype=np.intp)
        return float(self._task_cost[m, np.arange(self._k)].sum())

    def busy_times(self, machine_of: Sequence[int]) -> tuple[float, ...]:
        """Per-machine busy time under assignment *machine_of*."""
        m = np.asarray(machine_of, dtype=np.intp)
        exec_of = self._E[m, np.arange(self._k)]
        return tuple(
            np.bincount(m, weights=exec_of, minlength=self._l).tolist()
        )

    def score(
        self, machine_of: Sequence[int], makespan: float
    ) -> ScheduleScore:
        """Assemble the full :class:`ScheduleScore` for one schedule."""
        return ScheduleScore(
            makespan=float(makespan),
            cost=self.cost(machine_of),
            busy=self.busy_times(machine_of),
        )

    # ------------------------------------------------------------------
    # batch tier
    # ------------------------------------------------------------------

    def batch_costs(self, machines: np.ndarray) -> np.ndarray:
        """Vectorized cost of a ``(B, k)`` machine-assignment batch.

        One fancy gather into the ``(l, k)`` per-task billing table plus
        a row sum — no per-schedule Python loop.
        """
        m = np.asarray(machines, dtype=np.intp)
        if m.ndim != 2 or m.shape[1] != self._k:
            raise ValueError(
                f"machines must be (B, {self._k}), got {m.shape}"
            )
        return self._task_cost[m, np.arange(self._k)].sum(axis=1)
