"""Schedule representation and evaluation.

* :class:`ScheduleString` — the paper's combined matching+scheduling
  string (§4.1);
* :mod:`~repro.schedule.valid_range` — dependency-safe moving windows;
* :class:`Simulator` — the deterministic cost model (string → makespan);
* :mod:`~repro.schedule.backend` — pluggable simulator backends keyed
  by network-model name (``"contention-free"`` | ``"nic"`` | custom);
* :class:`BatchSimulator` / :class:`BatchBackend` — the vectorized
  batch-evaluation tier (``make_simulator(..., batch=True)``);
* :class:`Timeline` / :func:`verify_schedule` — Gantt views and full
  constraint checking;
* :mod:`~repro.schedule.metrics` — SLR, speedup, utilisation, comm volume;
* :mod:`~repro.schedule.operations` — validity-preserving random moves.
"""

from repro.schedule.backend import (
    DEFAULT_NETWORK,
    DEFAULT_PLATFORM,
    NIC_NETWORK,
    SimulatorBackend,
    available_networks,
    available_platforms,
    make_simulator,
    plain_schedule,
    platform_cost_vectorized,
    platform_state,
    register_batch_network,
    register_network,
    register_platform,
    resolve_platform,
)
from repro.schedule.encoding import (
    ScheduleString,
    is_valid_for,
    topological_string,
)
from repro.schedule.metrics import (
    ScheduleMetrics,
    communication_volume,
    compute_metrics,
    critical_path_lower_bound,
    machine_load_lower_bound,
    makespan_lower_bound,
    normalized_makespan,
    serial_speedup,
)
from repro.schedule.operations import (
    random_reassign,
    random_topological_order,
    random_valid_move,
    random_valid_string,
    shuffle_string,
)
from repro.schedule.scoring import BatchScores, CostModel, ScheduleScore
from repro.schedule.simulator import (
    DeltaState,
    InvalidScheduleError,
    Schedule,
    Simulator,
    evaluate_schedule,
)
from repro.schedule.timeline import MachineSpan, Timeline, verify_schedule
from repro.schedule.vectorized import (
    BatchBackend,
    BatchSimulator,
    SequentialBatchKernel,
)
from repro.schedule.valid_range import (
    assert_in_valid_range,
    machine_slot_indices,
    range_width,
    valid_insertion_range,
)

__all__ = [
    "DEFAULT_NETWORK",
    "DEFAULT_PLATFORM",
    "NIC_NETWORK",
    "SimulatorBackend",
    "available_networks",
    "available_platforms",
    "make_simulator",
    "plain_schedule",
    "platform_cost_vectorized",
    "platform_state",
    "register_batch_network",
    "register_network",
    "register_platform",
    "resolve_platform",
    "BatchScores",
    "CostModel",
    "ScheduleScore",
    "BatchBackend",
    "BatchSimulator",
    "SequentialBatchKernel",
    "ScheduleString",
    "is_valid_for",
    "topological_string",
    "ScheduleMetrics",
    "communication_volume",
    "compute_metrics",
    "critical_path_lower_bound",
    "machine_load_lower_bound",
    "makespan_lower_bound",
    "normalized_makespan",
    "serial_speedup",
    "random_reassign",
    "random_topological_order",
    "random_valid_move",
    "random_valid_string",
    "shuffle_string",
    "DeltaState",
    "InvalidScheduleError",
    "Schedule",
    "Simulator",
    "evaluate_schedule",
    "MachineSpan",
    "Timeline",
    "verify_schedule",
    "assert_in_valid_range",
    "machine_slot_indices",
    "range_width",
    "valid_insertion_range",
]
