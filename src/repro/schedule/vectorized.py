"""Vectorized batch evaluation: score many schedules in NumPy sweeps.

Every search algorithm in the library asks the same question many times
per iteration: *what is the makespan of this candidate string?*  The GA
scores a whole population per generation, random search scores a stream
of independent samples, and the SE allocation step scores every
(machine, slot) probe of a selected subtask.  The scalar
:class:`~repro.schedule.simulator.Simulator` answers one string at a
time in a Python loop; :class:`BatchSimulator` answers a whole batch at
once by turning the per-position walk into NumPy sweeps across the
batch dimension.

Kernel layout (packed once per workload)
----------------------------------------

* ``E``   — the ``(l, k)`` execution-time matrix, C-contiguous float64;
* ``Tr``  — the ``(l(l-1)/2, p)`` transfer-time matrix (padded to at
  least ``(1, 1)`` so masked gathers never index an empty array);
* the DAG's in-edges in **padded CSR** form: ``deg[t]`` (in-degree) and
  ``pad_prod[t, j]`` / ``pad_item[t, j]`` (producer and data-item of
  task ``t``'s ``j``-th input) — shape ``(k, D)`` with ``D`` the
  maximum in-degree.  Lanes past ``deg[t]`` hold a *sentinel* edge
  (producer ``k``, item ``p``) that reads a permanently-zero finish
  time and a permanently-zero transfer column, so no mask arithmetic is
  needed in the hot loop;
* ``pair_row[a, b]`` — an ``(l, l)`` lookup table for the
  upper-triangular ``Tr`` row of a machine pair; its diagonal points at
  an all-zero padding row of ``Tr``, so a same-machine transfer gathers
  a stored 0.0 instead of branching;
* ``edge_prod`` / ``edge_cons`` — flat producer/consumer arrays used by
  the vectorized precedence validation.

Evaluation walks string positions ``0..k-1`` exactly like the scalar
simulator (the per-machine availability chain is inherently
sequential), but at each position the whole batch advances in ~15 NumPy
operations on ``(B,)`` / ``(B, D)`` arrays instead of ``B`` Python
loop bodies.  All arithmetic (one addition per crossing transfer, one
addition per execution time, maxima elsewhere) is performed with the
same operands as the scalar walk, so results are **bit-identical** to
:meth:`Simulator.makespan` — a property enforced by
``tests/properties/test_batch_properties.py``.

>>> import numpy as np
>>> from repro.schedule.operations import random_valid_string
>>> from repro.schedule.simulator import Simulator
>>> from repro.workloads import small_workload
>>> w = small_workload(seed=3)
>>> batch = [random_valid_string(w.graph, w.num_machines, s) for s in range(4)]
>>> kernel = BatchSimulator(w)
>>> got = kernel.string_makespans(batch)
>>> scalar = Simulator(w)
>>> got.tolist() == [scalar.string_makespan(s) for s in batch]
True
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.model.workload import Workload
from repro.schedule.backend import register_batch_network
from repro.schedule.encoding import ScheduleString
from repro.schedule.simulator import InvalidScheduleError


def _as_index_matrix(rows: Any, k: int, name: str) -> np.ndarray:
    """*rows* as a C-contiguous ``(B, k)`` integer array."""
    arr = np.ascontiguousarray(rows, dtype=np.intp)
    if arr.ndim == 1 and arr.size == 0:
        arr = arr.reshape(0, k)
    if arr.ndim != 2 or arr.shape[1] != k:
        raise ValueError(
            f"{name} must have shape (batch, {k}), got {arr.shape}"
        )
    return arr


@register_batch_network("contention-free")
class BatchSimulator:
    """NumPy batch-evaluation kernel for the contention-free model.

    Build once per workload (packing cost is one pass over the DAG),
    then call :meth:`makespans` with a whole batch of schedules — a GA
    population, one SE generation's trial moves, a chunk of random
    samples.  Scores are bit-identical to sequential
    :meth:`~repro.schedule.simulator.Simulator.makespan` calls.
    """

    #: True for a real vectorized kernel; the scalar fallback says False.
    is_vectorized = True

    #: Rows scored per internal chunk: large enough to amortize NumPy
    #: dispatch overhead, small enough that the precomputed walk tables
    #: stay cache-resident (measured sweet spot on paper-scale graphs).
    chunk_size = 128

    __slots__ = (
        "_workload",
        "_k",
        "_l",
        "_E",
        "_tr",
        "_deg",
        "_pad_prod",
        "_pad_item",
        "_max_deg",
        "_pair_row",
        "_trv_table",
        "_edge_prod",
        "_edge_cons",
        "_scratch",
    )

    def __init__(self, workload: Workload):
        self._workload = workload
        graph = workload.graph
        k = self._k = graph.num_tasks
        l = self._l = workload.num_machines
        self._E = np.ascontiguousarray(workload.exec_times.values)

        # Tr padded with one all-zero column (the sentinel data item
        # that unused lanes read) and one all-zero row (the "row" of a
        # same-machine pair), so zero-cost cases need no mask arithmetic
        # at all: they simply gather a stored 0.0.
        tr = workload.transfer_times.values
        num_rows, num_items = tr.shape
        tr_pad = np.zeros((num_rows + 1, num_items + 1))
        if tr.size:
            tr_pad[:num_rows, :num_items] = tr
        self._tr = tr_pad

        # (l, l) lookup table: upper-triangular Tr row of a machine
        # pair; the diagonal points at the all-zero padding row.
        pair_row = np.full((l, l), num_rows, dtype=np.intp)
        for a in range(l):
            for b in range(a + 1, l):
                pair_row[a, b] = pair_row[b, a] = (
                    a * l - a * (a + 1) // 2 + (b - a - 1)
                )
        self._pair_row = pair_row
        # Fully tabulated transfer cost T[a, b, item] — collapses the
        # pair_row + Tr double gather into one — unless the table would
        # be unreasonably large (big machine counts / item counts).
        if l * l * (num_items + 1) <= 4_000_000:
            self._trv_table = np.ascontiguousarray(tr_pad[pair_row])
        else:
            self._trv_table = None

        items = graph.data_items
        in_edges: list[list[tuple[int, int]]] = [[] for _ in range(k)]
        for d in items:
            in_edges[d.consumer].append((d.producer, d.index))
        deg = np.array([len(es) for es in in_edges], dtype=np.intp)
        D = self._max_deg = int(deg.max()) if k else 0
        # Sentinel lanes: producer k (a virtual task whose finish time is
        # pinned at 0.0) and item num_items (the zero Tr column above).
        pad_prod = np.full((k, max(D, 1)), k, dtype=np.intp)
        pad_item = np.full((k, max(D, 1)), num_items, dtype=np.intp)
        for t, es in enumerate(in_edges):
            for j, (prod, item) in enumerate(es):
                pad_prod[t, j] = prod
                pad_item[t, j] = item
        self._deg = deg
        self._pad_prod = pad_prod
        self._pad_item = pad_item
        self._edge_prod = np.array(
            [d.producer for d in items], dtype=np.intp
        )
        self._edge_cons = np.array(
            [d.consumer for d in items], dtype=np.intp
        )
        # chunk-sized scratch buffers, allocated lazily on first use and
        # reused across calls (fresh multi-MB allocations would pay page
        # faults every batch); makes instances NOT thread-safe
        self._scratch: Optional[dict] = None

    @property
    def workload(self) -> Workload:
        return self._workload

    @property
    def num_tasks(self) -> int:
        return self._k

    @property
    def num_machines(self) -> int:
        return self._l

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def validate_batch(
        self, orders: np.ndarray, machines: np.ndarray
    ) -> None:
        """Raise unless every row encodes a valid schedule.

        Checks (all vectorized): each order is a permutation of
        ``0..k-1``, every machine id is in range, and every data item's
        producer precedes its consumer.  Mirrors the scalar simulator's
        :class:`~repro.schedule.simulator.InvalidScheduleError` for
        precedence violations.
        """
        k = self._k
        if not (
            np.sort(orders, axis=1) == np.arange(k, dtype=np.intp)
        ).all():
            raise InvalidScheduleError(
                "batch contains an order that is not a permutation of "
                f"0..{k - 1}"
            )
        if machines.size and (
            machines.min() < 0 or machines.max() >= self._l
        ):
            raise ValueError(
                f"batch contains machine ids outside [0, {self._l})"
            )
        if self._edge_prod.size:
            pos = np.empty_like(orders)
            np.put_along_axis(
                pos, orders, np.arange(k, dtype=np.intp)[None, :], axis=1
            )
            ok = pos[:, self._edge_prod] < pos[:, self._edge_cons]
            if not ok.all():
                b, e = np.argwhere(~ok)[0]
                raise InvalidScheduleError(
                    f"schedule {b}: subtask {self._edge_cons[e]} scheduled "
                    f"before its producer {self._edge_prod[e]}"
                )

    # ------------------------------------------------------------------
    # hot path
    # ------------------------------------------------------------------

    def makespans(
        self,
        orders: Any,
        machines: Any,
        validate: bool = True,
    ) -> np.ndarray:
        """Makespan of every schedule in the batch, as a ``(B,)`` array.

        Parameters
        ----------
        orders:
            ``(B, k)`` array-like; row ``b`` is schedule ``b``'s subtask
            permutation (string left to right).
        machines:
            ``(B, k)`` array-like; ``machines[b, t]`` is the machine
            assigned to subtask ``t`` in schedule ``b`` (indexed by
            subtask id, exactly like ``ScheduleString.machines``).
        validate:
            Check permutations / machine ranges / precedence first.
            Callers that construct provably valid batches (the SE
            allocator's in-range relocations) may pass ``False``.

        Returns the same floats, bit for bit, as a sequential loop of
        ``Simulator.makespan`` calls over the rows.
        """
        k = self._k
        orders = _as_index_matrix(orders, k, "orders")
        machines = _as_index_matrix(machines, k, "machines")
        if machines.shape[0] != orders.shape[0]:
            raise ValueError(
                f"orders has {orders.shape[0]} rows but machines has "
                f"{machines.shape[0]}"
            )
        B = orders.shape[0]
        if B == 0:
            return np.empty(0, dtype=float)
        if validate:
            self.validate_batch(orders, machines)
        if B <= self.chunk_size:
            return self._score_chunk(orders, machines)
        out = np.empty(B)
        for start in range(0, B, self.chunk_size):
            stop = min(start + self.chunk_size, B)
            out[start:stop] = self._score_chunk(
                orders[start:stop], machines[start:stop]
            )
        return out

    def _score_chunk(
        self, orders: np.ndarray, machines: np.ndarray
    ) -> np.ndarray:
        """Score one cache-sized chunk of validated schedules.

        Everything except the finish/availability chain is a static
        function of ``(orders, machines)``, so it is precomputed in
        whole-batch sweeps (per-position execution times, per-lane
        producer-finish gather indices, per-lane transfer costs).  The
        gathers run batch-major — each schedule's rows stay
        cache-resident — and the position-major layout conversion the
        walk wants is folded into the final ``copyto``.  The walk itself
        is then ~8 flat NumPy ops per string position into preallocated
        buffers.
        """
        k = self._k
        l = self._l
        B = orders.shape[0]
        D = self._max_deg
        sc = self._scratch_buffers(B)
        rows = np.arange(B, dtype=np.intp)[:, None]

        m_all = np.take_along_axis(machines, orders, axis=1)  # (B, k)
        exec_pm = np.ascontiguousarray(self._E[m_all, orders].T)
        # flat scatter/gather indices into machine_avail (B*l) and the
        # sentinel-padded finish array (B*(k+1))
        avail_idx_pm = np.ascontiguousarray((m_all + rows * l).T)
        fin_idx_pm = np.ascontiguousarray((orders + rows * (k + 1)).T)
        dmax_at = np.take(self._deg, orders).max(axis=0).tolist()

        lane_idx = sc["lane_idx"][:, :, :B]
        lane_trv = sc["lane_trv"][:, :, :B]
        if D:
            rows_fin = rows[:, :, None] * (k + 1)
            prod_all = sc["prod"][:B]
            pf_idx = sc["pfidx"][:B]
            trv = sc["trv"][:B]
            np.take(self._pad_prod, orders, axis=0, out=prod_all)
            np.add(prod_all, rows_fin, out=pf_idx)
            machines_pad = sc["mpad"][:B]
            machines_pad[:, :k] = machines
            pm = sc["pm"][:B]
            np.take(machines_pad.reshape(-1), pf_idx, out=pm)
            item_all = sc["item"][:B]
            np.take(self._pad_item, orders, axis=0, out=item_all)
            if self._trv_table is not None:
                # one flat gather from the tabulated (l, l, p+1) costs:
                # index = (pm*l + m)*(p+1) + item, built in place
                P1 = self._tr.shape[1]
                np.multiply(pm, l * P1, out=pm)
                pm += (m_all * P1)[:, :, None]
                pm += item_all
                np.take(self._trv_table.reshape(-1), pm, out=trv)
            else:
                trv[...] = self._tr[
                    self._pair_row[pm, m_all[:, :, None]], item_all
                ]
            # lane tables (k, D, B): position-major, batch innermost —
            # the layout conversion is fused into these two copies
            np.copyto(lane_idx, pf_idx.transpose(1, 2, 0))
            np.copyto(lane_trv, trv.transpose(1, 2, 0))
        # small and needed contiguous as a take() target -> per call
        pf_buf = np.empty((max(D, 1), B))

        # ---- the sequential walk: only the finish / availability chain
        # remains.  Sentinel lanes gather stored zeros (producer k's
        # finish, Tr's padding row/column), so no masking is needed.
        finish = sc["finish"][: B * (k + 1)]
        finish.fill(0.0)
        avail = sc["avail"][: B * l]
        avail.fill(0.0)
        ready = sc["ready"][:B]
        arrive = sc["arrive"][:B]
        for p in range(k):
            np.take(avail, avail_idx_pm[p], out=ready)
            dmax = dmax_at[p]
            if dmax:
                pf = pf_buf[:dmax]
                np.take(finish, lane_idx[p, :dmax], out=pf)
                pf += lane_trv[p, :dmax]
                pf.max(axis=0, out=arrive)
                np.maximum(ready, arrive, out=ready)
            ready += exec_pm[p]
            finish[fin_idx_pm[p]] = ready
            avail[avail_idx_pm[p]] = ready
        # every subtask finishes on some machine and per-machine finish
        # times only grow, so the final availability row holds each
        # machine's last finish — its max is exactly the makespan
        return avail.reshape(B, l).max(axis=1)

    def _scratch_buffers(self, batch_rows: int) -> dict:
        """Reusable per-instance scratch, sized for ``chunk_size`` rows.

        Rebuilt only if ``chunk_size`` grew since allocation.  Keeping
        these alive across calls avoids multi-megabyte allocations (and
        their page faults) in every batch — worth ~2x on paper-scale
        batches.  This is what makes instances not thread-safe.
        """
        C = max(self.chunk_size, batch_rows)
        sc = self._scratch
        if sc is not None and sc["capacity"] >= C:
            return sc
        k = self._k
        D = max(self._max_deg, 1)
        self._scratch = sc = {
            "capacity": C,
            "prod": np.empty((C, k, D), dtype=np.intp),
            "item": np.empty((C, k, D), dtype=np.intp),
            "pfidx": np.empty((C, k, D), dtype=np.intp),
            "pm": np.empty((C, k, D), dtype=np.intp),
            "trv": np.empty((C, k, D)),
            "mpad": np.zeros((C, k + 1), dtype=np.intp),
            "lane_idx": np.empty((k, D, C), dtype=np.intp),
            "lane_trv": np.empty((k, D, C)),
            "finish": np.empty(C * (k + 1)),
            "avail": np.empty(C * self._l),
            "ready": np.empty(C),
            "arrive": np.empty(C),
        }
        return sc

    def string_makespans(
        self, strings: Sequence[ScheduleString], validate: bool = True
    ) -> np.ndarray:
        """:meth:`makespans` over :class:`ScheduleString` objects."""
        if not strings:
            return np.empty(0, dtype=float)
        orders = np.array([s.order for s in strings], dtype=np.intp)
        machines = np.array([s.machines for s in strings], dtype=np.intp)
        return self.makespans(orders, machines, validate=validate)


class SequentialBatchKernel:
    """Scalar fallback: a batch API looping over any scalar backend.

    Used when a network model (e.g. ``"nic"``) has no vectorized kernel
    registered, so batch-aware callers can stay on one code path.  The
    scalar backend performs its own precedence checks, hence *validate*
    is accepted for signature parity but has no extra work to do.
    """

    is_vectorized = False

    __slots__ = ("_backend",)

    def __init__(self, backend: Any):
        self._backend = backend

    @property
    def workload(self) -> Workload:
        return self._backend.workload

    def makespans(
        self, orders: Any, machines: Any, validate: bool = True
    ) -> np.ndarray:
        out = [
            self._backend.makespan(list(o), list(m))
            for o, m in zip(orders, machines)
        ]
        return np.array(out, dtype=float)

    def string_makespans(
        self, strings: Sequence[ScheduleString], validate: bool = True
    ) -> np.ndarray:
        return np.array(
            [self._backend.string_makespan(s) for s in strings],
            dtype=float,
        )


class BatchBackend:
    """A scalar :class:`SimulatorBackend` extended with batch scoring.

    Produced by ``make_simulator(workload, network, batch=True)``.
    Scalar-tier methods (``makespan``, ``prepare``, ``evaluate_delta``,
    ...) are bound straight from the wrapped backend, so the incremental
    hot path pays zero delegation overhead; :meth:`batch_makespans` and
    :meth:`batch_string_makespans` go through the vectorized kernel (or
    the scalar fallback when the network has none).
    """

    _FORWARDED = (
        "makespan",
        "string_makespan",
        "evaluate",
        "prepare",
        "prepare_string",
        "evaluate_delta",
        "finish_times",
    )

    def __init__(self, scalar: Any, kernel: Any):
        self._scalar = scalar
        self._kernel = kernel
        self.is_vectorized = bool(kernel.is_vectorized)
        for name in self._FORWARDED:
            method = getattr(scalar, name, None)
            if method is not None:
                setattr(self, name, method)

    @property
    def workload(self) -> Workload:
        return self._scalar.workload

    @property
    def scalar_backend(self) -> Any:
        """The wrapped scalar backend (for tests and introspection)."""
        return self._scalar

    @property
    def kernel(self) -> Any:
        """The batch kernel (``BatchSimulator`` or the scalar fallback)."""
        return self._kernel

    def batch_makespans(
        self, orders: Any, machines: Any, validate: bool = True
    ) -> np.ndarray:
        """Batch of makespans; see :meth:`BatchSimulator.makespans`."""
        return self._kernel.makespans(orders, machines, validate=validate)

    def batch_string_makespans(
        self, strings: Sequence[ScheduleString], validate: bool = True
    ) -> np.ndarray:
        """Batch of makespans over :class:`ScheduleString` objects."""
        return self._kernel.string_makespans(strings, validate=validate)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "vectorized" if self.is_vectorized else "sequential"
        return (
            f"BatchBackend({type(self._scalar).__name__}, {mode} batch)"
        )
