"""Vectorized batch evaluation: score many schedules in NumPy sweeps.

Every search algorithm in the library asks the same question many times
per iteration: *what is the makespan of this candidate string?*  The GA
scores a whole population per generation, random search scores a stream
of independent samples, and the SE allocation step scores every
(machine, slot) probe of a selected subtask.  The scalar
:class:`~repro.schedule.simulator.Simulator` answers one string at a
time in a Python loop; :class:`BatchSimulator` answers a whole batch at
once by turning the per-position walk into NumPy sweeps across the
batch dimension.

Kernel layout (packed once per workload)
----------------------------------------

* ``E``   — the ``(l, k)`` execution-time matrix, C-contiguous float64;
* ``Tr``  — the ``(l(l-1)/2, p)`` transfer-time matrix (padded to at
  least ``(1, 1)`` so masked gathers never index an empty array);
* the DAG's in-edges in **padded CSR** form: ``deg[t]`` (in-degree) and
  ``pad_prod[t, j]`` / ``pad_item[t, j]`` (producer and data-item of
  task ``t``'s ``j``-th input) — shape ``(k, D)`` with ``D`` the
  maximum in-degree.  Lanes past ``deg[t]`` hold a *sentinel* edge
  (producer ``k``, item ``p``) that reads a permanently-zero finish
  time and a permanently-zero transfer column, so no mask arithmetic is
  needed in the hot loop;
* ``pair_row[a, b]`` — an ``(l, l)`` lookup table for the
  upper-triangular ``Tr`` row of a machine pair; its diagonal points at
  an all-zero padding row of ``Tr``, so a same-machine transfer gathers
  a stored 0.0 instead of branching;
* ``edge_prod`` / ``edge_cons`` — flat producer/consumer arrays used by
  the vectorized precedence validation.

Evaluation walks string positions ``0..k-1`` exactly like the scalar
simulator (the per-machine availability chain is inherently
sequential), but at each position the whole batch advances in ~15 NumPy
operations on ``(B,)`` / ``(B, D)`` arrays instead of ``B`` Python
loop bodies.  All arithmetic (one addition per crossing transfer, one
addition per execution time, maxima elsewhere) is performed with the
same operands as the scalar walk, so results are **bit-identical** to
:meth:`Simulator.makespan` — a property enforced by
``tests/properties/test_batch_properties.py``.

>>> import numpy as np
>>> from repro.schedule.operations import random_valid_string
>>> from repro.schedule.simulator import Simulator
>>> from repro.workloads import small_workload
>>> w = small_workload(seed=3)
>>> batch = [random_valid_string(w.graph, w.num_machines, s) for s in range(4)]
>>> kernel = BatchSimulator(w)
>>> got = kernel.string_makespans(batch)
>>> scalar = Simulator(w)
>>> got.tolist() == [scalar.string_makespan(s) for s in batch]
True
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from typing import Any, Optional, Sequence

import numpy as np

from repro.model.workload import Workload
from repro.schedule.backend import register_batch_network
from repro.schedule.encoding import ScheduleString
from repro.schedule.scoring import BatchScores, CostModel
from repro.schedule.simulator import InvalidScheduleError


def _as_index_matrix(rows: Any, k: int, name: str) -> np.ndarray:
    """*rows* as a C-contiguous ``(B, k)`` integer array."""
    arr = np.ascontiguousarray(rows, dtype=np.intp)
    if arr.ndim == 1 and arr.size == 0:
        arr = arr.reshape(0, k)
    if arr.ndim != 2 or arr.shape[1] != k:
        raise ValueError(
            f"{name} must have shape (batch, {k}), got {arr.shape}"
        )
    return arr


class WorkloadPack:
    """Per-workload tensors shared by the batch kernels.

    Both :class:`BatchSimulator` (contention-free) and
    :class:`~repro.schedule.vectorized_contention.ContentionBatchSimulator`
    ("nic") walk schedules with the same gather tables: the ``(l, k)``
    execution matrix, the zero-padded transfer matrix, the padded-CSR
    in-edge lanes and the machine-pair row lookup described in the
    module docstring.  Packing them lives here, once, so the kernels
    cannot drift apart on layout or sentinel conventions.

    The NIC kernel additionally needs the *out*-edge side of the DAG
    (which items each task pushes, in ascending item-index order — the
    documented NIC serialisation order); those tables are built lazily
    by :meth:`out_tables` so contention-free packing does not pay for
    them.

    Sentinel conventions (shared by every consumer):

    * producer/consumer lane padding uses the virtual task ``k`` — its
      machine reads 0 from a zero-padded machine row and its finish
      time reads 0.0 from a zero-padded finish slot;
    * item lane padding uses the virtual item ``num_items`` — both the
      padded ``tr`` column and the kernels' arrival slot for that index
      hold a permanent 0.0;
    * ``pair_row``'s diagonal points at ``tr``'s all-zero padding row,
      so same-machine transfers gather a stored 0.0 with no branch.

    ``like`` shares structure across packs of the *same DAG* with
    different matrices (the scenario tier builds one pack per sampled
    scenario): the graph-derived tables (CSR lanes, pair rows, edge
    arrays, out-edge lanes) are reused by reference from the donor pack
    and only the value tables (``E``, ``tr``, ``trv_table``) are
    recomputed — they are what actually differ between scenarios.
    """

    __slots__ = (
        "workload",
        "k",
        "l",
        "num_items",
        "E",
        "tr",
        "pair_row",
        "trv_table",
        "deg",
        "pad_prod",
        "pad_item",
        "max_deg",
        "edge_prod",
        "edge_cons",
        "_out_tables",
    )

    def __init__(
        self, workload: Workload, like: Optional["WorkloadPack"] = None
    ):
        self.workload = workload
        graph = workload.graph
        k = self.k = graph.num_tasks
        l = self.l = workload.num_machines
        self.E = np.ascontiguousarray(workload.exec_times.values)

        # Tr padded with one all-zero column (the sentinel data item
        # that unused lanes read) and one all-zero row (the "row" of a
        # same-machine pair), so zero-cost cases need no mask arithmetic
        # at all: they simply gather a stored 0.0.
        tr = workload.transfer_times.values
        num_rows, num_items = tr.shape
        self.num_items = num_items
        tr_pad = np.zeros((num_rows + 1, num_items + 1))
        if tr.size:
            tr_pad[:num_rows, :num_items] = tr
        self.tr = tr_pad

        if like is not None:
            if like.workload.graph is not graph or like.l != l:
                raise ValueError(
                    "like= requires a pack of the same DAG and machine "
                    "count (structure tables are shared by reference)"
                )
            self.pair_row = like.pair_row
            if like.trv_table is not None:
                self.trv_table = np.ascontiguousarray(tr_pad[self.pair_row])
            else:
                self.trv_table = None
            self.deg = like.deg
            self.pad_prod = like.pad_prod
            self.pad_item = like.pad_item
            self.max_deg = like.max_deg
            self.edge_prod = like.edge_prod
            self.edge_cons = like.edge_cons
            # lazily-built out-edge lanes are structural too: adopt the
            # donor's if present, else build (and cache) independently
            self._out_tables = like._out_tables
            return

        # (l, l) lookup table: upper-triangular Tr row of a machine
        # pair; the diagonal points at the all-zero padding row.
        pair_row = np.full((l, l), num_rows, dtype=np.intp)
        for a in range(l):
            for b in range(a + 1, l):
                pair_row[a, b] = pair_row[b, a] = (
                    a * l - a * (a + 1) // 2 + (b - a - 1)
                )
        self.pair_row = pair_row
        # Fully tabulated transfer cost T[a, b, item] — collapses the
        # pair_row + Tr double gather into one — unless the table would
        # be unreasonably large (big machine counts / item counts).
        if l * l * (num_items + 1) <= 4_000_000:
            self.trv_table = np.ascontiguousarray(tr_pad[pair_row])
        else:
            self.trv_table = None

        items = graph.data_items
        in_edges: list[list[tuple[int, int]]] = [[] for _ in range(k)]
        for d in items:
            in_edges[d.consumer].append((d.producer, d.index))
        deg = np.array([len(es) for es in in_edges], dtype=np.intp)
        D = self.max_deg = int(deg.max()) if k else 0
        # Sentinel lanes: producer k (a virtual task whose finish time is
        # pinned at 0.0) and item num_items (the zero Tr column above).
        pad_prod = np.full((k, max(D, 1)), k, dtype=np.intp)
        pad_item = np.full((k, max(D, 1)), num_items, dtype=np.intp)
        for t, es in enumerate(in_edges):
            for j, (prod, item) in enumerate(es):
                pad_prod[t, j] = prod
                pad_item[t, j] = item
        self.deg = deg
        self.pad_prod = pad_prod
        self.pad_item = pad_item
        self.edge_prod = np.array(
            [d.producer for d in items], dtype=np.intp
        )
        self.edge_cons = np.array(
            [d.consumer for d in items], dtype=np.intp
        )
        self._out_tables: Optional[tuple] = None

    def out_tables(self) -> tuple:
        """Padded out-edge lane tables, built on first request.

        Returns ``(pad_out_item, pad_out_slot, pad_out_cons, out_deg,
        max_out_deg)``:

        * ``out_deg[t]`` — number of items task ``t`` produces;
        * ``pad_out_item[t, j]`` — the ``j``-th pushed item, ascending
          item index (the NIC serialisation order); sentinel lanes hold
          ``num_items``, gathering ``tr``'s all-zero padding column;
        * ``pad_out_slot[t, j]`` — where the push's arrival time is
          written: the real item index, or the scratch slot
          ``num_items + 1`` for sentinel lanes (slot ``num_items`` must
          stay a permanent 0.0 because in-edge sentinel lanes read it);
        * ``pad_out_cons[t, j]`` — the item's consumer task (sentinel:
          the virtual task ``k``, whose machine reads 0).
        """
        if self._out_tables is not None:
            return self._out_tables
        graph = self.workload.graph
        k = self.k
        out_edges = [
            [(i, graph.data_item(i).consumer) for i in sorted(graph.out_items(t))]
            for t in range(k)
        ]
        out_deg = np.array([len(es) for es in out_edges], dtype=np.intp)
        Do = int(out_deg.max()) if k else 0
        pad_out_item = np.full((k, max(Do, 1)), self.num_items, dtype=np.intp)
        pad_out_slot = np.full(
            (k, max(Do, 1)), self.num_items + 1, dtype=np.intp
        )
        pad_out_cons = np.full((k, max(Do, 1)), k, dtype=np.intp)
        for t, es in enumerate(out_edges):
            for j, (item, cons) in enumerate(es):
                pad_out_item[t, j] = item
                pad_out_slot[t, j] = item
                pad_out_cons[t, j] = cons
        self._out_tables = (pad_out_item, pad_out_slot, pad_out_cons, out_deg, Do)
        return self._out_tables

    def validate_batch(self, orders: np.ndarray, machines: np.ndarray) -> None:
        """Raise unless every row encodes a valid schedule.

        Checks (all vectorized): each order is a permutation of
        ``0..k-1``, every machine id is in range, and every data item's
        producer precedes its consumer.  Mirrors the scalar simulators'
        :class:`~repro.schedule.simulator.InvalidScheduleError` for
        precedence violations.
        """
        k = self.k
        if not (
            np.sort(orders, axis=1) == np.arange(k, dtype=np.intp)
        ).all():
            raise InvalidScheduleError(
                "batch contains an order that is not a permutation of "
                f"0..{k - 1}"
            )
        if machines.size and (
            machines.min() < 0 or machines.max() >= self.l
        ):
            raise ValueError(
                f"batch contains machine ids outside [0, {self.l})"
            )
        if self.edge_prod.size:
            pos = np.empty_like(orders)
            np.put_along_axis(
                pos, orders, np.arange(k, dtype=np.intp)[None, :], axis=1
            )
            ok = pos[:, self.edge_prod] < pos[:, self.edge_cons]
            if not ok.all():
                b, e = np.argwhere(~ok)[0]
                raise InvalidScheduleError(
                    f"schedule {b}: subtask {self.edge_cons[e]} scheduled "
                    f"before its producer {self.edge_prod[e]}"
                )


# ----------------------------------------------------------------------
# the per-process WorkloadPack cache
# ----------------------------------------------------------------------
#
# Packing is a Python-loop pass over the DAG plus an O(l^2) pair-row
# build — cheap once, but the experiment runner used to pay it for
# *every cell*: each `run_cell` rebuilds the Workload from its spec and
# every kernel construction re-derived the same tensors.  The cache
# below memoises packs per process, keyed by a content fingerprint of
# exactly the inputs the pack is derived from (dimensions, E, Tr, edge
# list), so a multi-cell sweep packs each distinct workload once per
# worker process and platform-scaled matrices (different E bytes) get
# their own entry.  Packs are immutable after construction (kernels
# keep their scratch per-instance), so sharing cannot change results.

#: Environment kill-switch: ``REPRO_PACK_CACHE=0`` disables reuse.
PACK_CACHE_ENV_VAR = "REPRO_PACK_CACHE"

#: Upper bound on cached packs per process (LRU eviction beyond it).
PACK_CACHE_CAPACITY = 32

_pack_cache: "OrderedDict[str, WorkloadPack]" = OrderedDict()
_pack_cache_lock = threading.Lock()
_pack_stats = {"hits": 0, "misses": 0}


def workload_fingerprint(workload: Workload) -> str:
    """Content fingerprint of everything a :class:`WorkloadPack` reads.

    Two workload objects with equal dimensions, matrices and edge lists
    fingerprint identically even when built independently (the runner's
    worker processes rebuild workloads from declarative specs), which
    is what makes cross-cell pack reuse possible at all.
    """
    graph = workload.graph
    h = hashlib.blake2b(digest_size=16)
    h.update(
        np.array(
            [workload.num_tasks, workload.num_machines, graph.num_data_items],
            dtype=np.int64,
        ).tobytes()
    )
    h.update(np.ascontiguousarray(workload.exec_times.values).tobytes())
    h.update(np.ascontiguousarray(workload.transfer_times.values).tobytes())
    edges = np.array(
        [(d.producer, d.consumer, d.index) for d in graph.data_items],
        dtype=np.int64,
    )
    h.update(edges.tobytes())
    return h.hexdigest()


def pack_cache_enabled() -> bool:
    """Whether pack reuse is on (default; ``REPRO_PACK_CACHE=0`` off)."""
    return os.environ.get(PACK_CACHE_ENV_VAR, "").strip() != "0"


def get_workload_pack(workload: Workload) -> WorkloadPack:
    """The (per-process, LRU-bounded) shared pack of *workload*.

    Bit-for-bit equivalent to ``WorkloadPack(workload)`` — packing is a
    deterministic function of the fingerprinted inputs — but cells,
    services and kernels evaluating the same workload in one process
    share a single set of tensors instead of re-deriving them.
    """
    if not pack_cache_enabled():
        return WorkloadPack(workload)
    key = workload_fingerprint(workload)
    with _pack_cache_lock:
        pack = _pack_cache.get(key)
        if pack is not None:
            _pack_cache.move_to_end(key)
            _pack_stats["hits"] += 1
            return pack
    # build outside the lock: packing is the slow part, and a duplicate
    # build on a race is harmless (last writer wins, both packs valid)
    pack = WorkloadPack(workload)
    with _pack_cache_lock:
        _pack_stats["misses"] += 1
        _pack_cache[key] = pack
        _pack_cache.move_to_end(key)
        while len(_pack_cache) > PACK_CACHE_CAPACITY:
            _pack_cache.popitem(last=False)
    return pack


def pack_cache_stats() -> dict:
    """``{"hits": ..., "misses": ..., "size": ...}`` of this process."""
    with _pack_cache_lock:
        return {
            "hits": _pack_stats["hits"],
            "misses": _pack_stats["misses"],
            "size": len(_pack_cache),
        }


def clear_pack_cache() -> None:
    """Drop every cached pack and zero the counters (tests)."""
    with _pack_cache_lock:
        _pack_cache.clear()
        _pack_stats["hits"] = 0
        _pack_stats["misses"] = 0


class BatchKernel:
    """Shared batch-API driver of the vectorized kernels.

    Subclasses (:class:`BatchSimulator` and the NIC kernel in
    :mod:`repro.schedule.vectorized_contention`) supply ``__init__``
    (which must set ``_workload``, ``_pack``, ``_k``, ``_l``) and
    ``_score_chunk``; everything batch-contract-shaped lives here once —
    input coercion, validation, the empty-batch shortcut, the
    cache-sized chunking loop, the :class:`ScheduleString` front end and
    the identity properties — so the two kernels cannot drift apart on
    the API side any more than :class:`WorkloadPack` lets them drift on
    the packing side.
    """

    #: True for a real vectorized kernel; the scalar fallback says False.
    is_vectorized = True

    #: The tier name surfaced by ``repro algorithms`` / ``repro run
    #: --verbose``: "vectorized" here, "jit" for the compiled subclasses
    #: in :mod:`repro.schedule.jit`, "sequential" for the scalar loop.
    kernel_tier = "vectorized"

    #: Rows scored per internal chunk: large enough to amortize NumPy
    #: dispatch overhead, small enough that the precomputed walk tables
    #: stay cache-resident (measured sweet spot on paper-scale graphs).
    chunk_size = 128

    # exactly the attributes _bind_pack assigns; subclasses declare only
    # their kernel-specific extras
    __slots__ = (
        "_workload",
        "_pack",
        "_k",
        "_l",
        "_E",
        "_tr",
        "_pair_row",
        "_trv_table",
        "_deg",
        "_pad_prod",
        "_pad_item",
        "_max_deg",
        "_scratch",
        "_cost_model",
    )

    def _bind_pack(
        self, workload: Workload, pack: Optional[WorkloadPack]
    ) -> WorkloadPack:
        """Set the pack-derived aliases every kernel walk reads.

        The aliases keep the hot loops free of attribute chains; binding
        them here, once, keeps the two kernels' views of the pack from
        drifting.  Returns the (possibly freshly built) pack so
        subclasses can pull their extra tables from it.

        Without an explicit *pack* the per-process cache supplies one
        (see :func:`get_workload_pack`), so every kernel built for the
        same workload content in a process shares a single tensor set.
        """
        if pack is None:
            pack = get_workload_pack(workload)
        self._workload = workload
        self._pack = pack
        self._k = pack.k
        self._l = pack.l
        self._E = pack.E
        self._tr = pack.tr
        self._pair_row = pack.pair_row
        self._trv_table = pack.trv_table
        self._deg = pack.deg
        self._pad_prod = pack.pad_prod
        self._pad_item = pack.pad_item
        self._max_deg = pack.max_deg
        # chunk-sized scratch buffers, allocated lazily on first use and
        # reused across calls (fresh multi-MB allocations would pay page
        # faults every batch); makes instances NOT thread-safe
        self._scratch: Optional[dict] = None
        self._cost_model: Optional[CostModel] = None
        return pack

    @property
    def cost_model(self) -> Optional[CostModel]:
        """The platform billing table :meth:`scores` charges against
        (``None`` → the zero model of the uniform platform)."""
        return self._cost_model

    @cost_model.setter
    def cost_model(self, model: Optional[CostModel]) -> None:
        self._cost_model = model

    @property
    def workload(self) -> Workload:
        return self._workload

    @property
    def num_tasks(self) -> int:
        return self._k

    @property
    def num_machines(self) -> int:
        return self._l

    def validate_batch(
        self, orders: np.ndarray, machines: np.ndarray
    ) -> None:
        """Raise unless every row encodes a valid schedule.

        Delegates to :meth:`WorkloadPack.validate_batch` (shared by
        both kernels).
        """
        self._pack.validate_batch(orders, machines)

    def makespans(
        self,
        orders: Any,
        machines: Any,
        validate: bool = True,
    ) -> np.ndarray:
        """Makespan of every schedule in the batch, as a ``(B,)`` array.

        Parameters
        ----------
        orders:
            ``(B, k)`` array-like; row ``b`` is schedule ``b``'s subtask
            permutation (string left to right).
        machines:
            ``(B, k)`` array-like; ``machines[b, t]`` is the machine
            assigned to subtask ``t`` in schedule ``b`` (indexed by
            subtask id, exactly like ``ScheduleString.machines``).
        validate:
            Check permutations / machine ranges / precedence first.
            Callers that construct provably valid batches (the SE
            allocator's in-range relocations) may pass ``False``.

        Returns the same floats, bit for bit, as a sequential loop of
        the kernel's scalar backend over the rows (each kernel's class
        docstring names its backend; both are property-tested).
        """
        k = self._k
        orders = _as_index_matrix(orders, k, "orders")
        machines = _as_index_matrix(machines, k, "machines")
        if machines.shape[0] != orders.shape[0]:
            raise ValueError(
                f"orders has {orders.shape[0]} rows but machines has "
                f"{machines.shape[0]}"
            )
        B = orders.shape[0]
        if B == 0:
            return np.empty(0, dtype=float)
        if validate:
            self.validate_batch(orders, machines)
        if B <= self.chunk_size:
            return self._score_chunk(orders, machines)
        out = np.empty(B)
        for start in range(0, B, self.chunk_size):
            stop = min(start + self.chunk_size, B)
            out[start:stop] = self._score_chunk(
                orders[start:stop], machines[start:stop]
            )
        return out

    def string_makespans(
        self, strings: Sequence[ScheduleString], validate: bool = True
    ) -> np.ndarray:
        """:meth:`makespans` over :class:`ScheduleString` objects."""
        if not strings:
            return np.empty(0, dtype=float)
        orders = np.array([s.order for s in strings], dtype=np.intp)
        machines = np.array([s.machines for s in strings], dtype=np.intp)
        return self.makespans(orders, machines, validate=validate)

    def scores(
        self, orders: Any, machines: Any, validate: bool = True
    ) -> BatchScores:
        """Makespans *and* dollar costs of the batch, both vectorized.

        The makespans are the usual :meth:`makespans` walk; the costs
        are one fancy gather into the attached :class:`CostModel`'s
        per-task billing table (see :meth:`CostModel.batch_costs`) —
        no per-schedule Python loop on either column.
        """
        k = self._k
        orders = _as_index_matrix(orders, k, "orders")
        machines = _as_index_matrix(machines, k, "machines")
        spans = self.makespans(orders, machines, validate=validate)
        cm = self._cost_model
        if cm is None:
            cm = self._cost_model = CostModel.zero(self._E)
        return BatchScores(spans, cm.batch_costs(machines))

    def string_scores(
        self, strings: Sequence[ScheduleString], validate: bool = True
    ) -> BatchScores:
        """:meth:`scores` over :class:`ScheduleString` objects."""
        if not strings:
            return BatchScores(
                np.empty(0, dtype=float), np.empty(0, dtype=float)
            )
        orders = np.array([s.order for s in strings], dtype=np.intp)
        machines = np.array([s.machines for s in strings], dtype=np.intp)
        return self.scores(orders, machines, validate=validate)


@register_batch_network("contention-free")
class BatchSimulator(BatchKernel):
    """NumPy batch-evaluation kernel for the contention-free model.

    Build once per workload (packing cost is one pass over the DAG),
    then call :meth:`makespans` with a whole batch of schedules — a GA
    population, one SE generation's trial moves, a chunk of random
    samples.  Scores are bit-identical to sequential
    :meth:`~repro.schedule.simulator.Simulator.makespan` calls.
    """

    __slots__ = ()

    def __init__(
        self,
        workload: Workload,
        pack: Optional[WorkloadPack] = None,
        cost_model: Optional[CostModel] = None,
    ):
        self._bind_pack(workload, pack)
        self._cost_model = cost_model

    def _score_chunk(
        self, orders: np.ndarray, machines: np.ndarray
    ) -> np.ndarray:
        """Score one cache-sized chunk of validated schedules.

        Everything except the finish/availability chain is a static
        function of ``(orders, machines)``, so it is precomputed in
        whole-batch sweeps (per-position execution times, per-lane
        producer-finish gather indices, per-lane transfer costs).  The
        gathers run batch-major — each schedule's rows stay
        cache-resident — and the position-major layout conversion the
        walk wants is folded into the final ``copyto``.  The walk itself
        is then ~8 flat NumPy ops per string position into preallocated
        buffers.
        """
        k = self._k
        l = self._l
        B = orders.shape[0]
        D = self._max_deg
        sc = self._scratch_buffers(B)
        rows = np.arange(B, dtype=np.intp)[:, None]

        m_all = np.take_along_axis(machines, orders, axis=1)  # (B, k)
        exec_pm = np.ascontiguousarray(self._E[m_all, orders].T)
        # flat scatter/gather indices into machine_avail (B*l) and the
        # sentinel-padded finish array (B*(k+1))
        avail_idx_pm = np.ascontiguousarray((m_all + rows * l).T)
        fin_idx_pm = np.ascontiguousarray((orders + rows * (k + 1)).T)
        dmax_at = np.take(self._deg, orders).max(axis=0).tolist()

        lane_idx = sc["lane_idx"][:, :, :B]
        lane_trv = sc["lane_trv"][:, :, :B]
        if D:
            rows_fin = rows[:, :, None] * (k + 1)
            prod_all = sc["prod"][:B]
            pf_idx = sc["pfidx"][:B]
            trv = sc["trv"][:B]
            np.take(self._pad_prod, orders, axis=0, out=prod_all)
            np.add(prod_all, rows_fin, out=pf_idx)
            machines_pad = sc["mpad"][:B]
            machines_pad[:, :k] = machines
            pm = sc["pm"][:B]
            np.take(machines_pad.reshape(-1), pf_idx, out=pm)
            item_all = sc["item"][:B]
            np.take(self._pad_item, orders, axis=0, out=item_all)
            if self._trv_table is not None:
                # one flat gather from the tabulated (l, l, p+1) costs:
                # index = (pm*l + m)*(p+1) + item, built in place
                P1 = self._tr.shape[1]
                np.multiply(pm, l * P1, out=pm)
                pm += (m_all * P1)[:, :, None]
                pm += item_all
                np.take(self._trv_table.reshape(-1), pm, out=trv)
            else:
                trv[...] = self._tr[
                    self._pair_row[pm, m_all[:, :, None]], item_all
                ]
            # lane tables (k, D, B): position-major, batch innermost —
            # the layout conversion is fused into these two copies
            np.copyto(lane_idx, pf_idx.transpose(1, 2, 0))
            np.copyto(lane_trv, trv.transpose(1, 2, 0))
        # small and needed contiguous as a take() target -> per call
        pf_buf = np.empty((max(D, 1), B))

        # ---- the sequential walk: only the finish / availability chain
        # remains.  Sentinel lanes gather stored zeros (producer k's
        # finish, Tr's padding row/column), so no masking is needed.
        finish = sc["finish"][: B * (k + 1)]
        finish.fill(0.0)
        avail = sc["avail"][: B * l]
        avail.fill(0.0)
        ready = sc["ready"][:B]
        arrive = sc["arrive"][:B]
        for p in range(k):
            np.take(avail, avail_idx_pm[p], out=ready)
            dmax = dmax_at[p]
            if dmax:
                pf = pf_buf[:dmax]
                np.take(finish, lane_idx[p, :dmax], out=pf)
                pf += lane_trv[p, :dmax]
                pf.max(axis=0, out=arrive)
                np.maximum(ready, arrive, out=ready)
            ready += exec_pm[p]
            finish[fin_idx_pm[p]] = ready
            avail[avail_idx_pm[p]] = ready
        # every subtask finishes on some machine and per-machine finish
        # times only grow, so the final availability row holds each
        # machine's last finish — its max is exactly the makespan
        return avail.reshape(B, l).max(axis=1)

    def _scratch_buffers(self, batch_rows: int) -> dict:
        """Reusable per-instance scratch, sized for ``chunk_size`` rows.

        Rebuilt only if ``chunk_size`` grew since allocation.  Keeping
        these alive across calls avoids multi-megabyte allocations (and
        their page faults) in every batch — worth ~2x on paper-scale
        batches.  This is what makes instances not thread-safe.
        """
        C = max(self.chunk_size, batch_rows)
        sc = self._scratch
        if sc is not None and sc["capacity"] >= C:
            return sc
        k = self._k
        D = max(self._max_deg, 1)
        self._scratch = sc = {
            "capacity": C,
            "prod": np.empty((C, k, D), dtype=np.intp),
            "item": np.empty((C, k, D), dtype=np.intp),
            "pfidx": np.empty((C, k, D), dtype=np.intp),
            "pm": np.empty((C, k, D), dtype=np.intp),
            "trv": np.empty((C, k, D)),
            "mpad": np.zeros((C, k + 1), dtype=np.intp),
            "lane_idx": np.empty((k, D, C), dtype=np.intp),
            "lane_trv": np.empty((k, D, C)),
            "finish": np.empty(C * (k + 1)),
            "avail": np.empty(C * self._l),
            "ready": np.empty(C),
            "arrive": np.empty(C),
        }
        return sc


class SequentialBatchKernel:
    """Scalar fallback: a batch API looping over any scalar backend.

    Used when a network model (e.g. ``"nic"``) has no vectorized kernel
    registered, so batch-aware callers can stay on one code path.  The
    scalar backend performs its own precedence checks, hence *validate*
    is accepted for signature parity but has no extra work to do.
    """

    is_vectorized = False

    kernel_tier = "sequential"

    __slots__ = ("_backend",)

    def __init__(self, backend: Any):
        self._backend = backend

    @property
    def workload(self) -> Workload:
        return self._backend.workload

    def makespans(
        self, orders: Any, machines: Any, validate: bool = True
    ) -> np.ndarray:
        out = [
            self._backend.makespan(list(o), list(m))
            for o, m in zip(orders, machines)
        ]
        return np.array(out, dtype=float)

    def string_makespans(
        self, strings: Sequence[ScheduleString], validate: bool = True
    ) -> np.ndarray:
        return np.array(
            [self._backend.string_makespan(s) for s in strings],
            dtype=float,
        )

    def scores(
        self, orders: Any, machines: Any, validate: bool = True
    ) -> BatchScores:
        """Sequential ``(makespans, costs)`` via the backend's ``score``
        (zero costs for scalar backends without a multi-metric tier)."""
        score = getattr(self._backend, "score", None)
        if score is None:
            spans = self.makespans(orders, machines, validate=validate)
            return BatchScores(spans, np.zeros(len(spans)))
        triples = [
            score(list(o), list(m)) for o, m in zip(orders, machines)
        ]
        return BatchScores(
            np.array([s.makespan for s in triples], dtype=float),
            np.array([s.cost for s in triples], dtype=float),
        )

    def string_scores(
        self, strings: Sequence[ScheduleString], validate: bool = True
    ) -> BatchScores:
        score = getattr(self._backend, "string_score", None)
        if score is None:
            spans = self.string_makespans(strings, validate=validate)
            return BatchScores(spans, np.zeros(len(spans)))
        triples = [score(s) for s in strings]
        return BatchScores(
            np.array([s.makespan for s in triples], dtype=float),
            np.array([s.cost for s in triples], dtype=float),
        )


class BatchBackend:
    """A scalar :class:`SimulatorBackend` extended with batch scoring.

    Produced by ``make_simulator(workload, network, batch=True)``.
    Scalar-tier methods (``makespan``, ``prepare``, ``evaluate_delta``,
    ...) are bound straight from the wrapped backend, so the incremental
    hot path pays zero delegation overhead; :meth:`batch_makespans` and
    :meth:`batch_string_makespans` go through the vectorized kernel (or
    the scalar fallback when the network has none).
    """

    _FORWARDED = (
        "makespan",
        "string_makespan",
        "evaluate",
        "prepare",
        "prepare_string",
        "evaluate_delta",
        "finish_times",
        "score",
        "string_score",
    )

    def __init__(
        self,
        scalar: Any,
        kernel: Any,
        cost_model: Optional[CostModel] = None,
    ):
        self._scalar = scalar
        self._kernel = kernel
        self._cost_model = cost_model
        if cost_model is not None:
            try:
                kernel.cost_model = cost_model
            except AttributeError:
                pass  # custom kernel without a cost tier; see batch_scores
        for name in self._FORWARDED:
            method = getattr(scalar, name, None)
            if method is not None:
                setattr(self, name, method)

    @property
    def workload(self) -> Workload:
        return self._scalar.workload

    @property
    def is_vectorized(self) -> bool:
        """True when batch calls run a genuinely vectorized kernel.

        Read-only: the answer is a fact about the wrapped kernel, not a
        switch.  Surfaced by ``repro algorithms`` and ``repro run
        --verbose`` so a sequential fallback is visible instead of
        silent.
        """
        return bool(self._kernel.is_vectorized)

    @property
    def kernel_tier(self) -> str:
        """The wrapped kernel's tier: ``"jit"``, ``"vectorized"`` or
        ``"sequential"`` (custom kernels without the attribute report
        by their ``is_vectorized`` flag).  Like :attr:`is_vectorized`,
        a fact about the kernel, surfaced so the CLI can report the
        tier a run actually executes on."""
        tier = getattr(self._kernel, "kernel_tier", None)
        if tier is not None:
            return str(tier)
        return "vectorized" if self.is_vectorized else "sequential"

    @property
    def scalar_backend(self) -> Any:
        """The wrapped scalar backend (for tests and introspection)."""
        return self._scalar

    @property
    def kernel(self) -> Any:
        """The batch kernel (``BatchSimulator`` or the scalar fallback)."""
        return self._kernel

    def batch_makespans(
        self, orders: Any, machines: Any, validate: bool = True
    ) -> np.ndarray:
        """Batch of makespans; see :meth:`BatchSimulator.makespans`."""
        return self._kernel.makespans(orders, machines, validate=validate)

    def batch_string_makespans(
        self, strings: Sequence[ScheduleString], validate: bool = True
    ) -> np.ndarray:
        """Batch of makespans over :class:`ScheduleString` objects."""
        return self._kernel.string_makespans(strings, validate=validate)

    @property
    def cost_model(self) -> Optional[CostModel]:
        """The platform billing table the batch cost column charges
        against (``None`` → the zero model of the uniform platform)."""
        return self._cost_model

    def batch_scores(
        self, orders: Any, machines: Any, validate: bool = True
    ) -> BatchScores:
        """Batch ``(makespans, costs)``; cost stays vectorized whenever
        the kernel does (one gather + row sum per batch)."""
        kern = self._kernel
        if hasattr(kern, "scores"):
            return kern.scores(orders, machines, validate=validate)
        # custom kernel without a cost tier: makespans from the kernel,
        # costs from the billing table directly
        spans = kern.makespans(orders, machines, validate=validate)
        cm = self._cost_model
        if cm is None:
            return BatchScores(spans, np.zeros(len(spans)))
        return BatchScores(
            spans, cm.batch_costs(np.asarray(machines, dtype=np.intp))
        )

    def batch_string_scores(
        self, strings: Sequence[ScheduleString], validate: bool = True
    ) -> BatchScores:
        """:meth:`batch_scores` over :class:`ScheduleString` objects."""
        kern = self._kernel
        if hasattr(kern, "string_scores"):
            return kern.string_scores(strings, validate=validate)
        spans = kern.string_makespans(strings, validate=validate)
        cm = self._cost_model
        if cm is None:
            return BatchScores(spans, np.zeros(len(spans)))
        machines = np.array([s.machines for s in strings], dtype=np.intp)
        return BatchScores(spans, cm.batch_costs(machines))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchBackend({type(self._scalar).__name__}, "
            f"{self.kernel_tier} batch)"
        )
