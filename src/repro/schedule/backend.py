"""Pluggable simulator backends: one cost model per network assumption.

The paper's model (and :class:`~repro.schedule.simulator.Simulator`)
assumes a fully connected, contention-free network.  Realistic models —
starting with the one-NIC-per-machine serialisation of
:class:`~repro.extensions.contention.ContentionSimulator` — change the
cost of the *same* schedule string, and therefore change what the
optimisers should optimise.  This module makes the choice a first-class,
string-keyed parameter:

* :class:`SimulatorBackend` — the structural protocol every backend
  implements: ``makespan`` / ``evaluate`` plus the incremental tier
  (``prepare`` → delta state → ``evaluate_delta``) that the SE allocator
  and the GA offspring loop run on;
* :func:`make_simulator` — ``(workload, network)`` → backend instance;
* :func:`register_network` — downstream code can plug in its own model
  (registration must happen at import time of a module the runner's
  worker processes also import, exactly like algorithm registration).

Because the selector is a plain string, it travels everywhere the
algorithms do: ``SEConfig(network="nic")``, ``GAConfig(network="nic")``,
``heft(w, network="nic")``, ``AlgorithmSpec.make("se", network="nic")``,
``repro sweep --network nic``.

The **platform** axis works the same way, orthogonally to the network:
a :class:`~repro.model.platform.PlatformSpec` (instance catalog with
speed factors, $/hour prices and boot delays) registered under a string
name.  ``make_simulator(w, network, platform="cloud")`` scales the
execution-time matrix by instance speed, folds boot delays into the
initial availability, and attaches the billing table so the backend's
``score`` / ``batch_scores`` report dollar cost next to makespan.  The
default ``"uniform"`` platform changes *nothing* — same workload
object, no extra keyword reaches the backend factory — so it is
bit-identical to the historical ETC path (golden-pinned).

>>> from repro.schedule.backend import available_networks, make_simulator
>>> available_networks()
['contention-free', 'nic']
>>> available_platforms()
['cloud', 'spot', 'uniform']
>>> from repro.workloads import small_workload
>>> w = small_workload(seed=1)
>>> type(make_simulator(w, "contention-free")).__name__
'Simulator'
>>> type(make_simulator(w, "nic")).__name__
'ContentionSimulator'
>>> make_simulator(w, "contention-free", platform="spot").cost_model.is_free
False
>>> make_simulator(w, "contention-free").cost_model is None
True
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Protocol, Sequence, runtime_checkable

from repro.model.workload import Workload
from repro.schedule.encoding import ScheduleString
from repro.schedule.simulator import Schedule, Simulator

#: The paper's model; the default everywhere a ``network`` is accepted.
DEFAULT_NETWORK = "contention-free"

#: The built-in NIC-serialisation model (see ``repro.extensions.contention``).
NIC_NETWORK = "nic"

#: The identity platform; the default everywhere a ``platform`` is accepted.
DEFAULT_PLATFORM = "uniform"


@runtime_checkable
class SimulatorBackend(Protocol):
    """What every schedule-cost backend must offer.

    The contract mirrors :class:`~repro.schedule.simulator.Simulator`:

    * ``makespan`` / ``string_makespan`` — scalar cost of a string;
    * ``evaluate`` — full evaluation; the result must expose ``makespan``
      and per-task ``start`` / ``finish`` / ``order`` / ``machine_of``
      (richer backends may return a wrapper, e.g.
      :class:`~repro.extensions.contention.ContentionSchedule`);
    * ``prepare`` / ``evaluate_delta`` — the incremental tier: a
      per-position snapshot of the evaluation state such that a string
      sharing a prefix with the base can be re-scored suffix-only, with
      ``cutoff`` branch-and-bound pruning.  ``evaluate_delta`` results
      must be **bit-identical** to a full ``makespan`` call on the same
      string (property-tested for both built-in backends);
    * ``finish_times`` — per-subtask finish times (SE's ``Ci`` input).

    The delta state is backend-specific; callers treat it as opaque
    apart from ``makespan`` / ``pos_of`` / ``as_schedule()``.
    """

    @property
    def workload(self) -> Workload: ...

    def makespan(
        self, order: Sequence[int], machine_of: Sequence[int]
    ) -> float: ...

    def string_makespan(self, string: ScheduleString) -> float: ...

    def evaluate(self, string: ScheduleString) -> Any: ...

    def prepare(
        self, order: Sequence[int], machine_of: Sequence[int]
    ) -> Any: ...

    def evaluate_delta(
        self,
        order: Sequence[int],
        machine_of: Sequence[int],
        first_changed: int,
        state: Any,
        cutoff: float = float("inf"),
        region_end: Optional[int] = None,
    ) -> float: ...

    def finish_times(self, string: ScheduleString) -> list[float]: ...


#: A backend factory: workload -> backend instance.
BackendFactory = Callable[[Workload], SimulatorBackend]

_NETWORKS: Dict[str, BackendFactory] = {DEFAULT_NETWORK: Simulator}

#: Batch-kernel factories keyed by network name (see ``vectorized.py``).
_BATCH_NETWORKS: Dict[str, Callable[[Workload], Any]] = {}

#: Compiled-kernel factories keyed by network name (see ``jit.py``).
_JIT_NETWORKS: Dict[str, Callable[[Workload], Any]] = {}


def register_network(name: str):
    """Decorator registering a backend factory under *name* (unique)."""

    def deco(factory: BackendFactory) -> BackendFactory:
        key = name.lower()
        if key in _NETWORKS:
            raise ValueError(f"network model {key!r} already registered")
        _NETWORKS[key] = factory
        return factory

    return deco


def register_batch_network(name: str):
    """Decorator registering a *batch kernel* factory under *name*.

    A batch kernel offers ``makespans(orders, machines)`` /
    ``string_makespans(strings)`` returning one float per schedule,
    bit-identical to the network's scalar backend, plus an
    ``is_vectorized`` flag.  Networks without a registered kernel fall
    back to a sequential loop over their scalar backend when callers
    request ``make_simulator(..., batch=True)``.
    """

    def deco(factory):
        key = name.lower()
        if key in _BATCH_NETWORKS:
            raise ValueError(
                f"batch kernel for network {key!r} already registered"
            )
        _BATCH_NETWORKS[key] = factory
        return factory

    return deco


def register_jit_network(name: str):
    """Decorator registering a *compiled* (JIT) kernel factory.

    A JIT kernel is a drop-in for the network's NumPy batch kernel
    (same batch API, bit-identical results) that additionally reports
    ``kernel_tier == "jit"``.  Selection order is jit > vectorized >
    sequential (see :func:`kernel_tier`); a network registering only a
    NumPy kernel keeps working exactly as before.
    """

    def deco(factory):
        key = name.lower()
        if key in _JIT_NETWORKS:
            raise ValueError(
                f"jit kernel for network {key!r} already registered"
            )
        _JIT_NETWORKS[key] = factory
        return factory

    return deco


#: Platform specs keyed by name (see ``repro.model.platform``).
_PLATFORMS: Dict[str, Any] = {}


def register_platform(spec) -> Any:
    """Register a :class:`~repro.model.platform.PlatformSpec` under its
    own (unique, lower-cased) name; returns the spec for chaining.

    Like network registration, this must happen at import time of a
    module the runner's worker processes also import, so ``platform=``
    strings resolve in every process.
    """
    key = spec.name.lower()
    if key in _PLATFORMS:
        raise ValueError(f"platform {key!r} already registered")
    _PLATFORMS[key] = spec
    return spec


def _ensure_platform_builtins() -> None:
    if DEFAULT_PLATFORM not in _PLATFORMS:
        from repro.model.platform import (
            CLOUD_PLATFORM,
            SPOT_PLATFORM,
            UNIFORM_PLATFORM,
        )

        for spec in (UNIFORM_PLATFORM, CLOUD_PLATFORM, SPOT_PLATFORM):
            if spec.name not in _PLATFORMS:
                register_platform(spec)


def available_platforms() -> list[str]:
    """All registered platform names, sorted."""
    _ensure_platform_builtins()
    return sorted(_PLATFORMS)


def resolve_platform(platform) -> Any:
    """*platform* (name or spec object) as a
    :class:`~repro.model.platform.PlatformSpec`.

    Raises
    ------
    ValueError
        If a string names no registered platform.
    """
    if not isinstance(platform, str):
        return platform  # an ad-hoc PlatformSpec, used directly
    _ensure_platform_builtins()
    try:
        return _PLATFORMS[platform.lower()]
    except KeyError:
        raise ValueError(
            f"unknown platform {platform!r}; available: "
            f"{', '.join(available_platforms())}"
        ) from None


def platform_cost_vectorized(platform) -> bool:
    """Whether *platform*'s cost path stays vectorized in the batch tier.

    Boot delays become initial machine state, and initial state always
    routes batch evaluation through the sequential scalar fallback (the
    kernels pack idle machines) — so only zero-boot platforms keep the
    one-gather vectorized cost column.  Surfaced by ``repro algorithms``
    / ``repro run --verbose`` next to the per-network batch modes.

    >>> platform_cost_vectorized("uniform"), platform_cost_vectorized("spot")
    (True, True)
    >>> platform_cost_vectorized("cloud")  # 0.3 boot on every tier
    False
    """
    return not resolve_platform(platform).has_boot


def platform_state(
    workload: Workload,
    platform,
    network: str = DEFAULT_NETWORK,
    initial_avail: Optional[Sequence[float]] = None,
    initial_nic_free: Optional[Sequence[float]] = None,
):
    """Resolve *platform* into plain simulator inputs.

    Returns ``(workload, initial_avail, initial_nic_free)`` with the
    execution-time matrix speed-scaled and boot delays folded into the
    initial state (NIC state too under NIC-style networks — an unbooted
    machine's NIC is down).  The uniform platform returns the inputs
    unchanged (same objects), preserving bit-identity.

    This is the entry point the incremental baselines (HEFT, min-min,
    OLB, ...) use so their EFT decision phase sees exactly the machine
    model their reported schedule is measured under.
    """
    spec = resolve_platform(platform)
    if spec.is_uniform:
        return workload, initial_avail, initial_nic_free
    bound = spec.bind(workload.num_machines)
    workload = bound.apply(workload)
    if bound.has_boot:
        initial_avail = bound.combine_avail(initial_avail)
        if network.lower() == NIC_NETWORK or initial_nic_free is not None:
            initial_nic_free = bound.combine_avail(initial_nic_free)
    return workload, initial_avail, initial_nic_free


def _ensure_builtins() -> None:
    # The NIC backend lives one layer up (repro.extensions.contention) and
    # registers itself at import; import it lazily so repro.schedule keeps
    # no import-time dependency on the extension layer.  The vectorized
    # batch kernels register the "contention-free" and "nic" fast paths
    # the same way.
    if NIC_NETWORK not in _NETWORKS:
        import repro.extensions.contention  # noqa: F401  (registers "nic")
    if DEFAULT_NETWORK not in _BATCH_NETWORKS:
        import repro.schedule.vectorized  # noqa: F401
    if NIC_NETWORK not in _BATCH_NETWORKS:
        import repro.schedule.vectorized_contention  # noqa: F401
    if DEFAULT_NETWORK not in _JIT_NETWORKS:
        # always importable: the module keeps a plain-Python fallback
        # and only *selects* itself when numba (or an override) says so
        import repro.schedule.jit  # noqa: F401


def available_networks() -> list[str]:
    """All registered network-model names, sorted."""
    _ensure_builtins()
    return sorted(_NETWORKS)


def has_batch_kernel(network: str) -> bool:
    """Whether *network* registered a vectorized batch kernel.

    False means ``make_simulator(..., batch=True)`` still works but
    loops the scalar backend sequentially (and the resulting backend
    reports ``is_vectorized == False``).  Surfaced by ``repro
    algorithms`` / ``repro run --verbose`` so the fallback is visible.

    >>> has_batch_kernel("contention-free"), has_batch_kernel("nic")
    (True, True)
    """
    _ensure_builtins()
    return network.lower() in _BATCH_NETWORKS


def kernel_tier(network: str) -> str:
    """The batch tier ``make_simulator(..., batch=True)`` selects now.

    ``"jit"`` when the network registered a compiled kernel and the
    compiled tier is selected (numba importable, or ``REPRO_KERNEL=jit``
    forcing it), ``"vectorized"`` for a NumPy kernel, ``"sequential"``
    for networks with neither.  Backends constructed with initial
    machine state always run ``"sequential"`` regardless of this answer
    (the kernels pack idle machines).  Surfaced by ``repro algorithms``
    and ``repro run --verbose`` so the active tier is visible, not
    guessed.

    Raises
    ------
    ValueError
        If ``REPRO_KERNEL`` is set to an unknown mode, or demands
        ``jit`` on an installation without numba.
    """
    _ensure_builtins()
    from repro.schedule import jit as jit_mod

    key = network.lower()
    if key in _JIT_NETWORKS and jit_mod.jit_selected():
        return "jit"
    if key in _BATCH_NETWORKS:
        return "vectorized"
    return "sequential"


def batch_kernel_factory(network: str):
    """The batch-kernel factory of *network*'s active tier, or ``None``.

    For callers that build kernels directly against pre-packed tensors
    (the scenario tier constructs one kernel per sampled scenario,
    sharing DAG-structure tables across them); everyone else should go
    through :func:`make_simulator` with ``batch=True``.  Honors the
    same jit > vectorized selection (and ``REPRO_KERNEL`` override) as
    :func:`make_simulator`, so every batch-scoring path rides the
    compiled tier when it is available.
    """
    _ensure_builtins()
    key = network.lower()
    if kernel_tier(key) == "jit":
        return _JIT_NETWORKS[key]
    return _BATCH_NETWORKS.get(key)


def make_simulator(
    workload: Workload,
    network: str = DEFAULT_NETWORK,
    batch: bool = False,
    initial_avail: Optional[Sequence[float]] = None,
    initial_nic_free: Optional[Sequence[float]] = None,
    platform=DEFAULT_PLATFORM,
) -> SimulatorBackend:
    """A simulator backend for *workload* under the *network* model.

    With ``batch=True`` the scalar backend is wrapped in a
    :class:`~repro.schedule.vectorized.BatchBackend` that additionally
    offers ``batch_makespans(orders, machines)`` /
    ``batch_string_makespans(strings)``: the network's best registered
    kernel tier — compiled :mod:`~repro.schedule.jit` kernels when
    numba imports (override with ``REPRO_KERNEL=numpy|jit``), else the
    NumPy kernel (:class:`~repro.schedule.vectorized.BatchSimulator`
    for ``"contention-free"``,
    :class:`~repro.schedule.vectorized_contention.
    ContentionBatchSimulator` for ``"nic"``), else a sequential scalar
    fallback for networks without one (see :func:`kernel_tier` /
    :func:`has_batch_kernel`).  All tiers are bit-identical.
    Scalar-tier methods are forwarded without overhead either way, so a
    batch-wrapped backend is a drop-in :class:`SimulatorBackend`.

    ``initial_avail`` (and, for NIC-style models, ``initial_nic_free``)
    construct the backend against machines that are already busy with
    earlier work — the substrate of the online scheduling service
    (:mod:`repro.online`).  The built-in backends accept both; a custom
    registered network must accept the corresponding keyword to be used
    with a non-``None`` value.  Because the vectorized batch kernels pack
    idle-machine state, a batch request with initial state always routes
    through the sequential scalar fallback (``is_vectorized`` reports
    ``False``), keeping results exact.

    ``platform`` selects a registered
    :class:`~repro.model.platform.PlatformSpec` (or takes one directly):
    the backend is built against the speed-scaled execution matrix, with
    boot delays as initial state (so platforms with boot also take the
    sequential batch fallback) and the billing table attached — its
    ``score`` / ``string_score`` and, under ``batch=True``,
    ``batch_scores`` then report dollar cost next to makespan.  The
    default ``"uniform"`` platform adds *nothing* to this call — same
    workload object, no extra keyword — and is therefore bit-identical
    to the historical path.  A custom registered network must accept a
    ``cost_model`` keyword to be used with a non-uniform platform.

    Raises
    ------
    ValueError
        If *network* names no registered backend, or *platform* no
        registered platform.
    """
    _ensure_builtins()
    key = network.lower()
    try:
        factory = _NETWORKS[key]
    except KeyError:
        raise ValueError(
            f"unknown network model {network!r}; available: "
            f"{', '.join(available_networks())}"
        ) from None
    spec = resolve_platform(platform)
    cost_model = None
    if not spec.is_uniform:
        from repro.schedule.scoring import CostModel

        bound = spec.bind(workload.num_machines)
        workload = bound.apply(workload)
        cost_model = CostModel(workload.exec_times.values, bound.prices)
        if bound.has_boot:
            initial_avail = bound.combine_avail(initial_avail)
            if key == NIC_NETWORK or initial_nic_free is not None:
                initial_nic_free = bound.combine_avail(initial_nic_free)
    kwargs: Dict[str, Any] = {}
    if initial_avail is not None:
        kwargs["initial_avail"] = initial_avail
    if initial_nic_free is not None:
        kwargs["initial_nic_free"] = initial_nic_free
    if cost_model is not None:
        scalar = factory(workload, cost_model=cost_model, **kwargs)
    else:
        scalar = factory(workload, **kwargs)
    if not batch:
        return scalar
    from repro.schedule.vectorized import BatchBackend, SequentialBatchKernel

    kernel_factory = batch_kernel_factory(key)
    if kernel_factory is None or kwargs:
        kernel = SequentialBatchKernel(scalar)
    else:
        kernel = kernel_factory(workload)
    return BatchBackend(scalar, kernel, cost_model=cost_model)


def plain_schedule(evaluated: Any) -> Schedule:
    """The plain :class:`Schedule` inside a backend's ``evaluate`` result.

    ``Simulator.evaluate`` already returns one; wrapper results (e.g.
    ``ContentionSchedule``) are unwrapped via their ``schedule``
    attribute.
    """
    inner = getattr(evaluated, "schedule", evaluated)
    if not isinstance(inner, Schedule):
        raise TypeError(
            f"cannot extract a Schedule from {type(evaluated).__name__}"
        )
    return inner
