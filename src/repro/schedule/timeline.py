"""Per-machine timeline (Gantt) views of an evaluated schedule.

Used for reporting (ASCII Gantt charts in examples / the CLI) and for
consistency checking: :func:`verify_schedule` re-derives every constraint
of the model from a :class:`~repro.schedule.simulator.Schedule` and raises
if any is violated.  The property-based tests run it against schedules
produced by every algorithm in the library.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.workload import Workload
from repro.schedule.simulator import Schedule

#: Tolerance for floating-point comparisons of times.
EPS = 1e-9


@dataclass(frozen=True)
class MachineSpan:
    """One subtask's occupancy of a machine."""

    task: int
    machine: int
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


class Timeline:
    """Per-machine ordered spans of one schedule."""

    __slots__ = ("_spans", "_num_machines", "_makespan")

    def __init__(self, schedule: Schedule, num_machines: int):
        spans: list[list[MachineSpan]] = [[] for _ in range(num_machines)]
        for t in schedule.order:
            m = schedule.machine_of[t]
            spans[m].append(
                MachineSpan(
                    task=t,
                    machine=m,
                    start=schedule.start[t],
                    finish=schedule.finish[t],
                )
            )
        self._spans = tuple(tuple(s) for s in spans)
        self._num_machines = num_machines
        self._makespan = schedule.makespan

    @property
    def num_machines(self) -> int:
        return self._num_machines

    @property
    def makespan(self) -> float:
        return self._makespan

    def spans(self, machine: int) -> tuple[MachineSpan, ...]:
        """Spans on *machine* in execution order."""
        return self._spans[machine]

    def busy_time(self, machine: int) -> float:
        """Total computing time on *machine*."""
        return sum(s.duration for s in self._spans[machine])

    def idle_time(self, machine: int) -> float:
        """Makespan minus busy time on *machine*."""
        return self._makespan - self.busy_time(machine)

    def utilization(self, machine: int) -> float:
        """Busy fraction of *machine* over the makespan (0 if makespan 0)."""
        if self._makespan <= 0:
            return 0.0
        return self.busy_time(machine) / self._makespan

    def mean_utilization(self) -> float:
        """Average utilisation over all machines."""
        return sum(
            self.utilization(m) for m in range(self._num_machines)
        ) / self._num_machines

    def render_ascii(self, width: int = 72) -> str:
        """A fixed-width ASCII Gantt chart (one row per machine)."""
        if self._makespan <= 0:
            return "\n".join(
                f"m{m:<3}|" for m in range(self._num_machines)
            )
        scale = width / self._makespan
        lines = []
        for m in range(self._num_machines):
            row = [" "] * width
            for s in self._spans[m]:
                a = min(width - 1, int(s.start * scale))
                b = min(width, max(a + 1, int(s.finish * scale)))
                label = f"{s.task}"
                for i in range(a, b):
                    row[i] = "#"
                # overlay the task id at the left edge of its block
                for j, ch in enumerate(label):
                    if a + j < width:
                        row[a + j] = ch
            lines.append(f"m{m:<3}|{''.join(row)}|")
        lines.append(f"     0{' ' * (width - 12)}{self._makespan:>10.1f}")
        return "\n".join(lines)


def verify_schedule(
    workload: Workload, schedule: Schedule, eps: float = EPS
) -> None:
    """Check every model constraint; raise ``AssertionError`` on violation.

    Verified properties:

    1. every subtask appears exactly once, with a valid machine;
    2. durations equal ``E[machine, task]``;
    3. subtasks on one machine do not overlap and follow string order;
    4. no subtask starts before each input item has arrived
       (producer finish + transfer time when machines differ);
    5. the recorded makespan equals the max finish time.
    """
    k = workload.num_tasks
    assert sorted(schedule.order) == list(range(k)), "order is not a permutation"
    assert len(schedule.machine_of) == k, "machine_of has wrong length"
    for t in range(k):
        m = schedule.machine_of[t]
        assert 0 <= m < workload.num_machines, f"bad machine {m} for task {t}"
        dur = schedule.finish[t] - schedule.start[t]
        expected = workload.exec_time(m, t)
        assert abs(dur - expected) <= eps, (
            f"task {t} runs for {dur}, expected E[{m},{t}]={expected}"
        )
        assert schedule.start[t] >= -eps, f"task {t} starts before time 0"

    # machine exclusivity + string order
    tl = Timeline(schedule, workload.num_machines)
    for m in range(workload.num_machines):
        prev_finish = 0.0
        for span in tl.spans(m):
            assert span.start >= prev_finish - eps, (
                f"task {span.task} overlaps previous task on machine {m}"
            )
            prev_finish = span.finish

    # data arrival
    for d in workload.graph.data_items:
        pm = schedule.machine_of[d.producer]
        cm = schedule.machine_of[d.consumer]
        arrival = schedule.finish[d.producer] + workload.comm_time(
            pm, cm, d.index
        )
        assert schedule.start[d.consumer] >= arrival - eps, (
            f"task {d.consumer} starts at {schedule.start[d.consumer]} "
            f"before item {d.index} arrives at {arrival}"
        )

    assert abs(schedule.makespan - max(schedule.finish)) <= eps, (
        "makespan does not equal the max finish time"
    )
