"""Compiled (Numba JIT) batch-evaluation kernels — the fastest tier.

The NumPy batch kernels (:mod:`repro.schedule.vectorized`,
:mod:`repro.schedule.vectorized_contention`) top out around 2.5-3.5x
over the scalar walk because each position-major sweep is many small
NumPy operations whose dispatch overhead dominates at paper scale.
This module compiles the *whole* schedule walk — all ``k`` positions,
all batch rows — into one machine-code loop nest over the exact same
:class:`~repro.schedule.vectorized.WorkloadPack` gather tables, and
parallelises it across batch rows with ``numba.prange`` (every schedule
in a batch is independent, so rows shard perfectly across cores).

Kernel tiers and selection
--------------------------

``make_simulator(w, network, batch=True)`` picks the best available
tier per network:

1. ``jit``        — this module's compiled kernels (both built-in
   networks), auto-selected when :mod:`numba` imports;
2. ``vectorized`` — the NumPy kernels, the fallback when numba is
   absent (this repo never *requires* numba — it is an extra);
3. ``sequential`` — a scalar loop, for networks without any kernel or
   for backends carrying initial machine state.

The environment variable ``REPRO_KERNEL`` overrides the choice for
debugging and CI: ``REPRO_KERNEL=numpy`` pins the NumPy tier even with
numba installed; ``REPRO_KERNEL=jit`` demands the compiled tier and
fails loudly (instead of silently running 100x slower) when numba is
missing.  Unset (or ``auto``) means "best available".

Exactness
---------

The compiled walks perform the **same arithmetic with the same
operands** as the NumPy kernels (one addition per crossing transfer,
one addition per execution time, maxima elsewhere; NIC pushes chained
in ascending item order), so results are bit-identical to
:class:`~repro.schedule.vectorized.BatchSimulator` /
:class:`~repro.schedule.vectorized_contention.ContentionBatchSimulator`
— and transitively to the scalar simulators.  Floating-point ``max``
returns one of its operands exactly, and each transfer/execution cost
enters through a single addition in the same order in every tier, so
no tolerance is needed anywhere: the property suite
(``tests/properties/test_jit_properties.py``) asserts ``==``.

The kernel bodies are written in *nopython-compatible plain Python*:
with numba installed they are ``@njit(parallel=True, cache=True)``
compiled (``fastmath`` stays off — reassociation would break
bit-identity); without it they remain ordinary Python functions, which
is what lets the equivalence suite run on numba-free installations.

Warmup and caching policy
-------------------------

Compilation happens lazily on the first call per argument-type
signature (one-time, order of a second) and is persisted to numba's
on-disk cache (``cache=True``), so later processes skip it.  Thread
count follows numba's standard controls (``NUMBA_NUM_THREADS`` /
``numba.set_num_threads``).  Benchmarks must time *warm* kernels only
— ``benchmarks/bench_micro_jit.py`` warms up outside the measured
region and asserts the measured calls are compile-free.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.model.workload import Workload
from repro.schedule.backend import register_jit_network
from repro.schedule.vectorized import BatchSimulator, WorkloadPack
from repro.schedule.vectorized_contention import ContentionBatchSimulator

try:  # pragma: no cover - exercised only on numba-enabled installs
    from numba import njit, prange

    _NUMBA_OK = True
except ImportError:
    _NUMBA_OK = False
    prange = range

    def njit(*args, **kwargs):
        """No-op decorator: the kernels run as plain Python."""

        def deco(fn):
            return fn

        return deco


#: Environment override: "auto" (default), "jit" or "numpy".
KERNEL_ENV_VAR = "REPRO_KERNEL"

_KERNEL_MODES = ("auto", "jit", "numpy")


def numba_available() -> bool:
    """Whether the compiled tier can actually compile.

    A plain module-level flag read at *selection* time (not import
    time), so tests can monkeypatch ``repro.schedule.jit._NUMBA_OK`` to
    exercise both selection paths on any installation.
    """
    return _NUMBA_OK


def requested_kernel() -> str:
    """The ``REPRO_KERNEL`` override, validated: auto | jit | numpy.

    Raises
    ------
    ValueError
        If the variable holds anything else — a typo'd override must
        not silently degrade to auto-selection.
    """
    raw = os.environ.get(KERNEL_ENV_VAR, "").strip().lower() or "auto"
    if raw not in _KERNEL_MODES:
        raise ValueError(
            f"{KERNEL_ENV_VAR}={raw!r} is not a valid kernel override; "
            f"expected one of {', '.join(_KERNEL_MODES)}"
        )
    return raw


def jit_selected() -> bool:
    """Whether tier selection should pick the compiled kernels now.

    Raises
    ------
    ValueError
        If ``REPRO_KERNEL=jit`` demands compilation but numba is not
        installed — failing loudly beats silently running the plain
        Python loop nest ~100x slower than the NumPy tier.
    """
    mode = requested_kernel()
    if mode == "numpy":
        return False
    if mode == "jit":
        if not numba_available():
            raise ValueError(
                f"{KERNEL_ENV_VAR}=jit but numba is not installed; "
                "install the extra (pip install repro-mshc[jit]) or "
                f"unset {KERNEL_ENV_VAR}"
            )
        return True
    return numba_available()


# ----------------------------------------------------------------------
# the compiled walks
# ----------------------------------------------------------------------
#
# Layout notes (shared with the NumPy kernels via WorkloadPack):
#   E        (l, k)  execution times
#   tr       (rows+1, p+1) zero-padded transfer matrix
#   pair_row (l, l)  machine pair -> tr row; diagonal -> the zero row
#   deg      (k,)    in-degree;  pad_prod/pad_item (k, max(D,1)) CSR lanes
#   out_deg  (k,)    out-degree; pad_out_item/pad_out_cons likewise,
#                    ascending item index (the NIC serialisation order)
# Only real lanes (j < deg[t] / j < out_deg[t]) are touched, so the
# sentinel conventions never enter the compiled walk at all.


@njit(parallel=True, cache=True)
def _walk_plain(orders, machines, E, tr, pair_row, deg, pad_prod, pad_item, out):
    B, k = orders.shape
    l = E.shape[0]
    for b in prange(B):
        finish = np.zeros(k)
        avail = np.zeros(l)
        for p in range(k):
            t = orders[b, p]
            m = machines[b, t]
            ready = avail[m]
            arrive = 0.0
            for j in range(deg[t]):
                prod = pad_prod[t, j]
                cand = finish[prod] + tr[
                    pair_row[machines[b, prod], m], pad_item[t, j]
                ]
                if cand > arrive:
                    arrive = cand
            if arrive > ready:
                ready = arrive
            ready += E[m, t]
            finish[t] = ready
            avail[m] = ready
        best = 0.0
        for i in range(l):
            if avail[i] > best:
                best = avail[i]
        out[b] = best


@njit(parallel=True, cache=True)
def _walk_nic(
    orders,
    machines,
    E,
    tr,
    pair_row,
    deg,
    pad_prod,
    pad_item,
    out_deg,
    pad_out_item,
    pad_out_cons,
    num_items,
    out,
):
    B, k = orders.shape
    l = E.shape[0]
    for b in prange(B):
        finish = np.zeros(k)
        avail = np.zeros(l)
        nic = np.zeros(l)
        arrival = np.zeros(num_items)
        for q in range(k):
            t = orders[b, q]
            m = machines[b, t]
            ready = avail[m]
            tmax = 0.0
            for j in range(deg[t]):
                prod = pad_prod[t, j]
                # the scalar walk's select: a consumer on the
                # producer's machine reads the finish time, a crossing
                # edge reads the item's NIC-serialised arrival
                if machines[b, prod] == m:
                    cand = finish[prod]
                else:
                    cand = arrival[pad_item[t, j]]
                if cand > tmax:
                    tmax = cand
            if tmax > ready:
                ready = tmax
            ready += E[m, t]
            finish[t] = ready
            avail[m] = ready
            do = out_deg[t]
            if do > 0:
                # eager pushes serialised on the producer's NIC in item
                # order; same-machine pushes run as zero-duration
                # transfers (their lifted nf is absorbed bit-for-bit by
                # the next max — see vectorized_contention.py), and
                # their arrival slots are junk by design: the consumer
                # reads finish[prod] instead
                nf = nic[m]
                if ready > nf:
                    nf = ready
                for j in range(do):
                    item = pad_out_item[t, j]
                    nf = nf + tr[
                        pair_row[machines[b, pad_out_cons[t, j]], m], item
                    ]
                    arrival[item] = nf
                nic[m] = nf
        best = 0.0
        for i in range(l):
            if avail[i] > best:
                best = avail[i]
        out[b] = best


# ----------------------------------------------------------------------
# kernel classes
# ----------------------------------------------------------------------


@register_jit_network("contention-free")
class JitBatchSimulator(BatchSimulator):
    """Compiled batch kernel for the contention-free model.

    Drop-in for :class:`~repro.schedule.vectorized.BatchSimulator`
    (same constructor, same batch API, bit-identical results); the walk
    runs as one ``@njit(parallel=True)`` loop nest with batch rows
    sharded across threads by ``prange``.
    """

    __slots__ = ()

    kernel_tier = "jit"

    #: One compiled call per batch whenever possible: the JIT walk
    #: carries only per-row O(k + l) state (no multi-MB scratch), so
    #: cache-residency chunking would just amputate prange's row range.
    chunk_size = 65536

    def _score_chunk(
        self, orders: np.ndarray, machines: np.ndarray
    ) -> np.ndarray:
        out = np.empty(orders.shape[0])
        _walk_plain(
            orders,
            machines,
            self._E,
            self._tr,
            self._pair_row,
            self._deg,
            self._pad_prod,
            self._pad_item,
            out,
        )
        return out


@register_jit_network("nic")
class JitContentionBatchSimulator(ContentionBatchSimulator):
    """Compiled batch kernel for the ``"nic"`` network model.

    Drop-in for :class:`~repro.schedule.vectorized_contention.
    ContentionBatchSimulator` (same constructor, same batch API,
    bit-identical results), compiled and row-parallel like
    :class:`JitBatchSimulator`.
    """

    __slots__ = ()

    kernel_tier = "jit"

    chunk_size = 65536

    def _score_chunk(
        self, orders: np.ndarray, machines: np.ndarray
    ) -> np.ndarray:
        out = np.empty(orders.shape[0])
        _walk_nic(
            orders,
            machines,
            self._E,
            self._tr,
            self._pair_row,
            self._deg,
            self._pad_prod,
            self._pad_item,
            self._out_deg,
            self._pad_out_item,
            self._pad_out_cons,
            self._p,
            out,
        )
        return out


def warmup(workload: Optional[Workload] = None) -> bool:
    """Compile both kernels now (idempotent); True when numba compiled.

    Benchmarks and long-running services call this once outside any
    measured region so the first *real* batch is not billed the one-off
    compile.  Without numba this still exercises the plain-Python
    walks (cheap at the tiny default workload) and returns False.
    """
    if workload is None:
        from repro.workloads import small_workload

        workload = small_workload(seed=0)
    from repro.schedule.operations import random_valid_string

    s = random_valid_string(workload.graph, workload.num_machines, 0)
    for cls in (JitBatchSimulator, JitContentionBatchSimulator):
        cls(workload, pack=WorkloadPack(workload)).string_makespans([s])
    return numba_available()
