"""Event-driven online scheduling service over the offline simulators.

:class:`DynamicSimulator` runs a discrete-event loop over a
:class:`~repro.online.arrivals.JobStream`: jobs arrive over simulated
time, are committed against the machines *as they currently are*, and
periodically re-optimised.  Everything is layered on the existing exact
machinery — each job is scored by the same
:class:`~repro.schedule.simulator.Simulator` /
:class:`~repro.extensions.contention.ContentionSimulator` backends as
offline runs, constructed through
:func:`~repro.schedule.backend.make_simulator` with the service's
per-machine busy timelines as ``initial_avail`` / ``initial_nic_free``.

Event loop
----------

A single binary heap keyed ``(time, priority, sequence)`` holds four
event kinds, with the priority pinning same-instant ordering:

====================  ========  ==============================================
event                 priority  effect
====================  ========  ==============================================
``task_done``         0         one subtask finished (log + bookkeeping)
``job_done``          1         a whole job finished (emit its JobRecord)
``arrival``           2         commit the new job via the dispatch policy
``reopt``             3         re-optimisation window over residual jobs
====================  ========  ==============================================

So a job arriving exactly when another completes sees the machine state
*after* that completion is logged, and a re-optimisation tick
coinciding with an arrival runs after the arrival commits — both
tie-breaks are part of the service contract and pinned by tests.  The
``sequence`` counter makes heap order fully deterministic; no wall
clock enters the loop, so a run is an exactly replayable function of
``(stream, network, policy, reopt, seed)``.

Commit-at-arrival and the clamping rule
---------------------------------------

When a job arrives at time ``T`` the dispatch policy schedules its
whole DAG immediately, against availability vectors **clamped to the
present**: ``avail[m] := max(avail[m], T)``.  Machines free before
``T`` cannot run work from a job that did not exist yet, so clamping is
what makes committed start times causally sound.  Two consequences are
load-bearing:

* *Offline equivalence* — for a single job at ``T = 0`` the clamp is
  the identity and the seeded vectors are all zeros, which the scalar
  simulators treat as exactly their historical initial state; the
  online service therefore reproduces the offline schedule
  **bit-identically** on every backend (a pinned property test).
* NIC reservations need *no* clamp: a transfer starts at
  ``max(producer_finish, nic_free)`` and the producer finishes after
  ``T`` by construction, so a stale ``nic_free`` below ``T`` is
  absorbed by the max.

Re-optimisation windows
-----------------------

A tick at time ``T`` rolls back the **maximal suffix** of committed
jobs that are entirely in the future — no subtask started (all starts
``>= T``) and no completion event fired.  Their machine-state snapshot
from commit time is restored, re-clamped to ``T``, and each incumbent
string is handed to the optim core
(:func:`~repro.online.policies.improve_residual`) under its iteration
deadline.  Keeping the incumbent re-evaluates it bit-identically under
the re-clamped state (``max(avail, T)`` only selects, never computes,
and every residual start is ``>= T``), so a window that finds nothing
better is a true no-op.  Jobs with any task finishing at or before
``T`` necessarily started before ``T`` and are never rolled back, which
is what makes task-completion accounting conservative: every arrived
subtask completes **exactly once** across the whole run (a pinned
property).  Stale completion events from a rolled-back commit are
skipped via a per-job epoch counter.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Any, List, Optional, Tuple

from repro.online.arrivals import JobArrival, JobStream
from repro.online.metrics import JobRecord, OnlineMetrics, summarize
from repro.online.policies import ReoptConfig, dispatch, improve_residual
from repro.runner.spec import derive_seed
from repro.schedule.backend import (
    DEFAULT_NETWORK,
    NIC_NETWORK,
    make_simulator,
    plain_schedule,
)
from repro.schedule.encoding import ScheduleString
from repro.schedule.simulator import Schedule
from repro.workloads.presets import build_workload

#: Same-instant event ordering (lower runs first).
_PRIO_TASK_DONE = 0
_PRIO_JOB_DONE = 1
_PRIO_ARRIVAL = 2
_PRIO_REOPT = 3


class _CommittedJob:
    """Mutable service-side state of one committed job."""

    __slots__ = (
        "index",
        "arrival",
        "workload",
        "string",
        "evaluated",
        "schedule",
        "avail_before",
        "nic_before",
        "epoch",
        "fired",
        "t_dispatch",
        "t_completed",
    )

    def __init__(self, index: int, arrival: JobArrival, workload) -> None:
        self.index = index
        self.arrival = arrival
        self.workload = workload
        self.string: Optional[ScheduleString] = None
        self.evaluated: Any = None
        self.schedule: Optional[Schedule] = None
        # machine state at commit time, *before* this job's work —
        # the rollback point for re-optimisation
        self.avail_before: List[float] = []
        self.nic_before: List[float] = []
        self.epoch = 0
        self.fired = 0  # completion events already logged
        self.t_dispatch = 0.0
        self.t_completed: Optional[float] = None


@dataclass(frozen=True)
class CommittedJobView:
    """Read-only view of one job's final committed schedule."""

    job_id: str
    t_arrival: float
    t_dispatch: float
    t_completed: float
    string: ScheduleString
    schedule: Schedule
    evaluated: Any


@dataclass(frozen=True)
class OnlineResult:
    """Outcome of one :meth:`DynamicSimulator.run`."""

    network: str
    policy: str
    num_machines: int
    records: Tuple[JobRecord, ...]
    events: Tuple[dict, ...]
    jobs: Tuple[CommittedJobView, ...]
    final_avail: Tuple[float, ...]
    metrics: OnlineMetrics

    def event_log_json(self) -> str:
        """The event log as canonical JSON (replay-comparison format).

        ``repr``-roundtrip floats plus sorted keys make byte-identical
        logs the definition of "same run" in the determinism tests and
        the committed golden log.
        """
        return json.dumps(list(self.events), sort_keys=True, indent=2)


class DynamicSimulator:
    """Discrete-event online scheduling service (see module docstring).

    Parameters
    ----------
    stream:
        The arrival stream; may be empty (the loop exits immediately).
    network:
        Cost-model backend every commitment is scored under
        (``"contention-free"`` or ``"nic"``).
    policy:
        Dispatch policy name from
        :data:`~repro.online.policies.DISPATCH_POLICIES`.
    reopt:
        Optional :class:`~repro.online.policies.ReoptConfig`; ``None``
        disables re-optimisation ticks entirely.
    seed:
        Root seed for re-optimisation engines (per-window, per-job seeds
        derive from it); dispatch itself is deterministic.
    """

    def __init__(
        self,
        stream: JobStream,
        network: str = DEFAULT_NETWORK,
        policy: str = "heft",
        reopt: Optional[ReoptConfig] = None,
        seed: int = 0,
    ):
        self._stream = stream
        self._network = network
        self._policy = policy
        self._reopt = reopt
        self._seed = int(seed)
        self._track_nic = network.lower() == NIC_NETWORK

    # ------------------------------------------------------------------
    # event helpers
    # ------------------------------------------------------------------

    def _clamped(self, avail: List[float], now: float) -> List[float]:
        """Availability as the arriving/re-optimised job may use it."""
        return [a if a >= now else now for a in avail]

    def _evaluate_committed(
        self,
        job: _CommittedJob,
        string: ScheduleString,
        eff_avail: List[float],
        nic_free: List[float],
    ) -> None:
        """Score *string* for *job* against the given state, exactly."""
        sim = make_simulator(
            job.workload,
            self._network,
            initial_avail=eff_avail,
            initial_nic_free=nic_free if self._track_nic else None,
        )
        evaluated = sim.evaluate(string)
        job.string = string
        job.evaluated = evaluated
        job.schedule = plain_schedule(evaluated)

    def _apply_state(
        self, job: _CommittedJob, avail: List[float], nic_free: List[float]
    ) -> None:
        """Fold *job*'s committed schedule into the machine state."""
        sched = job.schedule
        for task in sched.order:
            avail[sched.machine_of[task]] = sched.finish[task]
        if self._track_nic:
            for tr in job.evaluated.transfers:
                m = tr.src_machine
                if tr.finish > nic_free[m]:
                    nic_free[m] = tr.finish

    def _push_completions(
        self, heap: list, seq: int, job: _CommittedJob
    ) -> int:
        """Queue per-task and whole-job completion events; returns seq."""
        sched = job.schedule
        for task in sched.order:
            heappush(
                heap,
                (
                    sched.finish[task],
                    _PRIO_TASK_DONE,
                    seq,
                    ("task_done", job.index, job.epoch, task),
                ),
            )
            seq += 1
        heappush(
            heap,
            (
                sched.makespan,
                _PRIO_JOB_DONE,
                seq,
                ("job_done", job.index, job.epoch),
            ),
        )
        return seq + 1

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------

    def run(self) -> OnlineResult:
        """Drain the stream; returns the full service outcome."""
        stream = self._stream
        l = stream.num_machines
        avail: List[float] = [0.0] * l
        nic_free: List[float] = [0.0] * l

        heap: list = []
        seq = 0
        for i, arr in enumerate(stream):
            heappush(
                heap, (arr.t_arrival, _PRIO_ARRIVAL, seq, ("arrival", i))
            )
            seq += 1
        pending_arrivals = len(stream)
        if self._reopt is not None and heap:
            heappush(
                heap,
                (self._reopt.interval, _PRIO_REOPT, seq, ("reopt", 1)),
            )
            seq += 1

        committed: List[_CommittedJob] = []
        records: List[JobRecord] = []
        events: List[dict] = []

        while heap:
            now, _prio, _seq, payload = heappop(heap)
            kind = payload[0]

            if kind == "task_done":
                _, jidx, epoch, task = payload
                job = committed[jidx]
                if epoch != job.epoch:
                    continue  # superseded by a re-optimisation window
                job.fired += 1
                events.append(
                    {
                        "t": now,
                        "type": "task_done",
                        "job": job.arrival.job_id,
                        "task": task,
                    }
                )

            elif kind == "job_done":
                _, jidx, epoch = payload
                job = committed[jidx]
                if epoch != job.epoch:
                    continue
                job.t_completed = now
                records.append(
                    JobRecord(
                        job_id=job.arrival.job_id,
                        t_arrival=job.arrival.t_arrival,
                        t_dispatch=job.t_dispatch,
                        t_completed=now,
                        num_tasks=job.workload.num_tasks,
                    )
                )
                events.append(
                    {
                        "t": now,
                        "type": "job_done",
                        "job": job.arrival.job_id,
                    }
                )

            elif kind == "arrival":
                arr = stream[payload[1]]
                pending_arrivals -= 1
                events.append(
                    {"t": now, "type": "arrival", "job": arr.job_id}
                )
                job = _CommittedJob(
                    len(committed), arr, build_workload(arr.spec)
                )
                job.avail_before = avail.copy()
                job.nic_before = nic_free.copy()
                job.t_dispatch = now
                eff = self._clamped(avail, now)
                result = dispatch(
                    self._policy,
                    job.workload,
                    self._network,
                    initial_avail=eff,
                    initial_nic_free=(
                        nic_free if self._track_nic else None
                    ),
                )
                self._evaluate_committed(job, result.string, eff, nic_free)
                self._apply_state(job, avail, nic_free)
                committed.append(job)
                seq = self._push_completions(heap, seq, job)
                events.append(
                    {
                        "t": now,
                        "type": "dispatch",
                        "job": arr.job_id,
                        "policy": self._policy,
                        "tasks": job.workload.num_tasks,
                        "finish": job.schedule.makespan,
                    }
                )

            elif kind == "reopt":
                window = payload[1]
                seq = self._run_reopt_window(
                    now, window, committed, heap, seq, avail, nic_free,
                    events,
                )
                # keep ticking while work remains in the system
                if pending_arrivals > 0 or any(
                    j.t_completed is None for j in committed
                ):
                    heappush(
                        heap,
                        (
                            now + self._reopt.interval,
                            _PRIO_REOPT,
                            seq,
                            ("reopt", window + 1),
                        ),
                    )
                    seq += 1

        views = tuple(
            CommittedJobView(
                job_id=j.arrival.job_id,
                t_arrival=j.arrival.t_arrival,
                t_dispatch=j.t_dispatch,
                t_completed=j.t_completed,
                string=j.string,
                schedule=j.schedule,
                evaluated=j.evaluated,
            )
            for j in committed
        )
        return OnlineResult(
            network=self._network,
            policy=self._policy,
            num_machines=l,
            records=tuple(records),
            events=tuple(events),
            jobs=views,
            final_avail=tuple(avail),
            metrics=summarize(records),
        )

    def _run_reopt_window(
        self,
        now: float,
        window: int,
        committed: List[_CommittedJob],
        heap: list,
        seq: int,
        avail: List[float],
        nic_free: List[float],
        events: List[dict],
    ) -> int:
        """One re-optimisation tick at time *now*; returns updated seq."""
        # maximal suffix of commitments entirely in the future
        first = len(committed)
        for j in range(len(committed) - 1, -1, -1):
            job = committed[j]
            if (
                job.t_completed is None
                and job.fired == 0
                and min(job.schedule.start) >= now
            ):
                first = j
            else:
                break
        residual = committed[first:]
        improved_jobs = 0
        if residual:
            # restore the machine state from before the earliest
            # residual commitment, then replay the suffix
            avail[:] = residual[0].avail_before
            nic_free[:] = residual[0].nic_before
            for job in residual:
                job.epoch += 1  # invalidate queued completion events
                job.avail_before = avail.copy()
                job.nic_before = nic_free.copy()
                eff = self._clamped(avail, now)
                nic_arg = nic_free if self._track_nic else None
                string, _cost, improved = improve_residual(
                    job.workload,
                    job.string,
                    self._reopt,
                    network=self._network,
                    initial_avail=eff,
                    initial_nic_free=nic_arg,
                    seed=derive_seed(
                        "online-reopt", self._seed, window, job.index
                    ),
                )
                self._evaluate_committed(job, string, eff, nic_free)
                self._apply_state(job, avail, nic_free)
                seq = self._push_completions(heap, seq, job)
                improved_jobs += int(improved)
        events.append(
            {
                "t": now,
                "type": "reopt",
                "window": window,
                "rolled_back": len(residual),
                "improved": improved_jobs,
            }
        )
        return seq
