"""Per-job service metrics: flow time, throughput, tail latency.

The offline library's objective is makespan of one application; a
service streaming jobs cares about *responsiveness* instead.  The
canonical quantities (all in simulated time, so they are exactly
reproducible run-to-run):

* **flow time** of a job — ``t_completed - t_arrival``, the end-to-end
  latency a submitter observes;
* **throughput** — completed jobs per unit time over the horizon
  (first arrival to last completion);
* **p50 / p99 flow** — median and tail latency, computed with the
  deterministic nearest-rank rule (no interpolation, so percentiles of
  integer-valued samples stay exact).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class JobRecord:
    """Lifecycle of one job through the service."""

    job_id: str
    t_arrival: float
    t_dispatch: float
    t_completed: float
    num_tasks: int

    @property
    def flow_time(self) -> float:
        """End-to-end latency: completion minus arrival."""
        return self.t_completed - self.t_arrival

    def to_doc(self) -> dict:
        return {
            "job_id": self.job_id,
            "t_arrival": self.t_arrival,
            "t_dispatch": self.t_dispatch,
            "t_completed": self.t_completed,
            "num_tasks": self.num_tasks,
            "flow_time": self.flow_time,
        }


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]); 0.0 for an empty sample."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    xs = sorted(values)
    if not xs:
        return 0.0
    rank = max(1, math.ceil(q * len(xs)))
    return xs[rank - 1]


@dataclass(frozen=True)
class OnlineMetrics:
    """Aggregate service metrics over one run (simulated time)."""

    num_jobs: int
    horizon: float
    throughput: float
    mean_flow: float
    p50_flow: float
    p99_flow: float
    max_flow: float

    def to_doc(self) -> dict:
        return {
            "num_jobs": self.num_jobs,
            "horizon": self.horizon,
            "throughput": self.throughput,
            "mean_flow": self.mean_flow,
            "p50_flow": self.p50_flow,
            "p99_flow": self.p99_flow,
            "max_flow": self.max_flow,
        }


def summarize(records: Sequence[JobRecord]) -> OnlineMetrics:
    """Aggregate *records* into an :class:`OnlineMetrics`.

    The horizon runs from the earliest arrival to the latest completion;
    an empty record set yields all-zero metrics (the empty-stream edge
    case is legal and tested).
    """
    if not records:
        return OnlineMetrics(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    flows = [r.flow_time for r in records]
    t0 = min(r.t_arrival for r in records)
    t1 = max(r.t_completed for r in records)
    horizon = t1 - t0
    throughput = len(records) / horizon if horizon > 0 else 0.0
    return OnlineMetrics(
        num_jobs=len(records),
        horizon=horizon,
        throughput=throughput,
        mean_flow=sum(flows) / len(flows),
        p50_flow=percentile(flows, 0.50),
        p99_flow=percentile(flows, 0.99),
        max_flow=max(flows),
    )
