"""Online scheduling service: streaming DAG arrivals over the simulators.

Public surface of the event-driven layer (see
:mod:`repro.online.simulator` for the full semantics):

* :class:`~repro.online.arrivals.JobStream` /
  :func:`~repro.online.arrivals.poisson_stream` /
  :func:`~repro.online.arrivals.load_trace` — where jobs come from;
* :class:`~repro.online.simulator.DynamicSimulator` — the event loop;
* :data:`~repro.online.policies.DISPATCH_POLICIES` /
  :class:`~repro.online.policies.ReoptConfig` — the decision layers;
* :func:`~repro.online.metrics.summarize` — flow-time / throughput
  aggregation.
"""

from repro.online.arrivals import (
    JobArrival,
    JobStream,
    load_trace,
    mean_job_work,
    poisson_stream,
    rate_for_utilisation,
    save_trace,
)
from repro.online.metrics import (
    JobRecord,
    OnlineMetrics,
    percentile,
    summarize,
)
from repro.online.policies import (
    DISPATCH_POLICIES,
    ReoptConfig,
    dispatch,
    improve_residual,
)
from repro.online.simulator import (
    CommittedJobView,
    DynamicSimulator,
    OnlineResult,
)

__all__ = [
    "JobArrival",
    "JobStream",
    "load_trace",
    "mean_job_work",
    "poisson_stream",
    "rate_for_utilisation",
    "save_trace",
    "JobRecord",
    "OnlineMetrics",
    "percentile",
    "summarize",
    "DISPATCH_POLICIES",
    "ReoptConfig",
    "dispatch",
    "improve_residual",
    "CommittedJobView",
    "DynamicSimulator",
    "OnlineResult",
]
