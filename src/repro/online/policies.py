"""Online dispatch policies and the re-optimisation window.

Two decision layers drive the service:

**Frontier dispatch** — when a job arrives, a deterministic list
scheduler places its whole DAG against the machines *as they are*: the
per-machine availability (and, under ``"nic"``, per-NIC reservation)
vectors seed the scheduler's EFT queries via the ``initial_avail`` /
``initial_nic_free`` plumbing added to every baseline.  The registry
:data:`DISPATCH_POLICIES` exposes the classic heuristics (OLB, min-min,
max-min, HEFT) under their service names.

**Re-optimisation** — on a periodic tick, the service rolls back every
committed job none of whose subtasks has started yet and hands each
incumbent string to the PR-4 optim core (simulated annealing or tabu
search) running against the *current* machine state through an
:class:`~repro.optim.evaluation.EvaluationService` constructed with
``initial_avail`` / ``initial_nic_free``.  The window is budgeted by the
engine's :class:`~repro.optim.stop.StopPolicy`; if the budget is too
tight to find a strictly better string the **incumbent is kept
unchanged** (and, by the clamping argument in
:mod:`repro.online.simulator`, re-evaluates bit-identically), so a
zero-iteration window is a no-op rather than a perturbation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.baselines.base import BaselineResult
from repro.baselines.heft import heft
from repro.baselines.minmin import max_min, min_min
from repro.baselines.olb import olb
from repro.model.workload import Workload
from repro.optim.annealing import SAConfig, run_sa
from repro.optim.evaluation import EvaluationService
from repro.optim.tabu import TabuConfig, run_tabu
from repro.schedule.backend import DEFAULT_NETWORK
from repro.schedule.encoding import ScheduleString

#: Dispatch policy name -> baseline callable.  All share the signature
#: ``(workload, network, initial_avail=..., initial_nic_free=...)``.
DISPATCH_POLICIES: Dict[str, Callable[..., BaselineResult]] = {
    "olb": olb,
    "min-min": min_min,
    "max-min": max_min,
    "heft": heft,
}

#: Re-optimisation engine name -> functional runner.
REOPT_ENGINES = ("tabu", "sa")


def dispatch(
    policy: str,
    workload: Workload,
    network: str = DEFAULT_NETWORK,
    initial_avail: Optional[Sequence[float]] = None,
    initial_nic_free: Optional[Sequence[float]] = None,
) -> BaselineResult:
    """Run dispatch *policy* against the given machine state."""
    try:
        fn = DISPATCH_POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown dispatch policy {policy!r}; "
            f"available: {sorted(DISPATCH_POLICIES)}"
        ) from None
    return fn(
        workload,
        network,
        initial_avail=initial_avail,
        initial_nic_free=initial_nic_free,
    )


@dataclass(frozen=True)
class ReoptConfig:
    """Parameters of the periodic re-optimisation window.

    Attributes
    ----------
    interval:
        Simulated-time gap between ticks.
    engine:
        ``"tabu"`` (batch-scored neighborhoods) or ``"sa"``
        (delta-scored proposals).
    max_iterations:
        Engine iteration budget per job per window — the deterministic
        deadline.  ``0`` is legal and keeps every incumbent (tested
        edge case).
    time_limit:
        Optional wall-clock cap in seconds per job per window.  Leaving
        it ``None`` (the default) keeps runs exactly replayable;
        setting it trades determinism for a hard latency bound.
    """

    interval: float = 50.0
    engine: str = "tabu"
    max_iterations: int = 40
    time_limit: Optional[float] = None

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(f"interval must be > 0, got {self.interval}")
        if self.engine not in REOPT_ENGINES:
            raise ValueError(
                f"unknown reopt engine {self.engine!r}; "
                f"available: {list(REOPT_ENGINES)}"
            )
        if self.max_iterations < 0:
            raise ValueError(
                f"max_iterations must be >= 0, got {self.max_iterations}"
            )
        if self.time_limit is not None and self.time_limit <= 0:
            raise ValueError(
                f"time_limit must be > 0, got {self.time_limit}"
            )


def improve_residual(
    workload: Workload,
    incumbent: ScheduleString,
    config: ReoptConfig,
    network: str = DEFAULT_NETWORK,
    initial_avail: Optional[Sequence[float]] = None,
    initial_nic_free: Optional[Sequence[float]] = None,
    seed: int = 0,
) -> Tuple[ScheduleString, float, bool]:
    """Try to improve *incumbent* against the current machine state.

    Returns ``(string, makespan, improved)``.  The engine starts from
    the incumbent and scores through an :class:`EvaluationService`
    seeded with the in-flight machine state, so its objective is the
    *residual* completion time.  The new string is adopted only when
    **strictly** better than the incumbent's re-evaluated cost —
    otherwise the exact incumbent object is returned, which the caller
    re-commits bit-identically.
    """
    service = EvaluationService(
        workload,
        network,
        prefer_batch=(config.engine == "tabu"),
        initial_avail=initial_avail,
        initial_nic_free=initial_nic_free,
    )
    incumbent_cost = service.string_makespan(incumbent)
    if config.max_iterations == 0:
        return incumbent, incumbent_cost, False
    if config.engine == "tabu":
        result = run_tabu(
            workload,
            TabuConfig(
                max_iterations=config.max_iterations,
                time_limit=config.time_limit,
                network=network,
                seed=seed,
            ),
            initial=incumbent,
            service=service,
        )
    else:
        result = run_sa(
            workload,
            SAConfig(
                max_iterations=config.max_iterations,
                time_limit=config.time_limit,
                network=network,
                seed=seed,
            ),
            initial=incumbent,
            service=service,
        )
    if result.best_makespan < incumbent_cost:
        return result.best_string, result.best_makespan, True
    return incumbent, incumbent_cost, False
