"""Job-arrival streams for the online scheduling service.

The offline library schedules one :class:`~repro.model.workload.Workload`
at a time.  The online service (:mod:`repro.online.simulator`) instead
consumes a :class:`JobStream` — a time-ordered sequence of
:class:`JobArrival` records, each carrying a declarative
:class:`~repro.workloads.presets.WorkloadSpec` whose ``t_arrival`` field
says *when* the job enters the system.  Streams come from two sources:

* :func:`poisson_stream` — a Poisson(λ) process with per-job seeds
  derived via :func:`~repro.runner.spec.derive_seed`, so the same
  ``(rate, num_jobs, template, seed)`` coordinates rebuild the exact
  same stream on any platform;
* :func:`load_trace` — a JSON trace file previously written by
  :func:`save_trace`, the replay path: a trace pins every arrival time
  and every job seed, so a service run over it is exactly repeatable.

Ties in arrival time are pinned to **generation order** (stable sort),
which the simulator's event heap preserves — simultaneous arrivals are
dispatched in the order the stream lists them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Iterator, Sequence, Union

from repro.runner.spec import derive_seed
from repro.utils.rng import as_rng
from repro.workloads.presets import WorkloadSpec

#: Trace file schema version (bump on incompatible layout changes).
TRACE_VERSION = 1


@dataclass(frozen=True)
class JobArrival:
    """One job entering the service.

    ``spec.t_arrival`` is the authoritative arrival instant; ``job_id``
    is a stable label used in event logs and per-job records.
    """

    job_id: str
    spec: WorkloadSpec

    def __post_init__(self) -> None:
        t = self.spec.t_arrival
        if not (isinstance(t, (int, float)) and t >= 0.0 and t == t):
            raise ValueError(
                f"job {self.job_id!r} has invalid t_arrival {t!r}"
            )

    @property
    def t_arrival(self) -> float:
        return float(self.spec.t_arrival)


class JobStream:
    """A finite, time-ordered sequence of :class:`JobArrival`\\ s.

    Construction sorts by ``t_arrival`` with a **stable** sort, so jobs
    arriving at the same instant keep their given order (the service's
    documented tie-break).  All jobs must target the same machine count —
    the service owns one fixed pool of machines.
    """

    __slots__ = ("_arrivals", "_num_machines")

    def __init__(self, arrivals: Sequence[JobArrival]):
        arr = list(arrivals)
        seen: set[str] = set()
        for a in arr:
            if a.job_id in seen:
                raise ValueError(f"duplicate job_id {a.job_id!r}")
            seen.add(a.job_id)
        machines = {a.spec.num_machines for a in arr}
        if len(machines) > 1:
            raise ValueError(
                f"all jobs must share one machine pool, got sizes "
                f"{sorted(machines)}"
            )
        self._num_machines = machines.pop() if machines else 0
        self._arrivals: tuple[JobArrival, ...] = tuple(
            sorted(arr, key=lambda a: a.t_arrival)
        )

    @property
    def num_machines(self) -> int:
        """Machine-pool size (0 for the empty stream)."""
        return self._num_machines

    @property
    def arrivals(self) -> tuple[JobArrival, ...]:
        return self._arrivals

    def __len__(self) -> int:
        return len(self._arrivals)

    def __iter__(self) -> Iterator[JobArrival]:
        return iter(self._arrivals)

    def __getitem__(self, i: int) -> JobArrival:
        return self._arrivals[i]

    def horizon(self) -> float:
        """Last arrival time (0 for the empty stream)."""
        return self._arrivals[-1].t_arrival if self._arrivals else 0.0


def poisson_stream(
    rate: float,
    num_jobs: int,
    template: WorkloadSpec,
    seed: int = 0,
) -> JobStream:
    """A Poisson(λ = *rate*) arrival stream of *num_jobs* jobs.

    Inter-arrival gaps are exponential with mean ``1/rate``; each job is
    *template* with its own derived seed (so every job is a distinct DAG
    of the same declarative class) and ``t_arrival`` set.  Fully
    deterministic in ``(rate, num_jobs, template, seed)``.
    """
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    if num_jobs < 0:
        raise ValueError(f"num_jobs must be >= 0, got {num_jobs}")
    rng = as_rng(derive_seed("online-arrivals", seed))
    t = 0.0
    out = []
    for i in range(num_jobs):
        t += float(rng.exponential(1.0 / rate))
        spec = replace(
            template,
            seed=derive_seed("online-job", seed, i),
            t_arrival=t,
            name=f"job-{i:04d}",
        )
        out.append(JobArrival(job_id=f"job-{i:04d}", spec=spec))
    return JobStream(out)


def _spec_to_doc(spec: WorkloadSpec) -> dict:
    doc = {f.name: getattr(spec, f.name) for f in fields(WorkloadSpec)}
    if doc["seed"] is not None and not isinstance(doc["seed"], int):
        raise ValueError(
            "only integer (or None) spec seeds are trace-serialisable, "
            f"got {type(doc['seed']).__name__}"
        )
    return doc


def save_trace(stream: JobStream, path: Union[str, Path]) -> None:
    """Write *stream* as a replayable JSON trace file."""
    doc = {
        "version": TRACE_VERSION,
        "jobs": [
            {"job_id": a.job_id, "spec": _spec_to_doc(a.spec)}
            for a in stream
        ],
    }
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def load_trace(path: Union[str, Path]) -> JobStream:
    """Load a trace written by :func:`save_trace`."""
    doc = json.loads(Path(path).read_text())
    version = doc.get("version")
    if version != TRACE_VERSION:
        raise ValueError(
            f"unsupported trace version {version!r} (expected {TRACE_VERSION})"
        )
    known = {f.name for f in fields(WorkloadSpec)}
    arrivals = []
    for job in doc["jobs"]:
        spec_doc = {k: v for k, v in job["spec"].items() if k in known}
        arrivals.append(
            JobArrival(job_id=job["job_id"], spec=WorkloadSpec(**spec_doc))
        )
    return JobStream(arrivals)


def mean_job_work(template: WorkloadSpec, samples: int = 5) -> float:
    """Mean total execution work of one *template* job, in machine-time.

    Builds *samples* jobs with derived seeds and averages
    ``sum_t mean_m E[m, t]`` — the expected computing demand one job
    places on the pool.  Used to pick an arrival rate for a target
    utilisation (see :func:`rate_for_utilisation`).
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    from repro.workloads.presets import build_workload

    total = 0.0
    for i in range(samples):
        w = build_workload(
            replace(template, seed=derive_seed("online-work-probe", i))
        )
        e = w.exec_times.values
        total += float(e.mean(axis=0).sum())
    return total / samples


def rate_for_utilisation(
    template: WorkloadSpec, utilisation: float, samples: int = 5
) -> float:
    """Arrival rate λ giving the pool an offered load of *utilisation*.

    Offered load ρ = λ · W / l with W the mean work per job
    (:func:`mean_job_work`) and l the machine count, so
    λ = ρ · l / W.  A value near 0.7 keeps the service busy but stable —
    the regime the benchmarks and the soak test target.
    """
    if not 0.0 < utilisation:
        raise ValueError(f"utilisation must be > 0, got {utilisation}")
    work = mean_job_work(template, samples=samples)
    if work <= 0:
        raise ValueError("template jobs have zero mean work")
    return utilisation * template.num_machines / work
