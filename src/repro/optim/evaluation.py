"""The evaluation service: one object owning backend selection and cost.

Before this module every engine hand-wired the scoring stack itself —
``make_simulator(..., batch=...)``, an ``is_vectorized`` sniff, direct
``BatchBackend`` calls, its own ``evaluations`` arithmetic.
:class:`EvaluationService` centralises all of it:

* **backend selection** — the ``network`` name resolves through
  :func:`repro.schedule.backend.make_simulator` exactly once (with the
  batch wrapper when ``prefer_batch`` is set), so single, delta and
  batch scoring share one backend instance;
* **transparent routing** — :meth:`batch_makespans` /
  :meth:`batch_string_makespans` run the network's vectorized kernel
  when one is registered and a sequential scalar loop otherwise;
  :meth:`prepare` / :meth:`evaluate_delta` expose the incremental tier;
  engines never touch ``BatchBackend`` or kernel classes directly;
* **cost accounting** — every scoring call increments one
  ``evaluations`` counter (full evaluation = 1, prepare = 1, delta = 1,
  batch = one per schedule — the same arithmetic the engines used to
  maintain by hand), read back for the per-iteration trace records.

>>> from repro.workloads import small_workload
>>> svc = EvaluationService(small_workload(seed=1))
>>> svc.is_vectorized  # the contention-free model ships a batch kernel
True
>>> svc.evaluations
0
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.model.workload import Workload
from repro.optim.objective import ObjectiveBackend, resolve_objective
from repro.schedule.backend import (
    DEFAULT_NETWORK,
    DEFAULT_PLATFORM,
    make_simulator,
    plain_schedule,
    resolve_platform,
)
from repro.schedule.encoding import ScheduleString
from repro.schedule.scoring import CostModel, ScheduleScore
from repro.schedule.simulator import Schedule


class EvaluationService:
    """Schedule-cost oracle for one ``(workload, network)`` pair.

    Parameters
    ----------
    workload:
        The MSHC problem instance.
    network:
        Simulator-backend name (see :mod:`repro.schedule.backend`).
    prefer_batch:
        When False the batch methods still *work* but loop the scalar
        backend, and :attr:`is_vectorized` reports False — engines with
        a user-facing batch switch (``GAConfig.batch_fitness``) map it
        here, so turning the switch off really disables the kernel
        (including its packing cost) rather than merely hiding it.
    initial_avail, initial_nic_free:
        Optional per-machine busy state the backend is constructed
        against (see :func:`repro.schedule.backend.make_simulator`) —
        the residual-schedule evaluation mode of the online service:
        engines handed such a service optimise a job's schedule *given*
        machines still occupied by earlier jobs.  Batch calls route
        through the sequential scalar path in this mode.
    platform:
        Platform name (or :class:`~repro.model.platform.PlatformSpec`):
        the backend is built against the speed-scaled matrix, boot
        state and billing table of that platform (see
        :func:`~repro.schedule.backend.make_simulator`).  The default
        ``"uniform"`` changes nothing, bit for bit.
    objective:
        What the scalar every engine optimises *is*: ``"makespan"``
        (the default — the raw backend, no wrapping, bit-identical) or
        a weighted sum (``"weighted:<w_m>:<w_c>"`` / an
        :class:`~repro.optim.objective.WeightedObjective`), routed by
        wrapping the backend in an
        :class:`~repro.optim.objective.ObjectiveBackend` so SE, GA, SA
        and tabu optimise cost-aware without engine changes.
    pareto:
        Optional :class:`~repro.optim.tracking.ParetoTracker`; every
        point scored through this service is offered to it, so a run
        accumulates the (makespan, cost) front as a side effect.
    scenarios, distribution, scenario_seed:
        The Monte-Carlo axis of the *scenario* objectives (``mean`` /
        ``quantile:<q>`` / ``cvar:<q>`` / ``saa:<T>:<eps>`` — see
        :mod:`repro.stochastic` and ``docs/risk_aware.md``): the
        backend is wrapped in a :class:`~repro.stochastic.scenarios.
        ScenarioBackend` scoring every engine-compared scalar as the
        objective's reduction over ``scenarios`` sampled perturbations
        of the (platform-scaled) matrices.  ``scenarios``/non-default
        ``distribution`` without a scenario objective — or a scenario
        objective without ``scenarios >= 1`` — raise immediately.
        Scenario objectives cannot combine with residual initial state,
        Pareto tracking, or platforms with boot delays (boot is initial
        state).
    """

    __slots__ = (
        "_backend",
        "_raw",
        "_workload",
        "_network",
        "_calls",
        "_platform",
        "_objective",
        "_pareto",
        "_cost_model",
        "_scenario",
    )

    def __init__(
        self,
        workload: Workload,
        network: str = DEFAULT_NETWORK,
        prefer_batch: bool = True,
        initial_avail: Optional[Sequence[float]] = None,
        initial_nic_free: Optional[Sequence[float]] = None,
        platform=DEFAULT_PLATFORM,
        objective="makespan",
        pareto=None,
        scenarios: int = 0,
        distribution="deterministic",
        scenario_seed: int = 0,
    ):
        self._workload = workload
        self._network = network
        self._platform = platform
        self._raw = make_simulator(
            workload,
            network,
            batch=prefer_batch,
            initial_avail=initial_avail,
            initial_nic_free=initial_nic_free,
            platform=platform,
        )
        from repro.stochastic.distributions import validate_scenario_settings

        self._objective, dist_spec = validate_scenario_settings(
            objective, scenarios, distribution
        )
        self._pareto = pareto
        self._cost_model = getattr(self._raw, "cost_model", None)
        self._scenario = None
        if getattr(self._objective, "is_scenario", False):
            if pareto is not None:
                raise ValueError(
                    "Pareto tracking is not supported with scenario "
                    "objectives (risk objectives are makespan-only)"
                )
            if initial_avail is not None or initial_nic_free is not None:
                raise ValueError(
                    "scenario objectives do not support residual "
                    "(initial-state) evaluation"
                )
            if resolve_platform(platform).has_boot:
                raise ValueError(
                    f"platform {self.platform!r} has boot delays (initial "
                    "state), which scenario objectives do not support"
                )
            from repro.stochastic import ScenarioBackend, ScenarioEvaluator
            from repro.stochastic.distributions import sample_scenarios

            self._scenario = ScenarioEvaluator(
                sample_scenarios(
                    self.effective_workload,
                    dist_spec,
                    scenarios,
                    seed=scenario_seed,
                ),
                network=network,
                prefer_batch=prefer_batch,
            )
            self._backend = ScenarioBackend(
                self._raw, self._scenario, self._objective
            )
        elif self._objective.is_makespan and pareto is None:
            # the default: the unwrapped backend, bit-identical
            self._backend = self._raw
        else:
            cm = self._cost_model
            if cm is None:
                cm = self._cost_model = CostModel.zero(
                    self.effective_workload.exec_times.values
                )
            self._backend = ObjectiveBackend(
                self._raw, self._objective, cm, pareto
            )
        self._calls = 0

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    @property
    def workload(self) -> Workload:
        return self._workload

    @property
    def network(self) -> str:
        return self._network

    @property
    def platform(self) -> str:
        """Canonical name of the platform this service evaluates under."""
        return resolve_platform(self._platform).name

    @property
    def objective(self) -> Any:
        """The resolved objective (``MAKESPAN`` unless configured)."""
        return self._objective

    @property
    def pareto(self) -> Any:
        """The attached :class:`ParetoTracker`, or ``None``."""
        return self._pareto

    @property
    def scenario_evaluator(self) -> Any:
        """The :class:`~repro.stochastic.scenarios.ScenarioEvaluator`
        behind a scenario objective, or ``None`` (the default)."""
        return self._scenario

    @property
    def scenarios(self) -> int:
        """Scenario count ``S`` of a scenario objective (0 otherwise)."""
        return 0 if self._scenario is None else self._scenario.scenarios

    @property
    def effective_workload(self) -> Workload:
        """The workload the backend actually evaluates — the platform's
        speed-scaled matrix, or the original object on ``"uniform"``.
        Heuristic phases (SE goodness, allocator candidate ranking)
        read this so their decisions see the same machine model their
        schedules are scored under."""
        return self._raw.workload

    @property
    def cost_model(self) -> Any:
        """The platform billing table (``None`` on the uniform platform
        with the default objective)."""
        return self._cost_model

    @property
    def backend(self) -> Any:
        """The underlying backend (for components like the SE allocator
        that take a :class:`~repro.schedule.backend.SimulatorBackend`)."""
        return self._backend

    @property
    def is_vectorized(self) -> bool:
        """True when batch calls run a genuinely vectorized kernel."""
        return bool(getattr(self._backend, "is_vectorized", False))

    @property
    def kernel_tier(self) -> str:
        """The active batch-kernel tier: ``jit``/``vectorized``/``sequential``.

        ``jit`` means batch calls run the compiled (numba) kernels of
        :mod:`repro.schedule.jit`; ``vectorized`` the NumPy kernels;
        ``sequential`` the scalar fallback loop (no kernel registered,
        ``prefer_batch=False``, or a busy-state backend).
        """
        tier = getattr(self._backend, "kernel_tier", None)
        if tier is not None:
            return str(tier)
        return "vectorized" if self.is_vectorized else "sequential"

    # ------------------------------------------------------------------
    # cost accounting
    # ------------------------------------------------------------------

    @property
    def evaluations(self) -> int:
        """Simulator calls made through (or reported to) this service."""
        return self._calls

    def count(self, calls: int) -> None:
        """Fold in calls a collaborator made on :attr:`backend` directly
        (e.g. the SE allocator's probe trials)."""
        self._calls += calls

    # ------------------------------------------------------------------
    # single-schedule tier
    # ------------------------------------------------------------------

    def makespan(
        self, order: Sequence[int], machine_of: Sequence[int]
    ) -> float:
        self._calls += 1
        return self._backend.makespan(order, machine_of)

    def string_makespan(self, string: ScheduleString) -> float:
        self._calls += 1
        return self._backend.string_makespan(string)

    def evaluate(self, string: ScheduleString) -> Any:
        """Full evaluation (counted); returns the backend's result."""
        self._calls += 1
        return self._backend.evaluate(string)

    def schedule_of(self, string: ScheduleString) -> Schedule:
        """The plain :class:`Schedule` of *string* — **not** counted.

        Result assembly (re-evaluating the best string once at the end
        of a run) was never part of any engine's ``evaluations``
        accounting; this keeps it that way.  Always the *real* schedule
        (true makespan), whatever the objective.
        """
        return plain_schedule(self._raw.evaluate(string))

    def score_of(self, string: ScheduleString) -> ScheduleScore:
        """The ``(makespan, cost, busy)`` score of *string* — **not**
        counted, like :meth:`schedule_of`; real makespan, real dollars,
        whatever the objective."""
        string_score = getattr(self._raw, "string_score", None)
        if string_score is not None:
            return string_score(string)
        cm = self._cost_model
        if cm is None:
            cm = self._cost_model = CostModel.zero(
                self.effective_workload.exec_times.values
            )
        return cm.score(string.machines, self._raw.string_makespan(string))

    def scalarize(self, makespan: float, cost: float) -> float:
        """The configured objective's scalar for one scored point."""
        return self._objective.scalarize(makespan, cost)

    # ------------------------------------------------------------------
    # incremental (delta) tier
    # ------------------------------------------------------------------

    def prepare(
        self, order: Sequence[int], machine_of: Sequence[int]
    ) -> Any:
        """Snapshot *order*/*machine_of* for suffix-only re-evaluation
        (costs — and counts as — one full evaluation)."""
        self._calls += 1
        return self._backend.prepare(order, machine_of)

    def evaluate_delta(
        self,
        order: Sequence[int],
        machine_of: Sequence[int],
        first_changed: int,
        state: Any,
        cutoff: float = float("inf"),
        region_end: Optional[int] = None,
    ) -> float:
        self._calls += 1
        return self._backend.evaluate_delta(
            order, machine_of, first_changed, state, cutoff, region_end
        )

    # ------------------------------------------------------------------
    # batch tier
    # ------------------------------------------------------------------

    def batch_makespans(
        self, orders: Any, machines: Any, validate: bool = True
    ) -> list[float]:
        """One makespan per ``(orders[i], machines[i])`` schedule.

        Routed through the network's vectorized kernel when available,
        a sequential scalar loop otherwise — bit-identical either way.
        """
        if hasattr(self._backend, "batch_makespans"):
            costs = self._backend.batch_makespans(
                orders, machines, validate=validate
            ).tolist()
        else:  # prefer_batch=False: plain scalar backend
            costs = [
                self._backend.makespan(list(o), list(m))
                for o, m in zip(orders, machines)
            ]
        self._calls += len(costs)
        return costs

    def batch_string_makespans(
        self, strings: Sequence[ScheduleString], validate: bool = True
    ) -> list[float]:
        """:meth:`batch_makespans` over :class:`ScheduleString` objects."""
        if hasattr(self._backend, "batch_string_makespans"):
            costs = self._backend.batch_string_makespans(
                strings, validate=validate
            ).tolist()
        else:
            costs = [self._backend.string_makespan(s) for s in strings]
        self._calls += len(costs)
        return costs
