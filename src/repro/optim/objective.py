"""Bi-objective scalarization: optimise (makespan, cost) with any engine.

Every engine in this repo — SE, GA, SA, tabu, random — optimises one
scalar it reads back from the :class:`~repro.optim.evaluation.
EvaluationService`.  That is the whole trick of this module: instead of
teaching each engine about dollar cost, the service wraps its backend
in an :class:`ObjectiveBackend` whose every scalar *is already the
scalarized objective* ``w_m * makespan + w_c * cost``.  The engines'
comparisons, cutoffs, tabu aspiration and annealing acceptance then
optimise cost-aware without a single engine change.

* :func:`weighted` — the weighted-sum objective ``weighted(w_m, w_c)``;
* :data:`MAKESPAN` — the identity objective (scalar == makespan, bit
  for bit; the default everywhere, so golden results cannot move);
* :class:`ScenarioObjective` — the *risk* objectives over Monte-Carlo
  scenario makespans (``mean`` / ``quantile:q`` / ``cvar:q`` /
  ``saa:T:eps``; see :mod:`repro.stochastic` and
  ``docs/risk_aware.md``).  They carry only the *reduction* — sampling
  and scenario scoring live in
  :class:`~repro.stochastic.scenarios.ScenarioEvaluator`, and the
  service routes through a
  :class:`~repro.stochastic.scenarios.ScenarioBackend` instead of the
  :class:`ObjectiveBackend` below;
* :func:`resolve_objective` — parses the JSON/CLI-safe string forms
  ``"makespan"``, ``"weighted:<w_m>:<w_c>"``, ``"mean"``,
  ``"quantile:<q>"``, ``"cvar:<q>"`` and ``"saa:<T>:<eps>"``;
* :class:`ObjectiveBackend` — the
  :class:`~repro.schedule.backend.SimulatorBackend` wrapper.  It keeps
  the delta tier's branch-and-bound exact by transforming the caller's
  scalarized cutoff into a *span* cutoff (cost is known before the
  walk, since billing is per-task), and the batch tier vectorized by
  scalarizing whole ``(makespans, costs)`` columns at once.  When a
  :class:`~repro.optim.tracking.ParetoTracker` is attached, every
  scored point is offered to it — one weighted run accumulates a whole
  front as a side effect.

>>> obj = resolve_objective("weighted:0.7:0.3")
>>> obj.scalarize(100.0, 10.0)
73.0
>>> resolve_objective("makespan").is_makespan
True
>>> p95 = resolve_objective("quantile:0.95")
>>> p95.is_scenario
True
>>> p95.reduce([3.0, 1.0, 2.0, 10.0])  # nearest-rank: 4th of 4
10.0
>>> resolve_objective("cvar:0.5").reduce([1.0, 2.0, 3.0, 4.0])
3.0
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional, Sequence, Union

import numpy as np

from repro.schedule.scoring import CostModel, ScheduleScore

__all__ = [
    "MAKESPAN",
    "MakespanObjective",
    "WeightedObjective",
    "ScenarioObjective",
    "Objective",
    "OBJECTIVE_FORMS",
    "weighted",
    "resolve_objective",
    "ObjectiveBackend",
]

_INF = float("inf")


class MakespanObjective:
    """The identity objective: scalar == makespan, bit for bit."""

    name = "makespan"
    is_makespan = True
    is_scenario = False

    def scalarize(self, makespan: float, cost: float) -> float:
        return makespan

    def scalarize_arrays(
        self, makespans: np.ndarray, costs: np.ndarray
    ) -> np.ndarray:
        return makespans

    def span_cutoff(self, cutoff: float, cost: float) -> float:
        return cutoff

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "MakespanObjective()"


@dataclass(frozen=True)
class WeightedObjective:
    """The weighted sum ``w_makespan * makespan + w_cost * cost``.

    Weights must be finite, >= 0 and not both zero.  They are *not*
    normalised — callers wanting comparable magnitudes divide by
    reference scales first (``repro pareto`` uses a deterministic
    baseline's makespan and cost).
    """

    w_makespan: float
    w_cost: float

    is_makespan = False
    is_scenario = False

    def __post_init__(self) -> None:
        for label, w in (
            ("w_makespan", self.w_makespan),
            ("w_cost", self.w_cost),
        ):
            if not (math.isfinite(w) and w >= 0):
                raise ValueError(
                    f"{label} must be finite and >= 0, got {w!r}"
                )
        if self.w_makespan == 0 and self.w_cost == 0:
            raise ValueError("at least one objective weight must be > 0")

    @property
    def name(self) -> str:
        return f"weighted:{self.w_makespan!r}:{self.w_cost!r}"

    def scalarize(self, makespan: float, cost: float) -> float:
        return self.w_makespan * makespan + self.w_cost * cost

    def scalarize_arrays(
        self, makespans: np.ndarray, costs: np.ndarray
    ) -> np.ndarray:
        return self.w_makespan * makespans + self.w_cost * costs

    def span_cutoff(self, cutoff: float, cost: float) -> float:
        """The *makespan* cutoff equivalent to a scalarized *cutoff*.

        The delta tier prunes on the running span; since cost depends
        only on the machine assignment (known before the walk), the
        scalarized bound ``w_m * span + w_c * cost >= cutoff`` is a
        plain span bound.  One ``nextafter`` of slack keeps rounding
        from pruning a genuinely improving probe.
        """
        if cutoff == _INF:
            return _INF
        if self.w_makespan == 0:
            # scalar is span-independent: prune everything or nothing
            return _INF if self.w_cost * cost < cutoff else -_INF
        return math.nextafter(
            (cutoff - self.w_cost * cost) / self.w_makespan, _INF
        )


def _nearest_rank(q: float, n: int) -> int:
    """The 1-indexed nearest-rank of quantile *q* over *n* samples.

    Exactly :func:`repro.online.metrics.OnlineMetrics`'s percentile
    arithmetic (``max(1, ceil(q * n))``), so a risk objective's
    ``quantile:0.95`` and the online service's reported p95 agree on
    the same samples (pinned by ``tests/stochastic``).
    """
    return max(1, math.ceil(q * n))


@dataclass(frozen=True)
class ScenarioObjective:
    """A reduction of Monte-Carlo scenario makespans to one scalar.

    The engines still optimise a single float; under a scenario
    objective that float is a *risk statistic* of the schedule's
    makespan distribution, estimated over ``S`` sampled scenarios (the
    sample-average approximation of arXiv:2210.11889 — see
    ``docs/risk_aware.md``):

    * ``mean`` — the empirical expectation;
    * ``quantile:<q>`` — the nearest-rank q-quantile (``rank = max(1,
      ceil(q * S))`` of the ascending sort, matching
      :meth:`repro.online.metrics.OnlineMetrics` percentiles);
    * ``cvar:<q>`` — the mean of the tail *from the q-quantile up*
      (``S - rank + 1`` worst scenarios; ``cvar:0`` is the mean,
      ``S = 1`` is the single value);
    * ``saa:<T>:<eps>`` — the chance constraint ``P[makespan <= T] >=
      1 - eps``, scored by its SAA surrogate, the ``(1-eps)``-quantile:
      minimising the surrogate drives the constraint toward
      feasibility, and :meth:`feasible` reports whether the sampled
      constraint holds.

    Instances only *reduce*; scenario sampling and B×S batch scoring
    live in :class:`~repro.stochastic.scenarios.ScenarioEvaluator`.
    ``scalarize`` ignores cost (risk objectives are makespan-only), so
    trace/result assembly code that scalarizes real ``(makespan,
    cost)`` points keeps working.
    """

    kind: str
    q: float = 0.5
    target: float = 0.0
    eps: float = 0.0

    is_makespan = False
    is_scenario = True

    def __post_init__(self) -> None:
        if self.kind not in ("mean", "quantile", "cvar", "saa"):
            raise ValueError(
                f"unknown scenario objective kind {self.kind!r}; expected "
                "'mean', 'quantile', 'cvar' or 'saa'"
            )
        if self.kind == "quantile" and not (
            math.isfinite(self.q) and 0 < self.q <= 1
        ):
            raise ValueError(
                f"quantile level must be in (0, 1], got {self.q!r}"
            )
        if self.kind == "cvar" and not (
            math.isfinite(self.q) and 0 <= self.q < 1
        ):
            raise ValueError(
                f"cvar level must be in [0, 1), got {self.q!r}"
            )
        if self.kind == "saa":
            if not (math.isfinite(self.target) and self.target > 0):
                raise ValueError(
                    f"saa target T must be finite and > 0, got {self.target!r}"
                )
            if not (math.isfinite(self.eps) and 0 < self.eps < 1):
                raise ValueError(
                    f"saa eps must be in (0, 1), got {self.eps!r}"
                )

    @property
    def name(self) -> str:
        if self.kind == "mean":
            return "mean"
        if self.kind == "saa":
            return f"saa:{self.target:g}:{self.eps:g}"
        return f"{self.kind}:{self.q:g}"

    @property
    def level(self) -> float:
        """The quantile level the reduction sorts at (1.0 for ``mean``)."""
        if self.kind == "mean":
            return 1.0
        if self.kind == "saa":
            return 1.0 - self.eps
        return self.q

    def reduce(self, samples) -> float:
        """One scenario-makespan vector ``(S,)`` -> the risk scalar."""
        xs = np.asarray(samples, dtype=float)
        if xs.ndim != 1 or xs.size == 0:
            raise ValueError(
                f"samples must be a non-empty 1-d vector, got shape {xs.shape}"
            )
        if self.kind == "mean":
            return float(xs.mean())
        xs = np.sort(xs)
        rank = _nearest_rank(self.level, xs.size)
        if self.kind == "cvar":
            return float(xs[rank - 1 :].mean())
        return float(xs[rank - 1])

    def reduce_matrix(self, matrix) -> np.ndarray:
        """An ``(S, B)`` scenario-makespan matrix -> ``(B,)`` scalars.

        Column ``b`` equals ``reduce(matrix[:, b])`` exactly (same
        sort, same rank arithmetic), so batch and scalar scoring of the
        same schedule cannot disagree.
        """
        m = np.asarray(matrix, dtype=float)
        if m.ndim != 2 or m.shape[0] == 0:
            raise ValueError(
                f"matrix must be (scenarios, batch) with scenarios >= 1, "
                f"got shape {m.shape}"
            )
        if self.kind == "mean":
            return m.mean(axis=0)
        m = np.sort(m, axis=0)
        rank = _nearest_rank(self.level, m.shape[0])
        if self.kind == "cvar":
            return m[rank - 1 :].mean(axis=0)
        return m[rank - 1]

    def feasible(self, samples) -> bool:
        """Whether the sampled chance constraint holds (``saa`` only)."""
        if self.kind != "saa":
            raise ValueError(
                f"feasible() is only defined for 'saa' objectives, not "
                f"{self.name!r}"
            )
        return self.reduce(samples) <= self.target

    def scalarize(self, makespan: float, cost: float) -> float:
        return makespan

    def scalarize_arrays(
        self, makespans: np.ndarray, costs: np.ndarray
    ) -> np.ndarray:
        return makespans


Objective = Union[MakespanObjective, WeightedObjective, ScenarioObjective]

#: The objective grammar, one ``(form, needs_scenarios, description)``
#: triple per accepted spelling — the single source the CLI listing
#: (``repro algorithms``) and the docs point at.
OBJECTIVE_FORMS = (
    ("makespan", False, "schedule makespan (the default, bit-identical)"),
    (
        "weighted:<w_makespan>:<w_cost>",
        False,
        "weighted sum over (makespan, dollar cost)",
    ),
    ("mean", True, "mean makespan over Monte-Carlo scenarios"),
    (
        "quantile:<q>",
        True,
        "nearest-rank q-quantile of scenario makespans (e.g. quantile:0.95)",
    ),
    (
        "cvar:<q>",
        True,
        "mean of the scenario-makespan tail from the q-quantile up",
    ),
    (
        "saa:<T>:<eps>",
        True,
        "SAA chance constraint P[makespan <= T] >= 1-eps, "
        "scored by the (1-eps)-quantile",
    ),
)

#: The default objective — today's behaviour, golden-pinned.
MAKESPAN = MakespanObjective()


def weighted(w_makespan: float, w_cost: float) -> WeightedObjective:
    """The weighted-sum objective (see :class:`WeightedObjective`)."""
    return WeightedObjective(float(w_makespan), float(w_cost))


def resolve_objective(spec: Union[str, Objective]) -> Objective:
    """*spec* as an objective object.

    Accepts an objective instance or any JSON/CLI-safe string form of
    :data:`OBJECTIVE_FORMS`: ``"makespan"``,
    ``"weighted:<w_m>:<w_c>"`` (e.g. ``"weighted:0.7:0.3"``), or a
    scenario reduction — ``"mean"``, ``"quantile:<q>"``,
    ``"cvar:<q>"``, ``"saa:<T>:<eps>"`` (which additionally need
    ``scenarios >= 1`` wherever they are evaluated).
    """
    if isinstance(
        spec, (MakespanObjective, WeightedObjective, ScenarioObjective)
    ):
        return spec
    if not isinstance(spec, str):
        raise ValueError(
            f"objective must be a name string or objective, got {spec!r}"
        )
    if spec == "makespan":
        return MAKESPAN
    if spec == "mean":
        return ScenarioObjective("mean")
    try:
        if spec.startswith("weighted:"):
            parts = spec.split(":")
            if len(parts) == 3:
                return weighted(float(parts[1]), float(parts[2]))
        elif spec.startswith(("quantile:", "cvar:")):
            kind, _, level = spec.partition(":")
            return ScenarioObjective(kind, q=float(level))
        elif spec.startswith("saa:"):
            parts = spec.split(":")
            if len(parts) == 3:
                return ScenarioObjective(
                    "saa", target=float(parts[1]), eps=float(parts[2])
                )
    except ValueError as e:
        raise ValueError(f"bad objective {spec!r}: {e}") from None
    raise ValueError(
        f"unknown objective {spec!r}; expected one of: "
        + ", ".join(form for form, _, _ in OBJECTIVE_FORMS)
    )


class _ScalarizedState:
    """A delta state whose ``makespan`` is the scalarized objective.

    Engines treat delta states as opaque apart from ``makespan`` /
    ``pos_of`` / ``as_schedule()`` (the :class:`~repro.schedule.backend.
    SimulatorBackend` contract), so this thin proxy is all the
    incremental tier needs: the scalar they compare is the objective,
    the schedule they decode is the real one.
    """

    __slots__ = ("base", "makespan")

    def __init__(self, base: Any, scalar: float):
        self.base = base
        self.makespan = scalar

    @property
    def pos_of(self):
        return self.base.pos_of

    def as_schedule(self):
        return self.base.as_schedule()


class ObjectiveBackend:
    """A backend whose every scalar is the scalarized objective.

    Wraps any :class:`~repro.schedule.backend.SimulatorBackend`; built
    by the :class:`~repro.optim.evaluation.EvaluationService` when a
    non-default objective (or a Pareto tracker) is requested.  The
    default makespan objective never constructs one — the unwrapped
    backend stays bit-identical.

    ``evaluate`` still returns the inner backend's real result (result
    assembly wants true makespans); everything an engine *compares* —
    ``makespan``, ``string_makespan``, delta scalars, batch columns,
    prepared-state ``makespan`` — is scalarized.
    """

    def __init__(
        self,
        inner: Any,
        objective: Objective,
        cost_model: CostModel,
        pareto: Optional[Any] = None,
    ):
        self._inner = inner
        self._objective = objective
        self._cm = cost_model
        self._pareto = pareto
        # batch methods exist exactly when the inner backend has them,
        # so the service's hasattr routing keeps working unchanged
        if hasattr(inner, "batch_makespans"):
            self.batch_makespans = self._batch_makespans
            self.batch_string_makespans = self._batch_string_makespans

    # ------------------------------------------------------------------
    # identity / passthrough
    # ------------------------------------------------------------------

    @property
    def base(self) -> Any:
        """The wrapped (unscalarized) backend."""
        return self._inner

    @property
    def objective(self) -> Objective:
        return self._objective

    @property
    def cost_model(self) -> CostModel:
        return self._cm

    @property
    def workload(self):
        return self._inner.workload

    @property
    def is_vectorized(self) -> bool:
        return bool(getattr(self._inner, "is_vectorized", False))

    @property
    def kernel_tier(self) -> str:
        tier = getattr(self._inner, "kernel_tier", None)
        if tier is not None:
            return str(tier)
        return "vectorized" if self.is_vectorized else "sequential"

    def finish_times(self, string) -> list[float]:
        return self._inner.finish_times(string)

    def evaluate(self, string) -> Any:
        result = self._inner.evaluate(string)
        self._offer(result.makespan, self._cm.cost(string.machines), string)
        return result

    def score(self, order, machine_of) -> ScheduleScore:
        inner_score = getattr(self._inner, "score", None)
        if inner_score is not None:
            s = inner_score(order, machine_of)
        else:
            s = self._cm.score(
                machine_of, self._inner.makespan(order, machine_of)
            )
        self._offer(s.makespan, s.cost, (order, machine_of))
        return s

    def string_score(self, string) -> ScheduleScore:
        return self.score(string.order, string.machines)

    # ------------------------------------------------------------------
    # scalarized scoring
    # ------------------------------------------------------------------

    def _offer(self, span: float, cost: float, candidate: Any) -> None:
        if self._pareto is not None and span != _INF:
            self._pareto.offer(span, cost, candidate)

    def makespan(self, order, machine_of) -> float:
        span = self._inner.makespan(order, machine_of)
        cost = self._cm.cost(machine_of)
        self._offer(span, cost, (order, machine_of))
        return self._objective.scalarize(span, cost)

    def string_makespan(self, string) -> float:
        span = self._inner.string_makespan(string)
        cost = self._cm.cost(string.machines)
        self._offer(span, cost, string)
        return self._objective.scalarize(span, cost)

    def prepare(self, order, machine_of) -> _ScalarizedState:
        state = self._inner.prepare(order, machine_of)
        cost = self._cm.cost(machine_of)
        self._offer(state.makespan, cost, (order, machine_of))
        return _ScalarizedState(
            state, self._objective.scalarize(state.makespan, cost)
        )

    def evaluate_delta(
        self,
        order,
        machine_of,
        first_changed: int,
        state: Any,
        cutoff: float = _INF,
        region_end: Optional[int] = None,
    ) -> float:
        cost = self._cm.cost(machine_of)
        span = self._inner.evaluate_delta(
            order,
            machine_of,
            first_changed,
            getattr(state, "base", state),
            self._objective.span_cutoff(cutoff, cost),
            region_end,
        )
        if span == _INF:  # pruned: not better than the cutoff
            return _INF
        self._offer(span, cost, (order, machine_of))
        return self._objective.scalarize(span, cost)

    # bound as instance attributes iff the inner backend is batch-capable

    def _batch_makespans(
        self, orders, machines, validate: bool = True
    ) -> np.ndarray:
        if hasattr(self._inner, "batch_scores"):
            scores = self._inner.batch_scores(
                orders, machines, validate=validate
            )
            spans, costs = scores.makespans, scores.costs
        else:
            spans = self._inner.batch_makespans(
                orders, machines, validate=validate
            )
            costs = self._cm.batch_costs(
                np.asarray(machines, dtype=np.intp)
            )
        if self._pareto is not None:
            for i in range(len(spans)):
                self._pareto.offer(
                    float(spans[i]),
                    float(costs[i]),
                    (orders[i], machines[i]),
                )
        return self._objective.scalarize_arrays(spans, costs)

    def _batch_string_makespans(
        self, strings: Sequence[Any], validate: bool = True
    ) -> np.ndarray:
        if hasattr(self._inner, "batch_string_scores"):
            scores = self._inner.batch_string_scores(
                strings, validate=validate
            )
            spans, costs = scores.makespans, scores.costs
        else:
            spans = self._inner.batch_string_makespans(
                strings, validate=validate
            )
            costs = self._cm.batch_costs(
                np.array([s.machines for s in strings], dtype=np.intp)
            )
        if self._pareto is not None:
            for i, s in enumerate(strings):
                self._pareto.offer(float(spans[i]), float(costs[i]), s)
        return self._objective.scalarize_arrays(spans, costs)
