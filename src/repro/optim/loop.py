"""The shared run-loop driver behind every iterative engine.

One engine iteration used to come with ~30 lines of identical scaffold:
the time-limit check, the iteration counter, best tracking, the
:class:`~repro.analysis.trace.IterationRecord`, observer notification,
and the stall check.  :class:`SearchLoop` owns that scaffold; an engine
supplies only a ``step`` callback producing one iteration's outcome.

The loop structure is the exact historical one (pinned by the golden
bit-identity tests in ``tests/test_golden_engines.py``):

.. code-block:: text

    while iterations_done < max_iterations:        # else -> "iterations"
        if elapsed >= time_limit: break            #      -> "time"
        outcome = step(iteration)                  # the engine's work
        update best / stall                        # strict improvement
        record IterationRecord; notify observers
        if stall >= stall_iterations: break        #      -> "stall"
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generic, Optional, Sequence, TypeVar

from repro.analysis.trace import ConvergenceTrace
from repro.optim.observers import Observer, ObserverBus
from repro.optim.stop import (
    STOP_ITERATIONS,
    STOP_STALL,
    STOP_TIME,
    StopPolicy,
)
from repro.optim.tracking import BestTracker, TrajectoryRecorder
from repro.utils.timers import Stopwatch

S = TypeVar("S")


@dataclass
class StepOutcome(Generic[S]):
    """What one engine iteration hands back to the loop.

    Attributes
    ----------
    cost:
        The iteration's current cost (the trace's ``current_makespan``).
    candidate:
        The solution achieving *cost*; best-tracked (copied only on
        improvement), so passing the live working solution is fine.
    payload:
        Second argument to observers; defaults to *candidate*.
    num_selected / mean_goodness:
        Optional extras for the trace record (SE fills both, the GA and
        the optim engines fill what applies).
    record:
        When False, no trace record is appended and observers are not
        notified for this iteration (best tracking and stall counting
        still run).  Engines with very cheap iterations (SA proposals)
        use this to thin multi-million-iteration time-budget traces.
    """

    cost: float
    candidate: S
    payload: Any = None
    num_selected: Optional[int] = None
    mean_goodness: Optional[float] = None
    record: bool = True


@dataclass(frozen=True)
class LoopOutcome(Generic[S]):
    """What a finished :meth:`SearchLoop.run` reports back."""

    best_cost: float
    best: S
    trace: ConvergenceTrace
    iterations: int
    stopped_by: str


class SearchLoop(Generic[S]):
    """Drives an engine's ``step`` under a :class:`StopPolicy`.

    Parameters
    ----------
    stop:
        The stopping rules (iteration cap / wall clock / stall).
    observers:
        Per-iteration callbacks, notified through one
        :class:`~repro.optim.observers.ObserverBus`.
    evaluations:
        Zero-arg callable returning the *cumulative* simulator-call
        count — normally ``lambda: service.evaluations`` — sampled once
        per iteration for the trace record.
    copy:
        Candidate snapshot function for the best tracker.
    """

    def __init__(
        self,
        stop: StopPolicy,
        observers: Sequence[Observer] = (),
        evaluations: Callable[[], int] = lambda: 0,
        copy: Optional[Callable[[S], S]] = None,
    ):
        self._stop = stop
        self._bus = ObserverBus(observers)
        self._evaluations = evaluations
        self._tracker: BestTracker[S] = (
            BestTracker(copy) if copy is not None else BestTracker()
        )

    @property
    def tracker(self) -> BestTracker[S]:
        """The live best tracker (engines may consult it inside ``step``)."""
        return self._tracker

    def run(
        self,
        initial_cost: float,
        initial_candidate: S,
        step: Callable[[int], StepOutcome[S]],
        watch: Optional[Stopwatch] = None,
    ) -> LoopOutcome[S]:
        """Iterate ``step`` until the policy stops it.

        Parameters
        ----------
        initial_cost / initial_candidate:
            The starting solution; seeds the best tracker (copied).
        step:
            ``step(iteration)`` runs one iteration (1-based numbering)
            and returns its :class:`StepOutcome`.
        watch:
            Optional already-running stopwatch.  Engines whose set-up
            work (initial evaluation, population scoring) must count
            toward the time limit start the watch before it and pass it
            in; by default the clock starts here.
        """
        stop = self._stop
        tracker = self._tracker
        recorder = TrajectoryRecorder()
        if watch is None:
            watch = Stopwatch()
        tracker.seed(initial_cost, initial_candidate)

        iteration = 0
        stopped_by = STOP_ITERATIONS
        while not stop.exhausted(iteration):
            if stop.out_of_time(watch.elapsed()):
                stopped_by = STOP_TIME
                break
            iteration += 1
            out = step(iteration)
            tracker.update(out.cost, out.candidate)
            if out.record:
                record = recorder.record(
                    iteration=iteration,
                    current_cost=out.cost,
                    best_cost=tracker.best_cost,
                    elapsed_seconds=watch.elapsed(),
                    evaluations=self._evaluations(),
                    num_selected=out.num_selected,
                    mean_goodness=out.mean_goodness,
                )
                self._bus.notify(
                    record,
                    out.payload if out.payload is not None else out.candidate,
                )
            if stop.stalled(tracker.stall):
                stopped_by = STOP_STALL
                break

        return LoopOutcome(
            best_cost=tracker.best_cost,
            best=tracker.best,
            trace=recorder.trace,
            iterations=iteration,
            stopped_by=stopped_by,
        )
