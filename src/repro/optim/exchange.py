"""The incumbent-exchange contract between engines and a portfolio.

A portfolio run (see :mod:`repro.portfolio`) races several engines on
one problem and lets them trade their best-so-far solutions mid-run.
The *optim core* side of that contract is deliberately tiny:

* an :class:`Incumbent` — an immutable ``(version, cost, order,
  machines, source)`` snapshot of some engine's best string;
* the :class:`IncumbentSource` protocol — one ``incoming(iteration,
  current_cost)`` method an engine polls at the top of each step.

Every engine's ``run`` accepts an optional ``exchange`` implementing
the protocol.  The injection semantics per engine:

* **SE / SA / tabu** (single-solution engines): *replace-if-better* —
  the working string is replaced by the incumbent and re-anchored
  (one counted evaluation), exactly as if the engine had found it.
* **GA** (population engine): *elite immigration* — the incumbent is
  decoded into a chromosome, evaluated, and replaces the worst member
  of the current population.

Determinism contract: ``exchange=None`` (the default) changes nothing —
no RNG draws, no evaluations, bit-identical trajectories (pinned by the
golden tests).  With an exchange attached, polling consumes no RNG
either; only an actually *delivered* incumbent perturbs the trajectory,
so a run is reproducible whenever the delivery schedule is (see the
``sync_every`` lockstep mode in :mod:`repro.portfolio.exchange`).
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Protocol, Tuple, runtime_checkable


class Incumbent(NamedTuple):
    """One published best-so-far solution.

    ``version`` is a monotonically increasing stamp assigned by the
    channel (not the publisher), so receivers can skip already-seen
    payloads with a single comparison.  ``source`` is the publishing
    island's id; islands never re-import their own publications.
    """

    version: int
    cost: float
    order: Tuple[int, ...]
    machines: Tuple[int, ...]
    source: int


@runtime_checkable
class IncumbentSource(Protocol):
    """What an engine polls for foreign incumbents.

    ``incoming`` is called at the top of every engine step with the
    1-based iteration number and the engine's current working cost; it
    returns an :class:`Incumbent` strictly better than ``current_cost``
    or ``None``.  Implementations throttle the underlying channel
    traffic internally (see
    :class:`repro.portfolio.exchange.IncumbentExchange`), so engines
    call it unconditionally.
    """

    def incoming(
        self, iteration: int, current_cost: float
    ) -> Optional[Incumbent]: ...
