"""Best-so-far tracking and trajectory recording, shared by all engines.

:class:`BestTracker` owns the improvement rule every engine used to
re-implement: a candidate replaces the incumbent only on a **strict**
cost improvement (ties keep the old best and count toward the stall
streak), and the stored best is a *copy* of the candidate so engines can
keep mutating their working solution in place.

:class:`TrajectoryRecorder` builds the
:class:`~repro.analysis.trace.IterationRecord` rows of a
:class:`~repro.analysis.trace.ConvergenceTrace` — the exact record/trace
types the figure benchmarks and the runner already consume, so a
refactored engine's trace is indistinguishable from the hand-rolled one.
"""

from __future__ import annotations

from typing import Any, Callable, Generic, Optional, TypeVar

from repro.analysis.trace import ConvergenceTrace, IterationRecord

S = TypeVar("S")


def _default_copy(candidate: Any) -> Any:
    return candidate.copy()


class BestTracker(Generic[S]):
    """Tracks the best (cost, solution) pair and the stall streak.

    Parameters
    ----------
    copy:
        How to snapshot a candidate when it becomes the new best
        (defaults to calling its ``.copy()``).  Engines pass their live
        working solution each iteration; only improvements pay the copy.
    """

    __slots__ = ("_copy", "_best", "_best_cost", "_stall")

    def __init__(self, copy: Callable[[S], S] = _default_copy):
        self._copy = copy
        self._best: Optional[S] = None
        self._best_cost = float("inf")
        self._stall = 0

    @property
    def best(self) -> S:
        if self._best is None:
            raise ValueError("tracker has no best yet; call seed() first")
        return self._best

    @property
    def best_cost(self) -> float:
        return self._best_cost

    @property
    def stall(self) -> int:
        """Consecutive non-improving updates since the last improvement."""
        return self._stall

    def seed(self, cost: float, candidate: S) -> None:
        """Install the initial solution without touching the stall count."""
        self._best_cost = cost
        self._best = self._copy(candidate)
        self._stall = 0

    def update(self, cost: float, candidate: S) -> bool:
        """Offer one iteration's outcome; returns True on improvement.

        Strict-less comparison: a tie is *not* an improvement (matching
        every historical engine) and increments the stall streak.
        """
        if cost < self._best_cost:
            self._best_cost = cost
            self._best = self._copy(candidate)
            self._stall = 0
            return True
        self._stall += 1
        return False


class TrajectoryRecorder:
    """Accumulates per-iteration records into a :class:`ConvergenceTrace`."""

    __slots__ = ("trace",)

    def __init__(self) -> None:
        self.trace = ConvergenceTrace()

    def record(
        self,
        iteration: int,
        current_cost: float,
        best_cost: float,
        elapsed_seconds: float,
        evaluations: int,
        num_selected: Optional[int] = None,
        mean_goodness: Optional[float] = None,
    ) -> IterationRecord:
        rec = IterationRecord(
            iteration=iteration,
            current_makespan=current_cost,
            best_makespan=best_cost,
            num_selected=num_selected,
            elapsed_seconds=elapsed_seconds,
            mean_goodness=mean_goodness,
            evaluations=evaluations,
        )
        self.trace.append(rec)
        return rec
