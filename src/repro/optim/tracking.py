"""Best-so-far tracking and trajectory recording, shared by all engines.

:class:`BestTracker` owns the improvement rule every engine used to
re-implement: a candidate replaces the incumbent only on a **strict**
cost improvement (ties keep the old best and count toward the stall
streak), and the stored best is a *copy* of the candidate so engines can
keep mutating their working solution in place.

:class:`TrajectoryRecorder` builds the
:class:`~repro.analysis.trace.IterationRecord` rows of a
:class:`~repro.analysis.trace.ConvergenceTrace` — the exact record/trace
types the figure benchmarks and the runner already consume, so a
refactored engine's trace is indistinguishable from the hand-rolled one.

:class:`ParetoTracker` is :class:`BestTracker`'s bi-objective sibling:
instead of one scalar incumbent it maintains the **non-dominated front**
over ``(makespan, cost)`` points — the output of a cost-aware search
(see :mod:`repro.optim.objective`).  The
:class:`~repro.optim.evaluation.EvaluationService` offers every point it
scores to an attached tracker, so one weighted-sum run (or several runs
sharing a tracker, as ``repro pareto`` does) accumulates the whole
front for free.
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass
from typing import Any, Callable, Generic, Iterator, Optional, TypeVar

from repro.analysis.trace import ConvergenceTrace, IterationRecord

S = TypeVar("S")


def _default_copy(candidate: Any) -> Any:
    return candidate.copy()


class BestTracker(Generic[S]):
    """Tracks the best (cost, solution) pair and the stall streak.

    Parameters
    ----------
    copy:
        How to snapshot a candidate when it becomes the new best
        (defaults to calling its ``.copy()``).  Engines pass their live
        working solution each iteration; only improvements pay the copy.
    """

    __slots__ = ("_copy", "_best", "_best_cost", "_stall")

    def __init__(self, copy: Callable[[S], S] = _default_copy):
        self._copy = copy
        self._best: Optional[S] = None
        self._best_cost = float("inf")
        self._stall = 0

    @property
    def best(self) -> S:
        if self._best is None:
            raise ValueError("tracker has no best yet; call seed() first")
        return self._best

    @property
    def best_cost(self) -> float:
        return self._best_cost

    @property
    def stall(self) -> int:
        """Consecutive non-improving updates since the last improvement."""
        return self._stall

    def seed(self, cost: float, candidate: S) -> None:
        """Install the initial solution without touching the stall count."""
        self._best_cost = cost
        self._best = self._copy(candidate)
        self._stall = 0

    def update(self, cost: float, candidate: S) -> bool:
        """Offer one iteration's outcome; returns True on improvement.

        Strict-less comparison: a tie is *not* an improvement (matching
        every historical engine) and increments the stall streak.
        """
        if cost < self._best_cost:
            self._best_cost = cost
            self._best = self._copy(candidate)
            self._stall = 0
            return True
        self._stall += 1
        return False


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated ``(makespan, cost)`` point and its schedule."""

    makespan: float
    cost: float
    candidate: Any = None

    @property
    def point(self) -> tuple[float, float]:
        return (self.makespan, self.cost)


class ParetoTracker:
    """The non-dominated front over ``(makespan, cost)``.

    Dominance is the standard weak/strict mix: ``a`` dominates ``b``
    when ``a`` is <= on both objectives and strictly < on at least one.
    A point equal to a front member on *both* objectives is already
    represented and is rejected (so duplicates never grow the front);
    a point tied on one objective but better on the other *replaces*
    the dominated member.  The resulting front is a set — independent
    of insertion order (property-tested).

    Parameters
    ----------
    copy:
        How to snapshot a candidate when its point joins the front
        (default: :func:`copy.deepcopy`, safe for live engine
        solutions).  Only accepted offers pay the copy.

    >>> t = ParetoTracker()
    >>> t.offer(10.0, 5.0), t.offer(12.0, 3.0), t.offer(11.0, 6.0)
    (True, True, False)
    >>> [(p.makespan, p.cost) for p in t.front]
    [(10.0, 5.0), (12.0, 3.0)]
    >>> t.offer(10.0, 3.0)  # dominates both members
    True
    >>> [(p.makespan, p.cost) for p in t.front]
    [(10.0, 3.0)]
    """

    __slots__ = ("_copy", "_points", "_offers")

    def __init__(self, copy: Callable[[Any], Any] = _copy.deepcopy):
        self._copy = copy
        self._points: list[ParetoPoint] = []
        self._offers = 0

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[ParetoPoint]:
        return iter(self.front)

    @property
    def offers(self) -> int:
        """Points offered so far (accepted or not)."""
        return self._offers

    @property
    def front(self) -> list[ParetoPoint]:
        """The current front, sorted by makespan (ascending)."""
        return sorted(self._points, key=lambda p: (p.makespan, p.cost))

    def dominated(self, makespan: float, cost: float) -> bool:
        """True if some front member dominates-or-equals the point."""
        return any(
            p.makespan <= makespan and p.cost <= cost
            for p in self._points
        )

    def offer(
        self, makespan: float, cost: float, candidate: Any = None
    ) -> bool:
        """Offer one scored point; returns True if it joined the front.

        The candidate is copied only on acceptance, so offering every
        probe of a search loop is cheap.
        """
        self._offers += 1
        if self.dominated(makespan, cost):
            return False
        self._points = [
            p
            for p in self._points
            if not (makespan <= p.makespan and cost <= p.cost)
        ]
        self._points.append(
            ParetoPoint(
                makespan=float(makespan),
                cost=float(cost),
                candidate=(
                    self._copy(candidate) if candidate is not None else None
                ),
            )
        )
        return True


class TrajectoryRecorder:
    """Accumulates per-iteration records into a :class:`ConvergenceTrace`."""

    __slots__ = ("trace",)

    def __init__(self) -> None:
        self.trace = ConvergenceTrace()

    def record(
        self,
        iteration: int,
        current_cost: float,
        best_cost: float,
        elapsed_seconds: float,
        evaluations: int,
        num_selected: Optional[int] = None,
        mean_goodness: Optional[float] = None,
    ) -> IterationRecord:
        rec = IterationRecord(
            iteration=iteration,
            current_makespan=current_cost,
            best_makespan=best_cost,
            num_selected=num_selected,
            elapsed_seconds=elapsed_seconds,
            mean_goodness=mean_goodness,
            evaluations=evaluations,
        )
        self.trace.append(rec)
        return rec
