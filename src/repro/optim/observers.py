"""The observer bus shared by every iterative engine.

An observer is any callable invoked once per iteration with the fresh
:class:`~repro.analysis.trace.IterationRecord` plus the engine's live
working solution (the SE string, the GA generation's best chromosome
decoded to a string, the SA/tabu working string).  The protocol is the
historical SE one, unchanged — existing observers such as
:class:`repro.core.observers.ProgressPrinter` work on every engine now.
"""

from __future__ import annotations

from typing import Iterable, Protocol

from repro.analysis.trace import IterationRecord
from repro.schedule.encoding import ScheduleString


class Observer(Protocol):
    """Anything callable as ``observer(record, string)``."""

    def __call__(
        self, record: IterationRecord, string: ScheduleString
    ) -> None: ...


class ObserverBus:
    """Fans one per-iteration notification out to every subscriber.

    A plain loop, but owning it centrally means every engine notifies at
    the same point of its iteration (after trace recording, before the
    stall check) with the same ``(record, string)`` signature.
    """

    __slots__ = ("_observers",)

    def __init__(self, observers: Iterable[Observer] = ()):
        self._observers = tuple(observers)

    def __len__(self) -> int:
        return len(self._observers)

    def notify(self, record: IterationRecord, string) -> None:
        for obs in self._observers:
            obs(record, string)
