"""The unified metaheuristic search core.

Every iterative schedule optimiser in the library is the same machine
with different internals: evaluate candidates against a simulator
backend, keep the best solution, record a convergence trace, notify
observers, stop on an iteration/time/stall rule.  This package owns
that machine once:

* :class:`~repro.optim.stop.StopPolicy` — the three stopping rules and
  their canonical reason strings (``"iterations"`` / ``"time"`` /
  ``"stall"``), shared verbatim by SE, the GA, SA and tabu;
* :class:`~repro.optim.tracking.BestTracker` /
  :class:`~repro.optim.tracking.TrajectoryRecorder` — strict-improvement
  best tracking and :class:`~repro.analysis.trace.IterationRecord`
  emission;
* :class:`~repro.optim.observers.ObserverBus` — the per-iteration
  callback fan-out (the historical SE observer protocol, now on every
  engine);
* :class:`~repro.optim.evaluation.EvaluationService` — backend
  selection plus transparent single / incremental-delta / batch scoring
  with built-in ``evaluations`` accounting; the ``platform`` /
  ``objective`` / ``pareto`` parameters route cost-aware bi-objective
  search (:mod:`repro.optim.objective`) through every engine without
  engine changes;
* :class:`~repro.optim.tracking.ParetoTracker` — the non-dominated
  (makespan, cost) front next to the scalar :class:`BestTracker`;
* :class:`~repro.optim.loop.SearchLoop` — the driver tying the above
  together around an engine-supplied ``step`` callback;
* :mod:`~repro.optim.neighborhood` — the pairwise-move neighborhood
  (reorder / reassign) as first-class :class:`~repro.optim.
  neighborhood.Move` data;
* two engines built *directly* on the core —
  :class:`~repro.optim.annealing.SimulatedAnnealing` (geometric
  cooling) and :class:`~repro.optim.tabu.TabuSearch` (move-attribute
  tabu list with aspiration) — each essentially a ~60-line ``step``
  closure plus an acceptance rule.

The SE engine (:mod:`repro.core.engine`), the GA baseline
(:mod:`repro.baselines.ga.engine`) and random search run on the same
components, bit-identically to their pre-refactor behaviour
(``tests/test_golden_engines.py``).
"""

from repro.optim.annealing import SAConfig, SimulatedAnnealing, run_sa
from repro.optim.evaluation import EvaluationService
from repro.optim.exchange import Incumbent, IncumbentSource
from repro.optim.loop import LoopOutcome, SearchLoop, StepOutcome
from repro.optim.neighborhood import (
    Move,
    applied_copy,
    apply_move,
    first_changed_position,
    inverse_move,
    random_move,
)
from repro.optim.objective import (
    MAKESPAN,
    MakespanObjective,
    ObjectiveBackend,
    WeightedObjective,
    resolve_objective,
    weighted,
)
from repro.optim.observers import Observer, ObserverBus
from repro.optim.result import SearchResult
from repro.optim.stop import (
    STOP_ITERATIONS,
    STOP_STALL,
    STOP_TIME,
    StopPolicy,
)
from repro.optim.tabu import TabuConfig, TabuSearch, run_tabu
from repro.optim.tracking import (
    BestTracker,
    ParetoPoint,
    ParetoTracker,
    TrajectoryRecorder,
)

__all__ = [
    "MAKESPAN",
    "STOP_ITERATIONS",
    "STOP_STALL",
    "STOP_TIME",
    "BestTracker",
    "EvaluationService",
    "Incumbent",
    "IncumbentSource",
    "MakespanObjective",
    "ObjectiveBackend",
    "ParetoPoint",
    "ParetoTracker",
    "WeightedObjective",
    "LoopOutcome",
    "Move",
    "Observer",
    "ObserverBus",
    "SAConfig",
    "SearchLoop",
    "SearchResult",
    "SimulatedAnnealing",
    "StepOutcome",
    "StopPolicy",
    "TabuConfig",
    "TabuSearch",
    "TrajectoryRecorder",
    "applied_copy",
    "apply_move",
    "first_changed_position",
    "inverse_move",
    "random_move",
    "resolve_objective",
    "run_sa",
    "run_tabu",
    "weighted",
]
