"""Simulated annealing over the pairwise-move neighborhood.

A classic single-solution metaheuristic riding the shared optim core:
each iteration proposes one uniformly random valid move
(:func:`~repro.optim.neighborhood.random_move`), scores it through the
:class:`~repro.optim.evaluation.EvaluationService`'s incremental
``evaluate_delta`` tier (only the string suffix from the move's first
changed position re-evaluates), and accepts it if it does not worsen
the schedule — or, when it does, with the Metropolis probability
``exp(-delta / T)``.  The temperature follows a **geometric cooling
schedule**: it starts at ``initial_temp`` (auto-calibrated to 10% of
the initial makespan by default), holds for ``steps_per_temp``
proposals, then multiplies by ``cooling``, never dropping below
``min_temp_factor`` times the start value (so late iterations keep a
whisper of uphill mobility instead of freezing into pure hill
climbing).

Everything around that acceptance rule — stopping, best tracking,
trace records, observers — is the shared
:class:`~repro.optim.loop.SearchLoop`, which is the point: the whole
engine is the ``step`` closure below.

>>> from repro.optim import SAConfig, run_sa
>>> from repro.workloads import small_workload
>>> w = small_workload(seed=1)
>>> res = run_sa(w, SAConfig(seed=1, max_iterations=200))
>>> res.iterations
200
>>> res.best_makespan == min(res.trace.best_makespans())
True
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.model.workload import Workload
from repro.optim.evaluation import EvaluationService
from repro.optim.exchange import IncumbentSource
from repro.optim.loop import SearchLoop, StepOutcome
from repro.optim.objective import resolve_objective
from repro.optim.neighborhood import (
    apply_move,
    first_changed_position,
    inverse_move,
    random_move,
)
from repro.optim.observers import Observer
from repro.optim.result import SearchResult
from repro.optim.stop import StopPolicy
from repro.schedule.backend import (
    DEFAULT_NETWORK,
    DEFAULT_PLATFORM,
    resolve_platform,
)
from repro.schedule.encoding import ScheduleString
from repro.schedule.operations import random_valid_string
from repro.stochastic.distributions import validate_scenario_settings
from repro.utils.rng import RandomSource, as_rng
from repro.utils.timers import Stopwatch


@dataclass
class SAConfig:
    """Parameters of one :class:`SimulatedAnnealing` run.

    Attributes
    ----------
    initial_temp:
        Starting temperature ``T0``; ``None`` auto-calibrates to 10% of
        the initial solution's makespan (a move worsening the schedule
        by 10% then starts with acceptance probability ``1/e``).
    cooling:
        Geometric factor applied after every ``steps_per_temp``
        proposals (``T <- cooling * T``); must lie in (0, 1].
    steps_per_temp:
        Proposals evaluated per temperature level.
    min_temp_factor:
        Temperature floor as a fraction of ``T0``.
    reassign_prob:
        Probability that a proposal reassigns a machine rather than
        relocating a subtask in the string.
    max_iterations:
        Total proposal cap — one iteration = one proposed move (so
        trace records are per proposal, like random search's
        per-sample records).
    record_every:
        Trace thinning stride: append an
        :class:`~repro.analysis.trace.IterationRecord` (and notify
        observers) only every Nth proposal — plus every proposal that
        improves the global best, so best-so-far curves stay exact.
        The default 1 records everything; wall-clock-budget harnesses
        (``sa_runner``, ``repro sweep --budget``) use coarser strides
        because a multi-minute budget means millions of ~25 µs
        proposals, and a per-proposal trace would grow unbounded.
    time_limit:
        Optional wall-clock cap in seconds.
    stall_iterations:
        Stop after this many consecutive proposals without a new global
        best (``None`` disables).
    network:
        Simulator backend the run optimises against.
    platform:
        Platform (machine catalog) name the run is costed against; the
        default ``"uniform"`` reproduces the historical behaviour bit
        for bit (see :mod:`repro.model.platform`).
    objective:
        ``"makespan"`` (default), ``"weighted:<w_m>:<w_c>"``, or a
        scenario (risk) objective ``mean`` / ``quantile:<q>`` /
        ``cvar:<q>`` / ``saa:<T>:<eps>`` — what the annealer's
        acceptance rule compares (see :mod:`repro.optim.objective`).
    scenarios, distribution, scenario_seed:
        Monte-Carlo axis of the scenario objectives (see
        :mod:`repro.stochastic`); only valid together with a scenario
        objective.
    seed:
        Seed / generator for all stochastic choices.
    """

    initial_temp: Optional[float] = None
    cooling: float = 0.95
    steps_per_temp: int = 50
    min_temp_factor: float = 1e-3
    reassign_prob: float = 0.5
    max_iterations: int = 5000
    record_every: int = 1
    time_limit: Optional[float] = None
    stall_iterations: Optional[int] = None
    network: str = DEFAULT_NETWORK
    platform: str = DEFAULT_PLATFORM
    objective: str = "makespan"
    scenarios: int = 0
    distribution: str = "deterministic"
    scenario_seed: int = 0
    seed: RandomSource = None

    def __post_init__(self) -> None:
        if self.initial_temp is not None and self.initial_temp <= 0:
            raise ValueError(
                f"initial_temp must be > 0, got {self.initial_temp}"
            )
        if not 0.0 < self.cooling <= 1.0:
            raise ValueError(f"cooling must be in (0, 1], got {self.cooling}")
        if self.steps_per_temp < 1:
            raise ValueError(
                f"steps_per_temp must be >= 1, got {self.steps_per_temp}"
            )
        if not 0.0 < self.min_temp_factor <= 1.0:
            raise ValueError(
                f"min_temp_factor must be in (0, 1], got {self.min_temp_factor}"
            )
        if not 0.0 <= self.reassign_prob <= 1.0:
            raise ValueError(
                f"reassign_prob must be in [0, 1], got {self.reassign_prob}"
            )
        if self.record_every < 1:
            raise ValueError(
                f"record_every must be >= 1, got {self.record_every}"
            )
        if not isinstance(self.network, str) or not self.network:
            raise ValueError(
                f"network must be a backend name string, got {self.network!r}"
            )
        resolve_platform(self.platform)
        resolve_objective(self.objective)
        validate_scenario_settings(
            self.objective, self.scenarios, self.distribution
        )
        # iteration/time/stall bounds are validated by the StopPolicy
        StopPolicy(self.max_iterations, self.time_limit, self.stall_iterations)

    def stop_policy(self) -> StopPolicy:
        return StopPolicy(
            max_iterations=self.max_iterations,
            time_limit=self.time_limit,
            stall_iterations=self.stall_iterations,
        )


class SimulatedAnnealing:
    """Geometric-cooling annealing configured by an :class:`SAConfig`."""

    def __init__(self, config: Optional[SAConfig] = None):
        self.config = config or SAConfig()

    def run(
        self,
        workload: Workload,
        observers: Sequence[Observer] = (),
        initial: Optional[ScheduleString] = None,
        service: Optional[EvaluationService] = None,
        exchange: Optional[IncumbentSource] = None,
    ) -> SearchResult:
        """Optimise *workload*; see module docstring.

        Parameters
        ----------
        workload:
            The MSHC problem instance.
        observers:
            Callables invoked each proposal with ``(record, string)``.
        initial:
            Optional starting string (copied); defaults to a uniformly
            random valid string.
        service:
            Optional pre-built :class:`EvaluationService` (must wrap
            *workload*).  The online service passes one constructed
            against non-idle machine state, so annealing improves the
            *residual* schedule; omitted, the engine builds its own from
            ``config.network`` exactly as before.
        exchange:
            Optional portfolio incumbent source (see
            :mod:`repro.optim.exchange`).  A delivered incumbent
            replaces the working solution (replace-if-better seeding);
            ``None`` leaves the run bit-identical to a solo run.
        """
        cfg = self.config
        rng = as_rng(cfg.seed)
        graph = workload.graph
        if service is None:
            # SA scores one proposal at a time: the incremental tier is
            # the hot path, so skip the batch kernel's packing entirely.
            service = EvaluationService(
                workload,
                cfg.network,
                prefer_batch=False,
                platform=cfg.platform,
                objective=cfg.objective,
                scenarios=cfg.scenarios,
                distribution=cfg.distribution,
                scenario_seed=cfg.scenario_seed,
            )
        watch = Stopwatch()

        if initial is None:
            string = random_valid_string(graph, workload.num_machines, rng)
        else:
            string = initial.copy()
        # prepare() both scores the initial string and anchors the
        # delta state every proposal is diffed against
        state = service.prepare(string.order, string.machines)
        current_cost = state.makespan

        t0 = cfg.initial_temp
        if t0 is None:
            t0 = max(0.1 * current_cost, 1e-9)
        t_floor = t0 * cfg.min_temp_factor

        def step(iteration: int) -> StepOutcome[ScheduleString]:
            nonlocal string, state, current_cost
            if exchange is not None:
                inc = exchange.incoming(iteration, current_cost)
                if inc is not None:
                    # replace-if-better: adopt the foreign incumbent and
                    # re-anchor the delta state on it (one counted
                    # evaluation, like any accepted move)
                    string = ScheduleString(
                        inc.order, inc.machines, workload.num_machines
                    )
                    state = service.prepare(string.order, string.machines)
                    current_cost = state.makespan
            level = (iteration - 1) // cfg.steps_per_temp
            temp = max(t_floor, t0 * cfg.cooling**level)

            move = random_move(string, graph, rng, cfg.reassign_prob)
            first = first_changed_position(string, move)
            undo = inverse_move(string, move)
            apply_move(string, move)
            cost = service.evaluate_delta(
                string.order, string.machines, first, state
            )
            delta = cost - current_cost
            if delta <= 0 or rng.random() < math.exp(-delta / temp):
                current_cost = cost
                # re-anchor the delta state on the accepted solution
                state = service.prepare(string.order, string.machines)
                accepted = 1
            else:
                apply_move(string, undo)
                accepted = 0
            return StepOutcome(
                cost=current_cost,
                candidate=string,
                num_selected=accepted,
                # thin the trace on coarse strides, but never drop a
                # new global best (keeps best-so-far curves exact)
                record=(
                    iteration % cfg.record_every == 0
                    or current_cost < loop.tracker.best_cost
                ),
            )

        loop: SearchLoop[ScheduleString] = SearchLoop(
            stop=cfg.stop_policy(),
            observers=observers,
            evaluations=lambda: service.evaluations,
        )
        out = loop.run(current_cost, string, step, watch=watch)

        best_schedule = service.schedule_of(out.best)
        return SearchResult(
            best_string=out.best,
            # under a weighted objective out.best_cost is the scalar;
            # report the schedule's real makespan in that mode
            best_makespan=(
                out.best_cost
                if service.objective.is_makespan
                else best_schedule.makespan
            ),
            best_schedule=best_schedule,
            trace=out.trace,
            iterations=out.iterations,
            evaluations=service.evaluations,
            stopped_by=out.stopped_by,
        )


def run_sa(
    workload: Workload,
    config: Optional[SAConfig] = None,
    observers: Sequence[Observer] = (),
    initial: Optional[ScheduleString] = None,
    service: Optional[EvaluationService] = None,
    exchange: Optional[IncumbentSource] = None,
) -> SearchResult:
    """Functional convenience wrapper around :class:`SimulatedAnnealing`."""
    return SimulatedAnnealing(config).run(
        workload,
        observers=observers,
        initial=initial,
        service=service,
        exchange=exchange,
    )
