"""Tabu search over the pairwise-move neighborhood.

Each iteration samples a whole candidate neighborhood — ``neighborhood_
size`` random valid *identity-free* moves against the current string
(no-op candidates would tie the incumbent and outrank every worsening
move at a local optimum, see :func:`~repro.optim.neighborhood.
random_move`) — and scores *all* candidates in one
:meth:`~repro.optim.evaluation.EvaluationService.
batch_string_makespans` call, which routes through the network's
vectorized batch kernel when one is registered (the contention-free
model) and a scalar loop otherwise.  The best **admissible** candidate
is then committed even if it worsens the schedule (that is what lets
tabu search climb out of local optima):

* **move-attribute tabu list** — committing a move makes its subtask
  tabu for ``tenure`` iterations: no candidate relocating or
  reassigning that subtask is admissible while the tenure holds (this
  blocks the trivial undo move, and near-undos, without storing whole
  solutions);
* **aspiration** — a tabu candidate is admissible anyway when it beats
  the best makespan seen in the whole run (never refuse a new global
  best);
* **fallback** — if every candidate is tabu and none aspirates, the
  overall best candidate is committed regardless (the search must not
  deadlock).

Stopping, best tracking, trace records and observers are the shared
:class:`~repro.optim.loop.SearchLoop` — the engine itself is the
``step`` closure plus the admissibility rule.

>>> from repro.optim import TabuConfig, run_tabu
>>> from repro.workloads import small_workload
>>> w = small_workload(seed=1)
>>> res = run_tabu(w, TabuConfig(seed=1, max_iterations=30))
>>> res.iterations
30
>>> res.best_makespan == min(res.trace.best_makespans())
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.model.workload import Workload
from repro.optim.evaluation import EvaluationService
from repro.optim.exchange import IncumbentSource
from repro.optim.loop import SearchLoop, StepOutcome
from repro.optim.neighborhood import applied_copy, random_move
from repro.optim.objective import resolve_objective
from repro.optim.observers import Observer
from repro.optim.result import SearchResult
from repro.optim.stop import StopPolicy
from repro.schedule.backend import (
    DEFAULT_NETWORK,
    DEFAULT_PLATFORM,
    resolve_platform,
)
from repro.schedule.encoding import ScheduleString
from repro.schedule.operations import random_valid_string
from repro.stochastic.distributions import validate_scenario_settings
from repro.utils.rng import RandomSource, as_rng
from repro.utils.timers import Stopwatch


@dataclass
class TabuConfig:
    """Parameters of one :class:`TabuSearch` run.

    Attributes
    ----------
    neighborhood_size:
        Candidate moves sampled (and batch-scored) per iteration.
    tenure:
        Iterations a committed move's subtask stays tabu.
    reassign_prob:
        Probability that a candidate move reassigns a machine rather
        than relocating a subtask in the string.
    max_iterations:
        Iteration cap — one iteration = one scored neighborhood plus
        one committed move.
    time_limit:
        Optional wall-clock cap in seconds.
    stall_iterations:
        Stop after this many consecutive iterations without a new
        global best (``None`` disables).
    network:
        Simulator backend the run optimises against.
    platform:
        Platform (machine catalog) name the run is costed against; the
        default ``"uniform"`` reproduces the historical behaviour bit
        for bit (see :mod:`repro.model.platform`).
    objective:
        ``"makespan"`` (default), ``"weighted:<w_m>:<w_c>"``, or a
        scenario (risk) objective ``mean`` / ``quantile:<q>`` /
        ``cvar:<q>`` / ``saa:<T>:<eps>`` — the scalar the
        admissibility rule compares (see :mod:`repro.optim.objective`).
    scenarios, distribution, scenario_seed:
        Monte-Carlo axis of the scenario objectives (see
        :mod:`repro.stochastic`); only valid together with a scenario
        objective.
    seed:
        Seed / generator for all stochastic choices.
    """

    neighborhood_size: int = 24
    tenure: int = 8
    reassign_prob: float = 0.5
    max_iterations: int = 300
    time_limit: Optional[float] = None
    stall_iterations: Optional[int] = None
    network: str = DEFAULT_NETWORK
    platform: str = DEFAULT_PLATFORM
    objective: str = "makespan"
    scenarios: int = 0
    distribution: str = "deterministic"
    scenario_seed: int = 0
    seed: RandomSource = None

    def __post_init__(self) -> None:
        if self.neighborhood_size < 1:
            raise ValueError(
                f"neighborhood_size must be >= 1, got {self.neighborhood_size}"
            )
        if self.tenure < 0:
            raise ValueError(f"tenure must be >= 0, got {self.tenure}")
        if not 0.0 <= self.reassign_prob <= 1.0:
            raise ValueError(
                f"reassign_prob must be in [0, 1], got {self.reassign_prob}"
            )
        if not isinstance(self.network, str) or not self.network:
            raise ValueError(
                f"network must be a backend name string, got {self.network!r}"
            )
        resolve_platform(self.platform)
        resolve_objective(self.objective)
        validate_scenario_settings(
            self.objective, self.scenarios, self.distribution
        )
        StopPolicy(self.max_iterations, self.time_limit, self.stall_iterations)

    def stop_policy(self) -> StopPolicy:
        return StopPolicy(
            max_iterations=self.max_iterations,
            time_limit=self.time_limit,
            stall_iterations=self.stall_iterations,
        )


class TabuSearch:
    """Move-attribute tabu search configured by a :class:`TabuConfig`."""

    def __init__(self, config: Optional[TabuConfig] = None):
        self.config = config or TabuConfig()

    def run(
        self,
        workload: Workload,
        observers: Sequence[Observer] = (),
        initial: Optional[ScheduleString] = None,
        service: Optional[EvaluationService] = None,
        exchange: Optional[IncumbentSource] = None,
    ) -> SearchResult:
        """Optimise *workload*; see module docstring.

        Parameters
        ----------
        workload:
            The MSHC problem instance.
        observers:
            Callables invoked each iteration with ``(record, string)``.
        initial:
            Optional starting string (copied); defaults to a uniformly
            random valid string.
        service:
            Optional pre-built :class:`EvaluationService` (must wrap
            *workload*).  The online service passes one constructed
            against non-idle machine state, so the search optimises the
            *residual* schedule; omitted, the engine builds its own from
            ``config.network`` exactly as before.
        exchange:
            Optional portfolio incumbent source (see
            :mod:`repro.optim.exchange`).  A delivered incumbent
            replaces the working solution and is re-scored (one counted
            evaluation); the tabu tenures persist across the switch.
            ``None`` leaves the run bit-identical to a solo run.
        """
        cfg = self.config
        rng = as_rng(cfg.seed)
        graph = workload.graph
        if service is None:
            # whole neighborhoods score per iteration: the batch tier is
            # the hot path, so ask for the vectorized kernel if available
            service = EvaluationService(
                workload,
                cfg.network,
                prefer_batch=True,
                platform=cfg.platform,
                objective=cfg.objective,
                scenarios=cfg.scenarios,
                distribution=cfg.distribution,
                scenario_seed=cfg.scenario_seed,
            )
        watch = Stopwatch()

        if initial is None:
            string = random_valid_string(graph, workload.num_machines, rng)
        else:
            string = initial.copy()
        current_cost = service.string_makespan(string)

        #: task id -> last iteration on which relocating it is tabu
        tabu_until: dict[int, int] = {}

        loop: SearchLoop[ScheduleString] = SearchLoop(
            stop=cfg.stop_policy(),
            observers=observers,
            evaluations=lambda: service.evaluations,
        )

        def step(iteration: int) -> StepOutcome[ScheduleString]:
            nonlocal string, current_cost
            if exchange is not None:
                inc = exchange.incoming(iteration, current_cost)
                if inc is not None:
                    # replace-if-better: the next neighborhood samples
                    # around the foreign incumbent instead
                    string = ScheduleString(
                        inc.order, inc.machines, workload.num_machines
                    )
                    current_cost = service.string_makespan(string)
            # no-op candidates would cost exactly the incumbent and
            # outrank every worsening move at a local optimum, so the
            # neighborhood samples identity-free moves only
            moves = [
                random_move(
                    string, graph, rng, cfg.reassign_prob, avoid_noop=True
                )
                for _ in range(cfg.neighborhood_size)
            ]
            # candidates are valid by construction, so skip re-validation
            candidates = [applied_copy(string, mv) for mv in moves]
            costs = service.batch_string_makespans(candidates, validate=False)

            best_known = loop.tracker.best_cost
            chosen = None  # (cost, index) of the best admissible move
            fallback = None  # best overall, in case everything is tabu
            admissible = 0
            for i, cost in enumerate(costs):
                if fallback is None or cost < fallback[0]:
                    fallback = (cost, i)
                is_tabu = tabu_until.get(moves[i].task, -1) >= iteration
                if is_tabu and not cost < best_known:  # no aspiration
                    continue
                admissible += 1
                if chosen is None or cost < chosen[0]:
                    chosen = (cost, i)
            if chosen is None:
                chosen = fallback
            cost, i = chosen
            string = candidates[i]
            current_cost = cost
            tabu_until[moves[i].task] = iteration + cfg.tenure
            return StepOutcome(
                cost=current_cost,
                candidate=string,
                num_selected=admissible,
            )

        out = loop.run(current_cost, string, step, watch=watch)

        best_schedule = service.schedule_of(out.best)
        return SearchResult(
            best_string=out.best,
            # under a weighted objective out.best_cost is the scalar;
            # report the schedule's real makespan in that mode
            best_makespan=(
                out.best_cost
                if service.objective.is_makespan
                else best_schedule.makespan
            ),
            best_schedule=best_schedule,
            trace=out.trace,
            iterations=out.iterations,
            evaluations=service.evaluations,
            stopped_by=out.stopped_by,
        )


def run_tabu(
    workload: Workload,
    config: Optional[TabuConfig] = None,
    observers: Sequence[Observer] = (),
    initial: Optional[ScheduleString] = None,
    service: Optional[EvaluationService] = None,
    exchange: Optional[IncumbentSource] = None,
) -> SearchResult:
    """Functional convenience wrapper around :class:`TabuSearch`."""
    return TabuSearch(config).run(
        workload,
        observers=observers,
        initial=initial,
        service=service,
        exchange=exchange,
    )
