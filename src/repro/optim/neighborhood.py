"""The pairwise-move neighborhood over schedule strings.

Simulated annealing and tabu search explore the same two validity-
preserving move kinds the rest of the library already uses (see
:mod:`repro.schedule.operations`): relocating a subtask to a uniformly
random position inside its valid moving range (**reorder**, the paper's
§4.2 perturbation) and reassigning a subtask to a uniformly random
machine (**reassign**, the GA's matching mutation).  This module
reifies a move as data — so an engine can score, revert, or tabu-list a
move without committing it — and knows each move's *first changed
string position*, which is what routes proposals through the backends'
incremental ``evaluate_delta`` tier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.graph import TaskGraph
from repro.schedule.encoding import ScheduleString
from repro.schedule.valid_range import valid_insertion_range

#: Move kinds: relocate in the string vs reassign the machine.
REORDER = "reorder"
REASSIGN = "reassign"


@dataclass(frozen=True)
class Move:
    """One atomic neighborhood move, as data.

    ``target`` is an insertion index (:meth:`ScheduleString.move`
    semantics) for ``"reorder"`` moves and a machine id for
    ``"reassign"`` moves.
    """

    kind: str
    task: int
    target: int


def random_move(
    string: ScheduleString,
    graph: TaskGraph,
    rng: np.random.Generator,
    reassign_prob: float = 0.5,
    avoid_noop: bool = False,
) -> Move:
    """Draw one uniformly random valid move against *string*.

    With probability *reassign_prob* the move reassigns a random
    subtask to a random machine (the new machine may equal the old one,
    matching :func:`repro.schedule.operations.random_reassign`);
    otherwise it relocates a random subtask to a uniform position in
    its valid moving range (matching :func:`~repro.schedule.operations.
    random_valid_move`).

    With *avoid_noop* the draw excludes identity moves (reassigning to
    the current machine, relocating to the current position), drawing
    uniformly from the remaining targets.  Tabu search needs this: a
    no-op candidate costs exactly the incumbent and would outrank every
    worsening move at a local optimum, neutralising the escape
    mechanism.  When the chosen kind has no non-identity target (a
    single machine / a single-position moving range) the other kind is
    tried; a subtask with neither (degenerate one-task-one-machine
    instance) yields the identity reorder as a last resort.
    """
    task = int(rng.integers(string.num_tasks))
    want_reassign = rng.random() < reassign_prob
    if not avoid_noop:
        if want_reassign:
            return Move(
                REASSIGN, task, int(rng.integers(string.num_machines))
            )
        lo, hi = valid_insertion_range(string, graph, task)
        return Move(REORDER, task, int(rng.integers(lo, hi + 1)))

    def reassign_elsewhere() -> Move:
        # uniform over the l-1 other machines via draw-and-shift
        cur = string.machine_of(task)
        m = int(rng.integers(string.num_machines - 1))
        return Move(REASSIGN, task, m + 1 if m >= cur else m)

    if want_reassign and string.num_machines > 1:
        return reassign_elsewhere()
    lo, hi = valid_insertion_range(string, graph, task)
    pos = string.position_of(task)
    if hi > lo:
        # uniform over [lo, hi] minus the current position
        idx = int(rng.integers(lo, hi))
        return Move(REORDER, task, idx + 1 if idx >= pos else idx)
    if string.num_machines > 1:
        return reassign_elsewhere()
    return Move(REORDER, task, pos)


def apply_move(string: ScheduleString, move: Move) -> None:
    """Apply *move* to *string* in place."""
    if move.kind == REASSIGN:
        string.assign(move.task, move.target)
    elif move.kind == REORDER:
        string.move(move.task, move.target)
    else:
        raise ValueError(f"unknown move kind {move.kind!r}")


def inverse_move(string: ScheduleString, move: Move) -> Move:
    """The move undoing *move* — computed **before** applying it."""
    if move.kind == REASSIGN:
        return Move(REASSIGN, move.task, string.machine_of(move.task))
    if move.kind == REORDER:
        return Move(REORDER, move.task, string.position_of(move.task))
    raise ValueError(f"unknown move kind {move.kind!r}")


def first_changed_position(string: ScheduleString, move: Move) -> int:
    """First string position whose evaluation *move* can change.

    Computed **before** applying the move.  A reassignment keeps the
    order, so only the task's own position onward re-evaluates; a
    relocation dirties everything from the leftmost of (old position,
    insertion index).  This is the ``first_changed`` argument of the
    backends' ``evaluate_delta``.
    """
    pos = string.position_of(move.task)
    if move.kind == REASSIGN:
        return pos
    if move.kind == REORDER:
        return min(pos, move.target)
    raise ValueError(f"unknown move kind {move.kind!r}")


def applied_copy(string: ScheduleString, move: Move) -> ScheduleString:
    """A copy of *string* with *move* applied (the original untouched)."""
    out = string.copy()
    apply_move(out, move)
    return out
