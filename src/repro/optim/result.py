"""The common result type of the optim-core engines (SA, tabu, ...).

Mirrors :class:`repro.core.engine.SEResult` field-for-field where the
concepts coincide, so downstream code (registry entries, the comparison
harness, the figure benchmarks) treats every engine uniformly.  The SE
and GA engines keep their historical result classes for compatibility;
new engines built directly on :mod:`repro.optim` return this one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.trace import ConvergenceTrace
from repro.schedule.encoding import ScheduleString
from repro.schedule.simulator import Schedule


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one optim-core engine run.

    Attributes
    ----------
    best_string:
        The best solution found (a copy; safe to keep).
    best_makespan:
        Its schedule length under the configured ``network`` backend.
    best_schedule:
        The fully evaluated best schedule (start/finish times).
    trace:
        Per-iteration convergence records.
    iterations:
        Iterations executed (engine-specific granularity: SA proposals,
        tabu steps).
    evaluations:
        Total simulator calls (cost accounting).
    stopped_by:
        ``"iterations"``, ``"time"`` or ``"stall"`` — the unified
        :mod:`repro.optim.stop` reason strings.
    """

    best_string: ScheduleString
    best_makespan: float
    best_schedule: Schedule
    trace: ConvergenceTrace
    iterations: int
    evaluations: int
    stopped_by: str
