"""Unified stopping rules for the iterative search engines.

Every engine in the library stops for one of three reasons — an
iteration cap, a wall-clock limit, or a no-improvement stall — and
before this module each engine re-implemented the trio with its own
field names (``SEConfig.stall_iterations`` vs the GA's
``stall_generations``) and its own reason strings.  :class:`StopPolicy`
owns the semantics once; :class:`~repro.optim.loop.SearchLoop` consults
it, so **all** engines report the same reason strings:

* ``"iterations"`` — the iteration/generation cap was exhausted;
* ``"time"``       — the wall-clock limit was reached (checked at the
  *top* of each iteration, before any work, exactly like the historical
  SE/GA loops);
* ``"stall"``      — ``stall_iterations`` consecutive iterations passed
  without a strict improvement of the best cost (checked at the
  *bottom* of each iteration, after trace recording).

The check order matters when several limits trigger on the same
iteration and is pinned by ``tests/optim/test_stop_policy.py``: the
iteration cap is consulted first (a run whose cap is exhausted reports
``"iterations"`` even if the clock also ran out), then time, and stall
only ever fires after a completed iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: The three canonical stop reasons every engine reports.
STOP_ITERATIONS = "iterations"
STOP_TIME = "time"
STOP_STALL = "stall"


@dataclass(frozen=True)
class StopPolicy:
    """When an iterative search must stop.

    Attributes
    ----------
    max_iterations:
        Hard cap on completed iterations (SE iterations, GA
        generations, SA sweeps, tabu steps).  ``0`` means the loop body
        never runs.
    time_limit:
        Optional wall-clock cap in seconds.  Checked before starting an
        iteration, so a run may overshoot by at most one iteration's
        duration — the exact historical engine behaviour.
    stall_iterations:
        Optional early stop after this many consecutive iterations
        without a strict best-cost improvement (``None`` disables).
        ``stall_iterations=1`` therefore stops at the first
        non-improving iteration.
    """

    max_iterations: int
    time_limit: Optional[float] = None
    stall_iterations: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_iterations < 0:
            raise ValueError(
                f"max_iterations must be >= 0, got {self.max_iterations}"
            )
        if self.time_limit is not None and self.time_limit < 0:
            raise ValueError(
                f"time_limit must be >= 0, got {self.time_limit}"
            )
        if self.stall_iterations is not None and self.stall_iterations < 1:
            raise ValueError(
                f"stall_iterations must be >= 1, got {self.stall_iterations}"
            )

    def exhausted(self, iterations_done: int) -> bool:
        """True when the iteration cap forbids starting another iteration."""
        return iterations_done >= self.max_iterations

    def out_of_time(self, elapsed_seconds: float) -> bool:
        """True when the wall-clock limit has been reached."""
        return (
            self.time_limit is not None
            and elapsed_seconds >= self.time_limit
        )

    def stalled(self, stall_count: int) -> bool:
        """True when *stall_count* non-improving iterations trip the stop."""
        return (
            self.stall_iterations is not None
            and stall_count >= self.stall_iterations
        )
