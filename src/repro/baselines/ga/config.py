"""Configuration of the Wang-et-al.-style genetic algorithm baseline.

Wang, Siegel, Roychowdhury & Maciejewski (JPDC 1997) — the comparator the
paper uses in §5.3 — evolve a population of (matching string, scheduling
string) chromosomes with roulette-wheel selection, elitism, validity-
preserving crossover/mutation, and a no-improvement stopping rule.  Their
article fixes the *structure* but several rates are reported only as
"tuned"; the defaults below are the common mid-range choices and are
recorded as substitutions in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.optim.objective import resolve_objective
from repro.optim.stop import StopPolicy
from repro.schedule.backend import (
    DEFAULT_NETWORK,
    DEFAULT_PLATFORM,
    resolve_platform,
)
from repro.stochastic.distributions import validate_scenario_settings
from repro.utils.rng import RandomSource


@dataclass
class GAConfig:
    """Parameters of one :class:`~repro.baselines.ga.engine.GeneticAlgorithm` run.

    Attributes
    ----------
    population_size:
        Number of chromosomes (Wang et al. used 50).
    crossover_prob:
        Per-pair probability of applying crossover (both the matching and
        the scheduling crossover are attempted on a selected pair).
    mutation_prob:
        Per-offspring probability of each mutation kind (matching
        reassignment / scheduling move).
    elite_count:
        Best chromosomes copied unchanged into the next generation
        (Wang et al. guarantee the best individual survives).
    max_generations:
        Generation cap.
    time_limit:
        Optional wall-clock cap in seconds.
    stall_generations:
        Stop after this many generations without improvement of the best
        makespan (Wang et al. used 150); ``None`` disables.
    incremental_evaluation:
        Score offspring with suffix-only re-evaluation against their
        parent's :class:`~repro.schedule.simulator.DeltaState` whenever a
        parent has enough unevaluated children to amortise one prepare
        call.  Produces bit-identical costs, decisions and traces'
        makespan columns; only the ``evaluations`` accounting differs
        (the delta path also counts its prepare calls, so it reports
        slightly more simulator calls).  The switch exists for
        benchmarking and for the equivalence test in
        ``tests/baselines/test_ga.py``.
    batch_fitness:
        Score each generation's unevaluated chromosomes in one
        vectorized sweep through the network's batch kernel
        (:class:`~repro.schedule.vectorized.BatchSimulator`) when the
        backend has one registered; networks without a kernel (e.g.
        ``"nic"``) silently keep the scalar/incremental path.  Costs are
        bit-identical to the scalar loop, so results, traces and final
        strings do not change — only wall-clock time and, versus the
        incremental path, the ``evaluations`` accounting (the batch
        path reports exactly one call per chromosome, like the plain
        scalar loop).  When active it supersedes
        ``incremental_evaluation``.
    network:
        Simulator backend name the run optimises against (extension
        beyond Wang et al.): ``"contention-free"`` (default) or
        ``"nic"`` — see :mod:`repro.schedule.backend`.
    platform:
        Platform (machine catalog) name the run is costed against; the
        default ``"uniform"`` reproduces the historical behaviour bit
        for bit (see :mod:`repro.model.platform`).
    objective:
        ``"makespan"`` (default), ``"weighted:<w_m>:<w_c>"``, or a
        scenario (risk) objective ``mean`` / ``quantile:<q>`` /
        ``cvar:<q>`` / ``saa:<T>:<eps>`` — the fitness scalar (see
        :mod:`repro.optim.objective`).
    scenarios, distribution, scenario_seed:
        Monte-Carlo axis of the scenario objectives (see
        :mod:`repro.stochastic`); only valid together with a scenario
        objective.
    seed:
        Seed / generator for all stochastic choices.
    """

    population_size: int = 50
    crossover_prob: float = 0.6
    mutation_prob: float = 0.15
    elite_count: int = 1
    max_generations: int = 1000
    time_limit: Optional[float] = None
    stall_generations: Optional[int] = 150
    incremental_evaluation: bool = True
    batch_fitness: bool = True
    network: str = DEFAULT_NETWORK
    platform: str = DEFAULT_PLATFORM
    objective: str = "makespan"
    scenarios: int = 0
    distribution: str = "deterministic"
    scenario_seed: int = 0
    seed: RandomSource = None

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError(
                f"population_size must be >= 2, got {self.population_size}"
            )
        if not 0.0 <= self.crossover_prob <= 1.0:
            raise ValueError(
                f"crossover_prob must be in [0, 1], got {self.crossover_prob}"
            )
        if not 0.0 <= self.mutation_prob <= 1.0:
            raise ValueError(
                f"mutation_prob must be in [0, 1], got {self.mutation_prob}"
            )
        if not 0 <= self.elite_count < self.population_size:
            raise ValueError(
                f"elite_count must be in [0, population_size), got "
                f"{self.elite_count}"
            )
        if self.max_generations < 0:
            raise ValueError(
                f"max_generations must be >= 0, got {self.max_generations}"
            )
        if self.time_limit is not None and self.time_limit < 0:
            raise ValueError(f"time_limit must be >= 0, got {self.time_limit}")
        if self.stall_generations is not None and self.stall_generations < 1:
            raise ValueError(
                f"stall_generations must be >= 1, got {self.stall_generations}"
            )
        if not isinstance(self.network, str) or not self.network:
            raise ValueError(
                f"network must be a backend name string, got {self.network!r}"
            )
        resolve_platform(self.platform)
        resolve_objective(self.objective)
        validate_scenario_settings(
            self.objective, self.scenarios, self.distribution
        )

    def stop_policy(self) -> StopPolicy:
        """The run's stopping rules as a shared :class:`StopPolicy`.

        ``max_generations`` / ``stall_generations`` map onto the
        policy's generic iteration fields, so the GA reports the same
        stop-reason strings as every other engine (``"iterations"`` —
        not the historical ``"generations"`` — for an exhausted cap).
        """
        return StopPolicy(
            max_iterations=self.max_generations,
            time_limit=self.time_limit,
            stall_iterations=self.stall_generations,
        )
