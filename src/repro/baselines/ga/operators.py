"""Validity-preserving genetic operators (Wang et al. 1997, §4).

* **Matching crossover** — single cut point on the subtask index axis;
  children swap machine assignments for subtasks past the cut.  Always
  valid (any matching is valid).
* **Scheduling crossover** — cut both parents' scheduling strings at a
  random position; each child keeps its own prefix and appends the
  missing subtasks *in the order they appear in the other parent*.
  This preserves topological validity: for any edge ``u -> v``, if ``v``
  lands in the prefix then ``u`` (which precedes ``v`` in the parent
  order) is in the prefix too, and both suffix orders inherit a valid
  relative order from the other parent.
* **Matching mutation** — reassign one uniformly random subtask to a
  uniformly random machine.
* **Scheduling mutation** — move one subtask to a random position within
  its valid range (shared primitive with SE's initial solution).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.baselines.ga.chromosome import Chromosome
from repro.model.graph import TaskGraph
from repro.schedule.encoding import ScheduleString
from repro.schedule.operations import random_valid_move


def matching_crossover(
    a: Chromosome, b: Chromosome, rng: np.random.Generator
) -> Tuple[Chromosome, Chromosome]:
    """Single-point crossover of the matching strings; returns two children."""
    k = len(a.matching)
    if len(b.matching) != k:
        raise ValueError("parents have different matching lengths")
    cut = int(rng.integers(1, k)) if k > 1 else 0
    child_a = a.copy()
    child_b = b.copy()
    child_a.matching[cut:] = b.matching[cut:]
    child_b.matching[cut:] = a.matching[cut:]
    child_a.cost = None
    child_b.cost = None
    return child_a, child_b


def scheduling_crossover(
    a: Chromosome, b: Chromosome, rng: np.random.Generator
) -> Tuple[Chromosome, Chromosome]:
    """Order-based crossover of the scheduling strings; returns two children."""
    k = len(a.scheduling)
    if len(b.scheduling) != k:
        raise ValueError("parents have different scheduling lengths")
    cut = int(rng.integers(1, k)) if k > 1 else 0

    def merge(prefix_src: list[int], order_src: list[int]) -> list[int]:
        prefix = prefix_src[:cut]
        chosen = set(prefix)
        return prefix + [t for t in order_src if t not in chosen]

    child_a = a.copy()
    child_b = b.copy()
    child_a.scheduling = merge(a.scheduling, b.scheduling)
    child_b.scheduling = merge(b.scheduling, a.scheduling)
    child_a.cost = None
    child_b.cost = None
    return child_a, child_b


def matching_mutation(
    chrom: Chromosome, num_machines: int, rng: np.random.Generator
) -> None:
    """Reassign one random subtask to a random machine (in place)."""
    task = int(rng.integers(len(chrom.matching)))
    chrom.matching[task] = int(rng.integers(num_machines))
    chrom.cost = None


def scheduling_mutation(
    chrom: Chromosome,
    graph: TaskGraph,
    num_machines: int,
    rng: np.random.Generator,
) -> None:
    """Move one random subtask within its valid range (in place).

    Implemented by round-tripping through :class:`ScheduleString`, which
    already knows how to do dependency-safe moves.
    """
    string = ScheduleString(chrom.scheduling, chrom.matching, num_machines)
    random_valid_move(string, graph, rng)
    chrom.scheduling = list(string.order)
    chrom.cost = None
