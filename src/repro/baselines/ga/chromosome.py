"""The two-string chromosome of Wang et al.'s GA.

Unlike the paper's combined SE encoding (one string carrying both
decisions), Wang et al. represent a solution as

* a **matching string** — ``machine_of[t]`` per subtask, and
* a **scheduling string** — a topologically valid permutation giving the
  global execution priority; subtasks mapped to the same machine run in
  scheduling-string order.

Both representations decode to the same schedule semantics, so a
chromosome converts losslessly to a :class:`ScheduleString` and is
evaluated by the very same simulator — keeping the SE-vs-GA comparison
apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.graph import TaskGraph
from repro.schedule.encoding import ScheduleString
from repro.schedule.operations import random_topological_order


@dataclass
class Chromosome:
    """One GA individual: matching + scheduling strings.

    The makespan cache (``cost``) is filled by the engine after
    evaluation; ``None`` means not yet evaluated.
    """

    matching: list[int]
    scheduling: list[int]
    cost: float | None = None

    def copy(self) -> "Chromosome":
        return Chromosome(
            matching=self.matching.copy(),
            scheduling=self.scheduling.copy(),
            cost=self.cost,
        )

    def to_string(self, num_machines: int) -> ScheduleString:
        """Decode into the library's combined string representation."""
        return ScheduleString(self.scheduling, self.matching, num_machines)

    def key(self) -> tuple:
        """Hashable identity for population-diversity accounting."""
        return (tuple(self.matching), tuple(self.scheduling))


def random_chromosome(
    graph: TaskGraph, num_machines: int, rng: np.random.Generator
) -> Chromosome:
    """Uniformly random valid chromosome (random matching + topo order)."""
    matching = [int(m) for m in rng.integers(num_machines, size=graph.num_tasks)]
    scheduling = random_topological_order(graph, rng)
    return Chromosome(matching=matching, scheduling=scheduling)


def initial_population(
    graph: TaskGraph,
    num_machines: int,
    size: int,
    rng: np.random.Generator,
) -> list[Chromosome]:
    """*size* independent random chromosomes."""
    if size < 1:
        raise ValueError(f"population size must be >= 1, got {size}")
    return [random_chromosome(graph, num_machines, rng) for _ in range(size)]


def is_valid_chromosome(
    chrom: Chromosome, graph: TaskGraph, num_machines: int
) -> bool:
    """Structural validity: machine range + topological scheduling string."""
    if len(chrom.matching) != graph.num_tasks:
        return False
    if any(not 0 <= m < num_machines for m in chrom.matching):
        return False
    return graph.is_valid_order(chrom.scheduling)
