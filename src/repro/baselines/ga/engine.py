"""The genetic-algorithm baseline engine (Wang et al. 1997).

Generation loop: evaluate → elitist copy → roulette-wheel parent
selection → (matching + scheduling) crossover → mutations → next
generation.  Fitness for the roulette wheel is the standard
cost-to-fitness flip ``worst - cost + eps`` so that smaller makespans get
proportionally more wheel area.

The engine emits the same :class:`~repro.analysis.trace.ConvergenceTrace`
records as the SE engine, so the comparison harness and the figure
benchmarks treat both uniformly.

Offspring evaluation has two accelerated paths, both bit-identical to
the plain scalar loop:

* **batch** (default on backends with a vectorized kernel, i.e. the
  contention-free model): every unevaluated chromosome of a generation
  is scored in one :meth:`BatchBackend.batch_makespans
  <repro.schedule.vectorized.BatchBackend.batch_makespans>` sweep — the
  whole population advances through the NumPy kernel together (see
  ``GAConfig.batch_fitness``);
* **incremental** (the fallback, e.g. under the ``"nic"`` backend): a
  child produced by crossover/mutation keeps its "first" parent's
  string prefix up to the first divergence position, so children are
  grouped by parent and scored with
  :meth:`~repro.schedule.simulator.Simulator.evaluate_delta` against
  one prepared parent state.  Since a prepare costs about one full
  evaluation and crossover children diverge near the middle of the
  string, the delta path is taken only for parents with three or more
  unevaluated children (see ``GAConfig.incremental_evaluation``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.trace import ConvergenceTrace
from repro.baselines.ga.chromosome import Chromosome, initial_population
from repro.baselines.ga.config import GAConfig
from repro.baselines.ga.operators import (
    matching_crossover,
    matching_mutation,
    scheduling_crossover,
    scheduling_mutation,
)
from repro.model.workload import Workload
from repro.optim import (
    EvaluationService,
    IncumbentSource,
    Observer,
    SearchLoop,
    StepOutcome,
)
from repro.schedule.encoding import ScheduleString
from repro.schedule.simulator import Schedule
from repro.utils.rng import as_rng
from repro.utils.timers import Stopwatch


def _first_divergence(
    parent: Chromosome, child: Chromosome, parent_pos: Sequence[int]
) -> int:
    """First string position where *child* stops sharing *parent*'s prefix.

    Considers both the scheduling permutation (first index where the
    orders differ) and the matching string (a changed machine dirties the
    task's position in the parent order; positions below the scheduling
    divergence are shared, so the parent position is the child position
    there).  Returns ``k`` for an identical child.
    """
    k = len(parent.scheduling)
    f = k
    ps = parent.scheduling
    cs = child.scheduling
    for p in range(k):
        if ps[p] != cs[p]:
            f = p
            break
    pm = parent.matching
    cm = child.matching
    for t in range(k):
        if pm[t] != cm[t]:
            p = parent_pos[t]
            if p < f:
                f = p
    return f


@dataclass(frozen=True)
class GAResult:
    """Outcome of one GA run (mirror of :class:`repro.core.engine.SEResult`).

    ``stopped_by`` uses the unified :mod:`repro.optim.stop` reason
    strings — ``"iterations"`` (the generation cap; historically this
    engine said ``"generations"``), ``"time"`` or ``"stall"`` — so SE
    and GA runs report identically.
    """

    best_string: ScheduleString
    best_makespan: float
    best_schedule: Schedule
    trace: ConvergenceTrace
    generations: int
    evaluations: int
    stopped_by: str


class GeneticAlgorithm:
    """Wang-et-al.-style GA configured by a :class:`GAConfig`."""

    def __init__(self, config: Optional[GAConfig] = None):
        self.config = config or GAConfig()

    def run(
        self,
        workload: Workload,
        initial: Optional[Sequence[Chromosome]] = None,
        observers: Sequence[Observer] = (),
        exchange: Optional[IncumbentSource] = None,
    ) -> GAResult:
        """Optimise *workload*; returns the best chromosome found.

        Parameters
        ----------
        workload:
            The MSHC problem instance.
        initial:
            Optional seed population (copied); padded with random
            chromosomes / truncated to the configured size.
        observers:
            Callables invoked once per generation with ``(record,
            string)`` — the same protocol as the SE engine's observers;
            the string is the generation's best chromosome decoded to a
            :class:`ScheduleString`.
        exchange:
            Optional portfolio incumbent source (see
            :mod:`repro.optim.exchange`).  A delivered incumbent is
            decoded into a chromosome, evaluated (one counted call) and
            immigrated over the worst member of the current population
            before breeding; ``None`` leaves the run bit-identical to a
            solo run.
        """
        cfg = self.config
        rng = as_rng(cfg.seed)
        graph = workload.graph
        l = workload.num_machines
        # Fitness comes from the configured backend, so "nic" makes the
        # whole evolution optimise under NIC contention.  The service
        # routes batch scoring through the network's kernel; only a
        # genuinely vectorized kernel replaces the scalar paths.
        service = EvaluationService(
            workload,
            cfg.network,
            prefer_batch=cfg.batch_fitness,
            platform=cfg.platform,
            objective=cfg.objective,
            scenarios=cfg.scenarios,
            distribution=cfg.distribution,
            scenario_seed=cfg.scenario_seed,
        )
        use_batch = cfg.batch_fitness and service.is_vectorized

        population = [c.copy() for c in (initial or [])][: cfg.population_size]
        if len(population) < cfg.population_size:
            population.extend(
                initial_population(
                    graph, l, cfg.population_size - len(population), rng
                )
            )

        def evaluate(
            pop: list[Chromosome],
            parents: Optional[list[Optional[Chromosome]]] = None,
        ) -> None:
            """Fill every missing ``cost`` (the service counts the calls).

            ``parents[i]``, when given, is a chromosome whose string
            shares a prefix with ``pop[i]`` (its crossover/copy source).
            On a vectorized backend all pending chromosomes are scored
            in one batch sweep.  Otherwise children are grouped by
            parent; a parent with >= 3 pending children is prepared
            once and its children scored by suffix-only re-evaluation.
            Both paths are bit-identical to the plain scalar loop.
            """
            if use_batch:
                pending = [c for c in pop if c.cost is None]
                if not pending:
                    return
                costs = service.batch_makespans(
                    [c.scheduling for c in pending],
                    [c.matching for c in pending],
                )
                for c, cost in zip(pending, costs):
                    c.cost = cost
                return
            groups: dict[int, list[Chromosome]] = {}
            by_parent: dict[int, Chromosome] = {}
            for i, c in enumerate(pop):
                if c.cost is not None:
                    continue
                par = parents[i] if parents is not None else None
                if (
                    cfg.incremental_evaluation
                    and par is not None
                    and par.cost is not None
                ):
                    groups.setdefault(id(par), []).append(c)
                    by_parent[id(par)] = par
                else:
                    c.cost = service.makespan(c.scheduling, c.matching)
            for key, children in groups.items():
                par = by_parent[key]
                if len(children) < 3:
                    # a prepare costs about one full evaluation and a
                    # crossover child diverges at the cut (~k/2 on
                    # average), so fewer than three children per parent
                    # cannot amortise the snapshot
                    for c in children:
                        c.cost = service.makespan(c.scheduling, c.matching)
                    continue
                state = service.prepare(par.scheduling, par.matching)
                parent_pos = state.pos_of
                for c in children:
                    f = _first_divergence(par, c, parent_pos)
                    c.cost = service.evaluate_delta(
                        c.scheduling, c.matching, f, state
                    )

        watch = Stopwatch()
        evaluate(population)
        initial_best = min(population, key=lambda c: c.cost)

        def step(generation: int) -> StepOutcome[Chromosome]:
            nonlocal population
            if exchange is not None:
                inc = exchange.incoming(
                    generation, float(loop.tracker.best_cost)
                )
                if inc is not None:
                    # elite immigration: the incumbent joins the gene
                    # pool over the worst member, so elitism and the
                    # roulette wheel see it like any native chromosome
                    imm = Chromosome(
                        matching=list(inc.machines),
                        scheduling=list(inc.order),
                    )
                    imm.cost = service.makespan(imm.scheduling, imm.matching)
                    worst = max(
                        range(len(population)),
                        key=lambda i: population[i].cost,
                    )
                    if imm.cost < population[worst].cost:
                        population[worst] = imm
            nxt: list[Chromosome] = []
            nxt_parents: list[Optional[Chromosome]] = []
            if cfg.elite_count:
                for c in sorted(population, key=lambda c: c.cost)[
                    : cfg.elite_count
                ]:
                    nxt.append(c.copy())
                    nxt_parents.append(None)  # cost survives the copy

            costs = np.array([c.cost for c in population])
            # cost -> fitness flip; +eps keeps the worst individual alive
            fitness = costs.max() - costs + 1e-9
            probs = fitness / fitness.sum()

            while len(nxt) < cfg.population_size:
                ia, ib = rng.choice(len(population), size=2, p=probs)
                pa, pb = population[int(ia)], population[int(ib)]
                if rng.random() < cfg.crossover_prob:
                    ca, cb = matching_crossover(pa, pb, rng)
                    ca, cb = scheduling_crossover(ca, cb, rng)
                else:
                    ca, cb = pa.copy(), pb.copy()
                for child in (ca, cb):
                    if rng.random() < cfg.mutation_prob:
                        matching_mutation(child, l, rng)
                    if rng.random() < cfg.mutation_prob:
                        scheduling_mutation(child, graph, l, rng)
                # each child keeps a prefix of its "own" parent's strings
                nxt.append(ca)
                nxt_parents.append(pa)
                if len(nxt) < cfg.population_size:
                    nxt.append(cb)
                    nxt_parents.append(pb)

            population = nxt
            evaluate(population, nxt_parents)
            gen_best = min(population, key=lambda c: c.cost)
            return StepOutcome(
                cost=float(gen_best.cost),
                candidate=gen_best,
                # decode for observers only when someone is listening
                payload=gen_best.to_string(l) if observers else gen_best,
            )

        loop: SearchLoop[Chromosome] = SearchLoop(
            stop=cfg.stop_policy(),
            observers=observers,
            evaluations=lambda: service.evaluations,
        )
        out = loop.run(float(initial_best.cost), initial_best, step, watch=watch)

        best_string = out.best.to_string(l)
        best_schedule = service.schedule_of(best_string)
        return GAResult(
            best_string=best_string,
            # under a weighted objective the chromosome cost is the
            # scalar; report the schedule's real makespan in that mode
            best_makespan=(
                float(out.best.cost)
                if service.objective.is_makespan
                else best_schedule.makespan
            ),
            best_schedule=best_schedule,
            trace=out.trace,
            generations=out.iterations,
            evaluations=service.evaluations,
            stopped_by=out.stopped_by,
        )


def run_ga(
    workload: Workload,
    config: Optional[GAConfig] = None,
    observers: Sequence[Observer] = (),
    exchange: Optional[IncumbentSource] = None,
) -> GAResult:
    """Functional convenience wrapper around :class:`GeneticAlgorithm`."""
    return GeneticAlgorithm(config).run(
        workload, observers=observers, exchange=exchange
    )
