"""The genetic-algorithm baseline engine (Wang et al. 1997).

Generation loop: evaluate → elitist copy → roulette-wheel parent
selection → (matching + scheduling) crossover → mutations → next
generation.  Fitness for the roulette wheel is the standard
cost-to-fitness flip ``worst - cost + eps`` so that smaller makespans get
proportionally more wheel area.

The engine emits the same :class:`~repro.analysis.trace.ConvergenceTrace`
records as the SE engine, so the comparison harness and the figure
benchmarks treat both uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.trace import ConvergenceTrace, IterationRecord
from repro.baselines.ga.chromosome import Chromosome, initial_population
from repro.baselines.ga.config import GAConfig
from repro.baselines.ga.operators import (
    matching_crossover,
    matching_mutation,
    scheduling_crossover,
    scheduling_mutation,
)
from repro.model.workload import Workload
from repro.schedule.encoding import ScheduleString
from repro.schedule.simulator import Schedule, Simulator
from repro.utils.rng import as_rng
from repro.utils.timers import Stopwatch


@dataclass(frozen=True)
class GAResult:
    """Outcome of one GA run (mirror of :class:`repro.core.engine.SEResult`)."""

    best_string: ScheduleString
    best_makespan: float
    best_schedule: Schedule
    trace: ConvergenceTrace
    generations: int
    evaluations: int
    stopped_by: str


class GeneticAlgorithm:
    """Wang-et-al.-style GA configured by a :class:`GAConfig`."""

    def __init__(self, config: Optional[GAConfig] = None):
        self.config = config or GAConfig()

    def run(
        self,
        workload: Workload,
        initial: Optional[Sequence[Chromosome]] = None,
    ) -> GAResult:
        """Optimise *workload*; returns the best chromosome found.

        Parameters
        ----------
        workload:
            The MSHC problem instance.
        initial:
            Optional seed population (copied); padded with random
            chromosomes / truncated to the configured size.
        """
        cfg = self.config
        rng = as_rng(cfg.seed)
        graph = workload.graph
        l = workload.num_machines
        sim = Simulator(workload)
        evaluations = 0

        population = [c.copy() for c in (initial or [])][: cfg.population_size]
        if len(population) < cfg.population_size:
            population.extend(
                initial_population(
                    graph, l, cfg.population_size - len(population), rng
                )
            )

        def evaluate(pop: list[Chromosome]) -> int:
            calls = 0
            for c in pop:
                if c.cost is None:
                    c.cost = sim.makespan(c.scheduling, c.matching)
                    calls += 1
            return calls

        watch = Stopwatch()
        trace = ConvergenceTrace()
        evaluations += evaluate(population)
        best = min(population, key=lambda c: c.cost).copy()
        stall = 0
        stopped_by = "generations"
        generation = 0

        while generation < cfg.max_generations:
            if cfg.time_limit is not None and watch.elapsed() >= cfg.time_limit:
                stopped_by = "time"
                break
            generation += 1

            nxt: list[Chromosome] = []
            if cfg.elite_count:
                for c in sorted(population, key=lambda c: c.cost)[
                    : cfg.elite_count
                ]:
                    nxt.append(c.copy())

            costs = np.array([c.cost for c in population])
            # cost -> fitness flip; +eps keeps the worst individual alive
            fitness = costs.max() - costs + 1e-9
            probs = fitness / fitness.sum()

            while len(nxt) < cfg.population_size:
                ia, ib = rng.choice(len(population), size=2, p=probs)
                pa, pb = population[int(ia)], population[int(ib)]
                if rng.random() < cfg.crossover_prob:
                    ca, cb = matching_crossover(pa, pb, rng)
                    ca, cb = scheduling_crossover(ca, cb, rng)
                else:
                    ca, cb = pa.copy(), pb.copy()
                for child in (ca, cb):
                    if rng.random() < cfg.mutation_prob:
                        matching_mutation(child, l, rng)
                    if rng.random() < cfg.mutation_prob:
                        scheduling_mutation(child, graph, l, rng)
                nxt.append(ca)
                if len(nxt) < cfg.population_size:
                    nxt.append(cb)

            population = nxt
            evaluations += evaluate(population)
            gen_best = min(population, key=lambda c: c.cost)
            if gen_best.cost < best.cost:
                best = gen_best.copy()
                stall = 0
            else:
                stall += 1

            trace.append(
                IterationRecord(
                    iteration=generation,
                    current_makespan=float(gen_best.cost),
                    best_makespan=float(best.cost),
                    num_selected=None,
                    elapsed_seconds=watch.elapsed(),
                    mean_goodness=None,
                    evaluations=evaluations,
                )
            )

            if (
                cfg.stall_generations is not None
                and stall >= cfg.stall_generations
            ):
                stopped_by = "stall"
                break

        best_string = best.to_string(l)
        return GAResult(
            best_string=best_string,
            best_makespan=float(best.cost),
            best_schedule=sim.evaluate(best_string),
            trace=trace,
            generations=generation,
            evaluations=evaluations,
            stopped_by=stopped_by,
        )


def run_ga(workload: Workload, config: Optional[GAConfig] = None) -> GAResult:
    """Functional convenience wrapper around :class:`GeneticAlgorithm`."""
    return GeneticAlgorithm(config).run(workload)
