"""Genetic-algorithm baseline (Wang et al., JPDC 1997) — the paper's comparator."""

from repro.baselines.ga.chromosome import (
    Chromosome,
    initial_population,
    is_valid_chromosome,
    random_chromosome,
)
from repro.baselines.ga.config import GAConfig
from repro.baselines.ga.engine import GAResult, GeneticAlgorithm, run_ga
from repro.baselines.ga.operators import (
    matching_crossover,
    matching_mutation,
    scheduling_crossover,
    scheduling_mutation,
)

__all__ = [
    "Chromosome",
    "initial_population",
    "is_valid_chromosome",
    "random_chromosome",
    "GAConfig",
    "GAResult",
    "GeneticAlgorithm",
    "run_ga",
    "matching_crossover",
    "matching_mutation",
    "scheduling_crossover",
    "scheduling_mutation",
]
