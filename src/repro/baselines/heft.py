"""HEFT — Heterogeneous Earliest Finish Time (Topcuoglu et al.).

The best-known deterministic heuristic for DAG scheduling on
heterogeneous machines, cited by the paper as [5].  Not part of the
paper's own evaluation (which compares SE against the GA only), but an
indispensable reference point for downstream users, and the baseline
grid benchmark (BASE in DESIGN.md) reports it alongside SE/GA.

This implementation is HEFT's ranking phase (upward rank with mean
execution and mean transfer costs) combined with the library's
*non-insertion* EFT machine selection, so its schedules obey exactly the
same semantics as every other algorithm here.  The original paper's
insertion-based variant can only improve on this; the difference is
documented in DESIGN.md.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.base import BaselineResult
from repro.baselines.listsched import list_schedule, upward_ranks
from repro.model.workload import Workload
from repro.schedule.backend import DEFAULT_NETWORK, DEFAULT_PLATFORM

__all__ = ["heft", "upward_ranks"]


def heft(
    workload: Workload,
    network: str = DEFAULT_NETWORK,
    initial_avail: Sequence[float] | None = None,
    initial_nic_free: Sequence[float] | None = None,
    platform=DEFAULT_PLATFORM,
) -> BaselineResult:
    """Schedule *workload* with HEFT; deterministic.

    With ``network="nic"`` the EFT machine selection prices NIC
    serialisation into every candidate (see
    :class:`~repro.baselines.base.IncrementalScheduleBuilder`) and the
    reported makespan is measured under the contention backend.
    ``initial_avail`` / ``initial_nic_free`` adapt the EFT phase to
    machines already busy with earlier jobs (online frontier dispatch —
    see :mod:`repro.online`).  *platform* prices a machine catalog into
    ranks, EFT queries and the reported makespan/cost.
    """
    return list_schedule(
        workload,
        priority="upward_rank",
        name="heft",
        network=network,
        initial_avail=initial_avail,
        initial_nic_free=initial_nic_free,
        platform=platform,
    )
