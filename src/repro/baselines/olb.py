"""OLB — Opportunistic Load Balancing (Braun et al. [4]).

The weakest classic baseline: walk the ready tasks in topological order
and put each on the machine that becomes *available* earliest, ignoring
execution times entirely.  Useful as a floor in the baseline grid — any
heterogeneity-aware heuristic should beat it on heterogeneous workloads.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.base import BaselineResult, IncrementalScheduleBuilder
from repro.model.workload import Workload
from repro.schedule.backend import DEFAULT_NETWORK, DEFAULT_PLATFORM


def olb(
    workload: Workload,
    network: str = DEFAULT_NETWORK,
    initial_avail: Sequence[float] | None = None,
    initial_nic_free: Sequence[float] | None = None,
    platform=DEFAULT_PLATFORM,
) -> BaselineResult:
    """Schedule *workload* with OLB; deterministic.

    OLB stays communication-blind by definition; *network* only changes
    the cost model the finished schedule is measured under.
    ``initial_avail`` seeds the earliest-available choice with machines
    already busy with earlier jobs (online dispatch); a *platform* with
    boot delays seeds it with each machine's boot time.
    """
    builder = IncrementalScheduleBuilder(
        workload,
        "olb",
        network=network,
        initial_avail=initial_avail,
        initial_nic_free=initial_nic_free,
        platform=platform,
    )
    # the builder's availability already folds initial_avail and any
    # platform boot delays together
    avail = builder.machine_avail_snapshot()
    for task in workload.graph.topological_order():
        # earliest-available machine, ties -> lowest id
        machine = min(range(workload.num_machines), key=lambda m: (avail[m], m))
        fin = builder.place(task, machine)
        avail[machine] = fin
    return builder.to_result(evaluations=workload.num_tasks)
