"""Random restart search — the sanity floor for the iterative heuristics.

Samples independent uniformly random valid strings and keeps the best.
Any metaheuristic worth publishing must beat this at equal evaluation
budget; the baseline-grid benchmark includes it for exactly that check.

Scoring runs on the shared optim core: an
:class:`~repro.optim.evaluation.EvaluationService` owns the backend and
routes chunks of samples through the network's batch kernel
(:class:`~repro.schedule.vectorized.BatchSimulator`) where one is
registered — several times faster than the scalar loop on the
contention-free model and bit-identical to it.  Samples are drawn in
the usual RNG order either way, so chunking never changes the result.

A ``time_limit`` no longer disables the batch kernel (historically it
did, silently costing the whole speedup): the deadline is simply
checked **between chunks**, so a run overshoots by at most one chunk of
``batch_size`` samples and every drawn sample still counts toward the
reported ``evaluations``.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.trace import ConvergenceTrace, IterationRecord
from repro.baselines.base import BaselineResult
from repro.model.workload import Workload
from repro.optim import BestTracker, EvaluationService, StopPolicy
from repro.schedule.backend import DEFAULT_NETWORK, DEFAULT_PLATFORM
from repro.schedule.operations import random_valid_string
from repro.utils.rng import RandomSource, as_rng
from repro.utils.timers import Stopwatch


def random_search(
    workload: Workload,
    samples: int = 1000,
    seed: RandomSource = None,
    time_limit: Optional[float] = None,
    trace: Optional[ConvergenceTrace] = None,
    network: str = DEFAULT_NETWORK,
    batch_size: int = 128,
    platform=DEFAULT_PLATFORM,
    objective: str = "makespan",
    scenarios: int = 0,
    distribution: str = "deterministic",
    scenario_seed: int = 0,
) -> BaselineResult:
    """Best of *samples* uniformly random valid strings.

    Parameters
    ----------
    workload:
        The MSHC problem instance.
    samples:
        Number of random strings to draw (>= 1).
    seed:
        Randomness source.
    time_limit:
        Optional wall-clock cap in seconds, checked between scoring
        chunks (so a batched run can overshoot by at most one chunk;
        at least one sample is always scored).
    trace:
        Optional :class:`ConvergenceTrace` to append best-so-far records
        to (for time-vs-quality comparisons).
    network:
        Simulator backend scoring the samples (and the result).
    batch_size:
        Chunk size for vectorized scoring (>= 1).  Chunking applies on
        backends with a batch kernel; results are bit-identical to the
        scalar loop either way.
    platform:
        Platform (machine catalog) name samples are priced against; the
        default ``"uniform"`` changes nothing (see
        :mod:`repro.model.platform`).
    objective:
        ``"makespan"`` (default), ``"weighted:<w_m>:<w_c>"``, or a
        scenario (risk) objective ``mean`` / ``quantile:<q>`` /
        ``cvar:<q>`` / ``saa:<T>:<eps>`` — the scalar the best sample
        minimises (see :mod:`repro.optim.objective`).
    scenarios, distribution, scenario_seed:
        Monte-Carlo axis of the scenario objectives (see
        :mod:`repro.stochastic`); only valid together with a scenario
        objective.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    rng = as_rng(seed)
    # only pay for kernel packing when chunked scoring is requested
    want_batch = batch_size > 1
    service = EvaluationService(
        workload,
        network,
        prefer_batch=want_batch,
        platform=platform,
        objective=objective,
        scenarios=scenarios,
        distribution=distribution,
        scenario_seed=scenario_seed,
    )
    use_batch = want_batch and service.is_vectorized
    policy = StopPolicy(max_iterations=samples, time_limit=time_limit)
    watch = Stopwatch()

    # strings are drawn fresh and never mutated — no copy on improvement
    tracker: BestTracker = BestTracker(copy=lambda s: s)
    drawn = 0
    while not policy.exhausted(drawn):
        if policy.out_of_time(watch.elapsed()) and drawn:
            break
        if use_batch:
            # same RNG draw order as the scalar loop, scored chunk-wise
            chunk = [
                random_valid_string(workload.graph, workload.num_machines, rng)
                for _ in range(min(batch_size, samples - drawn))
            ]
            costs = service.batch_string_makespans(chunk, validate=False)
        else:
            chunk = [
                random_valid_string(workload.graph, workload.num_machines, rng)
            ]
            costs = [service.string_makespan(chunk[0])]
        for s, cost in zip(chunk, costs):
            drawn += 1
            tracker.update(cost, s)
            if trace is not None:
                trace.append(
                    IterationRecord(
                        iteration=drawn,
                        current_makespan=cost,
                        best_makespan=tracker.best_cost,
                        elapsed_seconds=watch.elapsed(),
                        evaluations=drawn,
                    )
                )

    best_string = tracker.best  # drawn >= 1 by construction
    schedule = service.schedule_of(best_string)
    cm = service.cost_model
    return BaselineResult(
        name="random-search",
        string=best_string,
        schedule=schedule,
        # under a weighted objective tracker.best_cost is the scalar;
        # report the schedule's real makespan in that mode
        makespan=(
            tracker.best_cost
            if service.objective.is_makespan
            else schedule.makespan
        ),
        evaluations=drawn,
        network=network,
        platform=service.platform,
        cost=cm.cost(best_string.machines) if cm is not None else 0.0,
    )
