"""Random restart search — the sanity floor for the iterative heuristics.

Samples independent uniformly random valid strings and keeps the best.
Any metaheuristic worth publishing must beat this at equal evaluation
budget; the baseline-grid benchmark includes it for exactly that check.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.trace import ConvergenceTrace, IterationRecord
from repro.baselines.base import BaselineResult
from repro.model.workload import Workload
from repro.schedule.backend import (
    DEFAULT_NETWORK,
    make_simulator,
    plain_schedule,
)
from repro.schedule.operations import random_valid_string
from repro.utils.rng import RandomSource, as_rng
from repro.utils.timers import Stopwatch


def random_search(
    workload: Workload,
    samples: int = 1000,
    seed: RandomSource = None,
    time_limit: Optional[float] = None,
    trace: Optional[ConvergenceTrace] = None,
    network: str = DEFAULT_NETWORK,
) -> BaselineResult:
    """Best of *samples* uniformly random valid strings.

    Parameters
    ----------
    workload:
        The MSHC problem instance.
    samples:
        Number of random strings to draw (>= 1).
    seed:
        Randomness source.
    time_limit:
        Optional wall-clock cap in seconds (checked between samples).
    trace:
        Optional :class:`ConvergenceTrace` to append best-so-far records
        to (for time-vs-quality comparisons).
    network:
        Simulator backend scoring the samples (and the result).
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    rng = as_rng(seed)
    sim = make_simulator(workload, network)
    watch = Stopwatch()

    best_string = None
    best_cost = float("inf")
    drawn = 0
    for i in range(samples):
        if time_limit is not None and watch.elapsed() >= time_limit and drawn:
            break
        s = random_valid_string(workload.graph, workload.num_machines, rng)
        cost = sim.string_makespan(s)
        drawn += 1
        if cost < best_cost:
            best_cost = cost
            best_string = s
        if trace is not None:
            trace.append(
                IterationRecord(
                    iteration=i + 1,
                    current_makespan=cost,
                    best_makespan=best_cost,
                    elapsed_seconds=watch.elapsed(),
                    evaluations=drawn,
                )
            )

    assert best_string is not None  # drawn >= 1 by construction
    return BaselineResult(
        name="random-search",
        string=best_string,
        schedule=plain_schedule(sim.evaluate(best_string)),
        makespan=best_cost,
        evaluations=drawn,
        network=network,
    )
