"""Random restart search — the sanity floor for the iterative heuristics.

Samples independent uniformly random valid strings and keeps the best.
Any metaheuristic worth publishing must beat this at equal evaluation
budget; the baseline-grid benchmark includes it for exactly that check.

Scoring is vectorized where the backend allows it: samples are drawn in
the usual RNG order but scored in chunks through the network's batch
kernel (:class:`~repro.schedule.vectorized.BatchSimulator`), which is
several times faster than the scalar loop on the contention-free model
and bit-identical to it.  Runs with a ``time_limit`` keep the
sample-at-a-time loop so the deadline is still checked between samples.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.trace import ConvergenceTrace, IterationRecord
from repro.baselines.base import BaselineResult
from repro.model.workload import Workload
from repro.schedule.backend import (
    DEFAULT_NETWORK,
    make_simulator,
    plain_schedule,
)
from repro.schedule.operations import random_valid_string
from repro.utils.rng import RandomSource, as_rng
from repro.utils.timers import Stopwatch


def random_search(
    workload: Workload,
    samples: int = 1000,
    seed: RandomSource = None,
    time_limit: Optional[float] = None,
    trace: Optional[ConvergenceTrace] = None,
    network: str = DEFAULT_NETWORK,
    batch_size: int = 128,
) -> BaselineResult:
    """Best of *samples* uniformly random valid strings.

    Parameters
    ----------
    workload:
        The MSHC problem instance.
    samples:
        Number of random strings to draw (>= 1).
    seed:
        Randomness source.
    time_limit:
        Optional wall-clock cap in seconds (checked between samples).
    trace:
        Optional :class:`ConvergenceTrace` to append best-so-far records
        to (for time-vs-quality comparisons).
    network:
        Simulator backend scoring the samples (and the result).
    batch_size:
        Chunk size for vectorized scoring (>= 1).  Chunking applies only
        on backends with a batch kernel and when no ``time_limit`` is
        set; results are bit-identical to the scalar loop either way.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    rng = as_rng(seed)
    # only pay for kernel packing when the batch path can actually run
    want_batch = time_limit is None and batch_size > 1
    sim = make_simulator(workload, network, batch=want_batch)
    use_batch = want_batch and getattr(sim, "is_vectorized", False)
    watch = Stopwatch()

    best_string = None
    best_cost = float("inf")
    drawn = 0
    while drawn < samples:
        if time_limit is not None and watch.elapsed() >= time_limit and drawn:
            break
        if use_batch:
            # same RNG draw order as the scalar loop, scored chunk-wise
            chunk = [
                random_valid_string(workload.graph, workload.num_machines, rng)
                for _ in range(min(batch_size, samples - drawn))
            ]
            costs = sim.batch_string_makespans(chunk, validate=False).tolist()
        else:
            chunk = [
                random_valid_string(workload.graph, workload.num_machines, rng)
            ]
            costs = [sim.string_makespan(chunk[0])]
        for s, cost in zip(chunk, costs):
            drawn += 1
            if cost < best_cost:
                best_cost = cost
                best_string = s
            if trace is not None:
                trace.append(
                    IterationRecord(
                        iteration=drawn,
                        current_makespan=cost,
                        best_makespan=best_cost,
                        elapsed_seconds=watch.elapsed(),
                        evaluations=drawn,
                    )
                )

    assert best_string is not None  # drawn >= 1 by construction
    return BaselineResult(
        name="random-search",
        string=best_string,
        schedule=plain_schedule(sim.evaluate(best_string)),
        makespan=best_cost,
        evaluations=drawn,
        network=network,
    )
