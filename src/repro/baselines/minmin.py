"""Ready-list Min-min and Max-min heuristics adapted to DAGs.

Min-min/Max-min (Braun et al. [4] of the paper) were defined for
independent meta-tasks; the standard DAG adaptation keeps a *ready set*
(tasks whose predecessors have all been scheduled) and repeatedly:

1. for every ready task, find its minimum EFT over all machines;
2. **Min-min** schedules the ready task whose minimum EFT is smallest
   (favouring quick wins); **Max-min** schedules the one whose minimum
   EFT is largest (getting long poles out of the way);
3. newly released tasks join the ready set.

Both are deterministic (ties broken by task id) and use the shared
non-insertion EFT semantics.
"""

from __future__ import annotations

from typing import Literal, Sequence

from repro.baselines.base import BaselineResult, IncrementalScheduleBuilder
from repro.model.workload import Workload
from repro.schedule.backend import DEFAULT_NETWORK, DEFAULT_PLATFORM

Flavor = Literal["min", "max"]


def _ready_list_schedule(
    workload: Workload,
    flavor: Flavor,
    network: str = DEFAULT_NETWORK,
    initial_avail: Sequence[float] | None = None,
    initial_nic_free: Sequence[float] | None = None,
    platform=DEFAULT_PLATFORM,
) -> BaselineResult:
    graph = workload.graph
    name = "min-min" if flavor == "min" else "max-min"
    builder = IncrementalScheduleBuilder(
        workload,
        name,
        network=network,
        initial_avail=initial_avail,
        initial_nic_free=initial_nic_free,
        platform=platform,
    )

    indeg = [len(graph.predecessors(t)) for t in range(graph.num_tasks)]
    ready = sorted(t for t in range(graph.num_tasks) if indeg[t] == 0)
    evaluations = 0

    while ready:
        # (best EFT, best machine) per ready task
        choices = []
        for t in ready:
            m, f = builder.best_machine(t)
            evaluations += workload.num_machines
            choices.append((f, t, m))
        if flavor == "min":
            f, t, m = min(choices)
        else:
            f, t, m = max(choices, key=lambda c: (c[0], -c[1]))
        builder.place(t, m)
        ready.remove(t)
        for s in graph.successors(t):
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)
        ready.sort()

    return builder.to_result(evaluations=evaluations)


def min_min(
    workload: Workload,
    network: str = DEFAULT_NETWORK,
    initial_avail: Sequence[float] | None = None,
    initial_nic_free: Sequence[float] | None = None,
    platform=DEFAULT_PLATFORM,
) -> BaselineResult:
    """Ready-list Min-min schedule of *workload*; deterministic.

    ``network="nic"`` prices NIC serialisation into the completion-time
    queries and the reported makespan; ``initial_avail`` /
    ``initial_nic_free`` dispatch onto machines already busy with
    earlier jobs (online frontier dispatch).  *platform* prices a
    machine catalog (speed/boot) into the queries and the reported
    makespan/cost.
    """
    return _ready_list_schedule(
        workload,
        "min",
        network=network,
        initial_avail=initial_avail,
        initial_nic_free=initial_nic_free,
        platform=platform,
    )


def max_min(
    workload: Workload,
    network: str = DEFAULT_NETWORK,
    initial_avail: Sequence[float] | None = None,
    initial_nic_free: Sequence[float] | None = None,
    platform=DEFAULT_PLATFORM,
) -> BaselineResult:
    """Ready-list Max-min schedule of *workload*; deterministic.

    ``network="nic"`` prices NIC serialisation into the completion-time
    queries and the reported makespan; ``initial_avail`` /
    ``initial_nic_free`` dispatch onto machines already busy with
    earlier jobs (online frontier dispatch).  *platform* prices a
    machine catalog (speed/boot) into the queries and the reported
    makespan/cost.
    """
    return _ready_list_schedule(
        workload,
        "max",
        network=network,
        initial_avail=initial_avail,
        initial_nic_free=initial_nic_free,
        platform=platform,
    )
