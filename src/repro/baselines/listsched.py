"""Generic priority-driven list scheduling on heterogeneous machines.

The classic two-phase recipe (cf. Topcuoglu et al. [5] of the paper):
rank every subtask with a priority function, then walk tasks in
descending priority (which is a topological order for the supported
priorities) assigning each to the machine that minimises its earliest
finish time (EFT) under the library's non-insertion semantics.

Supported priorities:

* ``"upward_rank"``  — mean execution time + max over successors of
  (mean transfer time + successor rank); HEFT's ranking.
* ``"downward_rank"`` + length of the task itself — longest mean-cost
  path from an entry task; tasks are processed in ascending order.
* ``"level"``       — DAG level, ties broken by mean execution time
  (a cheap ranking for ablations).
"""

from __future__ import annotations

from typing import Literal, Sequence

import numpy as np

from repro.baselines.base import BaselineResult, IncrementalScheduleBuilder
from repro.model.workload import Workload
from repro.schedule.backend import DEFAULT_NETWORK, DEFAULT_PLATFORM

Priority = Literal["upward_rank", "downward_rank", "level"]


def mean_transfer_times(workload: Workload) -> np.ndarray:
    """Per-item mean transfer time over all machine pairs.

    With one machine (no pairs) every item's mean is 0 — transfers are
    always local.
    """
    tr = workload.transfer_times.values
    if tr.shape[0] == 0:
        return np.zeros(workload.num_data_items)
    return tr.mean(axis=0)


def upward_ranks(workload: Workload) -> np.ndarray:
    """HEFT's rank_u: mean exec + max over out-edges of (mean comm + rank).

    Strictly decreasing along every edge (execution times are positive),
    so descending rank order is topologically valid.
    """
    graph = workload.graph
    mean_exec = workload.exec_times.values.mean(axis=0)
    mean_comm = mean_transfer_times(workload)
    ranks = np.zeros(graph.num_tasks)
    for t in reversed(graph.topological_order()):
        best = 0.0
        for item in graph.out_items(t):
            d = graph.data_item(item)
            cand = mean_comm[item] + ranks[d.consumer]
            if cand > best:
                best = cand
        ranks[t] = mean_exec[t] + best
    return ranks


def downward_ranks(workload: Workload) -> np.ndarray:
    """rank_d: longest mean-cost path from an entry task to the task's start."""
    graph = workload.graph
    mean_exec = workload.exec_times.values.mean(axis=0)
    mean_comm = mean_transfer_times(workload)
    ranks = np.zeros(graph.num_tasks)
    for t in graph.topological_order():
        best = 0.0
        for item in graph.in_items(t):
            d = graph.data_item(item)
            cand = ranks[d.producer] + mean_exec[d.producer] + mean_comm[item]
            if cand > best:
                best = cand
        ranks[t] = best
    return ranks


def task_processing_order(workload: Workload, priority: Priority) -> list[int]:
    """The topologically valid order induced by *priority*."""
    graph = workload.graph
    k = graph.num_tasks
    if priority == "upward_rank":
        r = upward_ranks(workload)
        # descending rank; ties by task id for determinism
        order = sorted(range(k), key=lambda t: (-r[t], t))
    elif priority == "downward_rank":
        r = downward_ranks(workload)
        order = sorted(range(k), key=lambda t: (r[t], t))
    elif priority == "level":
        mean_exec = workload.exec_times.values.mean(axis=0)
        order = sorted(
            range(k), key=lambda t: (graph.level(t), -mean_exec[t], t)
        )
    else:
        raise ValueError(f"unknown priority {priority!r}")
    # All three priorities are strictly monotone along every edge (execution
    # times are positive), so the sorted order is always topological.
    if not graph.is_valid_order(order):  # pragma: no cover - invariant
        raise RuntimeError(f"priority {priority!r} produced an invalid order")
    return order


def list_schedule(
    workload: Workload,
    priority: Priority = "upward_rank",
    name: str | None = None,
    network: str = DEFAULT_NETWORK,
    initial_avail: Sequence[float] | None = None,
    initial_nic_free: Sequence[float] | None = None,
    platform=DEFAULT_PLATFORM,
) -> BaselineResult:
    """Run the generic list scheduler with the given priority.

    *network* selects the cost model the EFT phase (and the reported
    makespan) uses; the rank phase deliberately keeps its mean-cost
    estimates — ranks are a priority heuristic, not a cost claim.
    ``initial_avail`` / ``initial_nic_free`` schedule onto machines
    already busy with earlier jobs (online frontier dispatch).
    *platform* prices a machine catalog (speed/boot) into the EFT
    queries, the ranks and the reported makespan/cost (see
    :mod:`repro.model.platform`); the default ``"uniform"`` changes
    nothing.
    """
    builder = IncrementalScheduleBuilder(
        workload,
        name or f"list-{priority}",
        network=network,
        initial_avail=initial_avail,
        initial_nic_free=initial_nic_free,
        platform=platform,
    )
    # rank against the same speed-scaled matrix EFT queries price
    for task in task_processing_order(builder.effective_workload, priority):
        machine, _ = builder.best_machine(task)
        builder.place(task, machine)
    return builder.to_result(evaluations=workload.num_tasks)
