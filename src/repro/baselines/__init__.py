"""Baseline schedulers.

* :mod:`repro.baselines.ga` — the GA of Wang et al. (JPDC 1997), the
  comparator used in the paper's §5.3;
* :func:`heft`, :func:`min_min` / :func:`max_min`, :func:`olb`,
  :func:`random_search`, :func:`list_schedule` — classic deterministic /
  sanity baselines from the surrounding literature (extensions beyond
  the paper's own evaluation).
"""

from repro.baselines.base import BaselineResult, IncrementalScheduleBuilder
from repro.baselines.ga import GAConfig, GAResult, GeneticAlgorithm, run_ga
from repro.baselines.heft import heft
from repro.baselines.listsched import (
    downward_ranks,
    list_schedule,
    task_processing_order,
    upward_ranks,
)
from repro.baselines.minmin import max_min, min_min
from repro.baselines.olb import olb
from repro.baselines.random_search import random_search

__all__ = [
    "BaselineResult",
    "IncrementalScheduleBuilder",
    "GAConfig",
    "GAResult",
    "GeneticAlgorithm",
    "run_ga",
    "heft",
    "downward_ranks",
    "list_schedule",
    "task_processing_order",
    "upward_ranks",
    "max_min",
    "min_min",
    "olb",
    "random_search",
]
