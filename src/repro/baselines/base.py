"""Common result type and machine-choice substrate for the static baselines.

Every baseline returns a :class:`BaselineResult` whose schedule was
produced by the *same* simulator semantics as SE and the GA —
non-insertion, string order = per-machine execution order — so makespans
are directly comparable across all algorithms in the library.

Baselines take a ``network`` selector (see :mod:`repro.schedule.backend`)
like the metaheuristics do.  Under the default contention-free model the
builder's incremental EFT queries are *exact* and the assembled schedule
is cross-checked against the simulator.  Under ``"nic"`` the queries are
a deterministic greedy *estimate* (each cross-machine input is fetched
through the producer machine's serialised NIC as currently reserved);
the exact eager-push cost of the final string depends on machine choices
a list scheduler has not made yet, so the reported makespan is always
re-measured through the real backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.model.workload import Workload
from repro.schedule.backend import (
    DEFAULT_NETWORK,
    DEFAULT_PLATFORM,
    NIC_NETWORK,
    make_simulator,
    plain_schedule,
    platform_state,
    resolve_platform,
)
from repro.schedule.encoding import ScheduleString
from repro.schedule.simulator import Schedule


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of a (usually deterministic) baseline scheduler.

    ``makespan`` is measured under the ``network`` backend (and
    ``platform`` catalog) the baseline ran with — recorded here so
    downstream tables can tell the scenarios apart.  ``cost`` is the
    schedule's dollar cost under the platform's billing table (0.0 on
    the free ``"uniform"`` platform).
    """

    name: str
    string: ScheduleString
    schedule: Schedule
    makespan: float
    evaluations: int = 0
    network: str = DEFAULT_NETWORK
    platform: str = DEFAULT_PLATFORM
    cost: float = 0.0


class IncrementalScheduleBuilder:
    """Builds a schedule one task at a time with EFT queries.

    Maintains per-machine availability and per-task finish times so that
    list schedulers can ask "what would task *t* finish at on machine
    *m*?" in O(in-degree) without re-simulating the prefix.  With
    ``network="nic"`` it additionally reserves each producer machine's
    outgoing link per committed transfer, so EFT queries price NIC
    contention into the greedy choices.  The final :meth:`to_result`
    re-evaluates the assembled string through the shared backend; for the
    contention-free model it also asserts agreement, so baselines cannot
    drift from the reference cost model.
    """

    def __init__(
        self,
        workload: Workload,
        name: str,
        network: str = DEFAULT_NETWORK,
        initial_avail: Sequence[float] | None = None,
        initial_nic_free: Sequence[float] | None = None,
        platform=DEFAULT_PLATFORM,
    ):
        self._source = workload
        self._name = name
        # normalised like make_simulator resolves it, so the exactness
        # cross-check and the NIC pricing key on the actual backend
        self._network = network.lower()
        # The platform transform (speed-scaled E, boot folded into the
        # machine state) is applied up front so every EFT query prices
        # it; to_result re-measures through make_simulator with the
        # *original* inputs + platform, which applies the identical
        # transform.  On "uniform" all three pass through unchanged.
        self._platform = resolve_platform(platform)
        self._given_avail = (
            None if initial_avail is None else [float(a) for a in initial_avail]
        )
        self._given_nic_free = (
            None
            if initial_nic_free is None
            else [float(a) for a in initial_nic_free]
        )
        workload, initial_avail, initial_nic_free = platform_state(
            workload,
            self._platform,
            network=self._network,
            initial_avail=self._given_avail,
            initial_nic_free=self._given_nic_free,
        )
        self._workload = workload
        self._graph = workload.graph
        self._E = workload.exec_times.values.tolist()
        self._finish: dict[int, float] = {}
        # Online dispatch hands the builder machines already busy with
        # earlier jobs; EFT queries and the final measurement then price
        # that in-flight work (default: all idle at 0, the offline case).
        self._initial_avail = (
            None if initial_avail is None else [float(a) for a in initial_avail]
        )
        self._initial_nic_free = (
            None
            if initial_nic_free is None
            else [float(a) for a in initial_nic_free]
        )
        if self._initial_avail is None:
            self._machine_avail = [0.0] * workload.num_machines
        else:
            if len(self._initial_avail) != workload.num_machines:
                raise ValueError(
                    f"initial_avail has {len(self._initial_avail)} entries "
                    f"for {workload.num_machines} machines"
                )
            self._machine_avail = self._initial_avail.copy()
        self._machine_of: list[int | None] = [None] * workload.num_tasks
        self._order: list[int] = []
        # NIC-free reservation per machine; only consulted under "nic"
        # (a custom registered network gets contention-free estimates
        # for its greedy decisions — we cannot guess its semantics —
        # but is still measured through its real backend in to_result).
        self._nic_aware = self._network == NIC_NETWORK
        if self._initial_nic_free is None:
            self._nic_free = [0.0] * workload.num_machines
        else:
            if len(self._initial_nic_free) != workload.num_machines:
                raise ValueError(
                    f"initial_nic_free has {len(self._initial_nic_free)} "
                    f"entries for {workload.num_machines} machines"
                )
            self._nic_free = self._initial_nic_free.copy()
        # per consumer: (producer, item) pairs in ascending item order
        incoming: list[list[tuple[int, int]]] = [
            [] for _ in range(workload.num_tasks)
        ]
        for d in self._graph.data_items:
            incoming[d.consumer].append((d.producer, d.index))
        self._incoming = [tuple(es) for es in incoming]

    @property
    def scheduled_count(self) -> int:
        return len(self._order)

    @property
    def network(self) -> str:
        return self._network

    @property
    def platform(self) -> str:
        """Canonical name of the platform the builder prices against."""
        return self._platform.name

    @property
    def effective_workload(self) -> Workload:
        """The workload EFT queries price — the platform's speed-scaled
        matrix (the original object on ``"uniform"``).  Rank/priority
        phases read this so their heuristics see the same machine model
        the schedule is measured under."""
        return self._workload

    def machine_avail_snapshot(self) -> list[float]:
        """Copy of the current per-machine availability (boot included)."""
        return self._machine_avail.copy()

    def _ready_time(self, task: int, machine: int, commit: bool) -> float:
        """Earliest time all inputs of *task* are available on *machine*.

        Under ``"nic"``, cross-machine fetches serialise on each source
        machine's outgoing link (in item-index order); *commit* persists
        the link reservations — probes leave the builder untouched.
        """
        w = self._workload
        ready = 0.0
        local_free: dict[int, float] | None = (
            {} if self._nic_aware and not commit else None
        )
        for prod, item in self._incoming[task]:
            if prod not in self._finish:
                raise ValueError(
                    f"cannot query task {task}: predecessor {prod} unscheduled"
                )
            pm = self._machine_of[prod]
            if pm == machine or not self._nic_aware:
                arrival = self._finish[prod] + w.comm_time(pm, machine, item)
            else:
                free = (
                    local_free.get(pm, self._nic_free[pm])
                    if local_free is not None
                    else self._nic_free[pm]
                )
                t_start = max(self._finish[prod], free)
                arrival = t_start + w.comm_time(pm, machine, item)
                if local_free is not None:
                    local_free[pm] = arrival
                else:
                    self._nic_free[pm] = arrival
            if arrival > ready:
                ready = arrival
        return ready

    def data_ready_time(self, task: int, machine: int) -> float:
        """Earliest time all inputs of *task* are available on *machine*.

        Requires every predecessor to be scheduled already.  Pure query:
        never commits NIC reservations.
        """
        return self._ready_time(task, machine, commit=False)

    def finish_time(self, task: int, machine: int) -> float:
        """EFT of *task* on *machine* under non-insertion semantics."""
        start = max(
            self._machine_avail[machine], self.data_ready_time(task, machine)
        )
        return start + self._E[machine][task]

    def best_machine(self, task: int) -> tuple[int, float]:
        """Machine minimising EFT (ties → lowest id) and that EFT."""
        best_m = 0
        best_f = float("inf")
        for m in range(self._workload.num_machines):
            f = self.finish_time(task, m)
            if f < best_f:
                best_f = f
                best_m = m
        return best_m, best_f

    def place(self, task: int, machine: int) -> float:
        """Commit *task* to *machine*; returns its finish time."""
        if self._machine_of[task] is not None:
            raise ValueError(f"task {task} is already scheduled")
        start = max(
            self._machine_avail[machine],
            self._ready_time(task, machine, commit=True),
        )
        fin = start + self._E[machine][task]
        self._finish[task] = fin
        self._machine_avail[machine] = fin
        self._machine_of[task] = machine
        self._order.append(task)
        return fin

    def to_result(self, evaluations: int = 0) -> BaselineResult:
        """Finalize: build the string, re-simulate under the backend.

        Contention-free runs additionally cross-check the builder's
        expected makespan against the simulator (exact agreement); the
        NIC builder's queries are estimates by design, so there the
        backend measurement simply *is* the result.
        """
        if len(self._order) != self._workload.num_tasks:
            raise ValueError(
                f"only {len(self._order)} of {self._workload.num_tasks} "
                "tasks scheduled"
            )
        string = ScheduleString(
            self._order,
            [int(m) for m in self._machine_of],  # type: ignore[arg-type]
            self._workload.num_machines,
        )
        sim = make_simulator(
            self._source,
            self._network,
            initial_avail=self._given_avail,
            initial_nic_free=self._given_nic_free,
            platform=self._platform,
        )
        schedule = plain_schedule(sim.evaluate(string))
        if self._network == DEFAULT_NETWORK:
            expected = max(self._finish.values())
            if abs(schedule.makespan - expected) > 1e-6 * max(1.0, expected):
                raise AssertionError(
                    f"builder makespan {expected} disagrees with simulator "
                    f"{schedule.makespan}; cost models diverged"
                )
        cm = getattr(sim, "cost_model", None)
        return BaselineResult(
            name=self._name,
            string=string,
            schedule=schedule,
            makespan=schedule.makespan,
            evaluations=evaluations,
            network=self._network,
            platform=self._platform.name,
            cost=cm.cost(string.machines) if cm is not None else 0.0,
        )
