"""Common result type and machine-choice substrate for the static baselines.

Every baseline returns a :class:`BaselineResult` whose schedule was
produced by the *same* :class:`~repro.schedule.simulator.Simulator`
semantics as SE and the GA — non-insertion, string order = per-machine
execution order — so makespans are directly comparable across all
algorithms in the library.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.workload import Workload
from repro.schedule.encoding import ScheduleString
from repro.schedule.simulator import Schedule, Simulator


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of a (usually deterministic) baseline scheduler."""

    name: str
    string: ScheduleString
    schedule: Schedule
    makespan: float
    evaluations: int = 0


class IncrementalScheduleBuilder:
    """Builds a schedule one task at a time with EFT queries.

    Maintains per-machine availability and per-task finish times so that
    list schedulers can ask "what would task *t* finish at on machine
    *m*?" in O(in-degree) without re-simulating the prefix.  The final
    :meth:`to_result` re-evaluates the assembled string through the
    shared simulator (and asserts agreement) so baselines cannot drift
    from the reference cost model.
    """

    def __init__(self, workload: Workload, name: str):
        self._workload = workload
        self._name = name
        self._graph = workload.graph
        self._E = workload.exec_times.values.tolist()
        self._finish: dict[int, float] = {}
        self._machine_avail = [0.0] * workload.num_machines
        self._machine_of: list[int | None] = [None] * workload.num_tasks
        self._order: list[int] = []
        # per consumer: (producer, item) pairs
        incoming: list[list[tuple[int, int]]] = [
            [] for _ in range(workload.num_tasks)
        ]
        for d in self._graph.data_items:
            incoming[d.consumer].append((d.producer, d.index))
        self._incoming = [tuple(es) for es in incoming]

    @property
    def scheduled_count(self) -> int:
        return len(self._order)

    def data_ready_time(self, task: int, machine: int) -> float:
        """Earliest time all inputs of *task* are available on *machine*.

        Requires every predecessor to be scheduled already.
        """
        w = self._workload
        ready = 0.0
        for prod, item in self._incoming[task]:
            if prod not in self._finish:
                raise ValueError(
                    f"cannot query task {task}: predecessor {prod} unscheduled"
                )
            pm = self._machine_of[prod]
            arrival = self._finish[prod] + w.comm_time(pm, machine, item)
            if arrival > ready:
                ready = arrival
        return ready

    def finish_time(self, task: int, machine: int) -> float:
        """EFT of *task* on *machine* under non-insertion semantics."""
        start = max(
            self._machine_avail[machine], self.data_ready_time(task, machine)
        )
        return start + self._E[machine][task]

    def best_machine(self, task: int) -> tuple[int, float]:
        """Machine minimising EFT (ties → lowest id) and that EFT."""
        best_m = 0
        best_f = float("inf")
        for m in range(self._workload.num_machines):
            f = self.finish_time(task, m)
            if f < best_f:
                best_f = f
                best_m = m
        return best_m, best_f

    def place(self, task: int, machine: int) -> float:
        """Commit *task* to *machine*; returns its finish time."""
        if self._machine_of[task] is not None:
            raise ValueError(f"task {task} is already scheduled")
        fin = self.finish_time(task, machine)
        self._finish[task] = fin
        self._machine_avail[machine] = fin
        self._machine_of[task] = machine
        self._order.append(task)
        return fin

    def to_result(self, evaluations: int = 0) -> BaselineResult:
        """Finalize: build the string, re-simulate, and cross-check."""
        if len(self._order) != self._workload.num_tasks:
            raise ValueError(
                f"only {len(self._order)} of {self._workload.num_tasks} "
                "tasks scheduled"
            )
        string = ScheduleString(
            self._order,
            [int(m) for m in self._machine_of],  # type: ignore[arg-type]
            self._workload.num_machines,
        )
        schedule = Simulator(self._workload).evaluate(string)
        expected = max(self._finish.values())
        if abs(schedule.makespan - expected) > 1e-6 * max(1.0, expected):
            raise AssertionError(
                f"builder makespan {expected} disagrees with simulator "
                f"{schedule.makespan}; cost models diverged"
            )
        return BaselineResult(
            name=self._name,
            string=string,
            schedule=schedule,
            makespan=schedule.makespan,
            evaluations=evaluations,
        )
