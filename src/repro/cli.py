"""Command-line interface: ``repro`` / ``python -m repro`` / ``repro-mshc``.

Subcommands
-----------
* ``describe``   — print a workload preset's characteristics.
* ``run``        — run one algorithm (se, ga, sa, tabu, heft, minmin,
  maxmin, olb, random) on a preset and print the schedule summary.
* ``compare``    — head-to-head of the iterative engines under one
  wall-clock budget with an ASCII plot (``--algos se,ga,sa,tabu``;
  defaults to the paper's SE-vs-GA pairing).
* ``algorithms`` — list every registry algorithm with the parameter
  names its :class:`~repro.runner.spec.AlgorithmSpec` accepts.
* ``figure``     — regenerate one of the paper's figures (3a, 3b, 4a,
  4b, 5, 6, 7) as an ASCII chart.
* ``sweep``      — a parallel algorithms × workload-grid × seeds sweep
  through :mod:`repro.runner` (``--workers N``, resume via ``--cache``),
  with JSON/CSV artifacts and a league table; ``--network nic`` runs
  every algorithm against the NIC-contention backend, ``--platform``
  costs every cell against a priced machine catalog.
* ``pareto``     — trace the (makespan, cost) front of one preset on a
  priced platform: one SA/tabu run per scalarization weight, all
  sharing one Pareto tracker, plus the cheapest-within-1.2x pick.
* ``export``     — write artifacts to disk: the workload as JSON, its
  DAG as Graphviz DOT, and an SE schedule as JSON + SVG Gantt chart.
* ``perf``       — performance tracking: ``perf check`` gates a fresh
  ``BENCH_micro.json`` against the committed baseline (non-zero exit on
  regression — this is CI's perf job); ``perf show`` pretty-prints a
  BENCH file.

Examples::

    repro describe --preset fig5 --seed 7
    repro run --algo sa --preset small --seed 7 --iterations 200
    repro compare --preset fig6 --budget 10 --seed 1 --algos se,ga,tabu
    repro algorithms
    repro figure 3a --seed 11 --iterations 300
    repro sweep --algorithms se,ga,sa,tabu,random --tasks 40 \\
        --machines 8 --seeds 1,2,3 --workers 8 --out results
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.analysis.ascii_plot import Series, line_plot
from repro.analysis.compare import compare_named, se_vs_ga
from repro.baselines import (
    GAConfig,
    heft,
    max_min,
    min_min,
    olb,
    random_search,
    run_ga,
)
from repro.core import SEConfig, run_se
from repro.optim import SAConfig, TabuConfig, run_sa, run_tabu
from repro.model import Workload, paper_sample_workload
from repro.schedule import Timeline, compute_metrics
from repro.workloads import (
    figure3_workload,
    figure4a_workload,
    figure4b_workload,
    figure5_workload,
    figure6_workload,
    figure7_workload,
    small_workload,
)

PRESETS: dict[str, Callable[[Optional[int]], Workload]] = {
    "paper-sample": lambda seed: paper_sample_workload(),
    "small": small_workload,
    "fig3": figure3_workload,
    "fig4a": figure4a_workload,
    "fig4b": figure4b_workload,
    "fig5": figure5_workload,
    "fig6": figure6_workload,
    "fig7": figure7_workload,
}


def _load_workload(preset: str, seed: Optional[int]) -> Workload:
    try:
        factory = PRESETS[preset]
    except KeyError:
        raise SystemExit(
            f"unknown preset {preset!r}; choose from {', '.join(PRESETS)}"
        )
    return factory(seed)


def _cmd_describe(args: argparse.Namespace) -> int:
    w = _load_workload(args.preset, args.seed)
    print(w.describe())
    return 0


def _platform_cost_model(w: Workload, platform: str):
    """``(effective workload, CostModel | None)`` of *w* on *platform*.

    ``None`` on the free uniform platform, where cost is identically 0
    and the effective workload is *w* itself.
    """
    from repro.schedule.backend import resolve_platform
    from repro.schedule.scoring import CostModel

    spec = resolve_platform(platform)
    if spec.is_uniform:
        return w, None
    bound = spec.bind(w.num_machines)
    scaled = bound.apply(w)
    return scaled, CostModel(scaled.exec_times.values, bound.prices)


def _check_platform(command: str, platform: str) -> None:
    """Turn an unknown ``--platform`` into a clean CLI error."""
    from repro.schedule.backend import resolve_platform

    try:
        resolve_platform(platform)
    except ValueError as exc:
        raise SystemExit(f"{command}: {exc}")


#: Registry algorithms that optimise a configurable objective — the only
#: ones the risk flags (--objective/--scenarios/--distribution) apply to.
_RISK_ALGOS = ("se", "hybrid", "ga", "sa", "tabu", "random")


def _risk_requested(args: argparse.Namespace) -> bool:
    """True when any risk flag departs from its deterministic default."""
    return (
        args.objective != "makespan"
        or args.scenarios != 0
        or args.distribution != "deterministic"
    )


def _risk_params(args: argparse.Namespace) -> dict:
    return {
        "objective": args.objective,
        "scenarios": args.scenarios,
        "distribution": args.distribution,
        "scenario_seed": args.scenario_seed,
    }


def _check_risk_flags(command: str, args: argparse.Namespace) -> bool:
    """Validate the risk-flag bundle; True when a scenario objective.

    The flags only make sense together — a scenario objective needs
    ``--scenarios``, and scenario sampling needs a scenario objective —
    so the shared :func:`~repro.stochastic.distributions.
    validate_scenario_settings` rule is applied up front for a clean
    CLI error instead of a config-construction traceback.
    """
    from repro.stochastic.distributions import validate_scenario_settings

    try:
        obj, _ = validate_scenario_settings(
            args.objective, args.scenarios, args.distribution
        )
    except ValueError as exc:
        raise SystemExit(f"{command}: {exc}")
    return bool(getattr(obj, "is_scenario", False))


def _print_risk_profile(args: argparse.Namespace, w: Workload, best) -> None:
    """Report the winner's makespan distribution over the scenario set."""
    from repro.analysis.robust import RiskSummary
    from repro.optim import EvaluationService

    svc = EvaluationService(
        w,
        args.network,
        prefer_batch=True,
        platform=args.platform,
        **_risk_params(args),
    )
    samples = svc.scenario_evaluator.samples_string(best)
    obj = svc.objective
    print(
        f"\n{obj.name} over {args.scenarios} x {args.distribution} "
        f"scenarios (seed {args.scenario_seed}): {obj.reduce(samples):.2f}"
    )
    if obj.kind == "saa":
        verdict = "satisfied" if obj.feasible(samples) else "VIOLATED"
        print(f"chance constraint: {verdict}")
    print("risk profile of the winner:")
    print("\n".join(RiskSummary.from_samples(samples).format_lines("  ")))


def _cmd_run(args: argparse.Namespace) -> int:
    _check_platform("run", args.platform)
    is_scenario = _check_risk_flags("run", args)
    if _risk_requested(args) and args.algo not in _RISK_ALGOS:
        raise SystemExit(
            f"run: --objective/--scenarios/--distribution apply to "
            f"{', '.join(_RISK_ALGOS)} only, not {args.algo!r} "
            "(deterministic heuristics have no objective to swap)"
        )
    w = _load_workload(args.preset, args.seed)
    algo = args.algo
    risk = _risk_params(args)
    if args.verbose:
        # capability of the selected backend, not a per-run trace: only
        # algorithms that batch-score (ga, tabu, random, se with
        # probe_evaluation="batch") actually exercise the kernel
        print(
            f"network {args.network!r}: batch evaluation via "
            f"{_batch_mode(args.network)} "
            "(applies when the algorithm batch-scores)"
        )
        print("platform catalogs (--platform) and their cost paths:")
        print(_platforms_listing())
    if algo == "se":
        res = run_se(
            w,
            SEConfig(
                seed=args.seed,
                max_iterations=args.iterations,
                time_limit=args.budget,
                y_candidates=args.y,
                selection_bias=args.bias,
                network=args.network,
                platform=args.platform,
                **risk,
            ),
        )
        schedule, makespan = res.best_schedule, res.best_makespan
        print(
            f"SE finished: {res.iterations} iterations, "
            f"{res.evaluations} evaluations, stopped by {res.stopped_by}"
        )
    elif algo == "ga":
        res = run_ga(
            w,
            GAConfig(
                seed=args.seed,
                max_generations=args.iterations,
                time_limit=args.budget,
                network=args.network,
                platform=args.platform,
                **risk,
            ),
        )
        schedule, makespan = res.best_schedule, res.best_makespan
        print(
            f"GA finished: {res.generations} generations, "
            f"{res.evaluations} evaluations, stopped by {res.stopped_by}"
        )
    elif algo == "sa":
        # one SA iteration = one move proposal, far cheaper than one
        # SE/GA iteration — grant 50 proposals per requested iteration
        res = run_sa(
            w,
            SAConfig(
                seed=args.seed,
                max_iterations=args.iterations * 50,
                time_limit=args.budget,
                network=args.network,
                platform=args.platform,
                **risk,
            ),
        )
        schedule, makespan = res.best_schedule, res.best_makespan
        print(
            f"SA finished: {res.iterations} proposals, "
            f"{res.evaluations} evaluations, stopped by {res.stopped_by}"
        )
    elif algo == "tabu":
        res = run_tabu(
            w,
            TabuConfig(
                seed=args.seed,
                max_iterations=args.iterations,
                time_limit=args.budget,
                network=args.network,
                platform=args.platform,
                **risk,
            ),
        )
        schedule, makespan = res.best_schedule, res.best_makespan
        print(
            f"tabu finished: {res.iterations} iterations, "
            f"{res.evaluations} evaluations, stopped by {res.stopped_by}"
        )
    else:
        fns = {
            "heft": heft,
            "minmin": min_min,
            "maxmin": max_min,
            "olb": olb,
            "random": lambda w, network, platform: random_search(
                w,
                samples=args.iterations,
                seed=args.seed,
                network=network,
                platform=platform,
                **risk,
            ),
        }
        res = fns[algo](w, network=args.network, platform=args.platform)
        schedule, makespan = res.schedule, res.makespan
        print(f"{res.name} finished ({res.evaluations} evaluations)")

    best = res.string if hasattr(res, "string") else res.best_string
    if is_scenario:
        # engines report the winner's *nominal* makespan; the optimised
        # risk statistic follows in the profile block
        print(f"\nnominal makespan ({args.network}): {makespan:.2f}")
        _print_risk_profile(args, w, best)
    else:
        print(f"\nmakespan ({args.network}): {makespan:.2f}")
    # metrics (and billing) against the workload the run actually
    # scored: the platform's speed-scaled matrix, or w itself on uniform
    eff, cost_model = _platform_cost_model(w, args.platform)
    if cost_model is not None:
        machines = best.machines
        print(
            f"cost ({args.platform}): "
            f"{cost_model.cost(machines):.4f} usd"
        )
    print()
    print(compute_metrics(eff, schedule).describe())
    if args.gantt:
        print("\n" + Timeline(schedule, w.num_machines).render_ascii())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    w = _load_workload(args.preset, args.seed)
    algos = [a.strip() for a in args.algos.split(",") if a.strip()]
    print(w.describe())
    names = " and ".join(a.upper() for a in algos)
    print(
        f"\nrunning {names} for {args.budget:.1f}s each "
        f"on {args.network!r} ..."
    )
    try:
        cmp = compare_named(
            w,
            algos,
            time_budget=args.budget,
            grid_points=args.points,
            seed=args.seed,
            network=args.network,
            platform=args.platform,
        )
    except ValueError as exc:
        raise SystemExit(f"compare: {exc}")
    series = [
        Series(s.name, s.time_grid, s.best_at) for s in cmp.series
    ]
    print(
        line_plot(
            series,
            title=f"best schedule length vs time — {w.name}",
            x_label="seconds",
            y_label="schedule length",
        )
    )
    for s in cmp.series:
        print(f"{s.name}: final best = {s.final_best:.1f} ({s.iterations} iters)")
    print("winner timeline:", " ".join(str(x) for x in cmp.winner_timeline()))
    return 0


def _cmd_race(args: argparse.Namespace) -> int:
    _check_platform("race", args.platform)
    from repro.analysis import anytime_table
    from repro.portfolio import RaceConfig, run_race

    w = _load_workload(args.preset, args.seed)
    # --deadline 0 disables the wall clock (pure iteration-capped race)
    deadline = args.deadline if args.deadline and args.deadline > 0 else None
    if args.sync_every is not None:
        deadline = None  # lockstep races are iteration-capped only
    try:
        cfg = RaceConfig(
            engines=args.engines,
            islands=args.islands,
            deadline=deadline,
            max_iterations=args.iterations,
            sync_every=args.sync_every,
            exchange_interval=args.exchange_interval,
            mode=args.mode,
            network=args.network,
            platform=args.platform,
            seed=args.seed,
        )
    except ValueError as exc:
        raise SystemExit(f"race: {exc}")
    budget = (
        f"{cfg.deadline:.1f}s deadline"
        if cfg.deadline is not None
        else f"{cfg.max_iterations} iterations"
    )
    print(
        f"racing {cfg.islands} islands ({','.join(cfg.engines)}) on "
        f"{args.preset!r} under a {budget} per island "
        f"[{'lockstep' if cfg.sync_every else cfg.mode} mode] ..."
    )
    res = run_race(w, cfg)
    if args.verbose:
        for o in res.islands:
            print(
                f"island {o.island} ({o.kind}, seed {o.seed}): "
                f"kernel tier {o.kernel_tier}, started +{o.start_offset:.2f}s"
            )
    print(anytime_table(res))
    if args.verbose:
        curve = res.combined_anytime()
        print("combined anytime curve (s -> best):")
        for t, cost in curve:
            print(f"  {t:8.3f}  {cost:.2f}")
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(res.to_dict(), indent=2))
        print(f"wrote {path}")
    return 0


def _algorithms_listing() -> str:
    """Every registry algorithm with its accepted parameter names."""
    from repro.runner import algorithm_parameters, available_algorithms

    lines = []
    for name in available_algorithms():
        params = algorithm_parameters(name)
        detail = ", ".join(params) if params else "(no parameters)"
        lines.append(f"  {name:8s} {detail}")
    return "\n".join(lines)


def _batch_mode(network: str) -> str:
    """Human-readable batch-evaluation mode (active kernel tier)."""
    from repro.schedule.backend import kernel_tier

    tier = kernel_tier(network)
    if tier == "jit":
        return "jit kernel (numba-compiled)"
    if tier == "vectorized":
        return "vectorized kernel"
    return "sequential scalar fallback"


def _platforms_listing() -> str:
    """Every registered platform with its cost-scoring path.

    A platform with boot delays carries per-machine initial state, which
    routes batch scoring through the sequential scalar fallback; the
    zero-boot catalogs keep the vectorized kernel (and its vectorized
    cost gather).  Listing the mode keeps that routing visible.
    """
    from repro.schedule.backend import (
        available_platforms,
        platform_cost_vectorized,
        resolve_platform,
    )

    lines = []
    for name in available_platforms():
        spec = resolve_platform(name)
        mode = (
            "vectorized"
            if platform_cost_vectorized(name)
            else "sequential scalar fallback (boot delays)"
        )
        detail = spec.description or f"{len(spec.instances)} instance types"
        lines.append(f"  {name:10s} cost scoring: {mode:40s} {detail}")
    return "\n".join(lines)


def _networks_listing() -> str:
    """Every network model with its batch-evaluation mode.

    A network without a vectorized kernel still accepts batch scoring —
    it just loops the scalar simulator; listing the mode here keeps
    that fallback visible instead of silent.
    """
    from repro.schedule.backend import available_networks

    return "\n".join(
        f"  {name:16s} batch evaluation: {_batch_mode(name)}"
        for name in available_networks()
    )


def _objectives_listing() -> str:
    """Every objective grammar form with its scenario requirement."""
    from repro.optim.objective import OBJECTIVE_FORMS

    lines = []
    for form, needs_scenarios, desc in OBJECTIVE_FORMS:
        tag = "scenario" if needs_scenarios else "deterministic"
        lines.append(f"  {form:26s} [{tag}] {desc}")
    return "\n".join(lines)


def _distributions_listing() -> str:
    """Every duration-noise distribution form."""
    from repro.stochastic.distributions import DISTRIBUTION_FORMS

    return "\n".join(
        f"  {form:26s} {desc}" for form, desc in DISTRIBUTION_FORMS
    )


def _cmd_algorithms(args: argparse.Namespace) -> int:
    print("registry algorithms and their AlgorithmSpec parameters:")
    print(_algorithms_listing())
    print("\nnetwork models (--network) and their batch kernels:")
    print(_networks_listing())
    print("\nplatform catalogs (--platform) and their cost paths:")
    print(_platforms_listing())
    print("\nobjectives (--objective; scenario forms need --scenarios):")
    print(_objectives_listing())
    print("\nduration distributions (--distribution):")
    print(_distributions_listing())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    fig = args.id
    seed = args.seed
    iters = args.iterations
    if fig in ("3a", "3b"):
        w = figure3_workload(seed)
        res = run_se(w, SEConfig(seed=seed, max_iterations=iters))
        tr = res.trace
        if fig == "3a":
            series = [Series("selected subtasks", tr.iterations(), tr.selected_counts())]
            ylab = "number of selected subtasks"
        else:
            series = [Series("schedule length", tr.iterations(), tr.current_makespans())]
            ylab = "schedule length"
        print(line_plot(series, title=f"Figure {fig}", x_label="iteration", y_label=ylab))
    elif fig in ("4a", "4b"):
        w = figure4a_workload(seed) if fig == "4a" else figure4b_workload(seed)
        series = []
        for y in (5, 9, 12):
            res = run_se(
                w, SEConfig(seed=seed, max_iterations=iters, y_candidates=y)
            )
            tr = res.trace
            series.append(Series(f"Y={y}", tr.iterations(), tr.best_makespans()))
        print(
            line_plot(
                series,
                title=f"Figure {fig} — effect of Y",
                x_label="iteration",
                y_label="schedule length",
            )
        )
    elif fig in ("5", "6", "7"):
        w = {"5": figure5_workload, "6": figure6_workload, "7": figure7_workload}[fig](seed)
        cmp = se_vs_ga(w, time_budget=args.budget, grid_points=args.points, seed=seed)
        series = [Series(s.name, s.time_grid, s.best_at) for s in cmp.series]
        print(
            line_plot(
                series,
                title=f"Figure {fig} — SE vs GA on {w.name}",
                x_label="seconds",
                y_label="best schedule length",
            )
        )
    else:
        raise SystemExit(f"unknown figure {fig!r}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.grid import grid_from_experiment
    from repro.runner import (
        AlgorithmSpec,
        ExperimentSpec,
        available_algorithms,
        print_progress,
        run_experiment,
    )
    from repro.workloads import WorkloadSuite

    _check_platform("sweep", args.platform)
    _check_risk_flags("sweep", args)
    algos = [a.strip().lower() for a in args.algos.split(",") if a.strip()]
    unknown = sorted(set(algos) - set(available_algorithms()))
    if unknown:
        raise SystemExit(
            f"unknown algorithms {unknown}; available (with their "
            f"AlgorithmSpec parameters):\n{_algorithms_listing()}"
        )
    if _risk_requested(args):
        bad = sorted(set(algos) - set(_RISK_ALGOS))
        if bad:
            raise SystemExit(
                f"sweep: --objective/--scenarios/--distribution apply to "
                f"{', '.join(_RISK_ALGOS)} only; drop {bad} from "
                "--algorithms"
            )

    def algo_spec(kind: str) -> AlgorithmSpec:
        network = {"network": args.network, "platform": args.platform}
        # only annotate specs when risk flags were set: default params
        # keep historical cell fingerprints, so existing caches resume
        if _risk_requested(args) and kind in _RISK_ALGOS:
            network.update(_risk_params(args))
        if kind in ("se", "hybrid", "tabu"):
            params = {"max_iterations": args.iterations}
            if args.budget is not None:
                params = {
                    "time_limit": args.budget,
                    "max_iterations": 10**9,
                }
            return AlgorithmSpec.make(kind, **params, **network)
        if kind == "sa":
            # one SA iteration = one move proposal: grant 50 per
            # requested iteration so budgets stay comparable
            params = {"max_iterations": args.iterations * 50}
            if args.budget is not None:
                params = {
                    "time_limit": args.budget,
                    "max_iterations": 10**9,
                    # bound the per-proposal trace under a time budget
                    "record_every": 50,
                }
            return AlgorithmSpec.make("sa", **params, **network)
        if kind == "ga":
            params = {
                "max_generations": args.iterations,
                "stall_generations": None,
            }
            if args.budget is not None:
                params = {
                    "time_limit": args.budget,
                    "max_generations": 10**9,
                    "stall_generations": None,
                }
            return AlgorithmSpec.make("ga", **params, **network)
        if kind == "random":
            if args.budget is not None:
                return AlgorithmSpec.make(
                    "random",
                    samples=10**9,
                    time_limit=args.budget,
                    **network,
                )
            return AlgorithmSpec.make(
                "random", samples=args.iterations * 10, **network
            )
        if kind == "portfolio":
            # iteration-capped sweeps stay worker-count invariant, so
            # the race runs in deterministic lockstep; only an explicit
            # --budget opts into the wall-clock deadline race
            params = {
                "deadline": None,
                "max_iterations": args.iterations,
                "sync_every": 5,
            }
            if args.budget is not None:
                params = {"deadline": args.budget}
            return AlgorithmSpec.make("portfolio", **params, **network)
        return AlgorithmSpec.make(kind, **network)

    suite = WorkloadSuite(
        num_tasks=args.tasks,
        num_machines=args.machines,
        connectivities=tuple(args.connectivities.split(",")),
        heterogeneities=tuple(args.heterogeneities.split(",")),
        ccrs=tuple(float(c) for c in args.ccrs.split(",")),
        replicates=args.replicates,
        seed=args.suite_seed,
    )
    seeds = tuple(int(s) for s in args.seeds.split(","))
    spec = ExperimentSpec(
        name=args.name,
        algorithms={a: algo_spec(a) for a in algos},
        workloads=[cell.spec for cell in suite],
        seeds=seeds,
        base_seed=args.base_seed,
    )
    print(
        f"sweep '{args.name}': {len(algos)} algorithms x {len(suite)} "
        f"workloads x {len(seeds)} seeds = {len(spec)} cells "
        f"({args.workers} workers)"
    )
    result = run_experiment(
        spec,
        workers=args.workers,
        cache_dir=args.cache,
        progress=print_progress if not args.quiet else None,
        keep_traces=args.traces,
    )

    grid = grid_from_experiment(result)
    print("\nleague (geometric-mean normalized makespan, lower = better):")
    for algo, score in grid.league_table():
        print(f"  {algo:10s} {score:.3f}")
    if args.platform != "uniform":
        print(f"\nmean schedule cost on {args.platform!r} (usd):")
        for algo in grid.algorithms:
            costs = [c.cost for c in grid.cells if c.algorithm == algo]
            print(f"  {algo:10s} {sum(costs) / len(costs):.4f}")
    pairs = [(a, b) for a in grid.algorithms for b in grid.algorithms if a < b]
    for a, b in pairs[:6]:
        rec = grid.win_loss(a, b)
        print(f"  {a} vs {b}: {rec.describe()} (win rate {rec.win_rate():.2f})")

    if args.out:
        from pathlib import Path

        out = Path(args.out)
        print()
        print(f"wrote {result.save_json(out / f'{args.name}.json')}")
        print(f"wrote {result.save_csv(out / f'{args.name}.csv')}")
    return 0


def _cmd_pareto(args: argparse.Namespace) -> int:
    """Trace the (makespan, cost) front of one preset on one platform.

    One SA/tabu run per scalarization weight, every run sharing one
    :class:`~repro.optim.tracking.ParetoTracker` through its
    :class:`~repro.optim.evaluation.EvaluationService` — every point any
    run scores is offered, so the front is finer than the per-weight
    winners alone.  Objectives are normalized by a HEFT reference point
    so a cost weight in [0, 1] reads as "fraction of the scalar devoted
    to cost".
    """
    from repro.analysis.pareto import cheapest_within, pareto_table
    from repro.optim import ParetoTracker
    from repro.optim.evaluation import EvaluationService

    _check_platform("pareto", args.platform)
    w = _load_workload(args.preset, args.seed)
    if args.platform == "uniform":
        raise SystemExit(
            "pareto: the uniform platform has no billing table (cost is "
            "identically 0) — pick a priced catalog, e.g. --platform spot"
        )
    try:
        weights = sorted(
            float(x) for x in args.weights.split(",") if x.strip()
        )
    except ValueError:
        raise SystemExit(f"pareto: bad --weights {args.weights!r}")
    if not weights or not all(0.0 <= wc <= 1.0 for wc in weights):
        raise SystemExit("pareto: --weights must be numbers in [0, 1]")

    ref = heft(w, network=args.network, platform=args.platform)
    print(
        f"HEFT reference on {args.platform!r}: makespan "
        f"{ref.makespan:.3f}, cost {ref.cost:.4f} usd"
    )
    span_scale = 1.0 / max(ref.makespan, 1e-12)
    cost_scale = 1.0 / max(ref.cost, 1e-12)

    tracker = ParetoTracker()
    tracker.offer(ref.makespan, ref.cost)
    ref_point = None  # the pure-makespan engine run's scored best
    for i, wc in enumerate(weights):
        objective = (
            "makespan"
            if wc == 0.0
            else f"weighted:{(1.0 - wc) * span_scale!r}:{wc * cost_scale!r}"
        )
        service = EvaluationService(
            w,
            args.network,
            prefer_batch=False,
            platform=args.platform,
            objective=objective,
            pareto=tracker,
        )
        if args.algo == "sa":
            res = run_sa(
                w,
                SAConfig(
                    seed=args.seed + i,
                    max_iterations=args.iterations * 50,
                    time_limit=args.budget,
                    record_every=50,
                    network=args.network,
                    platform=args.platform,
                    objective=objective,
                ),
                service=service,
            )
        else:
            res = run_tabu(
                w,
                TabuConfig(
                    seed=args.seed + i,
                    max_iterations=args.iterations,
                    time_limit=args.budget,
                    network=args.network,
                    platform=args.platform,
                    objective=objective,
                ),
                service=service,
            )
        score = service.score_of(res.best_string)
        if wc == 0.0 and ref_point is None:
            ref_point = score
        print(
            f"  w_cost={wc:.2f}: makespan {score.makespan:.3f}, "
            f"cost {score.cost:.4f} usd ({res.evaluations} evaluations)"
        )

    front = tracker.front
    if ref_point is None:  # no pure-makespan run: anchor on the front
        ref_point = front[0]
    print(
        f"\npareto front — {len(front)} points "
        f"from {tracker.offers} scored offers:"
    )
    print(pareto_table(front, reference=ref_point))
    pick = cheapest_within(front, factor=args.factor)
    saving = (
        (1.0 - pick.cost / ref_point.cost) * 100.0
        if ref_point.cost > 0
        else 0.0
    )
    print(
        f"\ncheapest within {args.factor:g}x of best makespan: "
        f"makespan {pick.makespan:.3f} "
        f"({pick.makespan / front[0].makespan:.3f}x), "
        f"cost {pick.cost:.4f} usd "
        f"({saving:.1f}% cheaper than the reference schedule)"
    )
    return 0


def _cmd_perf_check(args: argparse.Namespace) -> int:
    from repro import perf

    try:
        comparison = perf.check_files(
            args.current, args.baseline, tolerance=args.tolerance
        )
    except FileNotFoundError as exc:
        raise SystemExit(f"perf check: missing BENCH file: {exc}")
    except ValueError as exc:
        raise SystemExit(f"perf check: {exc}")
    print(comparison.describe())
    return 0 if comparison.ok else 1


def _cmd_perf_show(args: argparse.Namespace) -> int:
    from repro import perf

    try:
        records = perf.load_records(args.file)
    except FileNotFoundError as exc:
        raise SystemExit(f"perf show: missing BENCH file: {exc}")
    except ValueError as exc:
        raise SystemExit(f"perf show: {exc}")
    for r in sorted(records, key=lambda r: r.key):
        print(
            f"{r.bench:28s} {r.metric:18s} {r.value:>12.4g} {r.unit:4s} "
            f"[commit {r.commit}, python {r.python}]"
        )
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.io import save_dot, save_json, save_svg

    w = _load_workload(args.preset, args.seed)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    stem = w.name

    written = [
        save_json(w, out / f"{stem}.workload.json"),
        save_dot(w.graph, out / f"{stem}.dot", name=stem),
    ]
    if args.schedule:
        res = run_se(
            w, SEConfig(seed=args.seed, max_iterations=args.iterations)
        )
        written.append(
            save_json(res.best_schedule, out / f"{stem}.schedule.json")
        )
        written.append(
            save_svg(w, res.best_schedule, out / f"{stem}.gantt.svg")
        )
        written.append(save_json(res.trace, out / f"{stem}.trace.json"))
        print(f"SE best makespan: {res.best_makespan:.1f}")
    for p in written:
        print(f"wrote {p}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.online import flow_table, summary_lines
    from repro.online import (
        DynamicSimulator,
        ReoptConfig,
        load_trace,
        poisson_stream,
        rate_for_utilisation,
        save_trace,
    )
    from repro.workloads.presets import WorkloadSpec

    template = WorkloadSpec(
        num_tasks=args.tasks,
        num_machines=args.machines,
        connectivity=args.connectivity,
        heterogeneity=args.heterogeneity,
        ccr=args.ccr,
    )
    if args.trace_in:
        stream = load_trace(args.trace_in)
        print(f"replaying trace {args.trace_in} ({len(stream)} jobs)")
    else:
        rate = args.rate
        if rate is None:
            rate = rate_for_utilisation(template, args.util)
            print(
                f"lambda={rate:.6g} jobs/unit-time "
                f"(target utilisation {args.util:g})"
            )
        stream = poisson_stream(rate, args.jobs, template, seed=args.seed)
    if args.trace_out:
        save_trace(stream, args.trace_out)
        print(f"wrote trace {args.trace_out}")

    reopt = None
    if args.reopt != "off":
        reopt = ReoptConfig(
            interval=args.reopt_interval,
            engine=args.reopt,
            max_iterations=args.reopt_budget,
        )
    service = DynamicSimulator(
        stream,
        network=args.network,
        policy=args.policy,
        reopt=reopt,
        seed=args.seed,
    )
    result = service.run()

    if args.log_out:
        Path(args.log_out).write_text(result.event_log_json() + "\n")
        print(f"wrote event log {args.log_out}")
    if args.table:
        print(flow_table(result))
        print()
    for line in summary_lines(result):
        print(line)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mshc",
        description=(
            "Simulated Evolution for task matching and scheduling in "
            "heterogeneous systems (IPPS 2001 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_risk_flags(p: argparse.ArgumentParser) -> None:
        """The risk bundle shared by run and sweep."""
        p.add_argument(
            "--objective",
            default="makespan",
            help="scalar to optimise: makespan, weighted:<wm>:<wc>, or "
            "a scenario objective mean / quantile:<q> / cvar:<q> / "
            "saa:<T>:<eps> (see `repro algorithms`)",
        )
        p.add_argument(
            "--scenarios",
            type=int,
            default=0,
            help="Monte-Carlo scenarios backing a scenario objective "
            "(0 = deterministic)",
        )
        p.add_argument(
            "--distribution",
            default="deterministic",
            help="duration-noise model for scenario sampling, e.g. "
            "lognormal:0.25 (see `repro algorithms`)",
        )
        p.add_argument(
            "--scenario-seed",
            type=int,
            default=0,
            help="seed of the scenario sample (independent of --seed)",
        )

    p = sub.add_parser("describe", help="print a workload preset summary")
    p.add_argument("--preset", default="small", choices=sorted(PRESETS))
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_describe)

    p = sub.add_parser("run", help="run one algorithm on a preset")
    p.add_argument(
        "--algo",
        default="se",
        choices=[
            "se", "ga", "sa", "tabu", "heft", "minmin", "maxmin", "olb",
            "random",
        ],
    )
    p.add_argument("--preset", default="small", choices=sorted(PRESETS))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--iterations",
        type=int,
        default=200,
        help="iteration cap (sa gets 50 move proposals per unit)",
    )
    p.add_argument("--budget", type=float, default=None, help="seconds")
    p.add_argument("--y", type=int, default=None, help="SE Y parameter")
    p.add_argument("--bias", type=float, default=None, help="SE selection bias B")
    p.add_argument(
        "--network",
        default="contention-free",
        choices=["contention-free", "nic"],
        help="simulator backend: paper model or NIC serialisation",
    )
    p.add_argument(
        "--platform",
        default="uniform",
        help="machine catalog the run is costed against "
        "(see `repro algorithms`; default changes nothing)",
    )
    add_risk_flags(p)
    p.add_argument("--gantt", action="store_true", help="print ASCII Gantt chart")
    p.add_argument(
        "--verbose",
        action="store_true",
        help="also print backend details (batch kernel vs scalar "
        "fallback, platform cost paths)",
    )
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "compare",
        help="iterative engines head-to-head under one wall-clock budget",
    )
    p.add_argument("--preset", default="small", choices=sorted(PRESETS))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--budget", type=float, default=10.0, help="seconds per algorithm")
    p.add_argument("--points", type=int, default=16)
    p.add_argument(
        "--algos",
        default="se,ga",
        help="comma list of engines to race (se, ga, sa, tabu)",
    )
    p.add_argument(
        "--network",
        default="contention-free",
        choices=["contention-free", "nic"],
        help="simulator backend every engine optimises against",
    )
    p.add_argument(
        "--platform",
        default="uniform",
        help="machine catalog every engine races on",
    )
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser(
        "race",
        help="anytime portfolio: race every engine in parallel, share "
        "the incumbent, best schedule at the deadline",
    )
    p.add_argument("--preset", default="small", choices=sorted(PRESETS))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--deadline",
        type=float,
        default=2.0,
        help="wall-clock budget in seconds per island (0 disables; "
        "ignored under --sync-every)",
    )
    p.add_argument(
        "--engines",
        default="se,ga,sa,tabu",
        help="comma list of engine kinds to race (se, ga, sa, tabu)",
    )
    p.add_argument(
        "--islands",
        type=int,
        default=0,
        help="island count; 0 = one per engine, extra islands are "
        "seeded restarts, 1 disables the exchange (solo golden run)",
    )
    p.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="per-island iteration cap in each engine's own unit "
        "(required with --sync-every)",
    )
    p.add_argument(
        "--sync-every",
        type=int,
        default=None,
        help="deterministic lockstep exchange every N own-iterations "
        "(threads; reproducible bit for bit at a fixed seed)",
    )
    p.add_argument(
        "--exchange-interval",
        type=int,
        default=None,
        help="incumbent poll stride for all islands (default: "
        "per-engine, see repro.portfolio.islands)",
    )
    p.add_argument(
        "--mode",
        default="process",
        choices=["process", "thread"],
        help="island execution: one process per island (default) or "
        "GIL-sharing threads",
    )
    p.add_argument(
        "--network",
        default="contention-free",
        choices=["contention-free", "nic"],
        help="simulator backend every island optimises against",
    )
    p.add_argument(
        "--platform",
        default="uniform",
        help="machine catalog every island is costed against",
    )
    p.add_argument(
        "--output",
        default=None,
        help="write the race summary (islands, anytime curves) as JSON",
    )
    p.add_argument(
        "--verbose",
        action="store_true",
        help="also print each island's kernel tier, start offset and "
        "the combined anytime curve",
    )
    p.set_defaults(func=_cmd_race)

    p = sub.add_parser(
        "algorithms",
        help="list registry algorithms and their parameter names",
    )
    p.set_defaults(func=_cmd_algorithms)

    p = sub.add_parser(
        "sweep",
        help="parallel algorithms x workload-grid x seeds sweep",
    )
    p.add_argument("--name", default="sweep", help="experiment name")
    p.add_argument(
        "--algos",
        "--algorithms",
        dest="algos",
        default="se,ga,heft",
        help="comma list of registry algorithms (see `repro algorithms`)",
    )
    p.add_argument("--tasks", type=int, default=40)
    p.add_argument("--machines", type=int, default=8)
    p.add_argument("--connectivities", default="low,high")
    p.add_argument("--heterogeneities", default="low,high")
    p.add_argument("--ccrs", default="0.1,1.0")
    p.add_argument("--replicates", type=int, default=1)
    p.add_argument("--suite-seed", type=int, default=0, help="workload-draw seed")
    p.add_argument("--seeds", default="0", help="comma list of replicate seeds")
    p.add_argument("--base-seed", type=int, default=0)
    p.add_argument("--iterations", type=int, default=100, help="SE/GA cap")
    p.add_argument(
        "--budget", type=float, default=None,
        help=(
            "wall-clock seconds per se/ga/sa/tabu/random run (lifts "
            "iteration/sample caps; deterministic heuristics are "
            "unaffected)"
        ),
    )
    p.add_argument(
        "--network",
        default="contention-free",
        choices=["contention-free", "nic"],
        help="simulator backend every algorithm optimises against",
    )
    p.add_argument(
        "--platform",
        default="uniform",
        help="machine catalog every algorithm is costed against "
        "(adds a cost column to the artifacts)",
    )
    add_risk_flags(p)
    p.add_argument("--workers", type=int, default=1, help="process count")
    p.add_argument("--cache", default=None, help="resume-cache directory")
    p.add_argument("--out", default=None, help="write JSON+CSV artifacts here")
    p.add_argument("--traces", action="store_true", help="keep convergence traces")
    p.add_argument("--quiet", action="store_true", help="no per-cell progress")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("export", help="write workload/schedule artifacts")
    p.add_argument("--preset", default="small", choices=sorted(PRESETS))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default="artifacts", help="output directory")
    p.add_argument(
        "--schedule",
        action="store_true",
        help="also run SE and export its schedule (JSON + SVG) and trace",
    )
    p.add_argument("--iterations", type=int, default=150)
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser(
        "pareto",
        help="trace the (makespan, cost) front on a priced platform",
    )
    p.add_argument("--preset", default="small", choices=sorted(PRESETS))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--algo",
        default="sa",
        choices=["sa", "tabu"],
        help="engine run once per weight (sa and tabu accept a shared "
        "evaluation service)",
    )
    p.add_argument(
        "--platform",
        default="spot",
        help="priced machine catalog (uniform is rejected: cost is 0)",
    )
    p.add_argument(
        "--network", default="contention-free",
        choices=["contention-free", "nic"],
    )
    p.add_argument(
        "--weights",
        default="0,0.2,0.4,0.6,0.8",
        help="comma list of cost weights in [0, 1] (0 = pure makespan)",
    )
    p.add_argument(
        "--iterations",
        type=int,
        default=100,
        help="per-weight iteration cap (sa gets 50 proposals per unit)",
    )
    p.add_argument(
        "--budget", type=float, default=None, help="seconds per weight"
    )
    p.add_argument(
        "--factor",
        type=float,
        default=1.2,
        help="makespan slack factor for the cheapest-within pick",
    )
    p.set_defaults(func=_cmd_pareto)

    p = sub.add_parser("perf", help="performance tracking utilities")
    perf_sub = p.add_subparsers(dest="perf_command", required=True)
    pc = perf_sub.add_parser(
        "check",
        help="gate a fresh BENCH file against the committed baseline",
    )
    pc.add_argument(
        "--current",
        default="benchmarks/output/BENCH_micro.json",
        help="freshly generated BENCH JSON",
    )
    pc.add_argument(
        "--baseline",
        default="benchmarks/baseline/BENCH_micro.json",
        help="committed baseline BENCH JSON",
    )
    pc.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="relative tolerance before a change counts as a regression",
    )
    pc.set_defaults(func=_cmd_perf_check)
    ps = perf_sub.add_parser("show", help="pretty-print a BENCH JSON file")
    ps.add_argument(
        "file",
        nargs="?",
        default="benchmarks/output/BENCH_micro.json",
        help="BENCH JSON to print",
    )
    ps.set_defaults(func=_cmd_perf_show)

    p = sub.add_parser(
        "serve",
        help="run the online scheduling service over a job stream",
    )
    p.add_argument(
        "--rate",
        "--lambda",
        dest="rate",
        type=float,
        default=None,
        help="Poisson arrival rate (jobs per unit simulated time); "
        "defaults to the rate giving --util offered load",
    )
    p.add_argument(
        "--util",
        type=float,
        default=0.7,
        help="target offered load used when --rate is omitted",
    )
    p.add_argument("--jobs", type=int, default=50, help="jobs to generate")
    p.add_argument(
        "--policy",
        default="heft",
        choices=["heft", "min-min", "max-min", "olb"],
        help="frontier dispatch policy",
    )
    p.add_argument(
        "--network", default="contention-free", choices=["contention-free", "nic"]
    )
    p.add_argument("--tasks", type=int, default=20, help="tasks per job")
    p.add_argument("--machines", type=int, default=8)
    p.add_argument(
        "--connectivity", default="medium", choices=["low", "medium", "high"]
    )
    p.add_argument(
        "--heterogeneity", default="medium", choices=["low", "medium", "high"]
    )
    p.add_argument("--ccr", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--reopt",
        default="off",
        choices=["off", "sa", "tabu"],
        help="periodic re-optimisation engine",
    )
    p.add_argument(
        "--reopt-interval",
        type=float,
        default=50.0,
        help="simulated time between re-optimisation windows",
    )
    p.add_argument(
        "--reopt-budget",
        type=int,
        default=40,
        help="engine iterations per job per window",
    )
    p.add_argument(
        "--trace-in", default=None, help="replay a saved arrival trace"
    )
    p.add_argument(
        "--trace-out", default=None, help="save the generated arrival trace"
    )
    p.add_argument(
        "--log-out", default=None, help="write the event log as JSON"
    )
    p.add_argument(
        "--table", action="store_true", help="print the per-job flow table"
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("figure", help="regenerate a paper figure (ASCII)")
    p.add_argument("id", choices=["3a", "3b", "4a", "4b", "5", "6", "7"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--iterations", type=int, default=300)
    p.add_argument("--budget", type=float, default=10.0)
    p.add_argument("--points", type=int, default=16)
    p.set_defaults(func=_cmd_figure)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
