"""JSON (de)serialization of workloads, strings, schedules and traces.

A reproduction is only useful if instances and results can leave the
process: these helpers give every core object a stable, versioned JSON
form so experiments can be archived, diffed and re-run.  The format is
plain ``dict``/``list`` data — no pickling — and round-trips exactly
(matrices via nested lists of floats).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.analysis.trace import ConvergenceTrace, IterationRecord
from repro.model.graph import TaskGraph
from repro.model.matrices import ExecutionTimeMatrix, TransferTimeMatrix
from repro.model.system import HCSystem
from repro.model.task import DataItem, Subtask
from repro.model.workload import Workload, WorkloadClass
from repro.schedule.encoding import ScheduleString
from repro.schedule.simulator import Schedule

#: Format version written into every document.
FORMAT_VERSION = 1


class SerializationError(ValueError):
    """Raised when a document cannot be decoded."""


def _require(doc: dict, key: str, kind: str) -> Any:
    if key not in doc:
        raise SerializationError(f"{kind} document is missing key {key!r}")
    return doc[key]


def _check_version(doc: dict, kind: str) -> None:
    v = doc.get("version", FORMAT_VERSION)
    if v != FORMAT_VERSION:
        raise SerializationError(
            f"{kind} document has format version {v}; this library reads "
            f"version {FORMAT_VERSION}"
        )


# ----------------------------------------------------------------------
# workload
# ----------------------------------------------------------------------


def workload_to_dict(workload: Workload) -> dict:
    """Encode *workload* (graph + system + matrices + metadata)."""
    g = workload.graph
    c = workload.classification
    return {
        "version": FORMAT_VERSION,
        "kind": "workload",
        "name": workload.name,
        "num_tasks": g.num_tasks,
        "num_machines": workload.num_machines,
        "data_items": [
            {
                "index": d.index,
                "producer": d.producer,
                "consumer": d.consumer,
                "size": d.size,
            }
            for d in g.data_items
        ],
        "exec_times": workload.exec_times.values.tolist(),
        "transfer_times": workload.transfer_times.values.tolist(),
        "classification": {
            "connectivity": c.connectivity,
            "heterogeneity": c.heterogeneity,
            "ccr": c.ccr,
            "size": c.size,
        },
    }


def workload_from_dict(doc: dict) -> Workload:
    """Decode a workload document (inverse of :func:`workload_to_dict`)."""
    _check_version(doc, "workload")
    k = int(_require(doc, "num_tasks", "workload"))
    l = int(_require(doc, "num_machines", "workload"))
    items = [
        DataItem(
            int(d["index"]),
            producer=int(d["producer"]),
            consumer=int(d["consumer"]),
            size=float(d.get("size", 1.0)),
        )
        for d in _require(doc, "data_items", "workload")
    ]
    graph = TaskGraph([Subtask(i) for i in range(k)], items)
    e = ExecutionTimeMatrix(_require(doc, "exec_times", "workload"))
    tr_rows = _require(doc, "transfer_times", "workload")
    # an empty Tr arrives as [] and loses its column count; rebuild shape
    import numpy as np

    tr_arr = np.asarray(tr_rows, dtype=float)
    if tr_arr.size == 0:
        tr_arr = tr_arr.reshape(
            (l * (l - 1) // 2 if tr_arr.shape[0] != 0 else 0, graph.num_data_items)
        )
        if l * (l - 1) // 2 == 0:
            tr_arr = np.zeros((0, graph.num_data_items))
        elif graph.num_data_items == 0:
            tr_arr = np.zeros((l * (l - 1) // 2, 0))
    tr = TransferTimeMatrix(tr_arr, l)
    cdoc = doc.get("classification", {})
    classification = WorkloadClass(
        connectivity=cdoc.get("connectivity", "unspecified"),
        heterogeneity=cdoc.get("heterogeneity", "unspecified"),
        ccr=cdoc.get("ccr"),
        size=cdoc.get("size", "unspecified"),
    )
    return Workload(
        graph,
        HCSystem.of_size(l),
        e,
        tr,
        classification=classification,
        name=doc.get("name", ""),
    )


# ----------------------------------------------------------------------
# strings and schedules
# ----------------------------------------------------------------------


def string_to_dict(string: ScheduleString) -> dict:
    """Encode a schedule string as its segment list."""
    return {
        "version": FORMAT_VERSION,
        "kind": "schedule_string",
        "num_machines": string.num_machines,
        "segments": [[t, m] for t, m in string.pairs()],
    }


def string_from_dict(doc: dict) -> ScheduleString:
    _check_version(doc, "schedule_string")
    segments = _require(doc, "segments", "schedule_string")
    l = int(_require(doc, "num_machines", "schedule_string"))
    return ScheduleString.from_pairs(
        [(int(t), int(m)) for t, m in segments], l
    )


def schedule_to_dict(schedule: Schedule) -> dict:
    """Encode an evaluated schedule with its timing vectors."""
    return {
        "version": FORMAT_VERSION,
        "kind": "schedule",
        "order": list(schedule.order),
        "machine_of": list(schedule.machine_of),
        "start": list(schedule.start),
        "finish": list(schedule.finish),
        "makespan": schedule.makespan,
    }


def schedule_from_dict(doc: dict) -> Schedule:
    _check_version(doc, "schedule")
    return Schedule(
        order=tuple(int(t) for t in _require(doc, "order", "schedule")),
        machine_of=tuple(
            int(m) for m in _require(doc, "machine_of", "schedule")
        ),
        start=tuple(float(v) for v in _require(doc, "start", "schedule")),
        finish=tuple(float(v) for v in _require(doc, "finish", "schedule")),
        makespan=float(_require(doc, "makespan", "schedule")),
    )


# ----------------------------------------------------------------------
# traces
# ----------------------------------------------------------------------


def trace_to_dict(trace: ConvergenceTrace) -> dict:
    return {
        "version": FORMAT_VERSION,
        "kind": "trace",
        "records": trace.to_rows(),
    }


def trace_from_dict(doc: dict) -> ConvergenceTrace:
    _check_version(doc, "trace")
    out = ConvergenceTrace()
    for r in _require(doc, "records", "trace"):
        out.append(
            IterationRecord(
                iteration=int(r["iteration"]),
                current_makespan=float(r["current_makespan"]),
                best_makespan=float(r["best_makespan"]),
                num_selected=(
                    None if r.get("num_selected") is None else int(r["num_selected"])
                ),
                elapsed_seconds=float(r.get("elapsed_seconds", 0.0)),
                mean_goodness=(
                    None
                    if r.get("mean_goodness") is None
                    else float(r["mean_goodness"])
                ),
                evaluations=int(r.get("evaluations", 0)),
            )
        )
    return out


# ----------------------------------------------------------------------
# file helpers
# ----------------------------------------------------------------------

_ENCODERS = {
    Workload: workload_to_dict,
    ScheduleString: string_to_dict,
    Schedule: schedule_to_dict,
    ConvergenceTrace: trace_to_dict,
}

_DECODERS = {
    "workload": workload_from_dict,
    "schedule_string": string_from_dict,
    "schedule": schedule_from_dict,
    "trace": trace_from_dict,
}


def save_json(obj, path: str | Path, indent: int = 2) -> Path:
    """Serialise a workload / string / schedule / trace to a JSON file."""
    for cls, encode in _ENCODERS.items():
        if isinstance(obj, cls):
            doc = encode(obj)
            break
    else:
        raise TypeError(
            f"cannot serialise {type(obj).__name__}; expected one of "
            f"{[c.__name__ for c in _ENCODERS]}"
        )
    path = Path(path)
    path.write_text(json.dumps(doc, indent=indent))
    return path


def load_json(path: str | Path):
    """Load any document written by :func:`save_json` (kind-dispatched)."""
    doc = json.loads(Path(path).read_text())
    kind = doc.get("kind")
    if kind not in _DECODERS:
        raise SerializationError(
            f"unknown or missing document kind {kind!r}; expected one of "
            f"{sorted(_DECODERS)}"
        )
    return _DECODERS[kind](doc)
