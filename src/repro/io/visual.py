"""Visual exports: SVG Gantt charts and Graphviz DOT task graphs.

Dependency-free renderers for the two artifacts people actually paste
into papers and issues:

* :func:`schedule_to_svg` — a Gantt chart of an evaluated schedule, one
  lane per machine, task blocks labelled and colour-rotated;
* :func:`graph_to_dot` — the application DAG in Graphviz DOT, data items
  as edge labels, for rendering with any dot viewer.

Both return plain strings; ``save_svg`` / ``save_dot`` write them out.
"""

from __future__ import annotations

from pathlib import Path
from xml.sax.saxutils import escape

from repro.model.graph import TaskGraph
from repro.model.workload import Workload
from repro.schedule.simulator import Schedule

#: Fill colours rotated across subtasks (okabe-ito palette, colour-blind safe).
PALETTE = (
    "#0072B2",
    "#E69F00",
    "#009E73",
    "#CC79A7",
    "#56B4E9",
    "#D55E00",
    "#F0E442",
    "#999999",
)

LANE_HEIGHT = 34
LANE_GAP = 8
MARGIN_LEFT = 60
MARGIN_TOP = 30
MARGIN_BOTTOM = 40
MARGIN_RIGHT = 20


def schedule_to_svg(
    workload: Workload,
    schedule: Schedule,
    width: int = 900,
) -> str:
    """Render *schedule* as a standalone SVG Gantt chart.

    Parameters
    ----------
    workload:
        Supplies the machine count and names for the lane labels.
    schedule:
        Any evaluated schedule of that workload.
    width:
        Total document width in px; time is scaled to fit.
    """
    if width < 200:
        raise ValueError(f"width must be >= 200, got {width}")
    l = workload.num_machines
    span = schedule.makespan or 1.0
    plot_w = width - MARGIN_LEFT - MARGIN_RIGHT
    height = MARGIN_TOP + l * (LANE_HEIGHT + LANE_GAP) + MARGIN_BOTTOM

    def x(t: float) -> float:
        return MARGIN_LEFT + t / span * plot_w

    def lane_y(m: int) -> float:
        return MARGIN_TOP + m * (LANE_HEIGHT + LANE_GAP)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">',
        f'<text x="{MARGIN_LEFT}" y="16" font-size="13">'
        f"{escape(workload.name)} — makespan {schedule.makespan:.1f}</text>",
    ]

    # lanes and labels
    for m in range(l):
        y = lane_y(m)
        parts.append(
            f'<rect x="{MARGIN_LEFT}" y="{y}" width="{plot_w}" '
            f'height="{LANE_HEIGHT}" fill="#f4f4f4"/>'
        )
        name = escape(workload.system.machine(m).name)
        parts.append(
            f'<text x="8" y="{y + LANE_HEIGHT / 2 + 4}">{name}</text>'
        )

    # task blocks
    for t in schedule.order:
        m = schedule.machine_of[t]
        x0 = x(schedule.start[t])
        x1 = x(schedule.finish[t])
        y = lane_y(m)
        colour = PALETTE[t % len(PALETTE)]
        parts.append(
            f'<rect x="{x0:.2f}" y="{y + 2}" width="{max(x1 - x0, 1.0):.2f}" '
            f'height="{LANE_HEIGHT - 4}" fill="{colour}" fill-opacity="0.85" '
            f'stroke="#333" stroke-width="0.5">'
            f"<title>s{t}: {schedule.start[t]:.1f} – {schedule.finish[t]:.1f} "
            f"on m{m}</title></rect>"
        )
        if x1 - x0 > 18:  # label only blocks wide enough to hold text
            parts.append(
                f'<text x="{x0 + 3:.2f}" y="{y + LANE_HEIGHT / 2 + 4}" '
                f'fill="#fff">s{t}</text>'
            )

    # time axis with 5 ticks
    axis_y = MARGIN_TOP + l * (LANE_HEIGHT + LANE_GAP) + 8
    parts.append(
        f'<line x1="{MARGIN_LEFT}" y1="{axis_y}" x2="{MARGIN_LEFT + plot_w}" '
        f'y2="{axis_y}" stroke="#333"/>'
    )
    for i in range(6):
        tt = span * i / 5
        xt = x(tt)
        parts.append(
            f'<line x1="{xt:.2f}" y1="{axis_y}" x2="{xt:.2f}" '
            f'y2="{axis_y + 4}" stroke="#333"/>'
        )
        parts.append(
            f'<text x="{xt:.2f}" y="{axis_y + 16}" text-anchor="middle">'
            f"{tt:.0f}</text>"
        )

    parts.append("</svg>")
    return "\n".join(parts)


def graph_to_dot(graph: TaskGraph, name: str = "taskgraph") -> str:
    """Render the DAG as Graphviz DOT (data items become edge labels)."""
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    lines = [
        f"digraph {safe} {{",
        "  rankdir=TB;",
        '  node [shape=circle, style=filled, fillcolor="#dbe9f6"];',
    ]
    for t in range(graph.num_tasks):
        lines.append(f'  s{t} [label="s{t}"];')
    for d in graph.data_items:
        lines.append(
            f'  s{d.producer} -> s{d.consumer} '
            f'[label="d{d.index} ({d.size:g})"];'
        )
    lines.append("}")
    return "\n".join(lines)


def save_svg(
    workload: Workload, schedule: Schedule, path: str | Path, width: int = 900
) -> Path:
    """Write :func:`schedule_to_svg` output to *path*."""
    path = Path(path)
    path.write_text(schedule_to_svg(workload, schedule, width=width))
    return path


def save_dot(graph: TaskGraph, path: str | Path, name: str = "taskgraph") -> Path:
    """Write :func:`graph_to_dot` output to *path*."""
    path = Path(path)
    path.write_text(graph_to_dot(graph, name=name))
    return path
