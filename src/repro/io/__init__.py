"""Stable JSON serialization of workloads, strings, schedules and traces."""

from repro.io.visual import (
    graph_to_dot,
    save_dot,
    save_svg,
    schedule_to_svg,
)
from repro.io.serialization import (
    FORMAT_VERSION,
    SerializationError,
    load_json,
    save_json,
    schedule_from_dict,
    schedule_to_dict,
    string_from_dict,
    string_to_dict,
    trace_from_dict,
    trace_to_dict,
    workload_from_dict,
    workload_to_dict,
)

__all__ = [
    "FORMAT_VERSION",
    "SerializationError",
    "load_json",
    "save_json",
    "schedule_from_dict",
    "schedule_to_dict",
    "string_from_dict",
    "string_to_dict",
    "trace_from_dict",
    "trace_to_dict",
    "workload_from_dict",
    "workload_to_dict",
    "graph_to_dot",
    "save_dot",
    "save_svg",
    "schedule_to_svg",
]
