"""Extensions beyond the paper's model.

* :mod:`~repro.extensions.contention` — NIC-serialised network model for
  stress-testing the paper's contention-free assumption;
* :mod:`~repro.extensions.hybrid` — HEFT-seeded warm starts for SE and
  the GA (never worse than HEFT by construction).
"""

from repro.extensions.contention import (
    ContentionSchedule,
    ContentionSimulator,
    TransferRecord,
    contention_penalty,
)
from repro.extensions.hybrid import heft_seeded_ga, heft_seeded_se

__all__ = [
    "ContentionSchedule",
    "ContentionSimulator",
    "TransferRecord",
    "contention_penalty",
    "heft_seeded_ga",
    "heft_seeded_se",
]
