"""Extensions beyond the paper's model.

* :mod:`~repro.extensions.contention` — NIC-serialised network model, a
  full simulator backend (network name ``"nic"``) every optimiser in
  the library can run against;
* :mod:`~repro.extensions.hybrid` — HEFT-seeded warm starts for SE and
  the GA (never worse than HEFT by construction).
"""

from repro.extensions.contention import (
    ContentionDeltaState,
    ContentionSchedule,
    ContentionSimulator,
    TransferRecord,
    contention_penalty,
)
from repro.extensions.hybrid import heft_seeded_ga, heft_seeded_se

__all__ = [
    "ContentionDeltaState",
    "ContentionSchedule",
    "ContentionSimulator",
    "TransferRecord",
    "contention_penalty",
    "heft_seeded_ga",
    "heft_seeded_se",
]
