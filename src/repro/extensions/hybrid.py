"""Hybrid seeding — warm-starting the metaheuristics (extension).

A standard practice the paper leaves as future work: seed the iterative
heuristics with a good deterministic schedule instead of a random one.

* :func:`heft_seeded_se` starts SE from HEFT's string.  Because the SE
  engine tracks the best solution ever seen, the result can never be
  worse than HEFT itself.
* :func:`heft_seeded_ga` injects HEFT's chromosome into the initial GA
  population (plus random diversity); elitism then guarantees the same
  never-worse property.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.ga import Chromosome, GAConfig, GAResult, GeneticAlgorithm
from repro.baselines.heft import heft
from repro.core.config import SEConfig
from repro.core.engine import SEResult, SimulatedEvolution
from repro.model.workload import Workload


def heft_seeded_se(
    workload: Workload, config: Optional[SEConfig] = None
) -> SEResult:
    """Run SE from HEFT's schedule; never worse than HEFT.

    When *config* leaves ``selection_bias`` unset, it is resolved to
    −0.1 instead of the size-based default: a HEFT seed already has
    near-saturated goodness, and without a negative bias the selection
    step would pick almost nothing, leaving the seed unrefined.
    """
    from dataclasses import replace

    cfg = config or SEConfig()
    if cfg.selection_bias is None:
        cfg = replace(cfg, selection_bias=-0.1)
    # Seed with HEFT run under the same network model SE will optimise,
    # so the warm start is warm for the actual objective.
    seed_string = heft(workload, network=cfg.network).string
    return SimulatedEvolution(cfg).run(workload, initial=seed_string)


def heft_seeded_ga(
    workload: Workload, config: Optional[GAConfig] = None
) -> GAResult:
    """Run the GA with HEFT's chromosome in the initial population.

    Requires ``elite_count >= 1`` (the default) for the never-worse
    guarantee; a zero-elitism config raises to avoid silently losing it.
    """
    cfg = config or GAConfig()
    if cfg.elite_count < 1:
        raise ValueError(
            "heft_seeded_ga needs elite_count >= 1 to preserve the seed"
        )
    res = heft(workload, network=cfg.network)
    seed_chrom = Chromosome(
        matching=list(res.string.machines),
        scheduling=list(res.string.order),
    )
    return GeneticAlgorithm(cfg).run(workload, initial=[seed_chrom])
