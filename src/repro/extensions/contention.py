"""Link-contention network model — an extension beyond the paper.

The paper (following Wang et al.) assumes a fully connected network with
**contention-free** links: every transfer starts the instant its producer
finishes.  Real clusters serialise transfers on each node's network
interface.  :class:`ContentionSimulator` adds that effect with a
one-NIC-per-machine model:

* each machine owns a single outgoing link;
* when a subtask finishes, its output items destined for *other*
  machines are sent in ascending item-index order (the ``_out_edges``
  tables are sorted at construction, so the promise holds regardless of
  how the graph stores its adjacency), each occupying the producer's
  NIC for its ``Tr`` duration;
* a consumer may start only after its machine is free *and* every input
  item has arrived (same-machine items arrive instantly).

The model is deliberately conservative (receive side is unmodelled), and
it degrades exactly to the paper's model when transfers are free (a
property pinned by ``tests/properties/test_contention_backend_properties
.py``).

Full backend parity
-------------------

``ContentionSimulator`` implements the whole
:class:`~repro.schedule.backend.SimulatorBackend` protocol, registered
under the network name ``"nic"`` — so SE, the GA and the baselines can
*optimise under* contention, not merely measure it after the fact.  The
incremental tier mirrors :meth:`repro.schedule.simulator.Simulator.
prepare` / ``evaluate_delta``: :meth:`ContentionSimulator.prepare`
snapshots, per string position, the machine-availability vector, the
NIC-free-time vector and the running span, plus the final item-arrival
table; :meth:`ContentionSimulator.evaluate_delta` then re-scores a
perturbed string suffix-only with branch-and-bound cutoff, bit-identical
to a full evaluation.

One contention-specific subtlety: pushes happen *eagerly* when the
producer runs, and a push's duration (and whether it happens at all)
depends on the **consumer's** machine.  A probe that changes the machine
of a suffix subtask can therefore dirty the NIC timeline of a producer
that sits in the untouched prefix.  ``evaluate_delta`` detects every
machine reassignment against the base string and restarts the walk at
the earliest producer position any of them can influence, so prefix
reuse never changes the result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.model.workload import Workload
from repro.schedule.backend import register_network
from repro.schedule.encoding import ScheduleString
from repro.schedule.scoring import CostModel, ScheduleScore
from repro.schedule.simulator import InvalidScheduleError, Schedule


def _state_vector(
    values: Optional[Sequence[float]], l: int, label: str
) -> list[float]:
    """Normalise an optional per-machine time vector (default all zero)."""
    if values is None:
        return [0.0] * l
    if len(values) != l:
        raise ValueError(
            f"{label} has {len(values)} entries for {l} machines"
        )
    return [float(v) for v in values]


@dataclass(frozen=True)
class TransferRecord:
    """One cross-machine transfer as scheduled on the producer's NIC."""

    item: int
    producer: int
    consumer: int
    src_machine: int
    dst_machine: int
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass(frozen=True)
class ContentionSchedule:
    """A schedule evaluated under NIC contention.

    Structurally compatible with :class:`~repro.schedule.simulator.
    Schedule` (``order`` / ``machine_of`` / ``start`` / ``finish`` /
    ``makespan`` all delegate to the wrapped plain schedule), plus the
    per-transfer NIC records.
    """

    schedule: Schedule
    transfers: tuple[TransferRecord, ...]

    @property
    def makespan(self) -> float:
        return self.schedule.makespan

    @property
    def order(self) -> tuple[int, ...]:
        return self.schedule.order

    @property
    def machine_of(self) -> tuple[int, ...]:
        return self.schedule.machine_of

    @property
    def start(self) -> tuple[float, ...]:
        return self.schedule.start

    @property
    def finish(self) -> tuple[float, ...]:
        return self.schedule.finish

    @property
    def num_tasks(self) -> int:
        return self.schedule.num_tasks

    def nic_busy_time(self, machine: int) -> float:
        """Total time *machine*'s outgoing link is occupied."""
        return sum(
            t.duration for t in self.transfers if t.src_machine == machine
        )


class ContentionDeltaState:
    """Per-position snapshot of one full contention evaluation.

    Produced by :meth:`ContentionSimulator.prepare`; consumed by
    :meth:`ContentionSimulator.evaluate_delta`.  For ``k`` subtasks on
    ``l`` machines with ``p`` data items it stores, for every position
    ``q`` in ``0..k``:

    * ``avail_rows[q]`` — per-machine availability before position ``q``;
    * ``nic_rows[q]`` — per-machine NIC-free time before position ``q``;
    * ``span_prefix[q]`` — makespan of the prefix ``[0, q)``;

    plus the per-task ``start`` / ``finish`` arrays, the final per-item
    ``arrival`` table (valid for every item produced before any suffix
    restart point — see :meth:`ContentionSimulator.evaluate_delta`), the
    base ``order`` / ``machine_of`` copies, ``pos_of`` and, per task, the
    earliest base position among its producers (``producer_floor``, ``k``
    for entry tasks) used to bound machine-reassignment effects.

    Memory is ``O(k*l + p)``; building it costs one full evaluation.
    """

    __slots__ = (
        "order",
        "machine_of",
        "pos_of",
        "start",
        "finish",
        "arrival",
        "avail_rows",
        "nic_rows",
        "span_prefix",
        "producer_floor",
        "makespan",
    )

    def __init__(
        self,
        order: list[int],
        machine_of: list[int],
        start: list[float],
        finish: list[float],
        arrival: list[float],
        avail_rows: list[list[float]],
        nic_rows: list[list[float]],
        span_prefix: list[float],
        producer_floor: list[int],
        makespan: float,
    ):
        self.order = order
        self.machine_of = machine_of
        self.start = start
        self.finish = finish
        self.arrival = arrival
        self.avail_rows = avail_rows
        self.nic_rows = nic_rows
        self.span_prefix = span_prefix
        self.producer_floor = producer_floor
        self.makespan = makespan
        pos_of = [0] * len(order)
        for q, task in enumerate(order):
            pos_of[task] = q
        self.pos_of = pos_of

    def as_schedule(self) -> Schedule:
        """The fully evaluated base schedule (no re-walk needed)."""
        return Schedule(
            order=tuple(self.order),
            machine_of=tuple(self.machine_of),
            start=tuple(self.start),
            finish=tuple(self.finish),
            makespan=self.makespan,
        )


class ContentionSimulator:
    """Schedule evaluation with per-machine outgoing-link serialisation.

    Full :class:`~repro.schedule.backend.SimulatorBackend`: the same
    ``makespan`` / ``evaluate`` / ``prepare`` / ``evaluate_delta``
    surface as :class:`repro.schedule.simulator.Simulator`, registered
    as the ``"nic"`` network model.
    """

    __slots__ = (
        "_workload",
        "_k",
        "_l",
        "_p",
        "_E",
        "_tr",
        "_in_edges",
        "_out_edges",
        "_avail0",
        "_nic0",
        "_cost_model",
    )

    def __init__(
        self,
        workload: Workload,
        initial_avail: Optional[Sequence[float]] = None,
        initial_nic_free: Optional[Sequence[float]] = None,
        cost_model: Optional[CostModel] = None,
    ):
        self._workload = workload
        self._cost_model = cost_model
        graph = workload.graph
        self._k = graph.num_tasks
        self._l = workload.num_machines
        self._p = graph.num_data_items
        self._E = workload.exec_times.values.tolist()
        self._tr = workload.transfer_times.values.tolist()
        # Per consumer: (producer, item) pairs — the data inputs.
        in_edges: list[list[tuple[int, int]]] = [[] for _ in range(self._k)]
        for d in graph.data_items:
            in_edges[d.consumer].append((d.producer, d.index))
        self._in_edges = [tuple(es) for es in in_edges]
        # Per producer: (item, consumer) pairs in ascending item-index
        # order — the documented NIC push order, enforced here rather
        # than inherited from the graph's adjacency ordering.
        self._out_edges = [
            tuple(
                (i, graph.data_item(i).consumer)
                for i in sorted(graph.out_items(t))
            )
            for t in range(self._k)
        ]
        # Online-service support: seed the walk's machine-availability and
        # NIC-free vectors from in-flight earlier work (default: idle at 0,
        # bit-identical to the historical behaviour).
        self._avail0 = _state_vector(initial_avail, self._l, "initial_avail")
        self._nic0 = _state_vector(
            initial_nic_free, self._l, "initial_nic_free"
        )

    @property
    def workload(self) -> Workload:
        return self._workload

    # ------------------------------------------------------------------
    # full evaluation
    # ------------------------------------------------------------------

    def evaluate(self, string: ScheduleString) -> ContentionSchedule:
        """Full evaluation of *string* under NIC contention."""
        order = string.order
        machine_of = string.machines
        E = self._E
        tr = self._tr
        l = self._l
        k = self._k
        in_edges = self._in_edges
        out_edges = self._out_edges

        start = [0.0] * k
        finish = [-1.0] * k
        machine_avail = self._avail0[:]
        nic_free = self._nic0[:]
        arrival = [0.0] * self._p
        transfers: list[TransferRecord] = []
        span = 0.0

        for task in order:
            m = machine_of[task]
            ready = machine_avail[m]
            for prod, item in in_edges[task]:
                if finish[prod] < 0.0:
                    raise InvalidScheduleError(
                        f"subtask {task} scheduled before its producer {prod}"
                    )
                pm = machine_of[prod]
                t_arr = finish[prod] if pm == m else arrival[item]
                if t_arr > ready:
                    ready = t_arr
            fin = ready + E[m][task]
            start[task] = ready
            finish[task] = fin
            machine_avail[m] = fin
            if fin > span:
                span = fin

            # eager push: send every cross-machine output item, in item
            # order, serialised on this machine's NIC
            nf = nic_free[m]
            for item, consumer in out_edges[task]:
                dst = machine_of[consumer]
                if dst == m:
                    continue
                if dst < m:
                    row = dst * l - dst * (dst + 1) // 2 + (m - dst - 1)
                else:
                    row = m * l - m * (m + 1) // 2 + (dst - m - 1)
                t_start = fin if fin > nf else nf
                nf = t_start + tr[row][item]
                arrival[item] = nf
                transfers.append(
                    TransferRecord(
                        item=item,
                        producer=task,
                        consumer=consumer,
                        src_machine=m,
                        dst_machine=dst,
                        start=t_start,
                        finish=nf,
                    )
                )
            nic_free[m] = nf

        return ContentionSchedule(
            schedule=Schedule(
                order=tuple(order),
                machine_of=tuple(machine_of),
                start=tuple(start),
                finish=tuple(finish),
                makespan=span,
            ),
            transfers=tuple(transfers),
        )

    def makespan(
        self, order: Sequence[int], machine_of: Sequence[int]
    ) -> float:
        """Makespan only — the hot path (no transfer records built).

        Raises
        ------
        InvalidScheduleError
            If *order* places a consumer before one of its producers.
        """
        E = self._E
        tr = self._tr
        l = self._l
        in_edges = self._in_edges
        out_edges = self._out_edges
        finish = [-1.0] * self._k
        machine_avail = self._avail0[:]
        nic_free = self._nic0[:]
        arrival = [0.0] * self._p
        span = 0.0

        for task in order:
            m = machine_of[task]
            ready = machine_avail[m]
            for prod, item in in_edges[task]:
                pf = finish[prod]
                if pf < 0.0:
                    raise InvalidScheduleError(
                        f"subtask {task} scheduled before its producer {prod}"
                    )
                t_arr = pf if machine_of[prod] == m else arrival[item]
                if t_arr > ready:
                    ready = t_arr
            fin = ready + E[m][task]
            finish[task] = fin
            machine_avail[m] = fin
            if fin > span:
                span = fin
            nf = nic_free[m]
            for item, consumer in out_edges[task]:
                dst = machine_of[consumer]
                if dst == m:
                    continue
                if dst < m:
                    row = dst * l - dst * (dst + 1) // 2 + (m - dst - 1)
                else:
                    row = m * l - m * (m + 1) // 2 + (dst - m - 1)
                t_start = fin if fin > nf else nf
                nf = t_start + tr[row][item]
                arrival[item] = nf
            nic_free[m] = nf
        return span

    def string_makespan(self, string: ScheduleString) -> float:
        """Makespan of a :class:`ScheduleString` (thin convenience)."""
        return self.makespan(string.order, string.machines)

    @property
    def cost_model(self) -> Optional[CostModel]:
        """The platform billing table, or ``None`` on the uniform
        platform (``score`` then reports cost 0.0)."""
        return self._cost_model

    def score(
        self, order: Sequence[int], machine_of: Sequence[int]
    ) -> ScheduleScore:
        """The schedule's ``(makespan, cost, busy)`` triple under NIC
        contention.  Cost billing is per-task busy time, so it is the
        same arithmetic as the contention-free model — only the
        makespan component changes with the network."""
        cm = self._cost_model
        if cm is None:
            cm = self._cost_model = CostModel.zero(
                self._workload.exec_times.values
            )
        return cm.score(machine_of, self.makespan(order, machine_of))

    def string_score(self, string: ScheduleString) -> ScheduleScore:
        """:meth:`score` of an encoded :class:`ScheduleString`."""
        return self.score(string.order, string.machines)

    def finish_times(self, string: ScheduleString) -> list[float]:
        """Per-subtask finish times under contention — SE's ``Ci``."""
        return list(self.evaluate(string).finish)

    # ------------------------------------------------------------------
    # incremental (suffix-only) evaluation
    # ------------------------------------------------------------------

    def prepare(
        self, order: Sequence[int], machine_of: Sequence[int]
    ) -> ContentionDeltaState:
        """Fully evaluate a valid string and snapshot per-position state.

        Raises
        ------
        InvalidScheduleError
            If *order* places a consumer before one of its producers.
        """
        E = self._E
        tr = self._tr
        l = self._l
        k = self._k
        in_edges = self._in_edges
        out_edges = self._out_edges

        start = [0.0] * k
        finish = [-1.0] * k
        machine_avail = self._avail0[:]
        nic_free = self._nic0[:]
        arrival = [0.0] * self._p
        avail_rows: list[list[float]] = [machine_avail.copy()]
        nic_rows: list[list[float]] = [nic_free.copy()]
        span_prefix = [0.0]
        span = 0.0

        for task in order:
            m = machine_of[task]
            ready = machine_avail[m]
            for prod, item in in_edges[task]:
                pf = finish[prod]
                if pf < 0.0:
                    raise InvalidScheduleError(
                        f"subtask {task} scheduled before its producer {prod}"
                    )
                t_arr = pf if machine_of[prod] == m else arrival[item]
                if t_arr > ready:
                    ready = t_arr
            fin = ready + E[m][task]
            start[task] = ready
            finish[task] = fin
            machine_avail[m] = fin
            if fin > span:
                span = fin
            nf = nic_free[m]
            for item, consumer in out_edges[task]:
                dst = machine_of[consumer]
                if dst == m:
                    continue
                if dst < m:
                    row = dst * l - dst * (dst + 1) // 2 + (m - dst - 1)
                else:
                    row = m * l - m * (m + 1) // 2 + (dst - m - 1)
                t_start = fin if fin > nf else nf
                nf = t_start + tr[row][item]
                arrival[item] = nf
            nic_free[m] = nf
            avail_rows.append(machine_avail.copy())
            nic_rows.append(nic_free.copy())
            span_prefix.append(span)

        pos_of = [0] * k
        for q, t in enumerate(order):
            pos_of[t] = q
        producer_floor = [k] * k
        for t in range(k):
            for prod, _item in in_edges[t]:
                q = pos_of[prod]
                if q < producer_floor[t]:
                    producer_floor[t] = q

        return ContentionDeltaState(
            order=list(order),
            machine_of=list(machine_of),
            start=start,
            finish=finish,
            arrival=arrival,
            avail_rows=avail_rows,
            nic_rows=nic_rows,
            span_prefix=span_prefix,
            producer_floor=producer_floor,
            makespan=span,
        )

    def prepare_string(self, string: ScheduleString) -> ContentionDeltaState:
        """:meth:`prepare` for a :class:`ScheduleString` (thin convenience)."""
        return self.prepare(string.order, string.machines)

    def evaluate_delta(
        self,
        order: Sequence[int],
        machine_of: Sequence[int],
        first_changed: int,
        state: ContentionDeltaState,
        cutoff: float = float("inf"),
        region_end: Optional[int] = None,
    ) -> float:
        """Makespan of a perturbed string, recomputed suffix-only.

        Preconditions (NOT checked — this is the innermost hot path):

        * ``order`` is a valid (dependency-respecting) permutation;
        * positions ``0..first_changed-1`` hold the same subtasks as
          ``state``'s base string, and those subtasks keep the machine
          assignments they had when :meth:`prepare` ran.

        The result is bit-identical to a full :meth:`makespan` call on
        the same string — a property enforced by
        ``tests/properties/test_contention_backend_properties.py``.

        Unlike the contention-free model, reassigning a *suffix* subtask
        to a new machine changes which of its inputs cross machines and
        how long each transfer occupies the **producer's** NIC — and the
        producer may sit in the untouched prefix.  The walk therefore
        restarts at ``min(first_changed, producer_floor[t])`` over every
        task ``t`` whose machine differs from the base assignment; every
        position before that point is provably identical to the base run
        (its tasks' pushes involve no reassigned consumer), so the
        snapshots stay valid.

        ``cutoff`` enables branch-and-bound pruning exactly as in
        :meth:`repro.schedule.simulator.Simulator.evaluate_delta`: the
        running span only grows, so once it reaches *cutoff* the walk
        aborts and returns ``inf``.

        ``region_end`` is accepted for call-site parity with the
        contention-free backend but unused: the rejoin early-exit is
        unsound here because equal machine-availability and NIC vectors
        do not imply equal in-flight arrival times.
        """
        k = self._k
        f = first_changed
        if f < 0:
            f = 0
        base_machines = state.machine_of
        if f < k:
            # Machine reassignments can dirty prefix producers' NICs;
            # restart early enough to replay every affected push.
            floor = state.producer_floor
            eff = f
            for t in range(k):
                if machine_of[t] != base_machines[t]:
                    fl = floor[t]
                    if fl < eff:
                        eff = fl
            f = eff
        else:
            return state.makespan if state.makespan < cutoff else float("inf")

        E = self._E
        tr = self._tr
        l = self._l
        in_edges = self._in_edges
        out_edges = self._out_edges
        finish = state.finish[:]
        arrival = state.arrival[:]
        machine_avail = state.avail_rows[f][:]
        nic_free = state.nic_rows[f][:]
        span = state.span_prefix[f]
        if span >= cutoff:
            return float("inf")

        for q in range(f, k):
            task = order[q]
            m = machine_of[task]
            ready = machine_avail[m]
            for prod, item in in_edges[task]:
                t_arr = (
                    finish[prod] if machine_of[prod] == m else arrival[item]
                )
                if t_arr > ready:
                    ready = t_arr
            fin = ready + E[m][task]
            finish[task] = fin
            machine_avail[m] = fin
            if fin > span:
                span = fin
                if span >= cutoff:
                    return float("inf")
            nf = nic_free[m]
            for item, consumer in out_edges[task]:
                dst = machine_of[consumer]
                if dst == m:
                    continue
                if dst < m:
                    row = dst * l - dst * (dst + 1) // 2 + (m - dst - 1)
                else:
                    row = m * l - m * (m + 1) // 2 + (dst - m - 1)
                t_start = fin if fin > nf else nf
                nf = t_start + tr[row][item]
                arrival[item] = nf
            nic_free[m] = nf
        return span


register_network("nic")(ContentionSimulator)


def contention_penalty(workload: Workload, string: ScheduleString) -> float:
    """Relative makespan increase of *string* when NICs serialise.

    ``0.0`` means the schedule is insensitive to the contention-free
    assumption; ``0.25`` means it is 25% slower on a contended network.
    """
    from repro.schedule.simulator import Simulator

    free = Simulator(workload).string_makespan(string)
    contended = ContentionSimulator(workload).string_makespan(string)
    return contended / free - 1.0
