"""Link-contention network model — an extension beyond the paper.

The paper (following Wang et al.) assumes a fully connected network with
**contention-free** links: every transfer starts the instant its producer
finishes.  Real clusters serialise transfers on each node's network
interface.  :class:`ContentionSimulator` adds that effect with a
one-NIC-per-machine model:

* each machine owns a single outgoing link;
* when a subtask finishes, its output items destined for *other*
  machines are sent in item-index order, each occupying the producer's
  NIC for its ``Tr`` duration;
* a consumer may start only after its machine is free *and* every input
  item has arrived (same-machine items arrive instantly).

The model is deliberately conservative (receive side is unmodelled), and
it degrades exactly to the paper's model when transfers are free.  Use
it to check how sensitive a schedule is to the contention-free
assumption — the ``examples``/tests compare both evaluations of the same
string.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.model.workload import Workload
from repro.schedule.encoding import ScheduleString
from repro.schedule.simulator import InvalidScheduleError, Schedule


@dataclass(frozen=True)
class TransferRecord:
    """One cross-machine transfer as scheduled on the producer's NIC."""

    item: int
    producer: int
    consumer: int
    src_machine: int
    dst_machine: int
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass(frozen=True)
class ContentionSchedule:
    """A schedule evaluated under NIC contention."""

    schedule: Schedule
    transfers: tuple[TransferRecord, ...]

    @property
    def makespan(self) -> float:
        return self.schedule.makespan

    def nic_busy_time(self, machine: int) -> float:
        """Total time *machine*'s outgoing link is occupied."""
        return sum(
            t.duration for t in self.transfers if t.src_machine == machine
        )


class ContentionSimulator:
    """Schedule evaluation with per-machine outgoing-link serialisation.

    API mirrors :class:`repro.schedule.simulator.Simulator` where it
    overlaps (``evaluate`` / ``makespan`` / ``string_makespan``).
    """

    __slots__ = ("_workload", "_E", "_tr_time", "_out_items", "_in_items")

    def __init__(self, workload: Workload):
        self._workload = workload
        self._E = workload.exec_times.values.tolist()
        graph = workload.graph
        self._out_items = [
            [graph.data_item(i) for i in graph.out_items(t)]
            for t in range(graph.num_tasks)
        ]
        self._in_items = [
            [graph.data_item(i) for i in graph.in_items(t)]
            for t in range(graph.num_tasks)
        ]
        self._tr_time = workload.comm_time

    @property
    def workload(self) -> Workload:
        return self._workload

    def evaluate(self, string: ScheduleString) -> ContentionSchedule:
        """Full evaluation of *string* under NIC contention."""
        w = self._workload
        k = w.num_tasks
        order = string.order
        machine_of = string.machines

        start = [0.0] * k
        finish = [-1.0] * k
        machine_avail = [0.0] * w.num_machines
        nic_free = [0.0] * w.num_machines
        arrival: dict[int, float] = {}  # item index -> arrival time
        transfers: list[TransferRecord] = []

        for task in order:
            m = machine_of[task]
            ready = machine_avail[m]
            for d in self._in_items[task]:
                if finish[d.producer] < 0.0:
                    raise InvalidScheduleError(
                        f"subtask {task} scheduled before its producer "
                        f"{d.producer}"
                    )
                pm = machine_of[d.producer]
                t_arr = finish[d.producer] if pm == m else arrival[d.index]
                if t_arr > ready:
                    ready = t_arr
            st = ready
            fin = st + self._E[m][task]
            start[task] = st
            finish[task] = fin
            machine_avail[m] = fin

            # eager push: send every cross-machine output item, in item
            # order, serialised on this machine's NIC
            for d in self._out_items[task]:
                dst = machine_of[d.consumer]
                if dst == m:
                    continue
                dur = self._tr_time(m, dst, d.index)
                t_start = max(fin, nic_free[m])
                t_finish = t_start + dur
                nic_free[m] = t_finish
                arrival[d.index] = t_finish
                transfers.append(
                    TransferRecord(
                        item=d.index,
                        producer=task,
                        consumer=d.consumer,
                        src_machine=m,
                        dst_machine=dst,
                        start=t_start,
                        finish=t_finish,
                    )
                )

        return ContentionSchedule(
            schedule=Schedule(
                order=tuple(order),
                machine_of=tuple(machine_of),
                start=tuple(start),
                finish=tuple(finish),
                makespan=max(finish),
            ),
            transfers=tuple(transfers),
        )

    def makespan(
        self, order: Sequence[int], machine_of: Sequence[int]
    ) -> float:
        """Makespan only (still builds transfer records internally)."""
        s = ScheduleString(list(order), list(machine_of), self._workload.num_machines)
        return self.evaluate(s).makespan

    def string_makespan(self, string: ScheduleString) -> float:
        return self.evaluate(string).makespan


def contention_penalty(workload: Workload, string: ScheduleString) -> float:
    """Relative makespan increase of *string* when NICs serialise.

    ``0.0`` means the schedule is insensitive to the contention-free
    assumption; ``0.25`` means it is 25% slower on a contended network.
    """
    from repro.schedule.simulator import Simulator

    free = Simulator(workload).string_makespan(string)
    contended = ContentionSimulator(workload).string_makespan(string)
    return contended / free - 1.0
