"""Shared utilities: deterministic RNG handling, validation helpers, timers."""

from repro.utils.rng import (
    RandomSource,
    as_rng,
    random_permutation,
    spawn_rngs,
    weighted_choice,
)
from repro.utils.timers import Stopwatch, TimeBudget
from repro.utils.validation import (
    check_fraction_range,
    check_index,
    check_nonnegative,
    check_positive,
    check_probability,
)

__all__ = [
    "RandomSource",
    "as_rng",
    "random_permutation",
    "spawn_rngs",
    "weighted_choice",
    "Stopwatch",
    "TimeBudget",
    "check_fraction_range",
    "check_index",
    "check_nonnegative",
    "check_positive",
    "check_probability",
]
