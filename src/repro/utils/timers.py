"""Wall-clock helpers for time-budgeted experiments.

The paper's SE-vs-GA figures (Figs. 5-7) plot the *best schedule length
found so far* against *real time*; both algorithms therefore run under a
shared wall-clock budget rather than an iteration count.  ``TimeBudget``
is the single source of truth for that: engines poll :meth:`TimeBudget.expired`
at iteration boundaries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional


class Stopwatch:
    """Simple monotonic stopwatch.

    >>> sw = Stopwatch()
    >>> sw.elapsed() >= 0
    True
    """

    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def restart(self) -> None:
        """Reset the origin to now."""
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction or last :meth:`restart`."""
        return time.perf_counter() - self._start


@dataclass
class TimeBudget:
    """A wall-clock budget with an optional iteration cap.

    Either limit may be ``None`` (unbounded); an engine stops as soon as
    *any* configured limit is hit.  A budget with both limits ``None``
    never expires — engines that accept one must also have their own
    stopping criterion.
    """

    seconds: Optional[float] = None
    max_iterations: Optional[int] = None
    _watch: Stopwatch = field(default_factory=Stopwatch, repr=False)

    def __post_init__(self) -> None:
        if self.seconds is not None and self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")
        if self.max_iterations is not None and self.max_iterations < 0:
            raise ValueError(
                f"max_iterations must be >= 0, got {self.max_iterations}"
            )

    def start(self) -> "TimeBudget":
        """(Re)start the wall clock; returns self for chaining."""
        self._watch.restart()
        return self

    def elapsed(self) -> float:
        """Seconds elapsed since :meth:`start` (or construction)."""
        return self._watch.elapsed()

    def expired(self, iteration: int) -> bool:
        """True once the wall clock or the iteration cap is exhausted."""
        if self.max_iterations is not None and iteration >= self.max_iterations:
            return True
        if self.seconds is not None and self._watch.elapsed() >= self.seconds:
            return True
        return False

    @classmethod
    def iterations(cls, n: int) -> "TimeBudget":
        """Budget limited only by an iteration count."""
        return cls(seconds=None, max_iterations=n)

    @classmethod
    def wall_clock(cls, seconds: float) -> "TimeBudget":
        """Budget limited only by wall-clock time."""
        return cls(seconds=seconds, max_iterations=None)
