"""Deterministic random-number handling.

Every stochastic component in the library (SE engine, GA baseline, workload
generators) accepts a ``RandomSource`` — either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` for OS entropy — and normalises
it through :func:`as_rng`.  Determinism under a fixed seed is part of the
public contract and is enforced by the test suite: two runs constructed from
the same seed must produce identical traces.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

#: Anything accepted where randomness is needed.
RandomSource = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(source: RandomSource = None) -> np.random.Generator:
    """Normalise *source* into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    source:
        ``None`` (fresh OS entropy), an ``int`` seed, a ``SeedSequence``,
        or an existing ``Generator`` (returned unchanged so state is
        shared with the caller).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(source, np.random.Generator):
        return source
    if isinstance(source, np.random.SeedSequence):
        return np.random.default_rng(source)
    if source is None or isinstance(source, (int, np.integer)):
        return np.random.default_rng(source)
    raise TypeError(
        f"cannot build a random generator from {type(source).__name__!r}; "
        "expected None, int, SeedSequence or numpy.random.Generator"
    )


def spawn_rngs(source: RandomSource, n: int) -> list[np.random.Generator]:
    """Derive *n* statistically independent generators from one source.

    Used when an experiment fans out into parallel components (e.g. the
    SE-vs-GA comparison harness gives each algorithm its own stream so the
    two runs do not perturb each other).
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(source, np.random.SeedSequence):
        seq = source
    elif isinstance(source, np.random.Generator):
        # Derive children from the generator's own bit stream.
        seeds = source.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    else:
        seq = np.random.SeedSequence(source)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def random_permutation(
    rng: np.random.Generator, items: Sequence
) -> list:
    """Return a new list with *items* in a uniformly random order."""
    idx = rng.permutation(len(items))
    return [items[i] for i in idx]


def weighted_choice(
    rng: np.random.Generator,
    items: Sequence,
    weights: Iterable[float],
) -> object:
    """Roulette-wheel selection of one element of *items*.

    Weights must be non-negative and not all zero.  Used by the GA
    baseline's fitness-proportionate selection.
    """
    w = np.asarray(list(weights), dtype=float)
    if len(w) != len(items):
        raise ValueError("items and weights must have the same length")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("at least one weight must be positive")
    return items[int(rng.choice(len(items), p=w / total))]
