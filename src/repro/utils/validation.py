"""Small argument-validation helpers used across the library.

These raise early with actionable messages instead of letting bad values
propagate into the schedule simulator, where they would surface as cryptic
index errors.
"""

from __future__ import annotations

from typing import Optional


def check_positive(name: str, value: float) -> float:
    """Ensure *value* > 0, returning it for chaining."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Ensure *value* >= 0, returning it for chaining."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Ensure *value* lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_index(name: str, value: int, size: int) -> int:
    """Ensure *value* is a valid index into a container of length *size*."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if not 0 <= value < size:
        raise IndexError(f"{name} must be in [0, {size}), got {value}")
    return value


def check_fraction_range(
    name: str, lo: float, hi: float, hi_name: Optional[str] = None
) -> None:
    """Ensure ``0 <= lo <= hi`` for a pair of range parameters."""
    hi_name = hi_name or f"{name}_hi"
    if lo < 0:
        raise ValueError(f"{name} must be >= 0, got {lo!r}")
    if hi < lo:
        raise ValueError(f"{hi_name} ({hi!r}) must be >= {name} ({lo!r})")
