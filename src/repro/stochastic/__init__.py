"""Stochastic durations: distributions, scenario sampling, risk scoring.

The risk-aware tier of the reproduction (see ``docs/risk_aware.md``):

* :mod:`repro.stochastic.distributions` — declarative duration/transfer
  noise models (``deterministic`` / ``uniform:<w>`` /
  ``lognormal:<sigma>`` / ``empirical:<f1,f2,...>``) and seeded,
  worker-count-invariant scenario sampling;
* :mod:`repro.stochastic.scenarios` — B×S scoring through the batch
  kernels and the :class:`ScenarioBackend` that makes every engine's
  compared scalar a risk statistic (``mean`` / ``quantile:q`` /
  ``cvar:q`` / ``saa:T:eps``) with zero engine changes.

Quickstart — sample scenarios and score one schedule's risk profile:

>>> from repro.stochastic import ScenarioEvaluator, sample_scenarios
>>> from repro.schedule.operations import random_valid_string
>>> from repro.workloads import small_workload
>>> w = small_workload(seed=1)
>>> scen = sample_scenarios(w, "lognormal:0.25", scenarios=8, seed=0)
>>> scen.exec_tensor.shape == (8, w.num_machines, w.num_tasks)
True
>>> ev = ScenarioEvaluator(scen)
>>> s = random_valid_string(w.graph, w.num_machines, 3)
>>> samples = ev.samples_string(s)     # one makespan per scenario
>>> len(samples) == 8 and bool(samples.min() > 0)
True

Engines consume the same machinery through
``EvaluationService(w, objective="quantile:0.95", scenarios=256,
distribution="lognormal:0.25")``.
"""

from repro.stochastic.distributions import (
    DETERMINISTIC,
    DISTRIBUTION_FORMS,
    DistributionSpec,
    ScenarioSet,
    resolve_distribution,
    sample_scenarios,
    validate_scenario_settings,
)
from repro.stochastic.scenarios import ScenarioBackend, ScenarioEvaluator

__all__ = [
    "DETERMINISTIC",
    "DISTRIBUTION_FORMS",
    "DistributionSpec",
    "ScenarioSet",
    "resolve_distribution",
    "sample_scenarios",
    "validate_scenario_settings",
    "ScenarioBackend",
    "ScenarioEvaluator",
]
