"""Scenario scoring: B schedules × S scenarios through the batch tier.

A risk objective needs the makespan of every candidate schedule under
every sampled scenario.  The batch kernels of PR 3/5 are the natural
engine for that: scoring B schedules under scenario ``s`` is one
``batch_string_makespans`` call against a kernel built from scenario
``s``'s matrices, so the full ``(S, B)`` matrix is ``S`` kernel sweeps —
no new walk code, and both network models (``"contention-free"`` and
``"nic"``) come for free.  Networks without a registered kernel (or
callers that disable batching) fall back to an ``S × B`` sequential
scalar loop, bit-identical.

Two classes:

* :class:`ScenarioEvaluator` — owns the per-scenario kernels (one per
  scenario; DAG-structure tables are shared across them via
  ``WorkloadPack(w_s, like=base)``, since only the matrices differ) and
  produces scenario-makespan vectors/matrices;
* :class:`ScenarioBackend` — the
  :class:`~repro.schedule.backend.SimulatorBackend`-shaped wrapper the
  :class:`~repro.optim.evaluation.EvaluationService` installs for
  scenario objectives: every scalar an engine compares (``makespan``,
  delta scalars, batch columns) is the *reduced risk statistic*, while
  ``evaluate`` / ``finish_times`` still report the nominal schedule
  (result assembly and SE's goodness phase run on nominal durations).
  The incremental tier is exact but unaccelerated: ``evaluate_delta``
  re-scores the full string over all scenarios and ignores the cutoff
  (a risk statistic has no per-position lower bound to prune on).

>>> from repro.optim.objective import resolve_objective
>>> from repro.schedule.operations import random_valid_string
>>> from repro.stochastic.distributions import sample_scenarios
>>> from repro.workloads import small_workload
>>> w = small_workload(seed=3)
>>> ev = ScenarioEvaluator(sample_scenarios(w, "uniform:0.3", 16, seed=5))
>>> s = random_valid_string(w.graph, w.num_machines, 0)
>>> ev.string_matrix([s]).shape  # (S, B)
(16, 1)
>>> p95 = resolve_objective("quantile:0.95")
>>> p95.reduce(ev.samples_string(s)) >= float(ev.samples_string(s).mean())
True
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.optim.objective import ScenarioObjective, _ScalarizedState
from repro.schedule.backend import (
    DEFAULT_NETWORK,
    batch_kernel_factory,
    make_simulator,
)
from repro.schedule.encoding import ScheduleString
from repro.schedule.vectorized import WorkloadPack
from repro.stochastic.distributions import ScenarioSet

__all__ = ["ScenarioEvaluator", "ScenarioBackend"]

_INF = float("inf")


class ScenarioEvaluator:
    """Scores schedule batches under every scenario of a
    :class:`~repro.stochastic.distributions.ScenarioSet`.

    Parameters
    ----------
    scenario_set:
        The sampled scenarios (see :func:`~repro.stochastic.
        distributions.sample_scenarios`).
    network:
        Simulator-backend name; scenario walks run under this network
        model, exactly like deterministic scoring.
    prefer_batch:
        When True (default) and the network registered a batch kernel,
        one kernel per scenario scores whole batches in NumPy sweeps;
        otherwise an ``S × B`` sequential scalar loop is used
        (bit-identical, just slower — surfaced by :attr:`is_vectorized`).
    """

    __slots__ = ("_set", "_network", "_kernels", "_backends", "_vectorized")

    def __init__(
        self,
        scenario_set: ScenarioSet,
        network: str = DEFAULT_NETWORK,
        prefer_batch: bool = True,
    ):
        self._set = scenario_set
        self._network = network
        self._kernels: Optional[list] = None
        self._backends: Optional[list] = None
        factory = batch_kernel_factory(network) if prefer_batch else None
        self._vectorized = factory is not None
        S = scenario_set.scenarios
        if factory is not None:
            kernels = []
            base_pack: Optional[WorkloadPack] = None
            for s in range(S):
                w_s = scenario_set.workload_for(s)
                try:
                    pack = WorkloadPack(w_s, like=base_pack)
                    kernel = factory(w_s, pack=pack)
                except TypeError:
                    # custom kernel factory without a pack= keyword
                    pack, kernel = None, factory(w_s)
                if base_pack is None:
                    base_pack = pack
                kernels.append(kernel)
            self._kernels = kernels
        else:
            self._backends = [
                make_simulator(scenario_set.workload_for(s), network)
                for s in range(S)
            ]

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    @property
    def scenario_set(self) -> ScenarioSet:
        return self._set

    @property
    def scenarios(self) -> int:
        """The scenario count ``S``."""
        return self._set.scenarios

    @property
    def network(self) -> str:
        return self._network

    @property
    def workload(self):
        """The *nominal* workload the scenarios perturb."""
        return self._set.workload

    @property
    def is_vectorized(self) -> bool:
        """True when scenario sweeps run the network's batch kernel."""
        return self._vectorized

    @property
    def kernel_tier(self) -> str:
        """The tier of the per-scenario kernels (``jit``/``vectorized``)
        or ``sequential`` when scoring loops the scalar backends."""
        if self._kernels:
            tier = getattr(self._kernels[0], "kernel_tier", None)
            if tier is not None:
                return str(tier)
        return "vectorized" if self._vectorized else "sequential"

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------

    def matrix(
        self, orders: Any, machines: Any, validate: bool = True
    ) -> np.ndarray:
        """The ``(S, B)`` scenario-makespan matrix of a batch.

        Row ``s`` holds every schedule's makespan under scenario ``s``
        — bit-identical to scoring the batch against a simulator built
        from that scenario's matrices.  Validation (permutation /
        precedence checks) runs once, on the first scenario: validity
        is a property of the strings, not of the matrices.
        """
        if self._kernels is not None:
            rows = []
            for s, kernel in enumerate(self._kernels):
                rows.append(
                    kernel.makespans(
                        orders, machines, validate=validate and s == 0
                    )
                )
            return np.stack(rows)
        out = []
        for backend in self._backends:
            out.append(
                [
                    backend.makespan(list(o), list(m))
                    for o, m in zip(orders, machines)
                ]
            )
        return np.asarray(out, dtype=float)

    def string_matrix(
        self, strings: Sequence[ScheduleString], validate: bool = True
    ) -> np.ndarray:
        """:meth:`matrix` over :class:`ScheduleString` objects."""
        if not strings:
            return np.empty((self.scenarios, 0))
        orders = np.array([s.order for s in strings], dtype=np.intp)
        machines = np.array([s.machines for s in strings], dtype=np.intp)
        return self.matrix(orders, machines, validate=validate)

    def samples(
        self, order: Sequence[int], machine_of: Sequence[int]
    ) -> np.ndarray:
        """One schedule's ``(S,)`` scenario-makespan vector."""
        return self.matrix([list(order)], [list(machine_of)])[:, 0]

    def samples_string(self, string: ScheduleString) -> np.ndarray:
        """:meth:`samples` for a :class:`ScheduleString`."""
        return self.samples(string.order, string.machines)


class ScenarioBackend:
    """A backend whose every scalar is the reduced risk statistic.

    The scenario-objective twin of
    :class:`~repro.optim.objective.ObjectiveBackend`: built by the
    :class:`~repro.optim.evaluation.EvaluationService` when a scenario
    objective is configured, never by engines directly.  Engines
    compare scalars; here each scalar is ``objective.reduce`` over the
    schedule's scenario makespans.  ``evaluate`` / ``finish_times`` /
    the decoded schedules stay *nominal* — reported makespans in
    result assembly are real nominal makespans, and SE's goodness
    phase ranks subtasks by nominal finish times.
    """

    def __init__(
        self,
        nominal: Any,
        evaluator: ScenarioEvaluator,
        objective: ScenarioObjective,
    ):
        self._nominal = nominal
        self._evaluator = evaluator
        self._objective = objective

    # ------------------------------------------------------------------
    # identity / passthrough
    # ------------------------------------------------------------------

    @property
    def base(self) -> Any:
        """The wrapped nominal backend."""
        return self._nominal

    @property
    def objective(self) -> ScenarioObjective:
        return self._objective

    @property
    def evaluator(self) -> ScenarioEvaluator:
        return self._evaluator

    @property
    def workload(self):
        return self._nominal.workload

    @property
    def is_vectorized(self) -> bool:
        return self._evaluator.is_vectorized

    @property
    def kernel_tier(self) -> str:
        return self._evaluator.kernel_tier

    def evaluate(self, string: ScheduleString) -> Any:
        """The nominal backend's full result (real schedule/makespan)."""
        return self._nominal.evaluate(string)

    def finish_times(self, string: ScheduleString) -> list[float]:
        return self._nominal.finish_times(string)

    # ------------------------------------------------------------------
    # reduced (risk) scoring
    # ------------------------------------------------------------------

    def makespan(
        self, order: Sequence[int], machine_of: Sequence[int]
    ) -> float:
        return self._objective.reduce(
            self._evaluator.samples(order, machine_of)
        )

    def string_makespan(self, string: ScheduleString) -> float:
        return self._objective.reduce(
            self._evaluator.samples_string(string)
        )

    def prepare(
        self, order: Sequence[int], machine_of: Sequence[int]
    ) -> _ScalarizedState:
        state = self._nominal.prepare(order, machine_of)
        return _ScalarizedState(state, self.makespan(order, machine_of))

    def evaluate_delta(
        self,
        order: Sequence[int],
        machine_of: Sequence[int],
        first_changed: int,
        state: Any,
        cutoff: float = _INF,
        region_end: Optional[int] = None,
    ) -> float:
        """The candidate's risk scalar (full scenario re-evaluation).

        A risk statistic over scenarios admits no incremental
        suffix-only shortcut (every scenario's walk differs), so this
        scores the whole string and ignores *cutoff* — exact, never a
        spurious ``inf``, just without branch-and-bound savings.
        """
        return self.makespan(order, machine_of)

    def batch_makespans(
        self, orders: Any, machines: Any, validate: bool = True
    ) -> np.ndarray:
        return self._objective.reduce_matrix(
            self._evaluator.matrix(orders, machines, validate=validate)
        )

    def batch_string_makespans(
        self, strings: Sequence[ScheduleString], validate: bool = True
    ) -> np.ndarray:
        return self._objective.reduce_matrix(
            self._evaluator.string_matrix(strings, validate=validate)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScenarioBackend({self._objective.name}, "
            f"S={self._evaluator.scenarios})"
        )
