"""Duration/transfer distributions and seeded scenario sampling.

The paper's ETC model is deterministic: ``E[m, t]`` *is* subtask
``t``'s running time on machine ``m``.  Real durations are
distributions — so this module makes the uncertainty a declarative,
string-keyed axis (exactly like networks and platforms):

* :class:`DistributionSpec` — a named multiplicative noise model.  A
  scenario draws one positive factor per *subtask* (and one per *data
  item*): scenario ``s`` runs with ``E_s = E * f_exec[s]`` (column
  scaling — the task's work is random, the machines' relative speeds
  are not) and ``Tr_s = Tr * f_tr[s]``.  Uniform and lognormal are
  mean-one, so the *expected* matrix is the nominal one; an empirical
  table's mean is whatever the table says (a straggler table like
  ``1,1,1,1,4`` deliberately inflates it);
* :func:`resolve_distribution` — parses the JSON/CLI-safe forms
  ``"deterministic"``, ``"uniform:<width>"``, ``"lognormal:<sigma>"``
  and ``"empirical:<f1,f2,...>"`` (a per-task empirical factor table in
  the style of bearbattle__dag-scheduling-sim's task-duration sampler —
  e.g. ``"empirical:1,1,1,1,4"`` is a 20%-probability 4x straggler);
* :func:`sample_scenarios` — materialises ``S`` scenarios as a
  :class:`ScenarioSet`: the ``(S, l, k)`` execution tensor, the
  per-scenario transfer matrices, and per-scenario
  :class:`~repro.model.workload.Workload` views for the batch kernels.

Determinism contract
--------------------

Sampling is a pure function of ``(workload shape, distribution, S,
seed)``: the generator is seeded from ``(salt, seed)`` alone and the
draw order is fixed (execution factors first, then transfer factors),
so the same call returns bit-identical tensors in every process — the
experiment runner's worker count (``REPRO_WORKERS``) can never change a
scenario (pinned by ``tests/stochastic``).

>>> spec = resolve_distribution("lognormal:0.25")
>>> spec.name
'lognormal:0.25'
>>> from repro.workloads import small_workload
>>> w = small_workload(seed=1)
>>> scen = sample_scenarios(w, spec, scenarios=4, seed=7)
>>> scen.exec_tensor.shape  # (S, l, k)
(4, 5, 20)
>>> bool((scen.exec_tensor > 0).all())
True
>>> again = sample_scenarios(w, "lognormal:0.25", scenarios=4, seed=7)
>>> bool((again.exec_tensor == scen.exec_tensor).all())
True
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.model.matrices import ExecutionTimeMatrix, TransferTimeMatrix
from repro.model.workload import Workload

__all__ = [
    "DistributionSpec",
    "DETERMINISTIC",
    "DISTRIBUTION_FORMS",
    "resolve_distribution",
    "ScenarioSet",
    "sample_scenarios",
    "validate_scenario_settings",
]

#: The distribution grammar, one ``(form, description)`` pair per
#: accepted spelling — the single source the CLI listing
#: (``repro algorithms``) and the docs point at.
DISTRIBUTION_FORMS = (
    ("deterministic", "the nominal matrices, no noise (the default)"),
    (
        "uniform:<width>",
        "factor ~ U[1-width, 1+width], mean-one jitter (0 <= width < 1)",
    ),
    (
        "lognormal:<sigma>",
        "factor = exp(sigma*Z - sigma^2/2), mean-one heavy-ish tail",
    ),
    (
        "empirical:<f1,f2,...>",
        "factor drawn uniformly from a table, e.g. empirical:1,1,1,1,4 "
        "(a 20% chance of a 4x straggler)",
    ),
)

# Fixed salt so scenario streams never collide with engine/workload
# seeding that uses the same small integer seeds.
_SCENARIO_SALT = 0x5CEA0


@dataclass(frozen=True)
class DistributionSpec:
    """One multiplicative noise model for durations and transfers.

    ``sample_factors`` draws positive factors of any requested shape
    (uniform/lognormal mean-one, empirical with its table's mean).
    Factors must stay strictly positive — execution
    matrices require it (:class:`~repro.model.matrices.
    ExecutionTimeMatrix`) — which every accepted parameterisation
    guarantees by construction.
    """

    kind: str
    width: float = 0.0
    sigma: float = 0.0
    factors: tuple = ()

    def __post_init__(self) -> None:
        if self.kind not in ("deterministic", "uniform", "lognormal", "empirical"):
            raise ValueError(
                f"unknown distribution kind {self.kind!r}; expected "
                "'deterministic', 'uniform', 'lognormal' or 'empirical'"
            )
        if self.kind == "uniform" and not (
            math.isfinite(self.width) and 0 <= self.width < 1
        ):
            raise ValueError(
                f"uniform width must be in [0, 1), got {self.width!r} "
                "(width >= 1 could draw non-positive execution times)"
            )
        if self.kind == "lognormal" and not (
            math.isfinite(self.sigma) and self.sigma >= 0
        ):
            raise ValueError(
                f"lognormal sigma must be finite and >= 0, got {self.sigma!r}"
            )
        if self.kind == "empirical":
            object.__setattr__(
                self, "factors", tuple(float(f) for f in self.factors)
            )
            if not self.factors:
                raise ValueError("empirical factor table must be non-empty")
            for f in self.factors:
                if not (math.isfinite(f) and f > 0):
                    raise ValueError(
                        f"empirical factors must be finite and > 0, got {f!r}"
                    )

    @property
    def name(self) -> str:
        if self.kind == "deterministic":
            return "deterministic"
        if self.kind == "uniform":
            return f"uniform:{self.width:g}"
        if self.kind == "lognormal":
            return f"lognormal:{self.sigma:g}"
        return "empirical:" + ",".join(f"{f:g}" for f in self.factors)

    @property
    def is_deterministic(self) -> bool:
        """True when every drawn factor is exactly 1.0."""
        return self.kind == "deterministic" or (
            self.kind == "uniform" and self.width == 0
        ) or (
            self.kind == "lognormal" and self.sigma == 0
        ) or (
            self.kind == "empirical" and set(self.factors) == {1.0}
        )

    def sample_factors(
        self, rng: np.random.Generator, shape: tuple
    ) -> np.ndarray:
        """Positive multiplicative factors of *shape* drawn from *rng*."""
        if self.kind == "uniform" and self.width > 0:
            return rng.uniform(1.0 - self.width, 1.0 + self.width, shape)
        if self.kind == "lognormal" and self.sigma > 0:
            # mean-one: E[exp(sigma*Z - sigma^2/2)] = 1
            return np.exp(
                rng.normal(-0.5 * self.sigma**2, self.sigma, shape)
            )
        if self.kind == "empirical":
            table = np.asarray(self.factors, dtype=float)
            return table[rng.integers(0, table.size, shape)]
        return np.ones(shape)


#: The identity distribution: the nominal matrices, no noise.
DETERMINISTIC = DistributionSpec("deterministic")


def resolve_distribution(
    spec: Union[str, DistributionSpec],
) -> DistributionSpec:
    """*spec* as a :class:`DistributionSpec`.

    Accepts a spec instance or any string form of
    :data:`DISTRIBUTION_FORMS`.
    """
    if isinstance(spec, DistributionSpec):
        return spec
    if not isinstance(spec, str):
        raise ValueError(
            f"distribution must be a name string or DistributionSpec, "
            f"got {spec!r}"
        )
    if spec == "deterministic":
        return DETERMINISTIC
    try:
        if spec.startswith("uniform:"):
            return DistributionSpec(
                "uniform", width=float(spec.partition(":")[2])
            )
        if spec.startswith("lognormal:"):
            return DistributionSpec(
                "lognormal", sigma=float(spec.partition(":")[2])
            )
        if spec.startswith("empirical:"):
            raw = spec.partition(":")[2]
            return DistributionSpec(
                "empirical",
                factors=tuple(float(f) for f in raw.split(",") if f.strip()),
            )
    except ValueError as e:
        raise ValueError(f"bad distribution {spec!r}: {e}") from None
    raise ValueError(
        f"unknown distribution {spec!r}; expected one of: "
        + ", ".join(form for form, _ in DISTRIBUTION_FORMS)
    )


class ScenarioSet:
    """``S`` sampled scenarios of one workload, as tensors and views.

    Built by :func:`sample_scenarios`.  Holds the per-scenario factor
    matrices and exposes three layers on top of them:

    * :attr:`exec_tensor` — the ``(S, l, k)`` execution-time tensor
      ``E_s = E * f_exec[s]`` (lazily materialised, cached);
    * :attr:`transfer_tensor` — the ``(S, l(l-1)/2, p)`` transfer
      tensor (``None`` when the workload has no data items);
    * :meth:`workload_for` — scenario ``s`` as a
      :class:`~repro.model.workload.Workload` sharing the nominal
      graph/system objects (the *same* nominal object under a
      deterministic distribution, preserving bit-identity), which is
      what the batch kernels are built from.
    """

    __slots__ = (
        "workload",
        "distribution",
        "seed",
        "exec_factors",
        "transfer_factors",
        "_exec_tensor",
        "_transfer_tensor",
        "_workloads",
    )

    def __init__(
        self,
        workload: Workload,
        distribution: DistributionSpec,
        seed: int,
        exec_factors: np.ndarray,
        transfer_factors: np.ndarray,
    ):
        self.workload = workload
        self.distribution = distribution
        self.seed = seed
        self.exec_factors = exec_factors
        self.transfer_factors = transfer_factors
        self._exec_tensor = None
        self._transfer_tensor = None
        self._workloads: dict = {}

    @property
    def scenarios(self) -> int:
        """The scenario count ``S``."""
        return self.exec_factors.shape[0]

    @property
    def exec_tensor(self) -> np.ndarray:
        """The ``(S, l, k)`` execution-time tensor."""
        if self._exec_tensor is None:
            E = self.workload.exec_times.values
            self._exec_tensor = E[None, :, :] * self.exec_factors[:, None, :]
        return self._exec_tensor

    @property
    def transfer_tensor(self):
        """The ``(S, l(l-1)/2, p)`` transfer tensor (``None`` if p=0)."""
        tr = self.workload.transfer_times.values
        if tr.size == 0:
            return None
        if self._transfer_tensor is None:
            self._transfer_tensor = (
                tr[None, :, :] * self.transfer_factors[:, None, :]
            )
        return self._transfer_tensor

    def workload_for(self, s: int) -> Workload:
        """Scenario *s* as a :class:`Workload` (cached).

        Shares the nominal graph, system and classification objects;
        only the matrices differ.  Under a deterministic distribution
        this *is* the nominal workload object, so downstream packing
        and scoring are bit-identical to the plain path.
        """
        if not 0 <= s < self.scenarios:
            raise IndexError(
                f"scenario index {s} out of range [0, {self.scenarios})"
            )
        if self.distribution.is_deterministic:
            return self.workload
        cached = self._workloads.get(s)
        if cached is not None:
            return cached
        w = self.workload
        trt = self.transfer_tensor
        built = Workload(
            graph=w.graph,
            system=w.system,
            exec_times=ExecutionTimeMatrix(self.exec_tensor[s]),
            transfer_times=(
                w.transfer_times
                if trt is None
                else TransferTimeMatrix(trt[s], w.num_machines)
            ),
            classification=w.classification,
            name=f"{w.name}#s{s}" if w.name else f"scenario-{s}",
        )
        self._workloads[s] = built
        return built


def sample_scenarios(
    workload: Workload,
    distribution: Union[str, DistributionSpec] = DETERMINISTIC,
    scenarios: int = 1,
    seed: int = 0,
) -> ScenarioSet:
    """Draw *scenarios* perturbed copies of *workload*'s matrices.

    Pure function of its arguments (see the module docstring's
    determinism contract); execution factors are drawn before transfer
    factors, one row per scenario.
    """
    if scenarios < 1:
        raise ValueError(f"scenarios must be >= 1, got {scenarios}")
    spec = resolve_distribution(distribution)
    k = workload.num_tasks
    p = workload.transfer_times.values.shape[1]
    if spec.is_deterministic:
        exec_f = np.ones((scenarios, k))
        tr_f = np.ones((scenarios, p))
    else:
        rng = np.random.default_rng(
            np.random.SeedSequence([_SCENARIO_SALT, int(seed) & (2**63 - 1)])
        )
        exec_f = spec.sample_factors(rng, (scenarios, k))
        tr_f = spec.sample_factors(rng, (scenarios, p))
    return ScenarioSet(workload, spec, int(seed), exec_f, tr_f)


def validate_scenario_settings(objective, scenarios: int, distribution):
    """Cross-validate the scenario axis of a config or service.

    Returns the resolved ``(objective, distribution)`` pair; raises
    :class:`ValueError` when the combination cannot be evaluated —
    a scenario objective without scenarios, or scenario parameters
    attached to a deterministic objective (which would silently change
    nothing).
    """
    from repro.optim.objective import resolve_objective

    obj = resolve_objective(objective)
    spec = resolve_distribution(distribution)
    if scenarios < 0:
        raise ValueError(f"scenarios must be >= 0, got {scenarios}")
    if getattr(obj, "is_scenario", False):
        if scenarios < 1:
            raise ValueError(
                f"objective {obj.name!r} reduces over Monte-Carlo "
                "scenarios: set scenarios >= 1 (e.g. --scenarios 256)"
            )
    else:
        if scenarios:
            raise ValueError(
                f"scenarios={scenarios} has no effect under objective "
                f"{obj.name!r}; use a scenario objective "
                "(mean / quantile:<q> / cvar:<q> / saa:<T>:<eps>)"
            )
        if not spec.is_deterministic:
            raise ValueError(
                f"distribution {spec.name!r} has no effect under objective "
                f"{obj.name!r}; use a scenario objective "
                "(mean / quantile:<q> / cvar:<q> / saa:<T>:<eps>)"
            )
    return obj, spec
