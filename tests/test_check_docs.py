"""The docs-integrity checker (scripts/check_docs.py) stays healthy."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SCRIPT = REPO / "scripts" / "check_docs.py"


def _run(*args):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True,
        text=True,
    )


def test_self_test_passes():
    proc = _run("--self-test")
    assert proc.returncode == 0, proc.stderr
    assert "OK" in proc.stdout


def test_the_repo_docs_are_clean():
    proc = _run()
    assert proc.returncode == 0, proc.stderr + proc.stdout
    assert "docs check: OK" in proc.stdout
