"""Behavioural tests for the simulated-annealing engine."""

import pytest

from repro.optim import SAConfig, run_sa
from repro.schedule import Simulator, is_valid_for, verify_schedule
from repro.schedule.operations import random_valid_string


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs,field",
        [
            ({"initial_temp": 0.0}, "initial_temp"),
            ({"cooling": 0.0}, "cooling"),
            ({"cooling": 1.5}, "cooling"),
            ({"steps_per_temp": 0}, "steps_per_temp"),
            ({"min_temp_factor": 0.0}, "min_temp_factor"),
            ({"reassign_prob": 1.5}, "reassign_prob"),
            ({"max_iterations": -1}, "max_iterations"),
            ({"time_limit": -1.0}, "time_limit"),
            ({"stall_iterations": 0}, "stall_iterations"),
            ({"network": ""}, "network"),
        ],
    )
    def test_bad_values_rejected(self, kwargs, field):
        with pytest.raises(ValueError, match=field):
            SAConfig(**kwargs)


class TestBasicRun:
    def test_valid_verified_best(self, tiny_workload):
        res = run_sa(tiny_workload, SAConfig(seed=1, max_iterations=150))
        assert is_valid_for(res.best_string, tiny_workload.graph)
        verify_schedule(tiny_workload, res.best_schedule)
        assert res.best_makespan == pytest.approx(
            Simulator(tiny_workload).string_makespan(res.best_string)
        )

    def test_trace_and_counters(self, tiny_workload):
        res = run_sa(tiny_workload, SAConfig(seed=1, max_iterations=80))
        assert res.iterations == 80
        assert len(res.trace) == 80
        assert res.stopped_by == "iterations"
        # 1 initial prepare + >= 1 delta per proposal
        assert res.evaluations >= 81
        best = res.trace.best_makespans()
        assert all(b2 <= b1 + 1e-9 for b1, b2 in zip(best, best[1:]))
        assert res.best_makespan == min(best)

    def test_deterministic_per_seed(self, tiny_workload):
        a = run_sa(tiny_workload, SAConfig(seed=9, max_iterations=120))
        b = run_sa(tiny_workload, SAConfig(seed=9, max_iterations=120))
        assert a.best_makespan == b.best_makespan
        assert a.best_string == b.best_string
        assert a.trace.current_makespans() == b.trace.current_makespans()

    def test_different_seeds_differ(self, tiny_workload):
        a = run_sa(tiny_workload, SAConfig(seed=1, max_iterations=120))
        b = run_sa(tiny_workload, SAConfig(seed=2, max_iterations=120))
        assert (
            a.trace.current_makespans() != b.trace.current_makespans()
            or a.best_string != b.best_string
        )

    def test_improves_over_initial(self, tiny_workload):
        init = random_valid_string(
            tiny_workload.graph, tiny_workload.num_machines, 77
        )
        start = Simulator(tiny_workload).string_makespan(init)
        res = run_sa(
            tiny_workload, SAConfig(seed=1, max_iterations=400), initial=init
        )
        assert res.best_makespan <= start

    def test_initial_not_mutated(self, tiny_workload):
        init = random_valid_string(
            tiny_workload.graph, tiny_workload.num_machines, 77
        )
        before = init.pairs()
        run_sa(
            tiny_workload, SAConfig(seed=1, max_iterations=50), initial=init
        )
        assert init.pairs() == before

    def test_zero_iterations(self, tiny_workload):
        res = run_sa(tiny_workload, SAConfig(seed=1, max_iterations=0))
        assert res.iterations == 0 and len(res.trace) == 0
        assert is_valid_for(res.best_string, tiny_workload.graph)


class TestStopping:
    def test_stops_by_time(self, tiny_workload):
        res = run_sa(
            tiny_workload,
            SAConfig(seed=1, max_iterations=10**8, time_limit=0.05),
        )
        assert res.stopped_by == "time"
        assert res.iterations < 10**8

    def test_stops_by_stall(self, tiny_workload):
        res = run_sa(
            tiny_workload,
            SAConfig(seed=1, max_iterations=10**6, stall_iterations=25),
        )
        assert res.stopped_by == "stall"


class TestNicBackend:
    def test_optimises_under_nic(self, tiny_workload):
        from repro.extensions.contention import ContentionSimulator

        res = run_sa(
            tiny_workload,
            SAConfig(seed=3, max_iterations=100, network="nic"),
        )
        assert res.best_makespan == pytest.approx(
            ContentionSimulator(tiny_workload).string_makespan(
                res.best_string
            )
        )


class TestObservers:
    def test_observer_sees_every_proposal(self, tiny_workload):
        records = []
        run_sa(
            tiny_workload,
            SAConfig(seed=1, max_iterations=25),
            observers=[lambda rec, s: records.append(rec)],
        )
        assert [r.iteration for r in records] == list(range(1, 26))

    def test_acceptance_flag_in_num_selected(self, tiny_workload):
        res = run_sa(tiny_workload, SAConfig(seed=1, max_iterations=60))
        assert set(res.trace.selected_counts()) <= {0, 1}
        # a fresh random start at warm temperature must accept something
        assert sum(res.trace.selected_counts()) > 0


class TestCooling:
    def test_colder_final_temperature_with_faster_cooling(self, tiny_workload):
        """Aggressive cooling accepts fewer uphill moves overall."""
        slow = run_sa(
            tiny_workload,
            SAConfig(
                seed=5, max_iterations=300, cooling=0.99, steps_per_temp=10
            ),
        )
        fast = run_sa(
            tiny_workload,
            SAConfig(
                seed=5, max_iterations=300, cooling=0.5, steps_per_temp=10
            ),
        )
        assert sum(fast.trace.selected_counts()) <= sum(
            slow.trace.selected_counts()
        )


class TestRecordEvery:
    def test_stride_thins_trace_but_keeps_improvements(self, tiny_workload):
        full = run_sa(tiny_workload, SAConfig(seed=3, max_iterations=200))
        thin = run_sa(
            tiny_workload,
            SAConfig(seed=3, max_iterations=200, record_every=25),
        )
        # identical search (recording is observation-only)...
        assert thin.best_makespan == full.best_makespan
        assert thin.best_string == full.best_string
        assert thin.evaluations == full.evaluations
        # ...with a much smaller trace that still pins the best curve
        assert len(thin.trace) < len(full.trace)
        assert min(thin.trace.best_makespans()) == thin.best_makespan
        # every stride multiple is present (improvements ride along)
        strided = {r.iteration for r in thin.trace.records}
        assert {25, 50, 75, 100, 125, 150, 175, 200} <= strided

    def test_observers_fire_only_on_recorded_proposals(self, tiny_workload):
        records = []
        res = run_sa(
            tiny_workload,
            SAConfig(seed=3, max_iterations=100, record_every=20),
            observers=[lambda rec, s: records.append(rec.iteration)],
        )
        assert records == [r.iteration for r in res.trace.records]

    def test_invalid_stride_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="record_every"):
            SAConfig(record_every=0)
