"""EvaluationService: routing, fallbacks, and call accounting."""

import pytest

from repro.extensions.contention import ContentionSimulator
from repro.optim import EvaluationService
from repro.schedule import Simulator
from repro.schedule.operations import random_valid_string
from repro.workloads import small_workload


@pytest.fixture(scope="module")
def workload():
    return small_workload(seed=2)


@pytest.fixture(scope="module")
def strings(workload):
    return [
        random_valid_string(workload.graph, workload.num_machines, s)
        for s in range(6)
    ]


class TestRouting:
    def test_contention_free_batch_is_vectorized(self, workload):
        assert EvaluationService(workload).is_vectorized is True

    def test_nic_batch_is_vectorized(self, workload):
        # since the NIC kernel registered, "nic" batches are vectorized
        assert EvaluationService(workload, "nic").is_vectorized is True

    def test_unkernelled_network_falls_back_sequential(
        self, workload, monkeypatch
    ):
        # a network without a registered kernel loops the scalar backend
        # and *visibly* reports so — the fallback must never be silent
        from repro.schedule import backend as backend_mod

        backend_mod._ensure_builtins()
        monkeypatch.delitem(backend_mod._BATCH_NETWORKS, "nic")
        svc = EvaluationService(workload, "nic")
        assert svc.is_vectorized is False
        ref = ContentionSimulator(workload)
        strings = [
            random_valid_string(workload.graph, workload.num_machines, s)
            for s in range(3)
        ]
        assert svc.batch_string_makespans(strings) == [
            ref.string_makespan(s) for s in strings
        ]
        assert svc.evaluations == len(strings)

    def test_prefer_batch_false_disables_kernel(self, workload):
        assert (
            EvaluationService(workload, prefer_batch=False).is_vectorized
            is False
        )

    def test_unknown_network_rejected(self, workload):
        with pytest.raises(ValueError, match="unknown network"):
            EvaluationService(workload, "token-ring")

    def test_batch_matches_scalar_reference(self, workload, strings):
        svc = EvaluationService(workload)
        ref = Simulator(workload)
        got = svc.batch_string_makespans(strings)
        assert got == [ref.string_makespan(s) for s in strings]

    def test_batch_matches_scalar_reference_nic(self, workload, strings):
        svc = EvaluationService(workload, "nic")
        ref = ContentionSimulator(workload)
        got = svc.batch_string_makespans(strings)
        assert got == [ref.string_makespan(s) for s in strings]

    def test_batch_without_wrapper_loops_scalar(self, workload, strings):
        svc = EvaluationService(workload, prefer_batch=False)
        ref = Simulator(workload)
        assert svc.batch_string_makespans(strings) == [
            ref.string_makespan(s) for s in strings
        ]
        orders = [list(s.order) for s in strings]
        machines = [list(s.machines) for s in strings]
        assert svc.batch_makespans(orders, machines) == [
            ref.makespan(o, m) for o, m in zip(orders, machines)
        ]

    def test_delta_matches_full(self, workload, strings):
        svc = EvaluationService(workload)
        base = strings[0]
        state = svc.prepare(base.order, base.machines)
        probe = base.copy()
        task = probe.order[-1]
        probe.assign(task, (probe.machine_of(task) + 1) % workload.num_machines)
        got = svc.evaluate_delta(
            probe.order, probe.machines, probe.position_of(task), state
        )
        assert got == svc.string_makespan(probe)


class TestAccounting:
    def test_each_tier_counts_calls(self, workload, strings):
        svc = EvaluationService(workload)
        assert svc.evaluations == 0
        svc.string_makespan(strings[0])
        assert svc.evaluations == 1
        svc.makespan(list(strings[0].order), list(strings[0].machines))
        assert svc.evaluations == 2
        svc.evaluate(strings[0])
        assert svc.evaluations == 3
        state = svc.prepare(strings[0].order, strings[0].machines)
        assert svc.evaluations == 4
        svc.evaluate_delta(strings[0].order, strings[0].machines, 0, state)
        assert svc.evaluations == 5
        svc.batch_string_makespans(strings)
        assert svc.evaluations == 5 + len(strings)

    def test_schedule_of_is_free(self, workload, strings):
        svc = EvaluationService(workload)
        sched = svc.schedule_of(strings[0])
        assert sched.makespan > 0
        assert svc.evaluations == 0

    def test_external_calls_fold_in(self, workload):
        svc = EvaluationService(workload)
        svc.count(17)
        assert svc.evaluations == 17

    def test_empty_batch_counts_nothing(self, workload):
        svc = EvaluationService(workload)
        assert svc.batch_string_makespans([]) == []
        assert svc.evaluations == 0
