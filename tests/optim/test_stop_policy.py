"""StopPolicy edge cases and the unified stop-reason contract.

Covers the ISSUE-4 satellite list: ``stall_iterations=1``, simultaneous
time/iteration/stall triggers (the check order is part of the
contract), and SE/GA reporting the *same* reason strings through the
shared policy.
"""

import pytest

from repro.baselines import GAConfig, GeneticAlgorithm
from repro.core import SEConfig, SimulatedEvolution
from repro.optim import (
    STOP_ITERATIONS,
    STOP_STALL,
    STOP_TIME,
    SearchLoop,
    StepOutcome,
    StopPolicy,
)


class _Counter:
    """A trivial step: constant cost (so nothing ever improves)."""

    def __init__(self, cost=5.0):
        self.calls = 0
        self.cost = cost

    def __call__(self, iteration):
        self.calls += 1
        return StepOutcome(cost=self.cost, candidate=FakeSolution())


class FakeSolution:
    def copy(self):
        return self


def run_loop(policy, step=None, initial_cost=10.0):
    step = step or _Counter()
    loop = SearchLoop(stop=policy)
    return loop.run(initial_cost, FakeSolution(), step), step


class TestValidation:
    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError, match="max_iterations"):
            StopPolicy(max_iterations=-1)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="time_limit"):
            StopPolicy(max_iterations=1, time_limit=-0.5)

    def test_zero_stall_rejected(self):
        with pytest.raises(ValueError, match="stall_iterations"):
            StopPolicy(max_iterations=1, stall_iterations=0)


class TestStallEdgeCases:
    def test_stall_one_stops_at_first_non_improving_iteration(self):
        out, step = run_loop(
            StopPolicy(max_iterations=100, stall_iterations=1)
        )
        # cost 5 < initial 10 improves on iteration 1; iteration 2 is
        # the first non-improvement and must be the last
        assert out.iterations == 2
        assert out.stopped_by == STOP_STALL
        assert step.calls == 2

    def test_stall_one_with_improving_steps_never_stalls(self):
        costs = iter(range(100, 0, -1))

        def improving(iteration):
            return StepOutcome(cost=float(next(costs)), candidate=FakeSolution())

        out, _ = run_loop(
            StopPolicy(max_iterations=10, stall_iterations=1),
            step=improving,
            initial_cost=1000.0,
        )
        assert out.iterations == 10
        assert out.stopped_by == STOP_ITERATIONS

    def test_stall_counts_only_consecutive_misses(self):
        # improve on every 3rd iteration: stall streak never reaches 3
        state = {"best": 1000.0, "i": 0}

        def sometimes(iteration):
            state["i"] += 1
            if state["i"] % 3 == 0:
                state["best"] -= 1.0
                return StepOutcome(cost=state["best"], candidate=FakeSolution())
            return StepOutcome(cost=state["best"] + 50, candidate=FakeSolution())

        out, _ = run_loop(
            StopPolicy(max_iterations=12, stall_iterations=3),
            step=sometimes,
            initial_cost=2000.0,
        )
        assert out.stopped_by == STOP_ITERATIONS
        assert out.iterations == 12


class TestSimultaneousTriggers:
    def test_iteration_cap_wins_when_last_iteration_outruns_clock(self):
        """Cap exhausted AND clock expired -> "iterations".

        The clock is only consulted at the *top* of an iteration, so a
        run whose final allowed iteration overruns the time limit still
        reports the cap — pinning the historical SE/GA behaviour.
        """
        import time

        def slow(iteration):
            time.sleep(0.08)
            return StepOutcome(cost=5.0, candidate=FakeSolution())

        out, _ = run_loop(
            StopPolicy(max_iterations=1, time_limit=0.04), step=slow
        )
        assert out.iterations == 1
        assert out.stopped_by == STOP_ITERATIONS

    def test_expired_clock_wins_mid_run(self):
        out, step = run_loop(StopPolicy(max_iterations=100, time_limit=0.0))
        # time_limit=0 expires before iteration 1 even starts
        assert out.iterations == 0
        assert step.calls == 0
        assert out.stopped_by == STOP_TIME

    def test_stall_wins_over_clock_on_same_iteration(self):
        """Stall trips at the bottom of the iteration that also used up
        the clock: the stall check runs first (the next top-of-loop time
        check is never reached)."""
        out, _ = run_loop(
            StopPolicy(
                max_iterations=100, time_limit=1e9, stall_iterations=1
            )
        )
        assert out.stopped_by == STOP_STALL

    def test_stall_and_cap_on_final_iteration_reports_stall(self):
        # 2 iterations allowed; iteration 2 is both the cap and the
        # first stall -> the bottom-of-loop stall check fires first
        out, _ = run_loop(StopPolicy(max_iterations=2, stall_iterations=1))
        assert out.iterations == 2
        assert out.stopped_by == STOP_STALL

    def test_zero_iterations_reports_iterations(self):
        out, step = run_loop(StopPolicy(max_iterations=0, time_limit=0.0))
        assert out.iterations == 0
        assert step.calls == 0
        assert out.stopped_by == STOP_ITERATIONS


class TestEnginesShareReasonStrings:
    """SE and GA must report identical strings for identical causes."""

    def test_cap_exhaustion_says_iterations_everywhere(self, tiny_workload):
        se = SimulatedEvolution(SEConfig(seed=1, max_iterations=3)).run(
            tiny_workload
        )
        ga = GeneticAlgorithm(
            GAConfig(
                seed=1,
                population_size=4,
                max_generations=3,
                stall_generations=None,
            )
        ).run(tiny_workload)
        assert se.stopped_by == ga.stopped_by == STOP_ITERATIONS

    def test_stall_says_stall_everywhere(self, tiny_workload):
        se = SimulatedEvolution(
            SEConfig(seed=1, max_iterations=10**4, stall_iterations=2)
        ).run(tiny_workload)
        ga = GeneticAlgorithm(
            GAConfig(
                seed=1,
                population_size=4,
                max_generations=10**4,
                stall_generations=2,
            )
        ).run(tiny_workload)
        assert se.stopped_by == ga.stopped_by == STOP_STALL

    def test_time_says_time_everywhere(self, tiny_workload):
        se = SimulatedEvolution(
            SEConfig(seed=1, max_iterations=10**8, time_limit=0.05)
        ).run(tiny_workload)
        ga = GeneticAlgorithm(
            GAConfig(
                seed=1,
                population_size=4,
                max_generations=10**8,
                stall_generations=None,
                time_limit=0.05,
            )
        ).run(tiny_workload)
        assert se.stopped_by == ga.stopped_by == STOP_TIME

    def test_config_policies_agree(self):
        se_policy = SEConfig(
            max_iterations=7, time_limit=1.5, stall_iterations=3
        ).stop_policy()
        ga_policy = GAConfig(
            max_generations=7, time_limit=1.5, stall_generations=3
        ).stop_policy()
        assert se_policy == ga_policy
