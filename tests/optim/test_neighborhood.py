"""The pairwise-move neighborhood: validity, inverses, delta anchors."""

import numpy as np
import pytest

from repro.optim.neighborhood import (
    REASSIGN,
    REORDER,
    Move,
    applied_copy,
    apply_move,
    first_changed_position,
    inverse_move,
    random_move,
)
from repro.schedule import Simulator, is_valid_for
from repro.schedule.operations import random_valid_string


@pytest.fixture
def string(tiny_workload):
    return random_valid_string(
        tiny_workload.graph, tiny_workload.num_machines, 11
    )


class TestRandomMove:
    def test_moves_preserve_validity(self, tiny_workload, string):
        rng = np.random.default_rng(0)
        for _ in range(200):
            mv = random_move(string, tiny_workload.graph, rng)
            apply_move(string, mv)
            assert is_valid_for(string, tiny_workload.graph)

    def test_reassign_prob_extremes(self, tiny_workload, string):
        rng = np.random.default_rng(0)
        kinds = {
            random_move(string, tiny_workload.graph, rng, 1.0).kind
            for _ in range(20)
        }
        assert kinds == {REASSIGN}
        kinds = {
            random_move(string, tiny_workload.graph, rng, 0.0).kind
            for _ in range(20)
        }
        assert kinds == {REORDER}


class TestInverse:
    def test_inverse_restores_string(self, tiny_workload, string):
        rng = np.random.default_rng(3)
        for _ in range(100):
            before = string.pairs()
            mv = random_move(string, tiny_workload.graph, rng)
            undo = inverse_move(string, mv)
            apply_move(string, mv)
            apply_move(string, undo)
            assert string.pairs() == before


class TestFirstChanged:
    def test_delta_from_first_changed_matches_full(
        self, tiny_workload, string
    ):
        """first_changed_position is a sound anchor for evaluate_delta."""
        sim = Simulator(tiny_workload)
        rng = np.random.default_rng(7)
        state = sim.prepare(string.order, string.machines)
        for _ in range(100):
            mv = random_move(string, tiny_workload.graph, rng)
            first = first_changed_position(string, mv)
            probe = applied_copy(string, mv)
            got = sim.evaluate_delta(
                probe.order, probe.machines, first, state
            )
            assert got == sim.string_makespan(probe)

    def test_reassign_anchor_is_task_position(self, string):
        task = string.task_at(2)
        mv = Move(REASSIGN, task, 0)
        assert first_changed_position(string, mv) == 2

    def test_reorder_anchor_is_leftmost_end(self, string):
        task = string.task_at(3)
        assert first_changed_position(string, Move(REORDER, task, 1)) == 1
        assert first_changed_position(string, Move(REORDER, task, 5)) == 3


class TestAppliedCopy:
    def test_original_untouched(self, tiny_workload, string):
        before = string.pairs()
        rng = np.random.default_rng(5)
        mv = random_move(string, tiny_workload.graph, rng)
        applied_copy(string, mv)
        assert string.pairs() == before

    def test_unknown_kind_rejected(self, string):
        bad = Move("swap", 0, 0)
        with pytest.raises(ValueError, match="unknown move kind"):
            apply_move(string, bad)
        with pytest.raises(ValueError, match="unknown move kind"):
            inverse_move(string, bad)
        with pytest.raises(ValueError, match="unknown move kind"):
            first_changed_position(string, bad)


class TestAvoidNoop:
    def test_never_yields_identity(self, tiny_workload, string):
        rng = np.random.default_rng(1)
        for _ in range(300):
            mv = random_move(
                string, tiny_workload.graph, rng, avoid_noop=True
            )
            assert applied_copy(string, mv) != string
            assert is_valid_for(
                applied_copy(string, mv), tiny_workload.graph
            )

    def test_reassign_avoids_current_machine(self, tiny_workload, string):
        rng = np.random.default_rng(2)
        for _ in range(100):
            mv = random_move(
                string, tiny_workload.graph, rng, 1.0, avoid_noop=True
            )
            assert mv.kind == REASSIGN
            assert mv.target != string.machine_of(mv.task)

    def test_single_machine_falls_back_to_reorder(self):
        """With l=1 every reassign is a no-op; the draw must switch to a
        (non-identity) reorder whenever one exists."""
        from repro.model import TaskGraph

        graph = TaskGraph.from_edges(3, [])  # independent tasks
        s = random_valid_string(graph, 1, 0)
        rng = np.random.default_rng(3)
        for _ in range(50):
            mv = random_move(s, graph, rng, 1.0, avoid_noop=True)
            assert mv.kind == REORDER
            assert applied_copy(s, mv) != s
