"""ParetoTracker edge cases and the set-semantics property.

The front is a *set*: duplicates are rejected, a tie on one objective
with an improvement on the other replaces the dominated member, and the
final front never depends on the order points arrived in (the property
test shuffles arrival orders).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optim import ParetoTracker
from repro.optim.tracking import ParetoPoint


def front_points(tracker):
    return [(p.makespan, p.cost) for p in tracker.front]


class TestEdgeCases:
    def test_duplicates_never_grow_the_front(self):
        t = ParetoTracker()
        assert t.offer(10.0, 5.0)
        for _ in range(5):
            assert not t.offer(10.0, 5.0)
        assert front_points(t) == [(10.0, 5.0)]
        assert t.offers == 6

    def test_tie_on_one_objective_replaces_the_dominated(self):
        t = ParetoTracker()
        t.offer(10.0, 5.0)
        assert t.offer(10.0, 4.0)  # same span, cheaper: replaces
        assert front_points(t) == [(10.0, 4.0)]
        assert t.offer(9.0, 4.0)  # same cost, faster: replaces
        assert front_points(t) == [(9.0, 4.0)]
        assert not t.offer(9.0, 4.5)  # same span, dearer: rejected
        assert len(t) == 1

    def test_single_point_dominating_everything(self):
        t = ParetoTracker()
        for span, cost in [(10.0, 5.0), (12.0, 3.0), (11.0, 4.0)]:
            t.offer(span, cost)
        assert len(t) == 3
        assert t.offer(10.0, 3.0)  # dominates the whole front
        assert front_points(t) == [(10.0, 3.0)]

    def test_incomparable_points_accumulate_sorted(self):
        t = ParetoTracker()
        for span, cost in [(12.0, 3.0), (10.0, 5.0), (11.0, 4.0)]:
            assert t.offer(span, cost)
        assert front_points(t) == [(10.0, 5.0), (11.0, 4.0), (12.0, 3.0)]
        assert list(t) == t.front

    def test_dominated_query_includes_equality(self):
        t = ParetoTracker()
        t.offer(10.0, 5.0)
        assert t.dominated(10.0, 5.0)
        assert t.dominated(11.0, 5.0)
        assert not t.dominated(10.0, 4.9)

    def test_candidate_copied_only_on_acceptance(self):
        copies = []

        def spy(c):
            copies.append(c)
            return list(c)

        t = ParetoTracker(copy=spy)
        live = [1, 2, 3]
        t.offer(10.0, 5.0, live)
        t.offer(20.0, 50.0, live)  # dominated: no copy
        assert copies == [live]
        live.append(4)  # mutating the engine's working solution...
        assert t.front[0].candidate == [1, 2, 3]  # ...never leaks in

    def test_point_accessor(self):
        assert ParetoPoint(10.0, 5.0).point == (10.0, 5.0)


points_lists = st.lists(
    st.tuples(
        st.floats(1.0, 1e3, allow_nan=False),
        st.floats(0.0, 1e3, allow_nan=False),
    ),
    min_size=1,
    max_size=30,
)


class TestSetSemantics:
    @given(points=points_lists, seed=st.integers(0, 2**16))
    @settings(max_examples=200, deadline=None)
    def test_front_is_insertion_order_invariant(self, points, seed):
        import random

        shuffled = list(points)
        random.Random(seed).shuffle(shuffled)
        a, b = ParetoTracker(), ParetoTracker()
        for p in points:
            a.offer(*p)
        for p in shuffled:
            b.offer(*p)
        assert front_points(a) == front_points(b)

    @given(points=points_lists)
    @settings(max_examples=200, deadline=None)
    def test_front_is_mutually_non_dominated_and_covers_input(self, points):
        t = ParetoTracker()
        for p in points:
            t.offer(*p)
        front = front_points(t)
        assert front == sorted(set(front))  # duplicate-free, sorted
        for i, (ms, cs) in enumerate(front):
            for j, (mo, co) in enumerate(front):
                if i != j:
                    assert not (mo <= ms and co <= cs)
        # every input point is dominated-or-equalled by the front
        for span, cost in points:
            assert any(ms <= span and cs <= cost for ms, cs in front)
